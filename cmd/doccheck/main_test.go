package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDoccheckFindsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Top",
		"",
		"Good: [guide](docs/GUIDE.md), [section](docs/GUIDE.md#real-section),",
		"[self](#top), [ext](https://example.com/nope).",
		"",
		"Bad: [gone](docs/MISSING.md) and [ghost](docs/GUIDE.md#no-such-heading).",
		"",
		"```sh",
		"echo [not-a-link](nowhere.md)",
		"```",
	}, "\n"))
	write(t, filepath.Join(dir, "docs", "GUIDE.md"), strings.Join([]string{
		"# Guide",
		"",
		"## Real Section",
		"",
		"## Recovery",
		"",
		"## Recovery",
		"",
		"First [dup](#recovery), second [dup](#recovery-1), absent [dup](#recovery-2).",
		"Back to [readme](../README.md).",
	}, "\n"))

	problems, err := run([]string{filepath.Join(dir, "README.md"), filepath.Join(dir, "docs")})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 3 {
		t.Fatalf("found %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"MISSING.md", "no-such-heading", "recovery-2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("problems miss %q:\n%s", want, joined)
		}
	}
	for _, never := range []string{"nowhere.md", "example.com"} {
		if strings.Contains(joined, never) {
			t.Fatalf("false positive on %q:\n%s", never, joined)
		}
	}
}

func TestSlugify(t *testing.T) {
	for heading, want := range map[string]string{
		"# Fair-share arbitration":          "fair-share-arbitration",
		"## On-disk formats":                "on-disk-formats",
		"### POST /v1/jobs — submit a job":  "post-v1jobs--submit-a-job",
		"Quickstart: the scheduler service": "quickstart-the-scheduler-service",
		"## wal_record fields":              "wal_record-fields",
	} {
		h := strings.TrimLeft(heading, "#")
		if got := slugify(h); got != want {
			t.Fatalf("slugify(%q) = %q, want %q", heading, got, want)
		}
	}
}

// TestRepositoryDocsAreClean runs the checker over the real README and
// docs/ tree, so `go test` fails on a broken doc link even before the
// dedicated CI job runs.
func TestRepositoryDocsAreClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "README.md")); err != nil {
		t.Skip("repository root not reachable from test binary")
	}
	problems, err := run([]string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "docs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("broken documentation links:\n%s", strings.Join(problems, "\n"))
	}
}
