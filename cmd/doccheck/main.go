// Command doccheck validates the repository's markdown documentation: it
// walks the given files and directories for .md files, extracts every
// inline link and image, and verifies that relative targets exist —
// including `#anchor` fragments, which are checked against the target
// file's headings using GitHub's slug rules. External (http/https/mailto)
// links are skipped: CI must not flake on someone else's server.
//
// Usage:
//
//	doccheck README.md docs
//
// Exit status is nonzero if any link is broken, with one line per
// finding. The CI docs job runs it over README.md and docs/ so the
// documentation surface cannot rot silently.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <file-or-dir>...")
		os.Exit(2)
	}
	problems, err := run(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken link(s)\n", len(problems))
		os.Exit(1)
	}
}

// run checks every markdown file under the given paths and returns one
// line per broken link.
func run(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var problems []string
	for _, f := range files {
		ps, err := checkFile(f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// linkRe matches inline links and images: [text](target) / ![alt](target).
// Targets containing spaces or nested parens are out of scope (the repo
// does not use them).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// checkFile validates every relative link in one markdown file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		// Links inside fenced code blocks are literal text, not links.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if bad := checkTarget(path, target); bad != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, ln+1, bad))
			}
		}
	}
	return problems, nil
}

// checkTarget resolves one link target relative to the file containing it
// and returns a description of the problem ("" when the target is fine).
func checkTarget(fromFile, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not checked
	}
	file, anchor, _ := strings.Cut(target, "#")
	resolved := fromFile
	if file != "" {
		resolved = filepath.Join(filepath.Dir(fromFile), file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if anchor == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors into non-markdown files are not checked
	}
	ok, err := hasAnchor(resolved, anchor)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("broken link %q: no heading slugs to %q in %s", target, anchor, resolved)
	}
	return ""
}

// hasAnchor reports whether the markdown file has a heading whose GitHub
// slug equals anchor, applying GitHub's duplicate rule: the second
// occurrence of a slug becomes slug-1, the third slug-2, and so on.
func hasAnchor(path, anchor string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	inFence := false
	seen := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if heading == line || (heading != "" && heading[0] != ' ') {
			continue // not a heading ("#!/bin/sh", "#anchor")
		}
		slug := slugify(heading)
		if n := seen[slug]; n > 0 {
			seen[slug] = n + 1
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			seen[slug] = 1
		}
		if slug == anchor {
			return true, nil
		}
	}
	return false, nil
}

// slugify applies GitHub's heading-to-anchor rules: lowercase, drop
// everything but letters/digits/underscores/spaces/hyphens, spaces to
// hyphens.
func slugify(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			b.WriteRune(r) // unicode letters survive slugging; punctuation does not
		}
	}
	return b.String()
}
