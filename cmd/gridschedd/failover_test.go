package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// reservePort grabs a free localhost port and releases it for a daemon to
// re-bind.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gridschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func getReadiness(baseURL string) (*api.Readiness, error) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rd api.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		return nil, err
	}
	return &rd, nil
}

// waitStandbyCaughtUp blocks until the standby's replicated position
// reaches the leader's current LSN with zero lag — the checkpoint after
// which everything the leader acknowledged is on the standby too.
func waitStandbyCaughtUp(t *testing.T, leaderURL, standbyURL string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		lrd, lerr := getReadiness(leaderURL)
		srd, serr := getReadiness(standbyURL)
		if lerr == nil && serr == nil &&
			srd.Role == api.RoleFollower && srd.LagLSN == 0 && srd.LastLSN >= lrd.LastLSN {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("standby never caught up to the leader")
}

// TestFailoverGauntletKill9 is the failover acceptance gauntlet: a leader
// and a hot standby run as real gridschedd subprocesses; workers complete
// part of a job; the standby catches up; then the leader is SIGKILLed
// under live noise traffic and the standby is promoted. The promoted node
// must serve within the 500ms budget, hold every job acknowledged before
// the catch-up checkpoint, and drive the job to completion with every
// task completed exactly once. CI runs this under -race as the
// failover-gauntlet job.
func TestFailoverGauntletKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess gauntlet skipped in -short")
	}
	const (
		tasks   = 800
		workers = 8
	)

	bin := buildDaemon(t)
	leaderAddr, standbyAddr := reservePort(t), reservePort(t)
	leaderURL := "http://" + leaderAddr
	standbyURL := "http://" + standbyAddr
	topo := []string{"-sites", "2", "-workers", "4", "-capacity", "200", "-lease", "2s"}

	leader := startDaemon(t, bin, append([]string{
		"-addr", leaderAddr,
		"-data-dir", t.TempDir(), "-fsync", "batch", "-snapshot-every", "500",
	}, topo...)...)
	defer leader.stop()
	standby := startDaemon(t, bin, append([]string{
		"-addr", standbyAddr, "-follow", leaderURL,
		"-data-dir", t.TempDir(), "-fsync", "batch", "-snapshot-every", "500",
	}, topo...)...)
	defer standby.stop()

	cl := client.NewMulti([]string{leaderURL, standbyURL}, nil)
	waitHealthy(t, cl)

	// Tracked submissions: one big job the workers grind on, plus a
	// handful of small acked jobs that must survive the failover.
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	bigJob, err := cl.SubmitJob(ctx, "failover-big", "combined.2", 17, gauntletWorkload(tasks, 4))
	if err != nil {
		t.Fatal(err)
	}
	acked := []string{bigJob}
	for i := 0; i < 4; i++ {
		id, err := cl.SubmitJob(ctx, fmt.Sprintf("failover-small-%d", i), "rest", int64(i), gauntletWorkload(6, 2))
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, id)
	}

	// Phase 1: a tracked worker fleet completes part of the big job
	// against the leader, recording every acknowledged completion. Acks are
	// keyed by (job, task) — every job's task ids start at 0, so a bare
	// task id legitimately completes once per job.
	var ackMu sync.Mutex
	acks := make(map[string]int)
	ackKey := func(a *api.Assignment) string {
		return fmt.Sprintf("%s/%d", a.JobID, a.Task.ID)
	}
	bigAcks := func() int {
		ackMu.Lock()
		defer ackMu.Unlock()
		n := 0
		for k := range acks {
			if len(k) > len(bigJob) && k[:len(bigJob)] == bigJob {
				n++
			}
		}
		return n
	}
	phase1, stopPhase1 := context.WithCancel(ctx)
	var wg1 sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg1.Add(1)
		site := i % 2
		go func() {
			defer wg1.Done()
			_ = cl.RunWorker(phase1, client.WorkerConfig{
				Site:          &site,
				PollWait:      200 * time.Millisecond,
				ReconnectWait: 100 * time.Millisecond,
				Execute: func(execCtx context.Context, _ core.WorkerRef, _ *api.Assignment) error {
					select {
					case <-execCtx.Done():
					case <-time.After(10 * time.Millisecond):
					}
					return nil
				},
				OnReport: func(_ context.Context, a *api.Assignment, outcome string, rep *api.ReportResponse) bool {
					if outcome == api.OutcomeSuccess && rep.Accepted && !rep.Stale && !rep.Cancelled {
						ackMu.Lock()
						acks[ackKey(a)]++
						ackMu.Unlock()
					}
					return false
				},
			})
		}()
	}
	// Let the fleet make real progress, then settle it so every completion
	// the leader acknowledged has also been streamed to the standby.
	deadline := time.Now().Add(30 * time.Second)
	for {
		n := bigAcks()
		if n >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 1 stalled at %d completions\nleader:\n%s", n, leader.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	stopPhase1()
	wg1.Wait()
	waitStandbyCaughtUp(t, leaderURL, standbyURL)
	st, err := jobStatus(cl, bigJob)
	if err != nil {
		t.Fatal(err)
	}
	checkpointCompleted := st.Completed
	t.Logf("checkpoint: %d/%d completed and replicated", checkpointCompleted, tasks)

	// Noise traffic through the kill: fire-and-forget submits and status
	// reads against both endpoints. Failures are expected mid-failover;
	// the point is that the kill lands under live load.
	noise, stopNoise := context.WithCancel(ctx)
	var noiseWG sync.WaitGroup
	noiseWG.Add(1)
	go func() {
		defer noiseWG.Done()
		ncl := client.NewMulti([]string{leaderURL, standbyURL}, nil)
		for i := 0; ; i++ {
			select {
			case <-noise.Done():
				return
			default:
			}
			sctx, scancel := context.WithTimeout(noise, 300*time.Millisecond)
			_, _ = ncl.SubmitJob(sctx, fmt.Sprintf("noise-%d", i), "workqueue", int64(i), gauntletWorkload(3, 1))
			_, _ = ncl.Jobs(sctx)
			scancel()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The failover: kill -9 the leader mid-traffic, promote the standby,
	// and demand it serves within the budget.
	time.Sleep(50 * time.Millisecond) // let noise actually overlap the kill
	leader.kill9(t)

	promoteStart := time.Now()
	pctx, pcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer pcancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, standbyURL+"/v1/replication/promote", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("promote: %v\nstandby:\n%s", err, standby.stderr.String())
	}
	var promoted api.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || promoted.Role != api.RoleLeader {
		t.Fatalf("promote: http %d, %+v\nstandby:\n%s", resp.StatusCode, promoted, standby.stderr.String())
	}
	// Serving check inside the latency budget: the promoted node answers a
	// real read with the replicated state.
	jctx, jcancel := context.WithTimeout(context.Background(), 5*time.Second)
	ncl := client.New(standbyURL, nil)
	jobs, err := ncl.Jobs(jctx)
	jcancel()
	if err != nil {
		t.Fatalf("promoted node not serving: %v", err)
	}
	promoteLatency := time.Since(promoteStart)
	if promoteLatency > 500*time.Millisecond {
		t.Errorf("promotion to first served read took %s (budget 500ms)", promoteLatency)
	}
	t.Logf("promoted at lsn %d, serving after %s", promoted.LastLSN, promoteLatency)

	stopNoise()
	noiseWG.Wait()

	// Zero acked submissions lost: every job acknowledged before the
	// checkpoint is still there, with at least the checkpointed progress.
	have := make(map[string]api.JobStatus, len(jobs))
	for _, j := range jobs {
		have[j.ID] = j
	}
	for _, id := range acked {
		if _, ok := have[id]; !ok {
			t.Errorf("acked job %s lost in failover", id)
		}
	}
	if got := have[bigJob].Completed; got < checkpointCompleted {
		t.Errorf("completions regressed across failover: %d < checkpointed %d", got, checkpointCompleted)
	}

	// Phase 2: a fresh fleet drains the big job on the promoted node.
	var wg2 sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg2.Add(1)
		site := i % 2
		go func() {
			defer wg2.Done()
			_ = ncl.RunWorker(ctx, client.WorkerConfig{
				Site:          &site,
				PollWait:      200 * time.Millisecond,
				ReconnectWait: 100 * time.Millisecond,
				Execute: func(execCtx context.Context, _ core.WorkerRef, _ *api.Assignment) error {
					select {
					case <-execCtx.Done():
					case <-time.After(5 * time.Millisecond):
					}
					return nil
				},
				OnReport: func(_ context.Context, a *api.Assignment, outcome string, rep *api.ReportResponse) bool {
					if outcome == api.OutcomeSuccess && rep.Accepted && !rep.Stale && !rep.Cancelled {
						ackMu.Lock()
						acks[ackKey(a)]++
						ackMu.Unlock()
					}
					return false
				},
			})
		}()
	}
	drainDeadline := time.Now().Add(3 * time.Minute)
	var final *api.JobStatus
	for {
		if time.Now().After(drainDeadline) {
			t.Fatalf("big job never completed after failover; last %+v\nstandby:\n%s", final, standby.stderr.String())
		}
		st, err := jobStatus(ncl, bigJob)
		if err == nil {
			final = st
			if st.State == api.JobCompleted {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	cancelAll()
	wg2.Wait()

	// Exactly-once across the failover: the completion counter accounts
	// for every task, and no tracked worker was ever acknowledged twice
	// for the same task — the promoted node inherited, not re-ran, the
	// checkpointed work.
	if final.Completed != tasks {
		t.Fatalf("big job completed with %d/%d completions\n%+v", final.Completed, tasks, final)
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	for key, n := range acks {
		if n > 1 {
			t.Errorf("task %s acknowledged complete %d times across the failover", key, n)
		}
	}
	if len(acks) == 0 {
		t.Fatal("no completions acknowledged at all; harness broken")
	}
}

// TestFollowerDaemonAutoPromotes covers -auto-promote end to end
// in-process: a standby that loses its leader for longer than the grace
// window must promote itself and start answering as a leader.
func TestFollowerDaemonAutoPromotes(t *testing.T) {
	leaderAddr, standbyAddr := reservePort(t), reservePort(t)
	leaderURL := "http://" + leaderAddr
	standbyURL := "http://" + standbyAddr

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	leaderErr := make(chan error, 1)
	leaderReady := make(chan string, 1)
	go func() {
		leaderErr <- run(lctx, []string{
			"-addr", leaderAddr, "-sites", "2", "-workers", "2", "-capacity", "100",
			"-data-dir", t.TempDir(), "-fsync", "batch",
		}, func(a string) { leaderReady <- a })
	}()
	select {
	case <-leaderReady:
	case err := <-leaderErr:
		t.Fatalf("leader exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("leader never ready")
	}

	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	standbyErr := make(chan error, 1)
	standbyReady := make(chan string, 1)
	go func() {
		standbyErr <- run(sctx, []string{
			"-addr", standbyAddr, "-sites", "2", "-workers", "2", "-capacity", "100",
			"-data-dir", t.TempDir(), "-fsync", "batch",
			"-follow", leaderURL, "-auto-promote", "400ms",
		}, func(a string) { standbyReady <- a })
	}()
	select {
	case <-standbyReady:
	case err := <-standbyErr:
		t.Fatalf("standby exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("standby never ready")
	}

	cl := client.New(leaderURL, nil)
	ctx := context.Background()
	jobID, err := cl.SubmitJob(ctx, "survivor", "rest", 3, gauntletWorkload(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitStandbyCaughtUp(t, leaderURL, standbyURL)

	// Leader goes away; the standby must promote itself within the grace
	// window (plus polling slack).
	lcancel()
	select {
	case <-leaderErr:
	case <-time.After(10 * time.Second):
		t.Fatal("leader did not shut down")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		rd, err := getReadiness(standbyURL)
		if err == nil && rd.Role == api.RoleLeader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never auto-promoted; last readiness %+v, %v", rd, err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The promoted node holds the replicated job and accepts mutations.
	scl := client.New(standbyURL, nil)
	st, err := scl.Job(ctx, jobID)
	if err != nil || st.Name != "survivor" {
		t.Fatalf("replicated job after auto-promotion: %+v, %v", st, err)
	}
	if _, err := scl.SubmitJob(ctx, "post-promotion", "workqueue", 1, gauntletWorkload(3, 1)); err != nil {
		t.Fatalf("promoted node rejected a submit: %v", err)
	}

	scancel()
	select {
	case err := <-standbyErr:
		if err != nil {
			t.Fatalf("standby shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby did not shut down")
	}
}
