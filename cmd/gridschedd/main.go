// Command gridschedd runs the networked scheduler service: a daemon that
// accepts whole Bag-of-Tasks workloads as jobs (POST /v1/jobs, one
// algorithm choice per job) and serves them to pull-based remote workers
// (cmd/gridworker, or anything speaking the protocol of
// internal/service/api) with lease-based fault tolerance.
//
// Usage:
//
//	gridschedd -addr :8080 -sites 10 -workers 4 -capacity 6000 -lease 15s
//	gridschedd -data-dir /var/lib/gridschedd          # durable: journal + snapshots
//	gridschedd -data-dir d -fsync always              # fsync before every acknowledgement
//	gridschedd -data-dir d -snapshot-every 10000      # compaction cadence in journal records
//	gridschedd -tenant-quota 8 -default-weight 1      # multi-tenant fair share (docs/ARCHITECTURE.md)
//	gridschedd -shards 16                             # job-state lock stripes (0: sized to the machine)
//	gridschedd -auth-tokens tokens.conf               # per-tenant bearer auth (SIGHUP reloads the file)
//	gridschedd -rate-limit 500 -rate-burst 1000       # token-bucket throttling per IP and tenant
//	gridschedd -shed-p99 250ms                        # shed pulls/submits when p99 breaches the bound
//	gridschedd -partition-index 0 -partition-count 2  # one partition of a scaled-out deployment (front with gridrouter; docs/PARTITIONING.md)
//	gridschedd -data-dir d2 -follow http://leader:8080     # hot standby replicating the leader's journal
//	gridschedd -data-dir d2 -follow ... -auto-promote 5s   # ... that self-promotes when the leader goes silent
//	gridschedd -pprof   # also serve net/http/pprof under /debug/pprof/
//
// Every instance fronts the service with the production ingress chain of
// internal/middleware (docs/INGRESS.md): panic recovery, per-request trace
// IDs (X-Trace-Id) with buffered error logging, and — when the flags above
// enable them — bearer-token auth, weighted rate limiting, and
// latency-based load shedding that sheds low-weight tenants first.
// /healthz, /readyz, and /metrics always bypass auth, throttling, and
// shedding.
//
// Jobs may carry a tenant and an integer weight; the dispatch path
// arbitrates runnable jobs by weighted fair share and enforces per-tenant
// in-flight quotas (-tenant-quota server-wide, PUT /v1/tenants/{tenant}
// per tenant). Per-tenant share targets, achieved shares, and throttle
// counts are exported at /metrics.
//
// With -data-dir, every externally visible mutation is journaled before it
// is acknowledged and a restart replays snapshot+journal, reconstructing
// queues, leases-turned-requeues, scheduler state (including the
// randomized dispatch stream), and fair-share arbitration state exactly;
// workers reconnect by re-registering (the Go client does this
// transparently). The listener binds BEFORE recovery starts: GET /healthz
// answers 200 (the process is alive) and GET /readyz answers 503
// "recovering" until replay completes, then 200 "ready" — the probe pair
// orchestrators want. /readyz also reports the node's replication role and,
// on a standby, its LSN lag. See README "Operations" and docs/PROTOCOL.md.
//
// With -follow, the daemon is a hot standby instead: it streams the
// leader's journal over GET /v1/replication/stream, persists it locally,
// serves read-only status (mutations answer 421 with the leader's URL,
// which the Go client follows), and becomes the leader on POST
// /v1/replication/promote — or by itself, with -auto-promote, once the
// leader has been silent too long. See docs/REPLICATION.md.
//
// Then, from anywhere:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"name":"sweep","algorithm":"combined.2","workload":{...}}'
//	gridworker -server http://localhost:8080 -n 8
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"gridsched"
	"gridsched/internal/journal"
	"gridsched/internal/metrics"
	"gridsched/internal/middleware"
	"gridsched/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gridschedd:", err)
		os.Exit(1)
	}
}

// swappable routes requests to whichever handler is currently installed:
// the bootstrap probe surface while recovery runs, the full service
// afterwards.
type swappable struct {
	h atomic.Pointer[http.Handler]
}

func (s *swappable) store(h http.Handler) { s.h.Store(&h) }
func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// bootstrapHandler is what the daemon serves between bind and recovery
// completion: alive but not ready.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"starting"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"recovering"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"recovering; retry after /readyz reports ready"}`)
	})
	return mux
}

// run starts the daemon and blocks until ctx is cancelled. onReady, when
// non-nil, receives the bound address once the service answers traffic
// (tests bind ":0").
func run(ctx context.Context, args []string, onReady func(addr string)) error {
	fs := flag.NewFlagSet("gridschedd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		sites    = fs.Int("sites", 10, "sites in the worker pool")
		workers  = fs.Int("workers", 4, "worker slots per site")
		capacity = fs.Int("capacity", 6000, "per-site store capacity in files")
		policy   = fs.String("policy", "lru", "store replacement policy: lru or fifo")
		lease    = fs.Duration("lease", 15*time.Second, "worker/assignment lease TTL")
		sweep    = fs.Duration("sweep", 0, "lease sweep interval (0: lease/4)")
		shards   = fs.Int("shards", 0, "job-state lock stripes (0: sized to the machine; see docs/ARCHITECTURE.md)")
		weight   = fs.Int("default-weight", 1, "fair-share weight for jobs submitted without one")
		quota    = fs.Int("tenant-quota", 0, "per-tenant cap on concurrently leased assignments (0: unlimited; override per tenant via PUT /v1/tenants/{tenant})")
		pprof    = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		tokens   = fs.String("auth-tokens", "", "bearer-token file enabling per-tenant auth (\"<token> <tenant> [admin]\" per line; SIGHUP reloads)")
		rate     = fs.Float64("rate-limit", 0, "sustained requests/second allowed per client IP (tenant buckets scale by weight; 0 disables)")
		burst    = fs.Float64("rate-burst", 0, "rate-limit bucket depth (0: 2x rate-limit)")
		shedP99  = fs.Duration("shed-p99", 0, "shed pulls/submits with 429 when request p99 exceeds this bound, low-weight tenants first (0 disables)")
		dataDir  = fs.String("data-dir", "", "journal+snapshot directory; empty disables durability")
		fsync    = fs.String("fsync", "batch", "journal fsync mode: always, batch or never")
		fsyncInt = fs.Duration("fsync-interval", 25*time.Millisecond, "batch-mode fsync cadence")
		snapshot = fs.Int("snapshot-every", 4096, "journal records between compacting snapshots")
		spec     = fs.Bool("speculate", false, "re-execute straggler leases speculatively (first report wins; see docs/SCHEDULING.md)")
		specPct  = fs.Float64("speculate-percentile", 0.95, "duration percentile a lease must exceed (times the factor) to count as a straggler")
		partIdx  = fs.Int("partition-index", 0, "this daemon's partition index in a partitioned deployment (see docs/PARTITIONING.md)")
		partCnt  = fs.Int("partition-count", 0, "total partitions in the deployment (0 or 1: standalone); ids mint in this partition's residue class")
		follow   = fs.String("follow", "", "run as a hot standby replicating the leader at this base URL (requires -data-dir); read-only until promoted")
		replTok  = fs.String("replication-token", "", "bearer token presented to the leader's replication stream (an admin token when the leader runs -auth-tokens)")
		autoProm = fs.Duration("auto-promote", 0, "standby only: promote automatically after this long without leader contact (0: manual promotion via POST /v1/replication/promote)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow != "" && *dataDir == "" {
		return fmt.Errorf("-follow requires -data-dir (the standby's reason to exist is the replicated journal)")
	}
	var pol storage.Policy
	switch *policy {
	case "lru":
		pol = storage.LRU
	case "fifo":
		pol = storage.FIFO
	default:
		return fmt.Errorf("unknown policy %q (want lru or fifo)", *policy)
	}
	mode, err := journal.ParseMode(*fsync)
	if err != nil {
		return err
	}

	// Bind before recovery: a restarting durable daemon is reachable for
	// liveness/readiness probes while it replays, instead of looking dead
	// to its orchestrator for the whole replay.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	wrapper := &swappable{}
	wrapper.store(bootstrapHandler())
	srv := &http.Server{Handler: wrapper}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	svcCfg := gridsched.ServiceConfig{
		Topology: gridsched.ServiceTopology{
			Sites:          *sites,
			WorkersPerSite: *workers,
			CapacityFiles:  *capacity,
			Policy:         pol,
		},
		LeaseTTL:          *lease,
		SweepInterval:     *sweep,
		Shards:            *shards,
		PartitionIndex:    *partIdx,
		PartitionCount:    *partCnt,
		DefaultWeight:     *weight,
		TenantMaxInFlight: *quota,
		DataDir:           *dataDir,
		Fsync:             mode,
		FsyncInterval:     *fsyncInt,
		SnapshotEvery:     *snapshot,
		Speculation:       *spec,
	}
	svcCfg.SpeculationPercentile = *specPct

	var store *middleware.TokenStore
	if *tokens != "" {
		store, err = middleware.LoadTokenFile(*tokens)
		if err != nil {
			_ = srv.Close()
			<-serveErr
			return err
		}
		log.Printf("gridschedd: auth enabled, %d tokens loaded from %s (SIGHUP reloads)", store.Len(), *tokens)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if err := store.Reload(); err != nil {
					log.Printf("gridschedd: token reload failed, previous table kept: %v", err)
					continue
				}
				log.Printf("gridschedd: reloaded %d tokens from %s", store.Len(), *tokens)
			}
		}()
	}
	ingress := metrics.NewIngressCounters()
	// buildIngress fronts h with the full production middleware chain (and
	// -pprof's handlers). tenantWeight may be nil — a follower has no
	// fair-share arbiter to resolve weights against.
	buildIngress := func(h http.Handler, tenantWeight func(string) int64) http.Handler {
		handler := middleware.Ingress(middleware.Config{
			Counters:     ingress,
			Tokens:       store,
			RateLimit:    *rate,
			RateBurst:    *burst,
			ShedP99:      *shedP99,
			TenantWeight: tenantWeight,
		}, h)
		if *pprof {
			// Mount the profiling handlers next to the service without going
			// through http.DefaultServeMux, so -pprof stays strictly opt-in.
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
			handler = mux
		}
		return handler
	}

	// closeApp is what shutdown tears down; in standby mode promotion swaps
	// it from "close the follower" to "close the promoted service".
	var closeApp atomic.Pointer[func()]

	if *follow != "" {
		if err := runFollower(ctx, followerEnv{
			svcCfg: svcCfg, leader: *follow, token: *replTok, autoPromote: *autoProm,
			wrapper: wrapper, buildIngress: buildIngress, closeApp: &closeApp,
		}); err != nil {
			_ = srv.Close()
			<-serveErr
			return err
		}
		log.Printf("gridschedd: standby listening on %s, replicating %s (promote: POST /v1/replication/promote)",
			ln.Addr(), *follow)
	} else {
		recoverStart := time.Now()
		svc, err := gridsched.NewService(svcCfg)
		if err != nil {
			_ = srv.Close()
			<-serveErr
			return err
		}
		if *dataDir != "" {
			log.Printf("gridschedd: recovered %s in %s (fsync=%s, snapshot every %d records)",
				*dataDir, time.Since(recoverStart).Round(time.Millisecond), mode, *snapshot)
		}
		closer := func() { svc.Close() }
		closeApp.Store(&closer)
		wrapper.store(buildIngress(svc.Handler(), svc.TenantWeight))
		log.Printf("gridschedd: listening on %s (%d sites x %d workers, capacity %d files, lease %s)",
			ln.Addr(), *sites, *workers, *capacity, *lease)
		if *partCnt > 1 {
			log.Printf("gridschedd: partition %d of %d (minting ids in residue class %d mod %d; front with gridrouter)",
				*partIdx, *partCnt, *partIdx, *partCnt)
		}
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Closing the service first fails parked long polls fast, so
		// Shutdown does not wait out their poll budgets.
		(*closeApp.Load())()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	err = <-serveErr
	<-done
	(*closeApp.Load())() // idempotent: Close and Follower.Close both tolerate a second call
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
