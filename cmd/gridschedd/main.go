// Command gridschedd runs the networked scheduler service: a daemon that
// accepts whole Bag-of-Tasks workloads as jobs (POST /v1/jobs, one
// algorithm choice per job) and serves them to pull-based remote workers
// (cmd/gridworker, or anything speaking the protocol of
// internal/service/api) with lease-based fault tolerance.
//
// Usage:
//
//	gridschedd -addr :8080 -sites 10 -workers 4 -capacity 6000 -lease 15s
//	gridschedd -pprof   # also serve net/http/pprof under /debug/pprof/
//
// Then, from anywhere:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"name":"sweep","algorithm":"combined.2","workload":{...}}'
//	gridworker -server http://localhost:8080 -n 8
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"gridsched"
	"gridsched/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gridschedd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled. onReady, when
// non-nil, receives the bound address once the listener is up (tests bind
// ":0").
func run(ctx context.Context, args []string, onReady func(addr string)) error {
	fs := flag.NewFlagSet("gridschedd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		sites    = fs.Int("sites", 10, "sites in the worker pool")
		workers  = fs.Int("workers", 4, "worker slots per site")
		capacity = fs.Int("capacity", 6000, "per-site store capacity in files")
		policy   = fs.String("policy", "lru", "store replacement policy: lru or fifo")
		lease    = fs.Duration("lease", 15*time.Second, "worker/assignment lease TTL")
		sweep    = fs.Duration("sweep", 0, "lease sweep interval (0: lease/4)")
		pprof    = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pol storage.Policy
	switch *policy {
	case "lru":
		pol = storage.LRU
	case "fifo":
		pol = storage.FIFO
	default:
		return fmt.Errorf("unknown policy %q (want lru or fifo)", *policy)
	}

	svc, err := gridsched.NewService(gridsched.ServiceConfig{
		Topology: gridsched.ServiceTopology{
			Sites:          *sites,
			WorkersPerSite: *workers,
			CapacityFiles:  *capacity,
			Policy:         pol,
		},
		LeaseTTL:      *lease,
		SweepInterval: *sweep,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := svc.Handler()
	if *pprof {
		// Mount the profiling handlers next to the service without going
		// through http.DefaultServeMux, so -pprof stays strictly opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	log.Printf("gridschedd: listening on %s (%d sites x %d workers, capacity %d files, lease %s)",
		ln.Addr(), *sites, *workers, *capacity, *lease)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Closing the service first fails parked long polls fast, so
		// Shutdown does not wait out their poll budgets.
		svc.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	err = srv.Serve(ln)
	<-done
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
