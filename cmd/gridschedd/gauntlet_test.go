package main

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

// daemon is one gridschedd subprocess under test.
type daemon struct {
	cmd      *exec.Cmd
	stderr   bytes.Buffer
	waitCh   chan error
	waitOnce sync.Once
	waitErr  error
}

// wait reaps the process exactly once; safe to call repeatedly (kill9
// followed by a deferred stop).
func (d *daemon) wait() error {
	d.waitOnce.Do(func() { d.waitErr = <-d.waitCh })
	return d.waitErr
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{waitCh: make(chan error, 1)}
	d.cmd = exec.Command(bin, args...)
	d.cmd.Stdout = &d.stderr
	d.cmd.Stderr = &d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.waitCh <- d.cmd.Wait() }()
	return d
}

// kill9 SIGKILLs the daemon — no shutdown snapshot, no journal sync, the
// exact failure mode the journal exists for. Fails the test if the daemon
// already died on its own (a panic, say).
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	select {
	case err := <-d.waitCh:
		t.Fatalf("daemon died before the kill (%v):\n%s", err, d.stderr.String())
	default:
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.wait()
}

func (d *daemon) stop() {
	_ = d.cmd.Process.Kill()
	_ = d.wait()
}

func waitHealthy(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := cl.Health(ctx)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// gauntletWorkload builds tasks tasks of filesPer files with wrapping file
// ids (neighbors share inputs).
func gauntletWorkload(tasks, filesPer int) *workload.Workload {
	numFiles := tasks*filesPer/2 + filesPer
	w := &workload.Workload{Name: "gauntlet", NumFiles: numFiles}
	for i := 0; i < tasks; i++ {
		task := workload.Task{ID: workload.TaskID(i)}
		for f := 0; f < filesPer; f++ {
			task.Files = append(task.Files, workload.FileID((i*filesPer/2+f)%numFiles))
		}
		w.Tasks = append(w.Tasks, task)
	}
	return w
}

// TestRecoveryGauntletKill9 is the acceptance gauntlet: a real gridschedd
// binary serving an 8-worker sweep from a -data-dir is SIGKILLed at
// arbitrary points several times; every restart must recover from the
// journal, the workers reconnect on their own, and the sweep must end with
// every task completed exactly once — no losses, no duplicated
// completions. CI runs this under -race as the recovery-gauntlet job.
func TestRecoveryGauntletKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess gauntlet skipped in -short")
	}
	const (
		tasks   = 1200
		crashes = 5
		workers = 8
	)

	bin := filepath.Join(t.TempDir(), "gridschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port; the daemon re-binds it on every restart.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dataDir := t.TempDir()
	args := []string{
		"-addr", addr,
		"-sites", "2", "-workers", "4", "-capacity", "200",
		"-lease", "2s",
		"-data-dir", dataDir, "-fsync", "batch", "-snapshot-every", "500",
	}

	cl := client.New("http://"+addr, nil)
	d := startDaemon(t, bin, args...)
	defer func() { d.stop() }()
	waitHealthy(t, cl)

	ctx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	jobID, err := cl.SubmitJob(ctx, "gauntlet", "combined.2", 11, gauntletWorkload(tasks, 4))
	if err != nil {
		t.Fatal(err)
	}

	// Worker fleet: survives outages via ReconnectWait, records every
	// completion the server acknowledged.
	var ackMu sync.Mutex
	acks := make(map[workload.TaskID]int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		site := i % 2
		go func() {
			defer wg.Done()
			_ = cl.RunWorker(ctx, client.WorkerConfig{
				Site:          &site,
				PollWait:      500 * time.Millisecond,
				ReconnectWait: 100 * time.Millisecond,
				Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
					select {
					case <-execCtx.Done():
					case <-time.After(15 * time.Millisecond):
					}
					return nil
				},
				OnReport: func(_ context.Context, a *api.Assignment, outcome string, rep *api.ReportResponse) bool {
					if outcome == api.OutcomeSuccess && rep.Accepted && !rep.Stale && !rep.Cancelled {
						ackMu.Lock()
						acks[a.Task.ID]++
						ackMu.Unlock()
					}
					return false
				},
			})
		}()
	}

	rng := rand.New(rand.NewSource(2))
	for crash := 0; crash < crashes; crash++ {
		time.Sleep(time.Duration(250+rng.Intn(300)) * time.Millisecond)
		st, err := jobStatus(cl, jobID)
		if err == nil && st.State == api.JobCompleted {
			t.Logf("job finished before crash %d; gauntlet still validates recovery of the completed state", crash)
		}
		d.kill9(t)
		d = startDaemon(t, bin, args...)
		waitHealthy(t, cl)
		st, err = jobStatus(cl, jobID)
		if err != nil {
			t.Fatalf("after restart %d, job lost: %v\ndaemon output:\n%s", crash, err, d.stderr.String())
		}
		t.Logf("restart %d: %d/%d completed, %d dispatched, %d expired",
			crash+1, st.Completed, st.Tasks, st.Dispatched, st.Expired)
	}

	// Drain to completion.
	deadline := time.Now().Add(3 * time.Minute)
	var final *api.JobStatus
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job never completed; last status %+v\ndaemon output:\n%s", final, d.stderr.String())
		}
		st, err := jobStatus(cl, jobID)
		if err == nil {
			final = st
			if st.State == api.JobCompleted {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	cancelWorkers()
	wg.Wait()

	// No losses, no duplicates: the completion counter survived every
	// crash exactly, and no task was ever acknowledged twice.
	if final.Completed != tasks {
		t.Fatalf("job completed with %d/%d completions (loss or duplication)\n%+v", final.Completed, tasks, final)
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	dup := 0
	for id, n := range acks {
		if n > 1 {
			dup++
			t.Errorf("task %d acknowledged complete %d times", id, n)
		}
	}
	if dup == 0 && len(acks) == 0 {
		t.Fatal("no completions acknowledged at all; harness broken")
	}
}

// jobStatus reads one job's status, riding out the recovery-replay
// window after a restart: /healthz answers while the WAL is still
// replaying, so a read racing the replay legitimately gets a 503 until
// /readyz flips.
func jobStatus(cl *client.Client, jobID string) (*api.JobStatus, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		js, err := cl.Job(ctx, jobID)
		cancel()
		var ae *client.APIError
		if err != nil && errors.As(err, &ae) &&
			ae.StatusCode == http.StatusServiceUnavailable && time.Now().Before(deadline) {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return js, err
	}
}

// TestDaemonPersistsAcrossCleanRestart covers the flag plumbing end to
// end in-process (no subprocess): a daemon with -data-dir is stopped
// cleanly and restarted; the submitted job must still be there.
func TestDaemonPersistsAcrossCleanRestart(t *testing.T) {
	dataDir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	args := []string{
		"-addr", addr, "-sites", "2", "-workers", "2", "-capacity", "100",
		"-data-dir", dataDir, "-fsync", "always", "-snapshot-every", "8",
	}

	runOnce := func(submit bool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ready := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() { errCh <- run(ctx, args, func(a string) { ready <- a }) }()
		select {
		case <-ready:
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		cl := client.New("http://"+addr, nil)
		if submit {
			if _, err := cl.SubmitJob(ctx, "persist", "rest", 0, gauntletWorkload(10, 3)); err != nil {
				t.Fatal(err)
			}
		} else {
			jctx, jcancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer jcancel()
			jobs, err := cl.Jobs(jctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(jobs) != 1 || jobs[0].Name != "persist" {
				t.Fatalf("restart lost the job: %+v", jobs)
			}
		}
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
	runOnce(true)
	runOnce(false)
}
