package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-policy", "mru"}, nil); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if err := run(context.Background(), []string{"-sites", "0", "-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("accepted zero sites")
	}
}

func TestDaemonServesProtocol(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-sites", "2", "-workers", "2", "-capacity", "100",
			"-lease", "2s", "-policy", "fifo",
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// onReady fires after recovery, so readiness must already report ready.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(ready), "ready") {
		t.Fatalf("readyz: %d %s", resp.StatusCode, ready)
	}

	// Submit a one-task job by name and read it back.
	body := map[string]any{
		"name":      "smoke",
		"algorithm": "workqueue",
		"workload": map[string]any{
			"name":     "tiny",
			"numFiles": 2,
			"tasks":    []map[string]any{{"id": 0, "files": []int{0, 1}}},
		},
	}
	buf, _ := json.Marshal(body)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, sub)
	}
	var subResp struct {
		JobID string `json:"jobId"`
	}
	if err := json.Unmarshal(sub, &subResp); err != nil || subResp.JobID == "" {
		t.Fatalf("submit response %s: %v", sub, err)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, subResp.JobID))
	if err != nil {
		t.Fatal(err)
	}
	job, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(job), `"state":"running"`) {
		t.Fatalf("job status: %s", job)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(met), "gridsched_jobs_submitted_total 1") {
		t.Fatalf("metrics: %s", met)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
