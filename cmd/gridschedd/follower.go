package main

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"gridsched"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
)

// followerEnv is everything runFollower needs from run(): the service
// configuration a promotion will use, the replication flags, and the
// hooks into the serving machinery (handler swap, shutdown).
type followerEnv struct {
	svcCfg      gridsched.ServiceConfig
	leader      string
	token       string
	autoPromote time.Duration

	wrapper      *swappable
	buildIngress func(h http.Handler, tenantWeight func(string) int64) http.Handler
	closeApp     *atomic.Pointer[func()]
}

// runFollower starts the hot standby: replicate the leader's journal,
// serve the read-only surface, and flip to leader on POST
// /v1/replication/promote (or automatically after -auto-promote without
// leader contact). Promotion runs the full recovery path over the
// replicated data dir and swaps the promoted service's handler in; the
// listener, its port, and the ingress chain all stay.
func runFollower(ctx context.Context, env followerEnv) error {
	fl, err := gridsched.NewFollower(env.svcCfg, gridsched.FollowerConfig{
		Leader: env.leader,
		Token:  env.token,
	})
	if err != nil {
		return err
	}
	closer := func() { fl.Close() }
	env.closeApp.Store(&closer)

	// promote is shared by the HTTP endpoint and the auto-promote watcher;
	// Follower.Promote single-flights, so exactly one caller installs the
	// promoted service.
	promote := func(reason string) (*gridsched.Service, error) {
		start := time.Now()
		svc, err := fl.Promote()
		if err != nil {
			return nil, err
		}
		newCloser := func() { svc.Close() }
		env.closeApp.Store(&newCloser)
		env.wrapper.store(env.buildIngress(svc.Handler(), svc.TenantWeight))
		log.Printf("gridschedd: promoted to leader in %s (%s), serving at lsn %d",
			time.Since(start).Round(time.Millisecond), reason, svc.ReplicationLastLSN())
		return svc, nil
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/replication/promote", func(w http.ResponseWriter, r *http.Request) {
		svc, err := promote("requested via API")
		if err != nil {
			code := http.StatusInternalServerError
			var se *service.Error
			if errors.As(err, &se) {
				code = se.Code
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(api.PromoteResponse{
			Role: api.RoleLeader, LastLSN: svc.ReplicationLastLSN(),
		})
	})
	mux.Handle("/", fl.Handler())
	env.wrapper.store(env.buildIngress(mux, nil))

	if env.autoPromote > 0 {
		go watchLeader(ctx, fl, env.autoPromote, promote)
	}
	return nil
}

// watchLeader promotes the standby once the leader has been silent —
// no frame, snapshot, or heartbeat — for longer than grace. The stream
// heartbeats every second, so grace is effectively the leader lease.
func watchLeader(ctx context.Context, fl *gridsched.Follower, grace time.Duration, promote func(string) (*gridsched.Service, error)) {
	poll := grace / 4
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if fl.Promoted() {
			return
		}
		if err := fl.Halted(); err != nil {
			// A halted stream means divergence or a dead local journal,
			// not a dead leader; auto-promoting that state could fork
			// history against a live leader. Promotion stays available as
			// an explicit operator decision via the API.
			log.Printf("gridschedd: auto-promotion disabled, follower halted: %v", err)
			return
		}
		silent := time.Since(fl.LastContact())
		if silent < grace {
			continue
		}
		if _, err := promote("leader silent for " + silent.Round(time.Millisecond).String()); err != nil {
			log.Printf("gridschedd: auto-promotion failed: %v", err)
		}
		return
	}
}
