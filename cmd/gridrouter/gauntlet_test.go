package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/partition"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

// daemon is one gridschedd partition subprocess under test (the same
// harness shape as cmd/gridschedd's recovery gauntlet).
type daemon struct {
	cmd      *exec.Cmd
	stderr   bytes.Buffer
	waitCh   chan error
	waitOnce sync.Once
	waitErr  error
}

func (d *daemon) wait() error {
	d.waitOnce.Do(func() { d.waitErr = <-d.waitCh })
	return d.waitErr
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{waitCh: make(chan error, 1)}
	d.cmd = exec.Command(bin, args...)
	d.cmd.Stdout = &d.stderr
	d.cmd.Stderr = &d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.waitCh <- d.cmd.Wait() }()
	return d
}

// kill9 SIGKILLs the partition — no shutdown snapshot, no journal sync.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	select {
	case err := <-d.waitCh:
		t.Fatalf("partition died before the kill (%v):\n%s", err, d.stderr.String())
	default:
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.wait()
}

func (d *daemon) stop() {
	_ = d.cmd.Process.Kill()
	_ = d.wait()
}

func waitHealthy(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := cl.Health(ctx)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("endpoint never became healthy")
}

func gauntletWorkload(tasks, filesPer int) *workload.Workload {
	numFiles := tasks*filesPer/2 + filesPer
	w := &workload.Workload{Name: "partition-gauntlet", NumFiles: numFiles}
	for i := 0; i < tasks; i++ {
		task := workload.Task{ID: workload.TaskID(i)}
		for f := 0; f < filesPer; f++ {
			task.Files = append(task.Files, workload.FileID((i*filesPer/2+f)%numFiles))
		}
		w.Tasks = append(w.Tasks, task)
	}
	return w
}

// submissionFor finds an idempotency key hashing to the wanted partition,
// so the gauntlet can plant one job on each side deterministically.
func submissionFor(want, count int) string {
	for i := 0; ; i++ {
		sid := fmt.Sprintf("gauntlet-%d-%d", want, i)
		if partition.SubmitOwner(sid, count) == want {
			return sid
		}
	}
}

// TestPartitionGauntletKill9 is the scale-out acceptance gauntlet: two
// real gridschedd partitions behind a live gridrouter serve a worker
// fleet; partition 1 is SIGKILLed mid-traffic. The surviving partition
// must keep dispatching throughout the outage, the restarted partition
// must recover its job from the journal, and the sweep must end with
// every task of both jobs completed exactly once — no lost acked
// submissions, no duplicated completions. CI runs this under -race as
// the partition-gauntlet job.
func TestPartitionGauntletKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess gauntlet skipped in -short")
	}
	const (
		parts   = 2
		tasks   = 500 // per job, one job per partition
		workers = 6
	)

	bin := filepath.Join(t.TempDir(), "gridschedd")
	build := exec.Command("go", "build", "-o", bin, "gridsched/cmd/gridschedd")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build gridschedd: %v\n%s", err, out)
	}

	// Reserve ports: partitions re-bind theirs across restarts.
	addrs := make([]string, parts)
	daemons := make([]*daemon, parts)
	partArgs := make([][]string, parts)
	for i := 0; i < parts; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
		partArgs[i] = []string{
			"-addr", addrs[i],
			"-sites", "2", "-workers", "4", "-capacity", "200",
			"-lease", "2s",
			"-data-dir", t.TempDir(), "-fsync", "batch", "-snapshot-every", "500",
			"-partition-index", fmt.Sprint(i), "-partition-count", fmt.Sprint(parts),
		}
		daemons[i] = startDaemon(t, bin, partArgs[i]...)
		defer daemons[i].stop()
		waitHealthy(t, client.New("http://"+addrs[i], nil))
	}

	// The router runs in-process (it is the unit under test here).
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	ready := make(chan string, 1)
	routerErr := make(chan error, 1)
	go func() {
		routerErr <- run(rctx, []string{
			"-addr", "127.0.0.1:0",
			"-partitions", "http://" + addrs[0] + ",http://" + addrs[1],
		}, func(a string) { ready <- a })
	}()
	var routerAddr string
	select {
	case routerAddr = <-ready:
	case err := <-routerErr:
		t.Fatalf("router exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router never became ready")
	}
	cl := client.New("http://"+routerAddr, nil)
	waitHealthy(t, cl)

	// One job per partition, planted by idempotency key.
	ctx, cancelWorkers := context.WithCancel(context.Background())
	defer cancelWorkers()
	jobIDs := make([]string, parts)
	for i := 0; i < parts; i++ {
		id, err := cl.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
			Name: fmt.Sprintf("gauntlet-%d", i), Algorithm: "combined.2", Seed: 11,
			Workload:     gauntletWorkload(tasks, 4),
			SubmissionID: submissionFor(i, parts),
		})
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := partition.Owner(id, parts); owner != i {
			t.Fatalf("job %q landed on partition %d, want %d", id, owner, i)
		}
		jobIDs[i] = id
	}

	// Worker fleet through the router: survives the outage via
	// ReconnectWait (the router answers 503 for a dead partition, which
	// is transient to the worker loop).
	var ackMu sync.Mutex
	acks := make(map[string]int) // jobID/taskID -> acked completions
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		site := i % 2
		go func() {
			defer wg.Done()
			_ = cl.RunWorker(ctx, client.WorkerConfig{
				Site:          &site,
				PollWait:      500 * time.Millisecond,
				ReconnectWait: 100 * time.Millisecond,
				RebalanceWait: time.Second,
				Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
					select {
					case <-execCtx.Done():
					case <-time.After(10 * time.Millisecond):
					}
					return nil
				},
				OnReport: func(_ context.Context, a *api.Assignment, outcome string, rep *api.ReportResponse) bool {
					if outcome == api.OutcomeSuccess && rep.Accepted && !rep.Stale && !rep.Cancelled {
						ackMu.Lock()
						acks[a.JobID+"/"+fmt.Sprint(a.Task.ID)]++
						ackMu.Unlock()
					}
					return false
				},
			})
		}()
	}

	// Let traffic flow, then SIGKILL partition 1 mid-dispatch.
	time.Sleep(600 * time.Millisecond)
	daemons[1].kill9(t)

	// The surviving partition keeps dispatching during the outage: its
	// job's completion count must keep rising while partition 1 is down.
	st0, err := jobStatus(cl, jobIDs[0])
	if err != nil {
		t.Fatalf("surviving partition's job unreadable during outage: %v", err)
	}
	progressed := st0.State == api.JobCompleted
	deadline := time.Now().Add(20 * time.Second)
	for !progressed && time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		st, err := jobStatus(cl, jobIDs[0])
		if err != nil {
			t.Fatalf("surviving partition's job unreadable during outage: %v", err)
		}
		progressed = st.State == api.JobCompleted || st.Completed > st0.Completed
	}
	if !progressed {
		t.Fatalf("partition 0 made no progress while partition 1 was down (stuck at %d/%d)", st0.Completed, st0.Tasks)
	}
	// And partition 1's job is explicitly unavailable, not silently gone.
	if _, err := jobStatusNoRetry(cl, jobIDs[1]); err == nil {
		t.Fatal("dead partition's job answered during the outage")
	}

	// Restart partition 1: journal replay must bring its job back.
	daemons[1] = startDaemon(t, bin, partArgs[1]...)
	waitHealthy(t, client.New("http://"+addrs[1], nil))
	st1, err := jobStatus(cl, jobIDs[1])
	if err != nil {
		t.Fatalf("restarted partition lost its job: %v\npartition output:\n%s", err, daemons[1].stderr.String())
	}
	t.Logf("after restart: job1 %d/%d completed, %d dispatched", st1.Completed, st1.Tasks, st1.Dispatched)

	// Drain both jobs to completion.
	finish := time.Now().Add(3 * time.Minute)
	finals := make([]*api.JobStatus, parts)
	for i, id := range jobIDs {
		for {
			if time.Now().After(finish) {
				t.Fatalf("job %d never completed; last %+v", i, finals[i])
			}
			st, err := jobStatus(cl, id)
			if err == nil {
				finals[i] = st
				if st.State == api.JobCompleted {
					break
				}
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	cancelWorkers()
	wg.Wait()

	// Zero lost acked submissions, exactly-once completions.
	for i, st := range finals {
		if st.Completed != tasks {
			t.Fatalf("job %d completed with %d/%d (loss or duplication): %+v", i, st.Completed, tasks, st)
		}
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	for key, n := range acks {
		if n > 1 {
			t.Errorf("task %s acknowledged complete %d times", key, n)
		}
	}
	if len(acks) == 0 {
		t.Fatal("no completions acknowledged at all; harness broken")
	}
}

// jobStatus reads one job's status through the router, riding out the
// recovery-replay window (503 while a partition replays its WAL).
func jobStatus(cl *client.Client, jobID string) (*api.JobStatus, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		js, err := jobStatusNoRetry(cl, jobID)
		var ae *client.APIError
		if err != nil && errors.As(err, &ae) &&
			ae.StatusCode == http.StatusServiceUnavailable && time.Now().Before(deadline) {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return js, err
	}
}

func jobStatusNoRetry(cl *client.Client, jobID string) (*api.JobStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return cl.Job(ctx, jobID)
}
