// Command gridrouter fronts a horizontally partitioned gridschedd
// deployment (docs/PARTITIONING.md): N independent daemons, each started
// with -partition-index i -partition-count N, behind one stateless
// router that forwards every request to the partition owning its key.
//
// Usage:
//
//	gridrouter -addr :8080 -partitions http://10.0.0.1:8081,http://10.0.0.2:8081
//
// The -partitions list is positional: the i-th URL must be the daemon
// running with -partition-index i. Routing is pure arithmetic on the
// request (ids carry their partition's residue; submissions hash their
// idempotency key), so any number of router replicas can run behind a
// plain load balancer with no coordination.
//
// Cross-partition reads are aggregated: GET /v1/jobs, /v1/tenants, and
// /v1/workers merge every partition's answer (marking unreachable
// partitions in the X-Gridsched-Partitions-Down header instead of
// failing the read), /metrics federates each partition's exposition with
// a partition label, /readyz is ready only when every partition is, and
// GET /v1/partitions serves the live topology that partition-aware
// clients use to bypass the router on id-keyed traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridsched/internal/partition"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "gridrouter:", err)
		os.Exit(1)
	}
}

// run starts the router and blocks until ctx is cancelled. onReady, when
// non-nil, receives the bound address (tests bind ":0").
func run(ctx context.Context, args []string, onReady func(addr string)) error {
	fs := flag.NewFlagSet("gridrouter", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "listen address")
		parts = fs.String("partitions", "", "comma-separated partition base URLs, in partition-index order")
		aggTO = fs.Duration("aggregate-timeout", 10*time.Second, "per-partition time budget for aggregated reads and probes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parts == "" {
		return fmt.Errorf("-partitions is required (comma-separated base URLs in partition-index order)")
	}
	var urls []string
	for _, u := range strings.Split(*parts, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := partition.New(partition.Config{Partitions: urls, AggregateTimeout: *aggTO})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("gridrouter: listening on %s, routing %d partitions: %s", ln.Addr(), len(urls), strings.Join(urls, " "))
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	err = <-serveErr
	<-done
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
