// Command gridsim runs a single configured grid simulation and prints a
// summary: makespan, transfer counts, and the per-site data-server
// breakdown.
//
// Usage:
//
//	gridsim -alg combined.2 -tasks 6000 -sites 10 -workers 1 -capacity 6000
//	gridsim -alg "task-centric storage affinity" -capacity 3000 -json
//	gridsim -trace workload.json -alg rest
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gridsched"
	"gridsched/internal/trace"
	"gridsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	var (
		alg       = fs.String("alg", "combined.2", "scheduling algorithm (see -algs)")
		listAlgs  = fs.Bool("algs", false, "list algorithm names and exit")
		tasks     = fs.Int("tasks", 6000, "coadd tasks (ignored with -trace)")
		tracePath = fs.String("trace", "", "JSON workload trace to simulate instead of synthetic coadd")
		coaddSeed = fs.Int64("coadd-seed", gridsched.DefaultCoaddSeed, "synthetic trace seed")
		sites     = fs.Int("sites", 10, "participating sites")
		workers   = fs.Int("workers", 1, "workers per site")
		capacity  = fs.Int("capacity", 6000, "data-server capacity in files")
		fileMB    = fs.Float64("file-mb", 25, "file size in MB")
		seed      = fs.Int64("seed", 1, "topology + worker-speed seed")
		asJSON    = fs.Bool("json", false, "emit the full result as JSON")
		traceOut  = fs.String("events", "", "write the run's event timeline as JSON lines to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listAlgs {
		for _, name := range gridsched.AlgorithmNames() {
			fmt.Println(name)
		}
		return nil
	}

	var w *gridsched.Workload
	var err error
	if *tracePath != "" {
		w, err = workload.LoadFile(*tracePath)
	} else {
		w, err = gridsched.NewCoaddWorkload(*coaddSeed, *tasks)
	}
	if err != nil {
		return err
	}

	cfg := gridsched.SimulationConfig{
		Workload:       w,
		Sites:          *sites,
		WorkersPerSite: *workers,
		CapacityFiles:  *capacity,
		FileSizeBytes:  *fileMB * 1e6,
		SpeedSeed:      *seed,
	}
	cfg.Topology.Seed = *seed

	var traceFlush func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jw := trace.NewJSONWriter(f)
		cfg.Tracer = jw
		traceFlush = jw.Flush
	}

	res, err := gridsched.RunSimulation(cfg, *alg)
	if err != nil {
		return err
	}
	if traceFlush != nil {
		if err := traceFlush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	m := res.Metrics
	fmt.Printf("workload:            %s (%d tasks, %d files)\n", w.Name, len(w.Tasks), w.NumFiles)
	fmt.Printf("algorithm:           %s\n", res.Scheduler)
	fmt.Printf("makespan:            %.0f minutes (%.1f days)\n", res.MakespanMinutes(), res.MakespanMinutes()/60/24)
	fmt.Printf("file transfers:      %d total, %d redundant (%.1f GB fetched)\n",
		m.TotalFileTransfers(), m.RedundantTransfers(), m.TotalBytesFetched()/1e9)
	fmt.Printf("cancelled replicas:  %d\n", m.CancelledExecutions)
	fmt.Printf("kernel events:       %d\n", res.WallEvents)
	fmt.Println()
	fmt.Println("site  requests  transfers  wait(h)  fetch(h)  executed  completed")
	for i := range m.Sites {
		s := &m.Sites[i]
		fmt.Printf("%4d  %8d  %9d  %7.1f  %8.1f  %8d  %9d\n",
			i, s.Requests, s.FileTransfers, s.WaitTimeSum/3600, s.TransferTimeSum/3600, s.TasksExecuted, s.TasksCompleted)
	}
	return nil
}
