package main

import (
	"path/filepath"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-tasks", "120", "-sites", "3", "-capacity", "1500", "-alg", "rest"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run([]string{"-tasks", "80", "-sites", "2", "-capacity", "1500", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunListAlgorithms(t *testing.T) {
	if err := run([]string{"-algs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	if err := run([]string{"-tasks", "50", "-alg", "bogus"}); err == nil {
		t.Fatal("accepted bogus algorithm")
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	if err := run([]string{"-trace", "/definitely/not/here.json"}); err == nil {
		t.Fatal("accepted missing trace file")
	}
}

func TestRunWritesEventTimeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := run([]string{"-tasks", "60", "-sites", "2", "-capacity", "1500", "-events", path}); err != nil {
		t.Fatal(err)
	}
}
