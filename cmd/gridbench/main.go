// Command gridbench runs the repository's performance benchmark suite
// outside `go test` and records the results as JSON, seeding the perf
// trajectory the ROADMAP asks for (BENCH_PR2.json and successors).
//
// Usage:
//
//	gridbench                  # run everything, write BENCH_PR10.json
//	gridbench -bench Figure    # filter by regexp
//	gridbench -out bench.json  # choose the output file
//	gridbench -baseline BENCH_PR8.json -max-regress 0.25
//	                           # regression guard: exit nonzero if any
//	                           # benchmark present in the baseline got
//	                           # more than 25% slower (ns/op)
//	gridbench -bench Partitioned \
//	  -speedup 'ServiceDispatchPartitioned/parts=1,ServiceDispatchPartitioned/parts=2,1.7'
//	                           # scaling gate: exit nonzero unless the
//	                           # candidate ran at least 1.7x the ops/sec
//	                           # of the base benchmark in this run
//
// Each entry records the benchmark name, iterations, ns/op, bytes/op and
// allocs/op, plus enough environment metadata to compare runs. The
// benchmark bodies are shared with the `go test -bench` entry points
// (internal/benchsuite), which CI smoke-runs with -benchtime=1x, so the
// recorded trajectory cannot drift from what the tests measure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"gridsched/internal/benchsuite"
	"gridsched/internal/journal"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

type report struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"numCPU"`
	Results   []result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
}

// run executes the selected benchmarks and writes the JSON report.
func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	var (
		out      = fs.String("out", "BENCH_PR10.json", "output JSON file")
		filter   = fs.String("bench", "", "regexp selecting benchmarks to run (default: all)")
		baseline = fs.String("baseline", "", "baseline JSON to compare against (regression guard)")
		maxReg   = fs.Float64("max-regress", 0.25, "with -baseline: fail when ns/op regresses by more than this fraction")
		speedup  = fs.String("speedup", "", "scaling gate 'base,candidate,factor': fail unless candidate >= factor x base ops/sec in this run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	benchmarks := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Figure4", benchsuite.Experiment("figure4")},
		{"Figure6", benchsuite.Experiment("figure6")},
		{"SchedulerRequest/overlap", benchsuite.SchedulerRequest("overlap")},
		{"SchedulerRequest/rest", benchsuite.SchedulerRequest("rest")},
		{"SchedulerRequest/combined", benchsuite.SchedulerRequest("combined")},
		{"EndToEndSimulation", benchsuite.EndToEndSimulation},
		{"WorkloadGeneration", benchsuite.WorkloadGeneration},
		{"ServiceDispatchInProcess", benchsuite.ServiceDispatchInProcess},
		{"ServiceDispatchIngress", benchsuite.ServiceDispatchIngress},
		{"ServiceDispatchContended", benchsuite.ServiceDispatchContended},
		{"ServiceDispatchSpeculative", benchsuite.ServiceDispatchSpeculative},
		{"ServiceDispatchParallel/shards=1", benchsuite.ServiceDispatchParallel(1)},
		{"ServiceDispatchParallel/shards=8", benchsuite.ServiceDispatchParallel(8)},
		{"ServiceDispatchJournaled/batch", benchsuite.ServiceDispatchJournaled(journal.SyncBatch)},
		{"ServiceDispatchJournaled/always", benchsuite.ServiceDispatchJournaled(journal.SyncAlways)},
		{"ServiceDispatchWire/jsonpoll", benchsuite.ServiceDispatchWireJSON},
		{"ServiceDispatchWire/stream", benchsuite.ServiceDispatchWireStream},
		{"ServiceDispatchPartitioned/parts=1", benchsuite.ServiceDispatchPartitioned(1)},
		{"ServiceDispatchPartitioned/parts=2", benchsuite.ServiceDispatchPartitioned(2)},
		{"ServiceDispatchPartitioned/parts=4", benchsuite.ServiceDispatchPartitioned(4)},
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -bench regexp: %w", err)
		}
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks {
		if re != nil && !re.MatchString(bm.name) {
			continue
		}
		r := testing.Benchmark(bm.fn)
		res := result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(stdout, "%-28s %10d iter %14.0f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", *out)
	if *baseline != "" {
		if err := compareBaseline(stdout, *baseline, rep.Results, *maxReg); err != nil {
			return err
		}
	}
	if *speedup != "" {
		return checkSpeedup(stdout, *speedup, rep.Results)
	}
	return nil
}

// checkSpeedup is the scale-out gate: with -speedup 'base,candidate,factor'
// the candidate benchmark must have run at least factor times the ops/sec
// (equivalently, at most 1/factor the ns/op) of the base benchmark in the
// same invocation. Both must have been selected by -bench.
func checkSpeedup(stdout *os.File, spec string, results []result) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-speedup wants 'base,candidate,factor', got %q", spec)
	}
	factor, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || factor <= 0 {
		return fmt.Errorf("-speedup factor %q is not a positive number", parts[2])
	}
	byName := make(map[string]result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	base, ok := byName[strings.TrimSpace(parts[0])]
	if !ok || base.NsPerOp <= 0 {
		return fmt.Errorf("-speedup base %q did not run (check -bench filter)", parts[0])
	}
	cand, ok := byName[strings.TrimSpace(parts[1])]
	if !ok || cand.NsPerOp <= 0 {
		return fmt.Errorf("-speedup candidate %q did not run (check -bench filter)", parts[1])
	}
	got := base.NsPerOp / cand.NsPerOp
	fmt.Fprintf(stdout, "speedup %s vs %s: %.2fx (gate: >=%.2fx)\n", cand.Name, base.Name, got, factor)
	if got < factor {
		return fmt.Errorf("speedup gate failed: %s ran %.2fx the ops/sec of %s, need >=%.2fx",
			cand.Name, got, base.Name, factor)
	}
	return nil
}

// compareBaseline is the CI regression guard: every benchmark present in
// both the baseline and this run must stay within (1+maxRegress)× the
// baseline ns/op. Benchmarks only on one side are reported and skipped —
// new benchmarks get a baseline when the committed file is next refreshed.
func compareBaseline(stdout *os.File, path string, results []result, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	failures := 0
	for _, r := range results {
		b, ok := baseBy[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Fprintf(stdout, "%-28s not in baseline; skipped\n", r.Name)
			continue
		}
		ratio := r.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if ratio > maxRegress {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Fprintf(stdout, "%-28s %+7.1f%% vs baseline (%.0f -> %.0f ns/op, limit +%.0f%%) %s\n",
			r.Name, ratio*100, b.NsPerOp, r.NsPerOp, maxRegress*100, verdict)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% versus %s", failures, maxRegress*100, path)
	}
	return nil
}
