package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesReport exercises the full driver with a filter that matches
// no benchmark, which keeps the test fast while covering flag parsing, the
// report structure, and file output.
func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-bench", "^nothing-matches$", "-out", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.GoVersion == "" || rep.NumCPU < 1 {
		t.Fatalf("missing environment metadata: %+v", rep)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("filter matched %d benchmarks, want 0", len(rep.Results))
	}
}

func TestRunRejectsBadRegexp(t *testing.T) {
	if err := run([]string{"-bench", "("}, os.Stdout); err == nil {
		t.Fatal("accepted malformed regexp")
	}
}
