package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesReport exercises the full driver with a filter that matches
// no benchmark, which keeps the test fast while covering flag parsing, the
// report structure, and file output.
func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-bench", "^nothing-matches$", "-out", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.GoVersion == "" || rep.NumCPU < 1 {
		t.Fatalf("missing environment metadata: %+v", rep)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("filter matched %d benchmarks, want 0", len(rep.Results))
	}
}

func TestRunRejectsBadRegexp(t *testing.T) {
	if err := run([]string{"-bench", "("}, os.Stdout); err == nil {
		t.Fatal("accepted malformed regexp")
	}
}

func writeBaseline(t *testing.T, results []result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	data, err := json.Marshal(report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaseline pins the regression-guard arithmetic without running
// any real benchmark.
func TestCompareBaseline(t *testing.T) {
	base := writeBaseline(t, []result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
	})
	within := []result{
		{Name: "A", NsPerOp: 1200},   // +20% <= 25%: fine
		{Name: "B", NsPerOp: 900},    // faster: fine
		{Name: "New", NsPerOp: 5000}, // not in baseline: skipped
	}
	if err := compareBaseline(os.Stdout, base, within, 0.25); err != nil {
		t.Fatalf("within-threshold run failed the guard: %v", err)
	}
	over := []result{{Name: "A", NsPerOp: 1300}} // +30% > 25%
	if err := compareBaseline(os.Stdout, base, over, 0.25); err == nil {
		t.Fatal("30% regression passed a 25% guard")
	}
	if err := compareBaseline(os.Stdout, filepath.Join(t.TempDir(), "missing.json"), over, 0.25); err == nil {
		t.Fatal("missing baseline file not reported")
	}
}
