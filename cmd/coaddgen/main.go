// Command coaddgen generates and characterizes synthetic workload traces.
//
// Usage:
//
//	coaddgen -kind coadd -tasks 6000 -out coadd.json   # generate + save
//	coaddgen -kind coadd-full                          # characterize only
//	coaddgen -kind zipf -tasks 2000                    # other generators
//	coaddgen -cdf                                      # Figure 1/3 data
package main

import (
	"flag"
	"fmt"
	"os"

	"gridsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coaddgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coaddgen", flag.ContinueOnError)
	var (
		kind  = fs.String("kind", "coadd", "workload kind: coadd, coadd-full, zipf, geometric, uniform")
		tasks = fs.Int("tasks", 0, "task count (0 = kind default)")
		seed  = fs.Int64("seed", workload.DefaultCoaddSeed, "generator seed")
		out   = fs.String("out", "", "write the JSON trace to this path")
		stats = fs.Bool("stats", true, "print Table 2 style statistics")
		cdf   = fs.Bool("cdf", false, "print the reference CDF (Figure 1/3 data)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := generate(*kind, *tasks, *seed)
	if err != nil {
		return err
	}

	if *stats {
		s := workload.ComputeStats(w)
		fmt.Printf("workload:              %s\n", w.Name)
		fmt.Printf("tasks:                 %d\n", s.Tasks)
		fmt.Printf("total files:           %d\n", s.TotalFiles)
		fmt.Printf("files/task min:        %d\n", s.MinFilesPerTask)
		fmt.Printf("files/task max:        %d\n", s.MaxFilesPerTask)
		fmt.Printf("files/task avg:        %.4f\n", s.AvgFilesPerTask)
		fmt.Printf("refs/file avg:         %.4f\n", s.AvgRefsPerFile)
		fmt.Printf("%%files with >=6 refs:  %.1f\n", workload.PercentWithAtLeast(w, 6))
	}
	if *cdf {
		fmt.Println("# min_refs  pct_files_with_at_least")
		for _, pt := range workload.ReferenceCDF(w) {
			fmt.Printf("%d %.3f\n", pt.MinRefs, pt.Percent)
		}
	}
	if *out != "" {
		if err := w.SaveFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	return nil
}

func generate(kind string, tasks int, seed int64) (*workload.Workload, error) {
	switch kind {
	case "coadd":
		cfg := workload.CoaddSmallConfig(seed)
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return workload.GenerateCoadd(cfg)
	case "coadd-full":
		cfg := workload.CoaddFullConfig(seed)
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return workload.GenerateCoadd(cfg)
	case "zipf":
		cfg := workload.ZipfConfig{Seed: seed, Tasks: 2000, Files: 20000, MinFiles: 20, MaxFiles: 120, S: 1.5}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return workload.GenerateZipf(cfg)
	case "geometric":
		cfg := workload.GeometricConfig{Seed: seed, Tasks: 2000, Datasets: 40, FilesPerSet: 60, PrivateFiles: 5, P: 0.25}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return workload.GenerateGeometric(cfg)
	case "uniform":
		cfg := workload.UniformConfig{Seed: seed, Tasks: 2000, Files: 20000, MinFiles: 20, MaxFiles: 120}
		if tasks > 0 {
			cfg.Tasks = tasks
		}
		return workload.GenerateUniform(cfg)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
