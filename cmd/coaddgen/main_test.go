package main

import (
	"path/filepath"
	"testing"

	"gridsched/internal/workload"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []string{"coadd", "coadd-full", "zipf", "geometric", "uniform"} {
		w, err := generate(kind, 200, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(w.Tasks) != 200 {
			t.Fatalf("%s: %d tasks", kind, len(w.Tasks))
		}
	}
	if _, err := generate("nope", 10, 1); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestRunStatsAndCDF(t *testing.T) {
	if err := run([]string{"-kind", "coadd", "-tasks", "150", "-cdf"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSavesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-kind", "zipf", "-tasks", "100", "-out", path}); err != nil {
		t.Fatal(err)
	}
	w, err := workload.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks) != 100 {
		t.Fatalf("loaded %d tasks", len(w.Tasks))
	}
}
