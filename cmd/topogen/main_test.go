package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSummaryAndRoutes(t *testing.T) {
	if err := run([]string{"-seed", "5", "-routes", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := run([]string{"-seed", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Nodes []json.RawMessage `json:"nodes"`
		Links []json.RawMessage `json:"links"`
		Sites []int             `json:"sites"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Sites) != 96 || len(dump.Nodes) == 0 || len(dump.Links) == 0 {
		t.Fatalf("dump shape: %d sites, %d nodes, %d links", len(dump.Sites), len(dump.Nodes), len(dump.Links))
	}
}
