// Command topogen generates Tiers-style hierarchical grid topologies and
// dumps them as JSON or a human-readable summary.
//
// Usage:
//
//	topogen -seed 1                 # summary of the default 96-site topology
//	topogen -seed 2 -json topo.json # full graph dump
//	topogen -routes 10              # route diagnostics for 10 spread sites
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gridsched/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "generator seed")
		jsonPath = fs.String("json", "", "write the full graph as JSON to this path")
		routes   = fs.Int("routes", 0, "print route diagnostics for N spread sites")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := topology.DefaultTiersConfig(*seed)
	topo, err := topology.GenerateTiers(cfg)
	if err != nil {
		return err
	}
	g := topo.Graph

	kindCount := map[topology.NodeKind]int{}
	for _, n := range g.Nodes {
		kindCount[n.Kind]++
	}
	var bwMin, bwMax float64
	for i, l := range g.Links {
		if i == 0 || l.Bandwidth < bwMin {
			bwMin = l.Bandwidth
		}
		if l.Bandwidth > bwMax {
			bwMax = l.Bandwidth
		}
	}
	fmt.Printf("seed:        %d\n", *seed)
	fmt.Printf("nodes:       %d (wan %d, man %d, lan %d, sites %d)\n",
		len(g.Nodes), kindCount[topology.KindWAN], kindCount[topology.KindMAN],
		kindCount[topology.KindLAN], kindCount[topology.KindSite])
	fmt.Printf("links:       %d (bandwidth %.1f..%.1f Mbit/s)\n", len(g.Links), bwMin*8/1e6, bwMax*8/1e6)
	fmt.Printf("file server: node %d\n", topo.FileServer)
	fmt.Printf("scheduler:   node %d\n", topo.Scheduler)

	if *routes > 0 {
		n := *routes
		if n > len(topo.Sites) {
			n = len(topo.Sites)
		}
		fmt.Println("\nsite  node  hops  latency(ms)  bottleneck(Mbit/s)")
		for i := 0; i < n; i++ {
			site := topo.Sites[i*len(topo.Sites)/n]
			r, err := g.RouteBetween(site, topo.FileServer)
			if err != nil {
				return err
			}
			bottleneck := 0.0
			for j, lid := range r.Links {
				bw := g.Links[lid].Bandwidth
				if j == 0 || bw < bottleneck {
					bottleneck = bw
				}
			}
			fmt.Printf("%4d  %4d  %4d  %11.2f  %18.2f\n",
				i, site, len(r.Links), r.Latency*1000, bottleneck*8/1e6)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		dump := struct {
			Nodes      []topology.Node   `json:"nodes"`
			Links      []topology.Link   `json:"links"`
			Sites      []topology.NodeID `json:"sites"`
			FileServer topology.NodeID   `json:"fileServer"`
			Scheduler  topology.NodeID   `json:"scheduler"`
		}{g.Nodes, g.Links, topo.Sites, topo.FileServer, topo.Scheduler}
		if err := enc.Encode(dump); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	return nil
}
