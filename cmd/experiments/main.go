// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                      # every artifact, paper scale
//	experiments -run figure4,figure7          # selected artifacts
//	experiments -run figure6 -tasks 600 -seeds 1,2   # reduced scale
//	experiments -run all -csv results/        # also write CSV per artifact
//
// Paper scale (6,000 tasks, 5 topology seeds) takes a few minutes on a
// laptop; pass -tasks/-seeds to shrink.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gridsched/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs   = fs.String("run", "all", "comma-separated artifact ids, or 'all' (available: "+strings.Join(experiment.IDs(), ", ")+")")
		tasks    = fs.Int("tasks", 6000, "coadd tasks to simulate")
		seedsRaw = fs.String("seeds", "1,2,3,4,5", "comma-separated topology seeds to average over")
		par      = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csvDir   = fs.String("csv", "", "directory to also write <id>.csv files into")
		plotOut  = fs.Bool("plot", false, "also draw each figure as a terminal chart")
		list     = fs.Bool("list", false, "list artifact ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiment.IDs() {
			def, _ := experiment.Lookup(id)
			fmt.Printf("%-20s %s\n", id, def.Description)
		}
		return nil
	}

	seeds, err := parseSeeds(*seedsRaw)
	if err != nil {
		return err
	}
	opts := experiment.Options{Tasks: *tasks, Seeds: seeds, Parallelism: *par}

	ids := experiment.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}

	// Shared sweeps (figure4+figure5, figure6+table3) emit both reports;
	// skip an id whose report was already produced by its sibling.
	emitted := make(map[string]bool)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if emitted[id] {
			continue
		}
		def, err := experiment.Lookup(id)
		if err != nil {
			return err
		}
		start := time.Now()
		reports, err := def.Run(opts)
		if err != nil {
			return err
		}
		for _, rep := range reports {
			if emitted[rep.ID] {
				continue
			}
			emitted[rep.ID] = true
			if err := rep.Render(os.Stdout); err != nil {
				return err
			}
			if *plotOut {
				if _, err := rep.RenderPlot(os.Stdout); err != nil {
					return err
				}
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, rep); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func parseSeeds(raw string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}

func writeCSV(dir string, rep *experiment.Report) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return rep.WriteCSV(f)
}
