package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleArtifactReducedScale(t *testing.T) {
	if err := run([]string{"-run", "table2", "-tasks", "500", "-seeds", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepWithCSVAndPlot(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "figure8", "-tasks", "200", "-seeds", "1", "-csv", dir, "-plot"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure8.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestRunSharedSweepEmitsBothReportsOnce(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "figure4,figure5", "-tasks", "200", "-seeds", "1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"figure4", "figure5"} {
		if _, err := os.Stat(filepath.Join(dir, id+".csv")); err != nil {
			t.Fatalf("%s.csv not written: %v", id, err)
		}
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	if err := run([]string{"-run", "figure99"}); err == nil {
		t.Fatal("accepted unknown artifact")
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := parseSeeds(""); err == nil {
		t.Fatal("accepted empty seeds")
	}
	if _, err := parseSeeds("x"); err == nil {
		t.Fatal("accepted non-numeric seed")
	}
}
