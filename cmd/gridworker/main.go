// Command gridworker joins a gridschedd server as one or more pull-based
// workers. Each worker registers, long-polls for leased task assignments,
// heartbeats while "executing" (a configurable per-file busy-sleep stands
// in for real work — embedders wanting real execution use
// internal/service/client.RunWorker with their own Execute), and reports
// outcomes.
//
// Shutdown is graceful: on SIGINT or SIGTERM the workers stop pulling new
// work, finish (up to -drain) and report the tasks they hold, deregister,
// and exit — so an orchestrated restart hands no lease to the expiry
// sweeper. A second signal aborts immediately.
//
// Usage:
//
//	gridworker -server http://localhost:8080 -n 8
//	gridworker -server http://localhost:8080 -n 4 -site 2 -task-time 50ms -exit-when-idle
//	gridworker -server http://localhost:8080 -n 8 -drain 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("gridworker: signal received; draining in-flight tasks (second signal aborts)")
		stop() // restore default handling: a second signal kills the process
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gridworker", flag.ContinueOnError)
	var (
		server  = fs.String("server", "http://localhost:8080", "gridschedd base URL")
		n       = fs.Int("n", 1, "number of workers to run")
		site    = fs.Int("site", -1, "pin workers to this site (-1: server balances)")
		taskDur = fs.Duration("task-time", 0, "simulated execution time per task file (e.g. 5ms)")
		poll    = fs.Duration("poll", 2*time.Second, "long-poll budget per pull")
		oneShot = fs.Bool("exit-when-idle", false, "exit once no jobs remain open")
		quiet   = fs.Bool("quiet", false, "suppress per-task logging")
		reconn  = fs.Duration("reconnect", 0, "retry interval across server outages (0: fail fast)")
		drain   = fs.Duration("drain", 30*time.Second, "on SIGINT/SIGTERM, let an in-flight task finish and report for up to this long (0: abort it immediately)")
		token   = fs.String("auth-token", "", "bearer token for a gridschedd running with -auth-tokens")
		codec   = fs.String("codec", "json", "wire codec: json, binary (strict, no silent fallback), or auto (negotiate)")
		batch   = fs.Int("batch", 0, "streaming lease channel pipeline depth (0: classic long-poll pulls)")
		tags    = fs.String("tags", "", "comma-separated capability tags to advertise (e.g. gpu,avx512)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("-n = %d", *n)
	}
	if *batch < 0 {
		return fmt.Errorf("-batch = %d", *batch)
	}

	cl := client.New(*server, nil)
	cl.AuthToken = *token
	if err := cl.SetCodec(*codec); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make(chan error, *n)
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := client.WorkerConfig{
				PollWait:      *poll,
				Tags:          splitTags(*tags),
				StreamBatch:   *batch,
				ReconnectWait: *reconn,
				DrainGrace:    *drain,
				Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
					if d := *taskDur * time.Duration(len(a.Task.Files)); d > 0 {
						select {
						case <-execCtx.Done():
							return nil
						case <-time.After(d):
						}
					}
					if !*quiet {
						log.Printf("worker site %d/%d: task %d of job %s done (%d files, %d staged)",
							ref.Site, ref.Worker, a.Task.ID, a.JobID, len(a.Task.Files), a.Staged)
					}
					return nil
				},
			}
			if *site >= 0 {
				cfg.Site = site
			}
			if *oneShot {
				cfg.OnIdle = func(_ context.Context, resp *api.PullResponse) (bool, error) {
					return resp.OpenJobs == 0, nil
				}
			}
			if err := cl.RunWorker(ctx, cfg); err != nil {
				// Surface immediately: with other workers still running,
				// wg.Wait() may not return for a long time.
				log.Printf("worker: %v", err)
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// splitTags parses the -tags flag, dropping empty elements so a trailing
// comma is harmless.
func splitTags(s string) []string {
	var tags []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	return tags
}
