package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "0"}); err == nil {
		t.Fatal("accepted -n 0")
	}
}

func TestWorkersDrainJobAndExitWhenIdle(t *testing.T) {
	svc, err := service.New(service.Config{
		Topology: service.Topology{Sites: 2, WorkersPerSite: 2, CapacityFiles: 50},
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	w := &workload.Workload{Name: "drain", NumFiles: 8}
	for i := 0; i < 30; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 8)},
		})
	}
	jobID, err := svc.Submit("drain", "workqueue", w, core.NewWorkqueue(w))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = run(ctx, []string{
		"-server", ts.URL,
		"-n", "3",
		"-poll", "100ms",
		"-quiet",
		"-exit-when-idle",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Completed != 30 {
		t.Fatalf("job after workers exited: %+v", st)
	}
}
