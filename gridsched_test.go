package gridsched

import (
	"testing"
)

func TestFacadeQuickstartPath(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks) != 200 {
		t.Fatalf("tasks = %d", len(w.Tasks))
	}
	res, err := RunSimulation(SimulationConfig{Workload: w, Sites: 4, CapacityFiles: 2000}, "combined.2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TasksCompleted != 200 || res.MakespanMinutes() <= 0 {
		t.Fatalf("result = %+v", res.Metrics)
	}
}

func TestFacadeAllAlgorithmNamesRun(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AlgorithmNames() {
		res, err := RunSimulation(SimulationConfig{Workload: w, Sites: 3, CapacityFiles: 1500}, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.TasksCompleted != 100 {
			t.Fatalf("%s: completed %d", name, res.Metrics.TasksCompleted)
		}
	}
}

func TestFacadeParsesWindowedNames(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimulationConfig{Workload: w, Sites: 2, CapacityFiles: 1500}
	for _, name := range []string{"overlap.3", "rest.5", "combined-literal", "combined-literal.2"} {
		s, err := NewScheduler(name, w, cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s: nil scheduler", name)
		}
	}
	if _, err := NewScheduler("bogus", w, cfg, 1); err == nil {
		t.Fatal("accepted bogus algorithm")
	}
	if _, err := NewScheduler("rest.0", w, cfg, 1); err == nil {
		t.Fatal("accepted rest.0")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 14 {
		t.Fatalf("ids = %v", ids)
	}
	reports, err := RunExperiment("table2", ExperimentOptions{Tasks: 6000, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].ID != "table2" {
		t.Fatalf("reports = %+v", reports)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestFacadeFullWorkload(t *testing.T) {
	w, err := NewCoaddFullWorkload(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks) != 500 {
		t.Fatalf("tasks = %d", len(w.Tasks))
	}
}
