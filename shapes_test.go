package gridsched

// Shape-regression tests: reduced-scale versions of the qualitative claims
// EXPERIMENTS.md validates at paper scale. If one of these breaks, the
// reproduction story broke — not just a number.

import (
	"testing"

	"gridsched/internal/experiment"
)

func shapeOpts() experiment.Options {
	return experiment.Options{Tasks: 800, Seeds: []int64{1, 2}, Parallelism: 8}
}

func cellMean(t *testing.T, sw *experiment.Sweep, point int, alg string, metric func(*experiment.CellResults) []float64) float64 {
	t.Helper()
	for ai, name := range sw.Algorithms {
		if name == alg {
			vals := metric(sw.Cells[point][ai])
			var sum float64
			for _, v := range vals {
				sum += v
			}
			return sum / float64(len(vals))
		}
	}
	t.Fatalf("algorithm %q not in sweep %v", alg, sw.Algorithms)
	return 0
}

// TestShapeCapacityHurtsTaskCentric is Figure 4/5's core claim: premature
// scheduling decisions make storage affinity fetch far more redundantly
// than worker-centric rest at a tight capacity, and tight capacity hurts
// storage affinity more than it hurts rest.
func TestShapeCapacityHurtsTaskCentric(t *testing.T) {
	sw, err := experiment.CapacitySweep(shapeOpts(), []int{600, 6000})
	if err != nil {
		t.Fatal(err)
	}
	redundant := (*experiment.CellResults).RedundantTransfers
	saTight := cellMean(t, sw, 0, "task-centric storage affinity", redundant)
	restTight := cellMean(t, sw, 0, "rest", redundant)
	if saTight < 1.5*restTight {
		t.Fatalf("storage affinity redundancy %.0f not clearly above rest %.0f at tight capacity", saTight, restTight)
	}
	makespans := (*experiment.CellResults).Makespans
	saLoss := cellMean(t, sw, 0, "task-centric storage affinity", makespans) /
		cellMean(t, sw, 1, "task-centric storage affinity", makespans)
	restLoss := cellMean(t, sw, 0, "rest", makespans) / cellMean(t, sw, 1, "rest", makespans)
	if saLoss <= restLoss-0.02 {
		t.Fatalf("tight capacity hurt rest (x%.3f) more than storage affinity (x%.3f)", restLoss, saLoss)
	}
}

// TestShapeOverlapTransfersMoreThanRest is Figure 5's metric claim: not
// counting what still has to move (overlap) costs transfers vs rest.
func TestShapeOverlapTransfersMoreThanRest(t *testing.T) {
	sw, err := experiment.CapacitySweep(shapeOpts(), []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	redundant := (*experiment.CellResults).RedundantTransfers
	overlap := cellMean(t, sw, 0, "overlap", redundant)
	rest := cellMean(t, sw, 0, "rest", redundant)
	if overlap <= rest {
		t.Fatalf("overlap redundancy %.0f not above rest %.0f", overlap, rest)
	}
}

// TestShapeCombinedLiteralIsBroken pins the combined-formula ablation: the
// literal typeset formula must be dramatically worse than the intended
// normalized sum (that is the evidence it is a typo).
func TestShapeCombinedLiteralIsBroken(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 800)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimulationConfig{Workload: w, Sites: 6, CapacityFiles: 3000}
	intended, err := RunSimulation(cfg, "combined")
	if err != nil {
		t.Fatal(err)
	}
	literal, err := RunSimulation(cfg, "combined-literal")
	if err != nil {
		t.Fatal(err)
	}
	if literal.Metrics.TotalFileTransfers() < 2*intended.Metrics.TotalFileTransfers() {
		t.Fatalf("literal formula transfers %d not clearly above intended %d",
			literal.Metrics.TotalFileTransfers(), intended.Metrics.TotalFileTransfers())
	}
}

// TestShapeMoreSitesShrinkMakespan is Figure 7's claim for the
// worker-centric strategies.
func TestShapeMoreSitesShrinkMakespan(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	small := SimulationConfig{Workload: w, Sites: 4, CapacityFiles: 3000}
	large := SimulationConfig{Workload: w, Sites: 12, CapacityFiles: 3000}
	a, err := RunSimulation(small, "rest.2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimulation(large, "rest.2")
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics.MakespanSec >= a.Metrics.MakespanSec {
		t.Fatalf("12 sites (%.0f min) not faster than 4 sites (%.0f min)",
			b.MakespanMinutes(), a.MakespanMinutes())
	}
}

// TestShapeFileSizeScalesMakespan is Figure 8's claim: makespan grows with
// file size, roughly linearly.
func TestShapeFileSizeScalesMakespan(t *testing.T) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 600)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mb float64) float64 {
		cfg := SimulationConfig{Workload: w, Sites: 4, CapacityFiles: 3000, FileSizeBytes: mb * 1e6}
		res, err := RunSimulation(cfg, "combined.2")
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.MakespanSec
	}
	m5, m25, m50 := mk(5), mk(25), mk(50)
	if !(m5 < m25 && m25 < m50) {
		t.Fatalf("makespans not increasing with file size: %v %v %v", m5, m25, m50)
	}
}
