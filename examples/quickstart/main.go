// Quickstart: generate a small slice of the Coadd workload, simulate it
// under every scheduling strategy, and compare makespan and data movement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridsched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A 1,000-task slice of the synthetic Coadd trace (the paper's
	// evaluation workload at reduced scale).
	w, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks over %d files\n\n", len(w.Tasks), w.NumFiles)

	// 2. A grid of 6 sites with 2 workers each and modest storage.
	cfg := gridsched.SimulationConfig{
		Workload:       w,
		Sites:          6,
		WorkersPerSite: 2,
		CapacityFiles:  3000,
	}

	// 3. Run every algorithm on the same grid and compare.
	fmt.Printf("%-32s %14s %12s %12s\n", "algorithm", "makespan (min)", "transfers", "redundant")
	for _, name := range gridsched.AlgorithmNames() {
		res, err := gridsched.RunSimulation(cfg, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %14.0f %12d %12d\n",
			name, res.MakespanMinutes(),
			res.Metrics.TotalFileTransfers(), res.Metrics.RedundantTransfers())
	}
	fmt.Println("\ndata-aware strategies (everything except workqueue) should show")
	fmt.Println("far fewer transfers and shorter makespans than workqueue. How")
	fmt.Println("worker-centric strategies compare to the task-centric baseline")
	fmt.Println("depends on capacity and workers per site — run")
	fmt.Println("examples/coadd-sweep or cmd/experiments for the full picture.")
}
