// Churn: the paper motivates worker-centric scheduling with overloaded,
// unreliable resource suppliers (§1, citing PlanetLab's "seven deadly
// sins"). This example injects worker failures — each worker alternates
// exponential up/down periods, and an execution in flight when its worker
// dies is lost and requeued — and compares how pull-based strategies and
// the task-centric baseline degrade as availability drops.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"gridsched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("churn: ")

	w, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 800)
	if err != nil {
		log.Fatal(err)
	}

	const meanDownSec = 7200 // two-hour outages
	algorithms := []string{"task-centric storage affinity", "rest", "combined.2"}

	fmt.Printf("%-14s", "availability")
	for _, a := range algorithms {
		fmt.Printf("  %28s", a)
	}
	fmt.Println()
	baselines := make(map[string]float64)
	for _, avail := range []float64{1.0, 0.9, 0.7, 0.5} {
		fmt.Printf("%13.0f%%", avail*100)
		for _, name := range algorithms {
			cfg := gridsched.SimulationConfig{
				Workload:      w,
				Sites:         6,
				CapacityFiles: 3000,
			}
			if avail < 1 {
				cfg.ChurnMeanDownSec = meanDownSec
				cfg.ChurnMeanUpSec = meanDownSec * avail / (1 - avail)
			}
			res, err := gridsched.RunSimulation(cfg, name)
			if err != nil {
				log.Fatal(err)
			}
			mk := res.MakespanMinutes()
			if avail == 1.0 {
				baselines[name] = mk
			}
			fmt.Printf("  %15.0f min (x%.2f)", mk, mk/baselines[name])
		}
		fmt.Println()
	}
	fmt.Println("\nthe multiplier shows degradation vs. full availability: the")
	fmt.Println("pull-based strategies reassign lost work naturally, while the")
	fmt.Println("task-centric baseline's up-front assignment amplifies outages.")
}
