// Coadd capacity sweep: a reduced-scale rerun of the paper's Figure 4/5
// experiment — how data-server storage capacity changes makespan and file
// transfers for each strategy, and where the task-centric baseline's
// premature scheduling decisions start to hurt.
//
//	go run ./examples/coadd-sweep
package main

import (
	"fmt"
	"log"
	"os"

	"gridsched/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coadd-sweep: ")

	opts := experiment.Options{
		Tasks: 1200,          // paper: 6000
		Seeds: []int64{1, 2}, // paper: 5 topology seeds
	}
	// The paper sweeps capacities 3000..30000 against 53k distinct files;
	// this reduced workload has ~11k files over 10 sites, so the
	// capacities shrink proportionally to keep eviction in play.
	sw, err := experiment.CapacitySweep(opts, []int{600, 1200, 3000, 6000})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range []*experiment.Report{
		experiment.Figure4Style(sw),
		experiment.Figure5Style(sw),
	} {
		if err := rep.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("the storage-affinity column should degrade at the smallest")
	fmt.Println("capacity (premature scheduling decisions, paper §3.1) while")
	fmt.Println("the worker-centric columns stay nearly flat (paper §5.4).")
}
