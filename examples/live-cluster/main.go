// Live cluster: the same worker-centric scheduler that drives the
// simulator, running on real goroutines. Each worker goroutine pulls a
// task when idle, stages inputs through its site's store (with a synthetic
// staging latency standing in for the wide-area fetch), executes a real
// function, and replica cancellation flows through contexts.
//
//	go run ./examples/live-cluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/live"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("live-cluster: ")

	w, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 300)
	if err != nil {
		log.Fatal(err)
	}

	var checksum atomic.Uint64
	cfg := live.Config{
		Sites:          4,
		WorkersPerSite: 3,
		CapacityFiles:  2500,
		Policy:         storage.LRU,
		// Stand-in for the wide-area fetch: 50us per missing file.
		StageDelay: func(missing int) time.Duration {
			return time.Duration(missing) * 50 * time.Microsecond
		},
		// The "computation": fold the task's file ids into a checksum.
		Execute: func(ctx context.Context, at core.WorkerRef, task workload.Task) error {
			var sum uint64
			for _, f := range task.Files {
				sum += uint64(f)
			}
			checksum.Add(sum)
			return nil
		},
	}

	for _, name := range []string{"workqueue", "rest", "combined.2"} {
		sched, err := gridsched.NewScheduler(name, w, gridsched.SimulationConfig{
			Workload:       w,
			Sites:          cfg.Sites,
			WorkersPerSite: cfg.WorkersPerSite,
			CapacityFiles:  cfg.CapacityFiles,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		cluster, err := live.NewCluster(cfg, w, sched)
		if err != nil {
			log.Fatal(err)
		}
		checksum.Store(0)
		sum, err := cluster.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s completed=%d transfers=%d cancelled=%d wall=%v checksum=%d\n",
			name, sum.TasksCompleted, sum.FileTransfers, sum.CancelledExecutions,
			sum.Wall.Round(time.Millisecond), checksum.Load())
	}
	fmt.Println("\nnote: fewer transfers = better data reuse; the checksum is")
	fmt.Println("identical across strategies because every task runs exactly once.")
}
