// Data-mining workload: the paper's introduction motivates worker-centric
// scheduling with data-mining and image-processing applications whose tasks
// share a hot corpus. This example builds a Zipf-popularity Bag-of-Tasks
// (some files are much hotter than others), a geometric dataset workload
// (Ranganathan-Foster style), and a uniform no-locality control, then shows
// how much each strategy benefits from data reuse on each.
//
//	go run ./examples/datamining
package main

import (
	"fmt"
	"log"

	"gridsched"
	"gridsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datamining: ")

	zipf, err := workload.GenerateZipf(workload.ZipfConfig{
		Seed: 1, Tasks: 800, Files: 12000, MinFiles: 30, MaxFiles: 90, S: 1.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	geo, err := workload.GenerateGeometric(workload.GeometricConfig{
		Seed: 1, Tasks: 800, Datasets: 30, FilesPerSet: 50, PrivateFiles: 4, P: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := workload.GenerateUniform(workload.UniformConfig{
		Seed: 1, Tasks: 800, Files: 12000, MinFiles: 30, MaxFiles: 90,
	})
	if err != nil {
		log.Fatal(err)
	}

	algorithms := []string{"workqueue", "task-centric storage affinity", "overlap", "rest", "combined.2"}
	for _, w := range []*gridsched.Workload{zipf, geo, uniform} {
		s := workload.ComputeStats(w)
		fmt.Printf("\n== %s: %d tasks, %d files, %.1f refs/file ==\n",
			w.Name, s.Tasks, s.TotalFiles, s.AvgRefsPerFile)
		fmt.Printf("%-32s %14s %12s\n", "algorithm", "makespan (min)", "transfers")
		for _, name := range algorithms {
			cfg := gridsched.SimulationConfig{
				Workload:       w,
				Sites:          6,
				WorkersPerSite: 2,
				CapacityFiles:  2500,
			}
			res, err := gridsched.RunSimulation(cfg, name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-32s %14.0f %12d\n", name, res.MakespanMinutes(), res.Metrics.TotalFileTransfers())
		}
	}
	fmt.Println("\ndata-aware strategies win where reuse exists (zipf, geometric);")
	fmt.Println("on the uniform control all strategies converge, since there is")
	fmt.Println("no locality to exploit.")
}
