// Scheduler service: gridschedd embedded in one process, with two
// workloads resident at once — a Coadd sweep under the paper's combined.2
// strategy and a uniform-sharing job under plain workqueue — and a fleet of
// protocol workers (register → long-poll pull → heartbeat → report)
// draining them concurrently over the HTTP/JSON protocol served on a real
// loopback listener. The same wiring works across machines: run
// cmd/gridschedd and point cmd/gridworker at it.
//
//	go run ./examples/gridschedd-service
package main

import (
	"context"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridschedd-service: ")

	svc, err := gridsched.NewService(gridsched.ServiceConfig{
		Topology: gridsched.ServiceTopology{
			Sites:          4,
			WorkersPerSite: 2,
			CapacityFiles:  2500,
		},
		LeaseTTL: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("daemon listening on %s", base)

	cl := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Job 1: a Coadd sweep under the paper's headline strategy.
	coadd, err := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 200)
	if err != nil {
		log.Fatal(err)
	}
	// Tenant "astro" carries twice the fair-share weight of "analytics":
	// over the contended 8-worker pool the service dispatches the two jobs
	// at a 2:1 rate while both have runnable work.
	coaddJob, err := cl.SubmitTenantJob(ctx, "astro", 2, "coadd-sweep", "combined.2", 1, coadd)
	if err != nil {
		log.Fatal(err)
	}

	// Job 2: a uniform-sharing workload under the FIFO baseline.
	uniform, err := workload.GenerateUniform(workload.UniformConfig{
		Seed: 7, Tasks: 150, Files: 1500, MinFiles: 4, MaxFiles: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	uniformJob, err := cl.SubmitTenantJob(ctx, "analytics", 1, "uniform", "workqueue", 2, uniform)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted jobs %s (combined.2, tenant astro w=2) and %s (workqueue, tenant analytics w=1)",
		coaddJob, uniformJob)

	// A fleet of 8 protocol workers; each "execution" hashes the task's
	// file ids for a few hundred microseconds.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := cl.RunWorker(ctx, client.WorkerConfig{
				PollWait: 500 * time.Millisecond,
				StageDelay: func(staged int) time.Duration {
					return 30 * time.Microsecond * time.Duration(staged)
				},
				Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
					sum := uint64(0)
					for _, f := range a.Task.Files {
						sum = sum*1099511628211 + uint64(f)
					}
					_ = sum
					select {
					case <-execCtx.Done():
					case <-time.After(200 * time.Microsecond):
					}
					return nil
				},
				OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
					return resp.OpenJobs == 0, nil
				},
			})
			if err != nil {
				log.Printf("worker: %v", err)
			}
		}()
	}
	wg.Wait()

	for _, id := range []string{coaddJob, uniformJob} {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("job %s (%s, %s): %d/%d tasks, %d transfers, %d expired leases, state %s",
			st.ID, st.Name, st.Algorithm, st.Completed, st.Tasks, st.Transfers, st.Expired, st.State)
	}
	tenants, err := cl.Tenants(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, ts := range tenants {
		log.Printf("tenant %q: %d dispatches, achieved share %.2f over the last window",
			ts.Tenant, ts.Dispatches, ts.ShareAchieved)
	}
}
