// Package gridsched is a worker-centric scheduling library for
// data-intensive Bag-of-Tasks grid applications, reproducing Ko, Morales
// and Gupta, "New Worker-Centric Scheduling Strategies for Data-Intensive
// Grid Applications" (Middleware 2007).
//
// The package is the public facade over the implementation packages:
//
//   - workload generation (the synthetic Coadd trace and generic
//     Zipf/geometric/uniform generators),
//   - the schedulers (worker-centric Overlap/Rest/Combined with
//     ChooseTask(n), task-centric storage affinity, FIFO workqueue),
//   - the discrete-event grid simulator (sites, data servers, max-min fair
//     wide-area network, Top500-sampled worker speeds),
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	w, _ := gridsched.NewCoaddWorkload(gridsched.DefaultCoaddSeed, 1000)
//	res, _ := gridsched.RunSimulation(gridsched.SimulationConfig{Workload: w}, "combined.2")
//	fmt.Println(res.MakespanMinutes())
package gridsched

import (
	"fmt"
	"sort"

	"gridsched/internal/core"
	"gridsched/internal/experiment"
	"gridsched/internal/grid"
	"gridsched/internal/service"
	"gridsched/internal/topology"
	"gridsched/internal/workload"
)

// Aliases exposing the library's primary types under the public package
// name. (The implementation lives under internal/; the aliases are the
// supported names.)
type (
	// SimulationConfig configures one simulated run (Table 1 defaults
	// apply to zero fields).
	SimulationConfig = grid.Config
	// Result is one run's outcome: makespan, transfer counts, per-site
	// data-server metrics.
	Result = grid.Result
	// Workload is an immutable Bag-of-Tasks description.
	Workload = workload.Workload
	// Task is one unit of work.
	Task = workload.Task
	// Scheduler is the strategy contract shared by all algorithms.
	Scheduler = core.Scheduler
	// ExperimentOptions scales a paper experiment.
	ExperimentOptions = experiment.Options
	// Report is a rendered experiment artifact.
	Report = experiment.Report
	// TopologyConfig parameterizes the Tiers-style topology generator.
	TopologyConfig = topology.TiersConfig
	// CoaddConfig parameterizes the synthetic Coadd workload generator.
	CoaddConfig = workload.CoaddConfig
)

// DefaultCoaddSeed reproduces the paper-matching canonical trace.
const DefaultCoaddSeed = workload.DefaultCoaddSeed

// NewCoaddWorkload generates the synthetic Coadd trace with the given seed,
// truncated to the first tasks tasks (the paper evaluates the first 6,000).
func NewCoaddWorkload(seed int64, tasks int) (*Workload, error) {
	cfg := workload.CoaddSmallConfig(seed)
	if tasks > 0 {
		cfg.Tasks = tasks
	}
	return workload.GenerateCoadd(cfg)
}

// NewCoaddFullWorkload generates the full-application-scale trace (44,000
// tasks by default) used by the paper's Figure 1.
func NewCoaddFullWorkload(seed int64, tasks int) (*Workload, error) {
	cfg := workload.CoaddFullConfig(seed)
	if tasks > 0 {
		cfg.Tasks = tasks
	}
	return workload.GenerateCoadd(cfg)
}

// AlgorithmNames lists the scheduling strategies accepted by NewScheduler
// and RunSimulation, in the paper's order plus the workqueue control.
func AlgorithmNames() []string {
	names := []string{"task-centric storage affinity"}
	for _, m := range []core.Metric{core.MetricOverlap, core.MetricRest, core.MetricCombined} {
		names = append(names, m.String())
	}
	names = append(names, "rest.2", "combined.2", "workqueue")
	return names
}

// NewScheduler constructs a scheduling strategy by name for the given run
// configuration. Recognized names are those of AlgorithmNames, plus
// "rest.N"/"combined.N"/"overlap.N" for any randomization window N, and
// "combined-literal" for the ablation variant. seed drives the randomized
// ChooseTask(n) draw.
func NewScheduler(name string, w *Workload, cfg SimulationConfig, seed int64) (Scheduler, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return SchedulerFactory()(name, w, service.Topology{
		Sites:          cfg.Sites,
		WorkersPerSite: cfg.WorkersPerSite,
		CapacityFiles:  cfg.CapacityFiles,
		Policy:         cfg.Policy,
	}, seed)
}

// parseMetricName resolves "rest", "combined.2", "overlap.3", ...
func parseMetricName(name string) (core.Metric, int, error) {
	base := name
	n := 1
	if i := lastDot(name); i >= 0 {
		var parsed int
		if _, err := fmt.Sscanf(name[i+1:], "%d", &parsed); err == nil && parsed >= 1 {
			base = name[:i]
			n = parsed
		}
	}
	switch base {
	case "overlap":
		return core.MetricOverlap, n, nil
	case "rest":
		return core.MetricRest, n, nil
	case "combined":
		return core.MetricCombined, n, nil
	case "combined-literal":
		return core.MetricCombinedLiteral, n, nil
	default:
		return 0, 0, fmt.Errorf("gridsched: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// RunSimulation runs one simulation of cfg.Workload under the named
// algorithm and returns its metrics.
func RunSimulation(cfg SimulationConfig, algorithm string) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	sched, err := NewScheduler(algorithm, cfg.Workload, cfg, cfg.SpeedSeed+1)
	if err != nil {
		return nil, err
	}
	return grid.Run(cfg, sched)
}

// RunExperiment regenerates a paper artifact by id ("figure4", "table3",
// "ablation-eviction", ...). Shared sweeps emit multiple reports: the
// requested artifact is first.
func RunExperiment(id string, opts ExperimentOptions) ([]*Report, error) {
	def, err := experiment.Lookup(id)
	if err != nil {
		return nil, err
	}
	return def.Run(opts)
}

// ExperimentIDs lists the reproducible artifacts, sorted.
func ExperimentIDs() []string {
	ids := experiment.IDs()
	sort.Strings(ids)
	return ids
}

// Service aliases: the gridschedd scheduler daemon (internal/service) that
// serves workloads to remote pull-based workers over HTTP/JSON.
type (
	// Service is the embeddable scheduler daemon behind cmd/gridschedd.
	Service = service.Service
	// ServiceConfig parameterizes a Service.
	ServiceConfig = service.Config
	// ServiceTopology fixes the worker pool a Service schedules over.
	ServiceTopology = service.Topology
)

// NewService builds a gridschedd daemon. A nil cfg.NewScheduler is filled
// with SchedulerFactory, so jobs submitted over HTTP may pick any algorithm
// of AlgorithmNames.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.NewScheduler == nil {
		cfg.NewScheduler = SchedulerFactory()
	}
	return service.New(cfg)
}

// Replication aliases: the hot-standby follower behind gridschedd -follow
// (docs/REPLICATION.md).
type (
	// Follower is a hot standby replicating a leader's journal; Promote
	// turns it into a live Service via the recovery path.
	Follower = service.Follower
	// FollowerConfig parameterizes the replication client of a Follower.
	FollowerConfig = service.FollowerConfig
)

// NewFollower builds a hot standby for the leader named in fcfg. cfg is
// the service configuration the standby will run with once promoted; as
// in NewService, a nil cfg.NewScheduler is filled with SchedulerFactory.
func NewFollower(cfg ServiceConfig, fcfg FollowerConfig) (*Follower, error) {
	if cfg.NewScheduler == nil {
		cfg.NewScheduler = SchedulerFactory()
	}
	return service.NewFollower(cfg, fcfg)
}

// SchedulerFactory resolves the algorithm names of AlgorithmNames (plus the
// "rest.N"/"combined.N"/"overlap.N" and "combined-literal" variants) into
// schedulers for service jobs.
func SchedulerFactory() service.SchedulerFactory {
	return func(algorithm string, w *workload.Workload, topo service.Topology, seed int64) (core.Scheduler, error) {
		switch algorithm {
		case "task-centric storage affinity", "storage-affinity":
			return core.NewStorageAffinity(w, core.StorageAffinityConfig{
				Sites:          topo.Sites,
				WorkersPerSite: topo.WorkersPerSite,
				CapacityFiles:  topo.CapacityFiles,
				Policy:         topo.Policy,
				MaxReplicas:    3,
			})
		case "workqueue":
			return core.NewWorkqueue(w), nil
		}
		metric, n, err := parseMetricName(algorithm)
		if err != nil {
			return nil, err
		}
		return core.NewWorkerCentric(w, core.WorkerCentricConfig{Metric: metric, ChooseN: n, Seed: seed})
	}
}
