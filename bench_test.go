// Benchmarks regenerating every table and figure of the paper at reduced
// scale (600 tasks, one topology seed) so `go test -bench=.` finishes in
// minutes. Paper-scale numbers come from `cmd/experiments` (6,000 tasks,
// 5 seeds) and are recorded in EXPERIMENTS.md.
package gridsched

import (
	"testing"

	"gridsched/internal/core"
	"gridsched/internal/experiment"
)

// benchOpts is the reduced scale shared by all experiment benchmarks.
func benchOpts() ExperimentOptions {
	return ExperimentOptions{Tasks: 600, Seeds: []int64{1}, Parallelism: 4}
}

// benchExperiment runs one registry artifact b.N times.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reports, err := RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 || len(reports[0].Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkTable2 regenerates the workload characteristics (paper Table 2)
// at full 6,000-task scale (workload generation only; no simulation).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := RunExperiment("table2", ExperimentOptions{Tasks: 6000, Seeds: []int64{1}})
		if err != nil {
			b.Fatal(err)
		}
		_ = reports
	}
}

// BenchmarkFigure1 regenerates the full-Coadd reference CDF (paper Fig. 1).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }

// BenchmarkFigure3 regenerates the Coadd-6000 reference CDF (paper Fig. 3)
// at full scale (workload generation only).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("figure3", ExperimentOptions{Tasks: 6000, Seeds: []int64{1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the makespan-vs-capacity sweep (paper
// Fig. 4; the sweep also yields Fig. 5).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkFigure5 regenerates the transfers-vs-capacity sweep (paper
// Fig. 5).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates the makespan-vs-workers sweep (paper
// Fig. 6; the sweep also yields Table 3).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkTable3 regenerates the per-site data-server breakdown (paper
// Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFigure7 regenerates the makespan-vs-sites sweep (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkFigure8 regenerates the makespan-vs-file-size sweep (paper
// Fig. 8).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkAblationCombined compares the Combined formula as intended vs.
// as typeset (DESIGN.md, "Combined formula").
func BenchmarkAblationCombined(b *testing.B) { benchExperiment(b, "ablation-combined") }

// BenchmarkAblationChooseTask sweeps the ChooseTask(n) window (§4.3).
func BenchmarkAblationChooseTask(b *testing.B) { benchExperiment(b, "ablation-choosetask") }

// BenchmarkAblationEviction compares LRU vs FIFO replacement at the
// tightest paper capacity.
func BenchmarkAblationEviction(b *testing.B) { benchExperiment(b, "ablation-eviction") }

// BenchmarkAblationChurn sweeps worker availability with failure injection
// (the overloaded suppliers motivating worker-centric scheduling, §1).
func BenchmarkAblationChurn(b *testing.B) { benchExperiment(b, "ablation-churn") }

// BenchmarkAblationReplication toggles Ranganathan-Foster proactive data
// replication under tight capacity (§3.1).
func BenchmarkAblationReplication(b *testing.B) { benchExperiment(b, "ablation-replication") }

// --- micro-benchmarks of the core scheduling path ---

// BenchmarkSchedulerRequest measures one worker-centric scheduling request
// (CalculateWeight over every pending task + ChooseTask) on the full
// 6,000-task queue.
func BenchmarkSchedulerRequest(b *testing.B) {
	for _, name := range []string{"overlap", "rest", "combined"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := NewCoaddWorkload(DefaultCoaddSeed, 6000)
			if err != nil {
				b.Fatal(err)
			}
			cfg := SimulationConfig{Workload: w}
			b.ResetTimer()
			i := 0
			for i < b.N {
				b.StopTimer()
				sched, err := NewScheduler(name, w, cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				sched.AttachSite(0)
				b.StartTimer()
				// Drain up to 1000 requests per scheduler instance.
				for j := 0; j < 1000 && i < b.N; j++ {
					task, st := sched.NextFor(core.WorkerRef{Site: 0})
					if st != core.Assigned {
						break
					}
					i++
					sched.NoteBatch(0, task.Files, task.Files, nil)
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures synthetic Coadd trace generation at
// evaluation scale.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewCoaddWorkload(DefaultCoaddSeed, 6000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimulation measures a complete 600-task, 4-site run
// under combined.2 (scheduling + storage + network + kernel).
func BenchmarkEndToEndSimulation(b *testing.B) {
	w, err := NewCoaddWorkload(DefaultCoaddSeed, 600)
	if err != nil {
		b.Fatal(err)
	}
	cfg := SimulationConfig{Workload: w, Sites: 4, CapacityFiles: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSimulation(cfg, "combined.2"); err != nil {
			b.Fatal(err)
		}
	}
}

// The experiment sweep benchmark below exercises the full harness path the
// way cmd/experiments does, at reduced scale.
var _ = experiment.PaperCapacities
