// Benchmarks regenerating every table and figure of the paper at reduced
// scale (600 tasks, one topology seed) so `go test -bench=.` finishes in
// minutes. Paper-scale numbers come from `cmd/experiments` (6,000 tasks,
// 5 seeds) and are recorded in EXPERIMENTS.md.
//
// The benchmark bodies live in internal/benchsuite, shared with
// cmd/gridbench so the recorded perf trajectory (BENCH_PR2.json, …)
// measures exactly what CI smoke-runs here.
package gridsched_test

import (
	"testing"

	"gridsched/internal/benchsuite"
)

// BenchmarkTable2 regenerates the workload characteristics (paper Table 2)
// at full 6,000-task scale (workload generation only; no simulation).
func BenchmarkTable2(b *testing.B) { benchsuite.ExperimentFullScale("table2")(b) }

// BenchmarkFigure1 regenerates the full-Coadd reference CDF (paper Fig. 1).
func BenchmarkFigure1(b *testing.B) { benchsuite.Experiment("figure1")(b) }

// BenchmarkFigure3 regenerates the Coadd-6000 reference CDF (paper Fig. 3)
// at full scale (workload generation only).
func BenchmarkFigure3(b *testing.B) { benchsuite.ExperimentFullScale("figure3")(b) }

// BenchmarkFigure4 regenerates the makespan-vs-capacity sweep (paper
// Fig. 4; the sweep also yields Fig. 5).
func BenchmarkFigure4(b *testing.B) { benchsuite.Experiment("figure4")(b) }

// BenchmarkFigure5 regenerates the transfers-vs-capacity sweep (paper
// Fig. 5).
func BenchmarkFigure5(b *testing.B) { benchsuite.Experiment("figure5")(b) }

// BenchmarkFigure6 regenerates the makespan-vs-workers sweep (paper
// Fig. 6; the sweep also yields Table 3).
func BenchmarkFigure6(b *testing.B) { benchsuite.Experiment("figure6")(b) }

// BenchmarkTable3 regenerates the per-site data-server breakdown (paper
// Table 3).
func BenchmarkTable3(b *testing.B) { benchsuite.Experiment("table3")(b) }

// BenchmarkFigure7 regenerates the makespan-vs-sites sweep (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchsuite.Experiment("figure7")(b) }

// BenchmarkFigure8 regenerates the makespan-vs-file-size sweep (paper
// Fig. 8).
func BenchmarkFigure8(b *testing.B) { benchsuite.Experiment("figure8")(b) }

// BenchmarkAblationCombined compares the Combined formula as intended vs.
// as typeset (DESIGN.md, "Combined formula").
func BenchmarkAblationCombined(b *testing.B) { benchsuite.Experiment("ablation-combined")(b) }

// BenchmarkAblationChooseTask sweeps the ChooseTask(n) window (§4.3).
func BenchmarkAblationChooseTask(b *testing.B) { benchsuite.Experiment("ablation-choosetask")(b) }

// BenchmarkAblationEviction compares LRU vs FIFO replacement at the
// tightest paper capacity.
func BenchmarkAblationEviction(b *testing.B) { benchsuite.Experiment("ablation-eviction")(b) }

// BenchmarkAblationChurn sweeps worker availability with failure injection
// (the overloaded suppliers motivating worker-centric scheduling, §1).
func BenchmarkAblationChurn(b *testing.B) { benchsuite.Experiment("ablation-churn")(b) }

// BenchmarkAblationReplication toggles Ranganathan-Foster proactive data
// replication under tight capacity (§3.1).
func BenchmarkAblationReplication(b *testing.B) { benchsuite.Experiment("ablation-replication")(b) }

// --- micro-benchmarks of the core scheduling path ---

// BenchmarkSchedulerRequest measures one worker-centric scheduling request
// (CalculateWeight + ChooseTask, served from the incremental weight-class
// indexes — see PERFORMANCE.md) on the full 6,000-task queue.
func BenchmarkSchedulerRequest(b *testing.B) {
	for _, name := range []string{"overlap", "rest", "combined"} {
		b.Run(name, benchsuite.SchedulerRequest(name))
	}
}

// BenchmarkWorkloadGeneration measures synthetic Coadd trace generation at
// evaluation scale.
func BenchmarkWorkloadGeneration(b *testing.B) { benchsuite.WorkloadGeneration(b) }

// BenchmarkEndToEndSimulation measures a complete 600-task, 4-site run
// under combined.2 (scheduling + storage + network + kernel).
func BenchmarkEndToEndSimulation(b *testing.B) { benchsuite.EndToEndSimulation(b) }
