module gridsched

go 1.24
