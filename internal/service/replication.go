package service

import (
	"net/http"
	"strconv"
	"time"

	"gridsched/internal/middleware"
	"gridsched/internal/replicate"
	"gridsched/internal/service/api"
)

// Leader side of WAL replication: GET /v1/replication/stream hands the
// connection to a replicate.Source that tail-follows the live journal.
// The endpoint is admin-gated by the ingress chain (middleware.Auth
// treats /v1/replication/ as an admin surface) and requires -data-dir —
// an in-memory service has no log to stream.

// ReplicationLastLSN reports the last journal LSN this service holds
// (0 without journaling) — the leader's position for readiness and lag.
func (s *Service) ReplicationLastLSN() uint64 {
	if s.pst == nil {
		return 0
	}
	return s.pst.w.LastLSN()
}

func (s *Service) handleReplicationStream(w http.ResponseWriter, r *http.Request) {
	if s.pst == nil {
		writeError(w, errf(http.StatusNotImplemented,
			"service: replication requires -data-dir (no journal to stream)"))
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, errf(http.StatusBadRequest, "service: bad from=%q: %v", q, err))
			return
		}
		from = v
	}
	if _, ok := w.(http.Flusher); !ok {
		writeError(w, errf(http.StatusInternalServerError, "service: transport cannot stream"))
		return
	}
	src := &replicate.Source{
		WALPath:      s.walPath(),
		SnapshotPath: s.snapshotPath(),
		LastLSN:      s.pst.w.LastLSN,
		Notify:       s.pst.w.AppendNotify,
		Rotations:    s.pst.w.Rotations,
		Done:         s.sweepStop, // closed by Close/CrashForTest
		OnFrame: func() {
			s.repl.FramesStreamed.Add(1)
		},
	}
	w.Header().Set("Content-Type", "application/x-gridsched-replication")
	w.WriteHeader(http.StatusOK)
	s.repl.StreamsActive.Add(1)
	start := time.Now()
	_ = src.Serve(r.Context(), w, from)
	s.repl.StreamsActive.Add(-1)
	// The stream's lifetime is deliberate parking, not request latency;
	// without this a single follower connection would blow through any
	// load-shedding p99 bound (same reasoning as long-poll pulls).
	middleware.ObserveParked(r.Context(), time.Since(start))
}

// readiness assembles the leader's /readyz body.
func (s *Service) readiness() api.Readiness {
	if !s.Ready() {
		return api.Readiness{Status: "recovering", Role: api.RoleRecovering}
	}
	return api.Readiness{
		Status:  "ready",
		Role:    api.RoleLeader,
		LastLSN: s.ReplicationLastLSN(),
	}
}
