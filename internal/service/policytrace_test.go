// The deterministic policy-trace gate: scripted worker timelines from
// internal/sim replayed against the REAL service — fake clock, seeded
// schedulers, HTTP client in whatever codec GRIDSCHED_TEST_CODEC selects —
// so straggler speculation, context gating, constraint matching, and
// deadline urgency are validated end to end on the production dispatch
// path, not on a model of it. Every trace is a pure function of its
// script: the sim kernel orders all activity, the service clock only
// moves when the script advances it, and sweeps run at scripted instants.
package service_test

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/sim"
)

// policyClock is the fake service clock: a fixed base plus a virtual
// millisecond offset the trace advances. Atomic because the service's
// background sweeper may sample it concurrently.
type policyClock struct {
	base time.Time
	ms   atomic.Int64
}

func (c *policyClock) now() time.Time {
	return c.base.Add(time.Duration(c.ms.Load()) * time.Millisecond)
}

// policyEnv is one harness instance: a service under a fake clock, an
// HTTP server over its real handler, and a codec-honoring client.
type policyEnv struct {
	s   *service.Service
	cl  *client.Client
	clk *policyClock
}

// newPolicyEnv builds the service for a trace. Lease TTL and sweep
// interval are a virtual hour so nothing expires behind the script's
// back; the trace triggers sweeps itself at every virtual-time step.
func newPolicyEnv(t *testing.T, sites, workersPerSite int, speculate bool) *policyEnv {
	t.Helper()
	clk := &policyClock{base: time.Unix(1_700_000_000, 0)}
	cfg := service.Config{
		Topology: service.Topology{
			Sites:          sites,
			WorkersPerSite: workersPerSite,
			CapacityFiles:  1000,
		},
		NewScheduler:  gridsched.SchedulerFactory(),
		LeaseTTL:      time.Hour,
		SweepInterval: time.Hour,
		Clock:         clk.now,
		Speculation:   speculate,
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return &policyEnv{s: s, cl: client.New(srv.URL, nil), clk: clk}
}

// liveBackend adapts the env to sim.PolicyBackend. Worker-facing calls go
// through the HTTP client so the wire codec is really exercised; clock
// advancement and completion checks go straight to the service.
type liveBackend struct {
	env  *policyEnv
	jobs []string
}

func (b *liveBackend) Register(site int, tags []string) (string, error) {
	reg, err := b.env.cl.RegisterWorker(context.Background(), &site, tags)
	if err != nil {
		return "", err
	}
	return reg.WorkerID, nil
}

func (b *liveBackend) Pull(workerID string) (string, bool, error) {
	resp, err := b.env.cl.Pull(context.Background(), workerID, 0)
	if err != nil {
		return "", false, err
	}
	if resp.Status != api.StatusAssigned {
		return "", false, nil
	}
	return resp.Assignment.ID, true, nil
}

func (b *liveBackend) Report(workerID, assignmentID string, fail bool) (bool, error) {
	outcome := api.OutcomeSuccess
	if fail {
		outcome = api.OutcomeFailure
	}
	rep, err := b.env.cl.Report(context.Background(), assignmentID, workerID, outcome)
	if err != nil {
		return false, err
	}
	return rep.Accepted && !rep.Stale && !rep.Cancelled && !fail, nil
}

func (b *liveBackend) AdvanceTo(millis int64) {
	if millis > b.env.clk.ms.Load() {
		b.env.clk.ms.Store(millis)
	}
	b.env.s.SweepForTest()
}

func (b *liveBackend) Open() (bool, error) {
	for _, id := range b.jobs {
		st, err := b.env.s.JobStatus(id)
		if err != nil {
			return false, err
		}
		if st.State == api.JobRunning {
			return true, nil
		}
	}
	return false, nil
}

// runPolicy drives one script against the env's service and returns the
// trace summary.
func runPolicy(t *testing.T, env *policyEnv, script sim.PolicyScript, jobIDs ...string) *sim.PolicyResult {
	t.Helper()
	res, err := sim.RunPolicyTrace(script, &liveBackend{env: env, jobs: jobIDs})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// slowWorkerScript is the acceptance scenario: ten single-worker sites,
// nine fast (200ms per task) and one 20x slower — the classic 10%-slow-
// worker heterogeneity from the paper's target environment.
func slowWorkerScript() sim.PolicyScript {
	ws := make([]sim.PolicyWorker, 10)
	for i := range ws {
		ws[i] = sim.PolicyWorker{Site: i, TaskMillis: 200}
	}
	ws[9].TaskMillis = 4000
	return sim.PolicyScript{Workers: ws, PollMillis: 50}
}

// TestPolicyTraceSpeculationImprovesMakespan is the headline gate: on the
// 10%-slow-worker scenario, enabling straggler speculation must improve
// the deterministic makespan by at least 20% with zero duplicate
// completions — under whichever codec GRIDSCHED_TEST_CODEC put on the
// wire.
func TestPolicyTraceSpeculationImprovesMakespan(t *testing.T) {
	const tasks = 60
	run := func(speculate bool) (*sim.PolicyResult, *api.JobStatus) {
		env := newPolicyEnv(t, 10, 1, speculate)
		jobID, err := env.cl.SubmitJob(context.Background(), "hetero", "workqueue", 1, syntheticWorkload(tasks, 2))
		if err != nil {
			t.Fatal(err)
		}
		res := runPolicy(t, env, slowWorkerScript(), jobID)
		st, err := env.s.JobStatus(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.JobCompleted || st.Completed != tasks {
			t.Fatalf("speculate=%v: job did not drain cleanly: %+v", speculate, st)
		}
		// Exactly-once: every task completed exactly once, and the counter
		// agrees with the per-job tally.
		if res.Applied != tasks {
			t.Fatalf("speculate=%v: %d applied completions, want %d", speculate, res.Applied, tasks)
		}
		if got := env.s.Counters().Completions.Load(); got != tasks {
			t.Fatalf("speculate=%v: completions counter %d, want %d", speculate, got, tasks)
		}
		return res, st
	}

	off, offSt := run(false)
	on, onSt := run(true)

	if offSt.Speculated != 0 {
		t.Fatalf("speculation off but job speculated %d", offSt.Speculated)
	}
	if onSt.Speculated == 0 {
		t.Fatal("speculation on but no speculative dispatch happened")
	}
	if on.Stale == 0 {
		t.Fatal("speculation on: the losing replica's report never came back cancelled/stale")
	}
	// The gate: at least a 20% makespan improvement, deterministically.
	if on.MakespanMillis*10 > off.MakespanMillis*8 {
		t.Fatalf("speculation makespan %dms vs %dms without — less than 20%% better",
			on.MakespanMillis, off.MakespanMillis)
	}
	t.Logf("makespan: %dms -> %dms (%.0f%% better), %d speculative grants, %d stale",
		off.MakespanMillis, on.MakespanMillis,
		100*(1-float64(on.MakespanMillis)/float64(off.MakespanMillis)),
		onSt.Speculated, on.Stale)
}

// TestPolicyTraceMakespanDeterministic replays the speculation scenario
// twice and demands bit-identical summaries: the harness is only a CI
// gate if it cannot flake.
func TestPolicyTraceMakespanDeterministic(t *testing.T) {
	run := func() *sim.PolicyResult {
		env := newPolicyEnv(t, 10, 1, true)
		jobID, err := env.cl.SubmitJob(context.Background(), "det", "workqueue", 1, syntheticWorkload(60, 2))
		if err != nil {
			t.Fatal(err)
		}
		return runPolicy(t, env, slowWorkerScript(), jobID)
	}
	a, b := run(), run()
	if a.MakespanMillis != b.MakespanMillis || a.Applied != b.Applied ||
		a.Failed != b.Failed || a.Stale != b.Stale {
		t.Fatalf("two identical traces diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.AppliedByWorker {
		if a.AppliedByWorker[i] != b.AppliedByWorker[i] {
			t.Fatalf("per-worker completions diverged:\n%v\n%v", a.AppliedByWorker, b.AppliedByWorker)
		}
	}
}

// TestPolicyTraceContextGateStarvesFlakyWorker scripts a permanently
// flaky worker under the context-aware wrapper: after MinEvents observed
// failures its failure-rate EWMA pins at 1.0 and the gate must stop
// feeding it — the job drains on the healthy worker alone.
func TestPolicyTraceContextGateStarvesFlakyWorker(t *testing.T) {
	const tasks = 12
	env := newPolicyEnv(t, 2, 1, false)
	jobID, err := env.cl.SubmitJob(context.Background(), "flaky", "context:workqueue", 1, syntheticWorkload(tasks, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := runPolicy(t, env, sim.PolicyScript{
		Workers: []sim.PolicyWorker{
			{Site: 0, TaskMillis: 100},
			{Site: 1, TaskMillis: 100, FailEvery: 1}, // every execution fails
		},
		PollMillis: 50,
	}, jobID)

	if res.Applied != tasks {
		t.Fatalf("%d applied completions, want %d", res.Applied, tasks)
	}
	if res.AppliedByWorker[1] != 0 {
		t.Fatalf("flaky worker completed %d tasks", res.AppliedByWorker[1])
	}
	// The gate admits cold workers; the flaky one gets exactly MinEvents
	// (default 4) executions before its record locks it out.
	if res.Failed != 4 {
		t.Fatalf("flaky worker got %d executions, want 4 (the context gate's MinEvents)", res.Failed)
	}
	// The accumulated context is visible on the workers surface.
	for _, ws := range env.s.Workers() {
		if ws.Site == 1 && ws.FailureRate < 0.99 {
			t.Fatalf("flaky worker's failure rate %.2f, want ~1.0", ws.FailureRate)
		}
	}
}

// TestPolicyTraceRequiresTags scripts a job that requires the "gpu"
// capability against one tagged and one untagged worker: every completion
// must land on the tagged worker, even though the untagged one polls too.
func TestPolicyTraceRequiresTags(t *testing.T) {
	const tasks = 10
	env := newPolicyEnv(t, 2, 1, false)
	jobID, err := env.cl.SubmitJobIdempotent(context.Background(), api.SubmitJobRequest{
		Name: "tagged", Algorithm: "workqueue", Seed: 1,
		Workload: syntheticWorkload(tasks, 2),
		Requires: []string{"gpu"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runPolicy(t, env, sim.PolicyScript{
		Workers: []sim.PolicyWorker{
			{Site: 0, TaskMillis: 100, Tags: []string{"gpu", "avx"}},
			{Site: 1, TaskMillis: 100},
		},
		PollMillis: 50,
	}, jobID)

	if res.Applied != tasks || res.AppliedByWorker[0] != tasks {
		t.Fatalf("tag-constrained completions landed wrong: %+v", res)
	}
	st, err := env.s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Requires) != 1 || st.Requires[0] != "gpu" {
		t.Fatalf("requires list did not round-trip: %+v", st.Requires)
	}
}

// TestPolicyTraceDeadlineUrgency submits a fair-share pair where the
// second job carries an already-passed deadline: urgency must win every
// grant until the urgent job drains, where plain fair sharing would
// interleave the two.
func TestPolicyTraceDeadlineUrgency(t *testing.T) {
	env := newPolicyEnv(t, 1, 1, false)
	relaxed, err := env.cl.SubmitJob(context.Background(), "relaxed", "workqueue", 1, syntheticWorkload(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	urgent, err := env.cl.SubmitJobIdempotent(context.Background(), api.SubmitJobRequest{
		Name: "urgent", Algorithm: "workqueue", Seed: 1,
		Workload:       syntheticWorkload(5, 2),
		DeadlineMillis: env.clk.now().UnixMilli() - 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg, err := env.cl.RegisterWorker(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := env.cl.Pull(context.Background(), reg.WorkerID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			t.Fatalf("pull %d: %q", i, resp.Status)
		}
		if resp.Assignment.JobID != urgent {
			t.Fatalf("grant %d went to %s, want the urgent job %s", i, resp.Assignment.JobID, urgent)
		}
		if _, err := env.cl.Report(context.Background(), resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	st, err := env.s.JobStatus(urgent)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted {
		t.Fatalf("urgent job after 5 grants: %+v", st)
	}
	if rs, err := env.s.JobStatus(relaxed); err != nil || rs.Completed != 0 {
		t.Fatalf("relaxed job stole a grant from the urgent one: %+v (%v)", rs, err)
	}
}
