package client_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridsched/internal/metrics"
	"gridsched/internal/middleware"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestRunWorkerAuthFailureIsTerminal is the regression test for the
// retry-forever bug class: a worker pointed at an authenticated server
// with a bad (or revoked) credential must surface the 401 as a terminal
// error immediately — even with ReconnectWait set, which retries every
// other failure mode.
func TestRunWorkerAuthFailureIsTerminal(t *testing.T) {
	var registers atomic.Int64
	chain := middleware.Ingress(middleware.Config{
		Log:    io.Discard,
		Tokens: middleware.NewTokenStore(map[string]middleware.Principal{"good": {Tenant: "t"}}),
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		registers.Add(1) // only authenticated requests reach here
	}))
	ts := httptest.NewServer(chain)
	defer ts.Close()

	cl := client.New(ts.URL, nil)
	cl.AuthToken = "revoked"
	done := make(chan error, 1)
	go func() {
		done <- cl.RunWorker(context.Background(), client.WorkerConfig{
			ReconnectWait: 10 * time.Millisecond,
			PollWait:      50 * time.Millisecond,
		})
	}()
	select {
	case err := <-done:
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnauthorized {
			t.Fatalf("RunWorker error = %v, want wrapped 401", err)
		}
		if !strings.Contains(err.Error(), "credentials rejected") {
			t.Fatalf("error %q does not name the credential rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorker still retrying a rejected credential after 5s")
	}
	if n := registers.Load(); n != 0 {
		t.Fatalf("unauthenticated worker reached the service %d times", n)
	}
}

// TestRunWorkerShedPullBacksOff: a 429 on pull (load shed) must NOT tear
// the worker down or re-register it — the worker backs off and pulls
// again against its existing registration.
func TestRunWorkerShedPullBacksOff(t *testing.T) {
	var registers, pulls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		registers.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"workerId":"w1","site":0,"worker":0}`))
	})
	mux.HandleFunc("POST /v1/workers/w1/pull", func(w http.ResponseWriter, r *http.Request) {
		if pulls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"overloaded; shed, retry later"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"empty"}`))
	})
	mux.HandleFunc("DELETE /v1/workers/w1", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	start := time.Now()
	err := client.New(ts.URL, nil).RunWorker(context.Background(), client.WorkerConfig{
		OnIdle: func(ctx context.Context, resp *api.PullResponse) (bool, error) { return true, nil },
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if got := registers.Load(); got != 1 {
		t.Fatalf("registered %d times across shed pulls, want 1", got)
	}
	if got := pulls.Load(); got != 3 {
		t.Fatalf("pulls = %d, want 3 (2 shed + 1 idle)", got)
	}
	// Two backoffs, each honoring the 1s Retry-After hint (jittered down
	// to no less than half).
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("worker retried shed pulls after only %s; Retry-After ignored", elapsed)
	}
}

// TestSubmitRetriesShed: SubmitJobIdempotent treats 429 as transient and
// lands the job once capacity returns.
func TestSubmitRetriesShed(t *testing.T) {
	var submits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"overloaded; shed, retry later"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"jobId":"j1"}`))
	}))
	defer ts.Close()

	id, err := client.New(ts.URL, nil).SubmitJobIdempotent(context.Background(), api.SubmitJobRequest{
		Name: "shed-retry", Algorithm: "workqueue", Workload: smallWorkload(2),
		SubmissionID: "shed-key-1",
	})
	if err != nil || id != "j1" {
		t.Fatalf("submit through shed: id=%q err=%v", id, err)
	}
	if got := submits.Load(); got != 2 {
		t.Fatalf("submit attempts = %d, want 2", got)
	}
}

// TestAPIErrorRetryAfter: do() surfaces the server's Retry-After hint on
// the typed error.
func TestAPIErrorRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"rate limit exceeded; retry later"}`))
	}))
	defer ts.Close()

	_, err := client.New(ts.URL, nil).Job(context.Background(), "j1")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %s, want 7s", ae.RetryAfter)
	}
}

// TestClientSendsBearer: AuthToken rides every request and satisfies the
// real auth middleware.
func TestClientSendsBearer(t *testing.T) {
	c := metrics.NewIngressCounters()
	chain := middleware.Ingress(middleware.Config{
		Counters: c,
		Log:      io.Discard,
		Tokens:   middleware.NewTokenStore(map[string]middleware.Principal{"tok": {Tenant: "t"}}),
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[]`))
	}))
	ts := httptest.NewServer(chain)
	defer ts.Close()

	cl := client.New(ts.URL, nil)
	if _, err := cl.Jobs(context.Background()); err == nil {
		t.Fatal("tokenless request passed auth")
	}
	cl.AuthToken = "tok"
	if _, err := cl.Jobs(context.Background()); err != nil {
		t.Fatalf("authenticated request failed: %v", err)
	}
	if c.AuthFailures.Load() != 1 {
		t.Fatalf("AuthFailures = %d, want 1", c.AuthFailures.Load())
	}
}
