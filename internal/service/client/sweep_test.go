package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gridsched/internal/faultinject"
	"gridsched/internal/service/api"
)

// sweepState reads the client's sweep-backoff bookkeeping.
func sweepState(c *Client) (fails int, delay, pending time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweepFails, c.sweepDelay, c.sweepSleep
}

// faultedEndpoint puts a fail-fast faultinject proxy in front of srv and
// returns its URL: connections open but every byte errors, the transport
// failure flavor of a crashed-but-port-bound node.
func faultedEndpoint(t *testing.T, srv *httptest.Server) (string, *faultinject.Faults) {
	t.Helper()
	p, err := faultinject.NewProxy("127.0.0.1:0", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.Faults().FailFast()
	return "http://" + p.Addr(), p.Faults()
}

func healthStub(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestSweepBackoffFullyDownDeployment: when every endpoint fails in one
// rotation, the client inserts a capped, growing delay before the next
// sweep instead of hammering the dead deployment in a tight loop — and
// recovers instantly once an endpoint answers.
func TestSweepBackoffFullyDownDeployment(t *testing.T) {
	srv := healthStub(t)
	ep1, f1 := faultedEndpoint(t, srv)
	ep2, f2 := faultedEndpoint(t, srv)
	c := NewMulti([]string{ep1, ep2}, nil)
	ctx := context.Background()

	start := time.Now()
	for i := 0; i < 6; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("health against a fully faulted deployment succeeded")
		}
	}
	elapsed := time.Since(start)

	// Six calls are three full failed rotations; the sleeps consumed by
	// calls 3 and 5 each drew at least sweepInitial/2 from the jitter
	// envelope [d/2, d).
	if elapsed < sweepInitial {
		t.Fatalf("6 failed sweeps took %s; backoff (≥%s of sleeps) not applied", elapsed, sweepInitial)
	}
	if fails, delay, _ := sweepState(c); delay == 0 {
		t.Fatalf("after 3 failed rotations: sweepDelay=0 (fails=%d)", fails)
	}

	// One endpoint heals: the next successful response resets the whole
	// schedule.
	f1.Restore()
	f2.Restore()
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health after faults cleared: %v", err)
	}
	if fails, delay, pending := sweepState(c); fails != 0 || delay != 0 || pending != 0 {
		t.Fatalf("reachable endpoint did not reset sweep state: fails=%d delay=%s pending=%s", fails, delay, pending)
	}
}

// TestSweepBackoffNotArmedWithLiveEndpoint: a rotation that reaches any
// live endpoint never arms the backoff — failover stays immediate when
// only some endpoints are down.
func TestSweepBackoffNotArmedWithLiveEndpoint(t *testing.T) {
	srv := healthStub(t)
	dead, _ := faultedEndpoint(t, srv)
	c := NewMulti([]string{dead, srv.URL}, nil)
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		if _, err := c.Health(ctx); err != nil && i > 0 {
			t.Fatalf("call %d with a live endpoint in rotation: %v", i, err)
		}
	}
	if fails, delay, pending := sweepState(c); delay != 0 || pending != 0 {
		t.Fatalf("backoff armed despite live endpoint: fails=%d delay=%s pending=%s", fails, delay, pending)
	}
}

// TestSweepBackoffSingleEndpoint: a single-endpoint client has no
// rotation to pace — errors surface immediately, unchanged.
func TestSweepBackoffSingleEndpoint(t *testing.T) {
	srv := healthStub(t)
	dead, _ := faultedEndpoint(t, srv)
	c := New(dead, nil)
	ctx := context.Background()

	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("health against a faulted endpoint succeeded")
		}
	}
	if fails, delay, pending := sweepState(c); fails != 0 || delay != 0 || pending != 0 {
		t.Fatalf("single-endpoint client armed sweep backoff: fails=%d delay=%s pending=%s", fails, delay, pending)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single-endpoint failures took %s; no backoff should apply", elapsed)
	}
}
