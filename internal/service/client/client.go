// Package client is the Go client for the gridschedd HTTP/JSON protocol
// (internal/service, wire types in internal/service/api). It covers the
// whole surface — job submission and status, worker registration, long-poll
// pull, heartbeat, report — and provides RunWorker, a complete worker loop
// shared by the live runtime (internal/live) and the gridworker binary.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// Client talks to one gridschedd server.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for the server at base (e.g. "http://host:8080").
// A nil httpClient uses a dedicated default client. The client must not
// set an overall timeout shorter than the long-poll waits in use.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// APIError is a non-2xx server reply.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gridschedd: %s (http %d)", e.Message, e.StatusCode)
}

// do runs one JSON round-trip. A nil out discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e api.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitJob submits a workload under the given algorithm name and returns
// the job id.
func (c *Client) SubmitJob(ctx context.Context, name, algorithm string, seed int64, w *workload.Workload) (string, error) {
	var resp api.SubmitJobResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", api.SubmitJobRequest{
		Name: name, Algorithm: algorithm, Seed: seed, Workload: w,
	}, &resp)
	return resp.JobID, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, jobID string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// DeleteJob drops a completed job's record (retention control); running
// jobs cannot be deleted.
func (c *Client) DeleteJob(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, nil)
}

// Jobs lists every resident job.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Register enrolls a worker. site pins it to a site; nil lets the server
// pick.
func (c *Client) Register(ctx context.Context, site *int) (*api.RegisterResponse, error) {
	var resp api.RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/workers", api.RegisterRequest{Site: site}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Deregister removes a worker; its outstanding assignment, if any, is
// requeued.
func (c *Client) Deregister(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workers/"+workerID, nil, nil)
}

// Pull long-polls for an assignment, waiting up to wait server-side.
func (c *Client) Pull(ctx context.Context, workerID string, wait time.Duration) (*api.PullResponse, error) {
	var resp api.PullResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/pull",
		api.PullRequest{WaitMillis: wait.Milliseconds()}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat renews an assignment's lease.
func (c *Client) Heartbeat(ctx context.Context, assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	var resp api.HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/assignments/"+assignmentID+"/heartbeat",
		api.HeartbeatRequest{WorkerID: workerID}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report ends an assignment with api.OutcomeSuccess or api.OutcomeFailure.
func (c *Client) Report(ctx context.Context, assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	var resp api.ReportResponse
	err := c.do(ctx, http.MethodPost, "/v1/assignments/"+assignmentID+"/report",
		api.ReportRequest{WorkerID: workerID, Outcome: outcome}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
