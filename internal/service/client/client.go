// Package client is the Go client for the gridschedd HTTP/JSON protocol
// (internal/service, wire types in internal/service/api). It covers the
// whole surface — job submission and status, worker registration, long-poll
// pull, heartbeat, report — and provides RunWorker, a complete worker loop
// shared by the live runtime (internal/live) and the gridworker binary.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/partition"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// Client talks to a gridschedd deployment: one server, or (NewMulti) a
// replicated pair/group of which one is leader at a time. With multiple
// endpoints the client sticks to the one that answers and fails over on
// transport errors; a 421 Misdirected Request from a follower carries the
// leader's URL (api.LeaderHeader), which the client jumps to directly.
type Client struct {
	http *http.Client

	// mu guards endpoints/cur and the sweep-backoff state. endpoints never
	// shrinks; cur indexes the endpoint requests currently go to.
	mu        sync.Mutex
	endpoints []string
	cur       int
	// sweepFails counts consecutive transport-level failovers; once it
	// reaches len(endpoints) — a full rotation sweep with every endpoint
	// down — sweepDelay grows by the capped-jitter schedule and sweepSleep
	// arms, making the next attempt wait instead of spinning the rotation
	// in a tight loop against a fully-down deployment.
	sweepFails int
	sweepDelay time.Duration
	sweepSleep time.Duration

	// topo is the learned partition topology (RefreshPartitions): when
	// set, id-keyed requests and keyed submissions go straight to the
	// owning partition — zero router hops on the hot path. A transport
	// failure on a direct partition link drops the topology, falling back
	// through the configured endpoints (the router) until refreshed.
	topo atomic.Pointer[partitionTopo]

	// ResubmitWindow bounds how long SubmitJob keeps resubmitting through
	// transient failures (connection refused/reset, server restarting)
	// before giving up. Every attempt carries the same generated
	// submission id, so a retry whose predecessor actually landed — the
	// acknowledgement was what got lost — resolves to the existing job
	// instead of a duplicate. Zero means the 15s default; negative
	// disables retrying.
	ResubmitWindow time.Duration

	// AuthToken, when non-empty, rides every request as
	// "Authorization: Bearer <token>" — the credential a gridschedd
	// started with -auth-tokens requires. Set it before the first call.
	AuthToken string

	// codec is the negotiation mode (codecJSON/codecAuto/codecBinary);
	// negotiated flips in auto mode once the server answers binary.
	codec      atomic.Int32
	negotiated atomic.Bool
	// binReplies/jsonReplies count 2xx replies to binary-capable calls by
	// the codec the server actually used — the observable a conformance
	// test needs to prove binary was really on the wire.
	binReplies  atomic.Int64
	jsonReplies atomic.Int64
}

// Codec negotiation modes, set via SetCodec (or the GRIDSCHED_TEST_CODEC
// environment variable, read at construction — the hook the CI codec
// matrix uses to run the whole e2e suite over each wire format).
const (
	codecJSON int32 = iota
	codecAuto
	codecBinary
)

// SetCodec selects the wire format for the hot-path payloads:
//
//   - "json" (default): JSON bodies, JSON replies — debuggable with curl.
//   - "binary": compact binary bodies and an Accept header demanding
//     binary replies. STRICT: a 2xx reply that comes back JSON anyway is
//     an error, never a silent fallback — this is the codec-conformance
//     guarantee, so a misconfigured or downlevel server cannot quietly
//     eat the wire-speed win.
//   - "auto": start JSON but advertise binary in Accept; the first binary
//     reply locks the negotiation in and subsequent request bodies go
//     binary too. Safe against servers that predate the codec.
//
// Cold endpoints (job status, tenants, health) stay JSON in every mode.
func (c *Client) SetCodec(mode string) error {
	switch mode {
	case "", "json":
		c.codec.Store(codecJSON)
	case "auto":
		c.codec.Store(codecAuto)
	case "binary":
		c.codec.Store(codecBinary)
	default:
		return fmt.Errorf("client: unknown codec %q (want json, binary, or auto)", mode)
	}
	return nil
}

// CodecCounts returns how many 2xx replies to binary-capable calls
// arrived in each codec.
func (c *Client) CodecCounts() (binary, jsonCount int64) {
	return c.binReplies.Load(), c.jsonReplies.Load()
}

// New builds a client for the server at base (e.g. "http://host:8080").
// A nil httpClient uses a dedicated default client. The client must not
// set an overall timeout shorter than the long-poll waits in use.
func New(base string, httpClient *http.Client) *Client {
	return NewMulti([]string{base}, httpClient)
}

// NewMulti builds a client over a replicated deployment: every endpoint
// is a base URL of one node (leader or follower, in any order). Requests
// go to one endpoint at a time; a transport-level failure rotates to the
// next, and a 421 reply follows the announced leader. Combined with the
// retry loops (SubmitJobIdempotent, RunWorker's ReconnectWait), a leader
// kill plus follower promotion is survived without operator involvement.
func NewMulti(endpoints []string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	if len(endpoints) == 0 {
		panic("client: NewMulti with no endpoints")
	}
	eps := make([]string, len(endpoints))
	for i, e := range endpoints {
		eps[i] = strings.TrimRight(e, "/")
	}
	c := &Client{endpoints: eps, http: httpClient}
	// GRIDSCHED_TEST_CODEC forces every client built in this process onto
	// one wire format — the CI conformance matrix sets it to run the e2e
	// suites under each codec. A bad value fails loudly: a typo silently
	// testing JSON twice is exactly the failure mode the matrix exists to
	// prevent.
	if mode := os.Getenv("GRIDSCHED_TEST_CODEC"); mode != "" {
		if err := c.SetCodec(mode); err != nil {
			panic(fmt.Sprintf("client: GRIDSCHED_TEST_CODEC: %v", err))
		}
	}
	return c
}

// Endpoint returns the endpoint requests currently go to.
func (c *Client) Endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur]
}

// Sweep-backoff schedule: after every configured endpoint has failed in
// one rotation, delays double from ~sweepInitial up to sweepMax (with
// nextDelay's jitter), and reset the moment any endpoint answers.
const (
	sweepInitial = 100 * time.Millisecond
	sweepMax     = 5 * time.Second
)

// failover rotates away from a failed endpoint. The from guard keeps
// concurrent failures from skipping endpoints: only the first caller that
// saw `from` fail moves the cursor. Completing a full rotation — every
// endpoint failed in turn — arms the sweep backoff, so a fully-down
// deployment is probed at the capped-jitter cadence instead of in a tight
// loop.
func (c *Client) failover(from string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.endpoints) > 1 && c.endpoints[c.cur] == from {
		c.cur = (c.cur + 1) % len(c.endpoints)
		c.sweepFails++
		if c.sweepFails >= len(c.endpoints) {
			c.sweepFails = 0
			c.sweepDelay = nextDelay(c.sweepDelay, 0, sweepInitial, sweepMax)
			c.sweepSleep = c.sweepDelay
		}
	}
}

// noteReachable resets the sweep backoff: some endpoint produced an HTTP
// response, so the deployment is not fully down (even an error reply
// proves the node is alive).
func (c *Client) noteReachable() {
	c.mu.Lock()
	c.sweepFails, c.sweepDelay, c.sweepSleep = 0, 0, 0
	c.mu.Unlock()
}

// takeSweepSleep consumes the pending sweep-backoff sleep, if any.
func (c *Client) takeSweepSleep() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.sweepSleep
	c.sweepSleep = 0
	return d
}

// follow jumps to the leader a 421 reply announced. An unknown URL is
// adopted as a new endpoint — the hint is authoritative; a node would not
// name a leader it is not replicating from.
func (c *Client) follow(from, leader string) {
	leader = strings.TrimRight(leader, "/")
	if leader == "" {
		c.failover(from)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.endpoints {
		if e == leader {
			c.cur = i
			return
		}
	}
	c.endpoints = append(c.endpoints, leader)
	c.cur = len(c.endpoints) - 1
}

// partitionTopo is the learned partition layout: urls[i] is the base URL
// of partition i of count.
type partitionTopo struct {
	count int
	urls  []string
}

// baseFor names the partition base URL owning a request, or ok=false for
// requests that must go through the configured endpoints (aggregated
// reads, unkeyed registrations, everything without a partition key).
func (t *partitionTopo) baseFor(path string, in any) (string, bool) {
	var id string
	switch {
	case path == "/v1/jobs":
		// Submissions route by their idempotency key — the same hash the
		// router uses, so a direct submit and its routed retry dedupe on
		// the same partition.
		if req, ok := in.(api.SubmitJobRequest); ok && req.SubmissionID != "" {
			return t.urls[partition.SubmitOwner(req.SubmissionID, t.count)], true
		}
		return "", false
	case strings.HasPrefix(path, "/v1/jobs/"):
		id = path[len("/v1/jobs/"):]
	case strings.HasPrefix(path, "/v1/workers/"):
		id = path[len("/v1/workers/"):]
	case strings.HasPrefix(path, "/v1/assignments/"):
		id = path[len("/v1/assignments/"):]
	default:
		return "", false
	}
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	if p, ok := partition.Owner(id, t.count); ok {
		return t.urls[p], true
	}
	return "", false
}

// RefreshPartitions fetches GET /v1/partitions from the current endpoint
// (normally a gridrouter) and, when it describes a partitioned deployment
// with full URLs, switches the client to partition-aware routing: every
// id-keyed request and keyed submission then goes straight to the owning
// partition, adding zero extra hops to the hot dispatch path. Against an
// unpartitioned server (or a bare partition, which does not know its
// peers' URLs) the call clears any stale topology and the client keeps
// using its configured endpoints. The learned topology is dropped
// automatically when a direct partition link fails; call this again after
// recovery to re-learn it.
func (c *Client) RefreshPartitions(ctx context.Context) (*api.PartitionTopology, error) {
	var topo api.PartitionTopology
	if err := c.do(ctx, http.MethodGet, "/v1/partitions", nil, &topo); err != nil {
		return nil, err
	}
	usable := topo.Count > 1 && len(topo.Partitions) == topo.Count
	if usable {
		urls := make([]string, topo.Count)
		for _, p := range topo.Partitions {
			if p.Index < 0 || p.Index >= topo.Count || p.URL == "" {
				usable = false
				break
			}
			urls[p.Index] = strings.TrimRight(p.URL, "/")
		}
		if usable {
			c.topo.Store(&partitionTopo{count: topo.Count, urls: urls})
			return &topo, nil
		}
	}
	c.topo.Store(nil)
	return &topo, nil
}

// APIError is a non-2xx server reply.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint on 429 (rate-limited or
	// load-shed) replies; zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gridschedd: %s (http %d)", e.Message, e.StatusCode)
}

// do runs one round-trip against the current endpoint. A nil out discards
// the response body. The wire format follows SetCodec: binary-capable
// payloads go out in the active codec with an Accept header advertising
// binary, and the reply is decoded by its Content-Type (errors are always
// JSON). Failover happens here — a transport error rotates to the next
// endpoint, a 421 follows the announced leader — but the failed attempt's
// error is still returned: retrying is the caller's policy
// (SubmitJobIdempotent, RunWorker), and their next attempt lands on the
// new endpoint.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if d := c.takeSweepSleep(); d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			return err
		}
	}
	useBin := c.binaryWire()
	var body io.Reader
	inBin := false
	if in != nil {
		var b []byte
		var err error
		if useBin && api.Binary.Supports(in) {
			b, err = api.Binary.Marshal(in)
			inBin = true
		} else {
			b, err = json.Marshal(in)
		}
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	base, routed := c.Endpoint(), false
	if t := c.topo.Load(); t != nil {
		if b, ok := t.baseFor(path, in); ok {
			base, routed = b, true
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		if inBin {
			req.Header.Set("Content-Type", api.ContentTypeBinary)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	// Advertise binary whenever the mode allows it and the expected reply
	// has a binary encoding; the server answers in kind and the reply's
	// Content-Type below tells us which codec actually came back.
	wantBin := c.codec.Load() != codecJSON && out != nil && api.Binary.Supports(out)
	if wantBin {
		req.Header.Set("Accept", api.ContentTypeBinary)
	}
	if c.AuthToken != "" {
		// Canonical key, assigned directly: skips Set's canonicalization
		// scan on every authenticated request.
		req.Header["Authorization"] = []string{"Bearer " + c.AuthToken}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			if routed {
				// The direct partition link failed; forget the topology so
				// the caller's retry goes back through the configured
				// endpoints (the router), which can still reach the
				// surviving partitions.
				c.topo.Store(nil)
			} else {
				c.failover(base)
			}
		}
		return err
	}
	c.noteReachable()
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return c.responseError(base, resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if api.IsBinary(resp.Header.Get("Content-Type")) {
		c.sawBinaryReply()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return api.Binary.Unmarshal(data, out)
	}
	if wantBin {
		c.jsonReplies.Add(1)
		if c.codec.Load() == codecBinary {
			// Strict mode: the server ignored our Accept and fell back to
			// JSON. Decoding it would work — which is exactly why this must
			// be an error: a silent fallback would let the conformance
			// matrix "pass" without binary ever touching the wire.
			return fmt.Errorf("client: server answered %s %s in JSON despite binary codec (silent fallback refused)", method, path)
		}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// binaryWire reports whether request bodies should use the binary codec
// right now: always in binary mode, and in auto mode once a binary reply
// proved the server speaks it.
func (c *Client) binaryWire() bool {
	switch c.codec.Load() {
	case codecBinary:
		return true
	case codecAuto:
		return c.negotiated.Load()
	}
	return false
}

// sawBinaryReply records a binary-codec reply and, in auto mode, locks
// the negotiation in.
func (c *Client) sawBinaryReply() {
	c.binReplies.Add(1)
	if c.codec.Load() == codecAuto {
		c.negotiated.Store(true)
	}
}

// responseError turns a non-2xx reply into an *APIError, following a 421's
// announced leader. Error bodies are always JSON regardless of codec.
func (c *Client) responseError(base string, resp *http.Response) error {
	var e api.ErrorResponse
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		c.follow(base, resp.Header.Get(api.LeaderHeader))
	}
	ae := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}

// SubmitJob submits a workload under the given algorithm name and returns
// the job id. The submission is idempotent: a generated submission id rides
// along, and transient transport failures (connection refused mid-restart,
// acknowledgement lost on the wire) are retried with the same id for up to
// ResubmitWindow — the server deduplicates, so the job is created exactly
// once no matter how many attempts it takes. 429 replies are retried too,
// honoring the server's Retry-After hint. Other server-side rejections
// (4xx/5xx besides 503 and 429) are returned immediately.
func (c *Client) SubmitJob(ctx context.Context, name, algorithm string, seed int64, w *workload.Workload) (string, error) {
	return c.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
		Name: name, Algorithm: algorithm, Seed: seed, Workload: w,
		SubmissionID: newSubmissionID(),
	})
}

// SubmitTenantJob is SubmitJob with fair-share parameters: the job is
// accounted to tenant (""= the default tenant) at the given weight (0 =
// the server's default). Over a contended pool the server's arbiter
// converges dispatch rates of runnable jobs to the ratio of their weights.
func (c *Client) SubmitTenantJob(ctx context.Context, tenant string, weight int, name, algorithm string, seed int64, w *workload.Workload) (string, error) {
	return c.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
		Name: name, Algorithm: algorithm, Seed: seed, Workload: w,
		Tenant: tenant, Weight: weight,
		SubmissionID: newSubmissionID(),
	})
}

// SubmitJobIdempotent submits req as-is, retrying transient failures for
// up to ResubmitWindow when req.SubmissionID is set (retrying without a
// submission id could duplicate the job, so it is not attempted).
func (c *Client) SubmitJobIdempotent(ctx context.Context, req api.SubmitJobRequest) (string, error) {
	window := c.ResubmitWindow
	if window == 0 {
		window = 15 * time.Second
	}
	deadline := time.Now().Add(window)
	var backoff time.Duration
	for {
		var resp api.SubmitJobResponse
		err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &resp)
		if err == nil {
			return resp.JobID, nil
		}
		// A 429 (rate-limited or load-shed) carries the server's own
		// estimate of when capacity returns; waiting any less just burns
		// the deadline on further rejections. nextDelay folds the hint in.
		var hint time.Duration
		var ae *APIError
		if errors.As(err, &ae) {
			hint = ae.RetryAfter
		}
		backoff = submitDelay(backoff, hint)
		if req.SubmissionID == "" || !transientErr(err) || !time.Now().Add(backoff).Before(deadline) {
			return "", err
		}
		if err := sleepCtx(ctx, backoff); err != nil {
			return "", err
		}
	}
}

// transientErr reports whether err is worth retrying: transport-level
// failures, 503 (the server is up but, e.g., still syncing its journal),
// 429 (rate-limited or load-shed — capacity returns), and 421 (this node
// is a follower — do() already moved the cursor to the announced leader,
// so the retry lands there). Other 4xx/5xx are real answers; notably
// 401/403 stay terminal, since retrying a rejected credential can never
// succeed.
func transientErr(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode == http.StatusServiceUnavailable ||
			ae.StatusCode == http.StatusTooManyRequests ||
			ae.StatusCode == http.StatusMisdirectedRequest
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// authErr reports whether err is a credential rejection (401 or 403) —
// terminal for a worker: no retry cadence turns a bad token into a good
// one, so the loop surfaces it instead of spinning.
func authErr(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) &&
		(ae.StatusCode == http.StatusUnauthorized || ae.StatusCode == http.StatusForbidden)
}

// newSubmissionID returns a fresh 128-bit idempotency key.
func newSubmissionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("client: submission id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, jobID string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// DeleteJob drops a completed job's record (retention control); running
// jobs cannot be deleted.
func (c *Client) DeleteJob(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, nil)
}

// Jobs lists every resident job.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Tenants lists every tenant the server's fair-share arbiter knows, with
// share targets, achieved shares, in-flight counts, and quotas.
func (c *Client) Tenants(ctx context.Context) ([]api.TenantStatus, error) {
	var out []api.TenantStatus
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// SetTenantQuota overrides a tenant's in-flight concurrency quota
// (maxInFlight > 0 caps it; 0 reverts to the server default). On a
// journaled server the override survives restarts.
func (c *Client) SetTenantQuota(ctx context.Context, tenant string, maxInFlight int) (*api.TenantStatus, error) {
	var st api.TenantStatus
	err := c.do(ctx, http.MethodPut, "/v1/tenants/"+url.PathEscape(tenant),
		api.TenantQuotaRequest{MaxInFlight: maxInFlight}, &st)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Register enrolls a worker. site pins it to a site; nil lets the server
// pick.
func (c *Client) Register(ctx context.Context, site *int) (*api.RegisterResponse, error) {
	return c.RegisterWorker(ctx, site, nil)
}

// RegisterWorker enrolls a worker advertising capability tags; jobs
// submitted with Requires only dispatch to workers whose tags cover them.
func (c *Client) RegisterWorker(ctx context.Context, site *int, tags []string) (*api.RegisterResponse, error) {
	var resp api.RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/workers", api.RegisterRequest{Site: site, Tags: tags}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Workers lists the registered workers with their accumulated context —
// capability tags, task-throughput and failure-rate estimates.
func (c *Client) Workers(ctx context.Context) ([]api.WorkerStatus, error) {
	var out []api.WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out)
	return out, err
}

// Deregister removes a worker; its outstanding assignment, if any, is
// requeued.
func (c *Client) Deregister(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workers/"+workerID, nil, nil)
}

// Pull long-polls for an assignment, waiting up to wait server-side.
func (c *Client) Pull(ctx context.Context, workerID string, wait time.Duration) (*api.PullResponse, error) {
	var resp api.PullResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/pull",
		api.PullRequest{WaitMillis: wait.Milliseconds()}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat renews an assignment's lease.
func (c *Client) Heartbeat(ctx context.Context, assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	var resp api.HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/assignments/"+assignmentID+"/heartbeat",
		api.HeartbeatRequest{WorkerID: workerID}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report ends an assignment with api.OutcomeSuccess or api.OutcomeFailure.
func (c *Client) Report(ctx context.Context, assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	var resp api.ReportResponse
	err := c.do(ctx, http.MethodPost, "/v1/assignments/"+assignmentID+"/report",
		api.ReportRequest{WorkerID: workerID, Outcome: outcome}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
