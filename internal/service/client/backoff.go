package client

import (
	"context"
	"math/rand/v2"
	"time"
)

// nextDelay is the one backoff rule every retry path in this package
// shares: double the previous delay (starting at initial), raise it to
// the server's Retry-After hint when that is larger, cap it, then jitter
// down into [d/2, d) so a rejected client fleet re-offers load spread out
// instead of as the synchronized stampede that got it rejected.
func nextDelay(prev, hint, initial, cap time.Duration) time.Duration {
	d := 2 * prev
	if d < initial {
		d = initial
	}
	if hint > d {
		d = hint
	}
	if d > cap {
		d = cap
	}
	return d/2 + rand.N(d/2)
}

// shedDelay is nextDelay with the 429 envelope: exponential from 500ms,
// capped at 15s. Pinned by TestShedDelay.
func shedDelay(prev, hint time.Duration) time.Duration {
	return nextDelay(prev, hint, 500*time.Millisecond, 15*time.Second)
}

// submitDelay is nextDelay with the idempotent-resubmit envelope: quick
// first retry (the common case is a server restarting right now), capped
// at 2s so the ResubmitWindow buys several attempts.
func submitDelay(prev, hint time.Duration) time.Duration {
	return nextDelay(prev, hint, 50*time.Millisecond, 2*time.Second)
}

// sleepCtx waits for d, honoring cancellation and deadlines: it returns
// ctx.Err() the moment ctx ends, nil after a full sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
