// Client side of the streaming lease channel (see internal/service/stream.go
// for the server half and docs/PROTOCOL.md for the wire format): one GET
// holds a chunked response open, the server pushes length-prefixed
// LeaseBatch frames down it, and completions flow back batched through
// POST /v1/workers/{id}/reports.
package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gridsched/internal/service/api"
)

// LeaseStream is one open lease channel. Next blocks for the server's next
// frame; Close tears the stream down (the server notices and lets the
// worker's leases expire on their TTL, exactly as if the worker crashed).
type LeaseStream struct {
	body   io.ReadCloser
	br     *bufio.Reader
	codec  api.Codec
	cancel context.CancelFunc
}

// Next returns the next LeaseBatch frame. A server-side close surfaces as
// io.EOF; anything else mid-frame is an error.
func (ls *LeaseStream) Next() (*api.LeaseBatch, error) {
	payload, err := api.ReadFrame(ls.br)
	if err != nil {
		return nil, err
	}
	var lb api.LeaseBatch
	if err := ls.codec.Unmarshal(payload, &lb); err != nil {
		return nil, fmt.Errorf("client: lease stream decode: %w", err)
	}
	return &lb, nil
}

// Close tears the stream down. Safe to call concurrently with Next (it
// unblocks a blocked Next with an error).
func (ls *LeaseStream) Close() error {
	ls.cancel()
	return ls.body.Close()
}

// StreamLeases opens a lease stream for a registered worker with a pipeline
// depth of batch assignments (0 = server default). While the stream is open
// the server renews the worker's registration and every held lease — no
// heartbeats needed — and pushes grants and cancellation notices as frames.
// The codec follows SetCodec, negotiated per-stream via Accept.
func (c *Client) StreamLeases(ctx context.Context, workerID string, batch int) (*LeaseStream, error) {
	if d := c.takeSweepSleep(); d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
	}
	base, routed := c.Endpoint(), false
	if t := c.topo.Load(); t != nil {
		// A worker id is partition-keyed: the stream pins to the partition
		// that registered the worker and grants its leases.
		if b, ok := t.baseFor("/v1/workers/"+workerID+"/stream", nil); ok {
			base, routed = b, true
		}
	}
	path := base + "/v1/workers/" + workerID + "/stream"
	if batch > 0 {
		path += "?batch=" + strconv.Itoa(batch)
	}
	sctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	if c.codec.Load() != codecJSON {
		req.Header.Set("Accept", api.ContentTypeBinary)
	}
	if c.AuthToken != "" {
		req.Header["Authorization"] = []string{"Bearer " + c.AuthToken}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		if ctx.Err() == nil {
			if routed {
				c.topo.Store(nil)
			} else {
				c.failover(base)
			}
		}
		return nil, err
	}
	c.noteReachable()
	if resp.StatusCode != http.StatusOK {
		err := c.responseError(base, resp)
		resp.Body.Close()
		cancel()
		return nil, err
	}
	codec := api.JSON
	if resp.Header.Get("Content-Type") == api.ContentTypeStreamBinary {
		codec = api.Binary
		c.sawBinaryReply()
	} else {
		if c.codec.Load() != codecJSON {
			c.jsonReplies.Add(1)
		}
		if c.codec.Load() == codecBinary {
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("client: server opened lease stream in JSON despite binary codec (silent fallback refused)")
		}
	}
	return &LeaseStream{
		body:   resp.Body,
		br:     bufio.NewReader(resp.Body),
		codec:  codec,
		cancel: cancel,
	}, nil
}

// ReportBatch reports many finished assignments in one request; the server
// journals the whole batch with a single WAL write. Results are positional:
// results[i] answers reports[i]. Items whose lease already expired (for
// example a retry after a dropped connection where the first attempt
// landed) come back Stale and are never double-counted.
func (c *Client) ReportBatch(ctx context.Context, workerID string, reports []api.ReportItem) ([]api.ReportResponse, error) {
	var resp api.ReportBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/reports",
		api.ReportBatchRequest{Reports: reports}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(reports) {
		return nil, fmt.Errorf("client: report batch answered %d results for %d reports", len(resp.Results), len(reports))
	}
	return resp.Results, nil
}
