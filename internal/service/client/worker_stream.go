// RunWorker's streaming mode (WorkerConfig.StreamBatch > 0): one lease
// stream replaces the pull loop, executions run off a prefetched queue,
// and completions flow back through batched reports. Liveness inverts
// versus the classic loop — the server renews registration and every held
// lease while the stream is open, so there are no client heartbeats; a
// dropped stream lets everything expire and requeue within one TTL,
// exactly like a crashed worker.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
)

// errReconnect is consumeStream's non-terminal exit: the stream (or a
// report batch) died mid-flight and the loop should reopen it.
var errReconnect = errors.New("client: lease stream dropped")

// reportEntry is one finished assignment awaiting a batched report.
type reportEntry struct {
	a       *api.Assignment
	outcome string
}

// runStreamWorker opens (and reopens) the lease stream until ctx is
// cancelled, a hook stops the loop, or a terminal error occurs. Its error
// handling mirrors the classic pull loop: 429 backs off, 404 re-registers,
// 409 deregisters and starts over, transport failures retry under
// ReconnectWait. regp keeps RunWorker's deferred deregister pointed at the
// current registration across mid-loop re-registrations.
func (c *Client) runStreamWorker(ctx context.Context, cfg WorkerConfig, regp **api.RegisterResponse, register func() (*api.RegisterResponse, error)) error {
	var shed time.Duration
	// pending survives reconnects: reports for work already finished are
	// retried on the next connection. If an earlier attempt landed (or the
	// lease expired while disconnected) the retry comes back stale — the
	// server never double-counts, so retrying is always safe.
	var pending []reportEntry
	for ctx.Err() == nil {
		reg := *regp
		ls, err := c.StreamLeases(ctx, reg.WorkerID, cfg.StreamBatch)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var ae *APIError
			switch {
			case authErr(err):
				return fmt.Errorf("client: worker credentials rejected: %w", err)
			case errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests:
				// Load-shed: registration is intact, back off and retry.
				shed = shedDelay(shed, ae.RetryAfter)
				if sleepCtx(ctx, shed) != nil {
					return nil
				}
				continue
			case errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound:
				// Registration lapsed, or the server restarted (worker
				// registrations are not journaled); start over.
			case errors.As(err, &ae) && ae.StatusCode == http.StatusConflict:
				// The server still sees a previous stream (a dropped
				// connection it has not noticed yet) or an in-flight pull.
				// Deregistering clears both and requeues anything held.
				_ = c.Deregister(ctx, reg.WorkerID)
			case cfg.ReconnectWait > 0 && transientErr(err):
				// Server down (restarting?); wait and re-register.
				if sleepCtx(ctx, cfg.ReconnectWait) != nil {
					return nil
				}
			default:
				return err
			}
			nr, rerr := register()
			*regp = nr
			if rerr != nil {
				if authErr(rerr) {
					return fmt.Errorf("client: worker credentials rejected: %w", rerr)
				}
				return rerr
			}
			continue
		}
		shed = 0
		stop, err := c.consumeStream(ctx, cfg, *regp, ls, &pending)
		ls.Close()
		if errors.Is(err, errReconnect) {
			continue
		}
		if err != nil || stop {
			return err
		}
		return nil
	}
	return nil
}

// consumeStream drives one open lease stream: a reader goroutine feeds
// frames, the main loop executes assignments one at a time off the
// prefetched queue and batches completions for ReportBatch. Returns
// stop=true on a clean exit (hook stop, ctx cancelled — after draining)
// and errReconnect when the stream or a report batch died mid-flight.
func (c *Client) consumeStream(ctx context.Context, cfg WorkerConfig, reg *api.RegisterResponse, ls *LeaseStream, pending *[]reportEntry) (bool, error) {
	ref := core.WorkerRef{Site: reg.Site, Worker: reg.Worker}
	// Flush at half the pipeline depth: unreported completions occupy
	// pipeline slots server-side, so waiting for a full batch would stall
	// the grant flow exactly when it is busiest.
	flushAt := max(1, cfg.StreamBatch/2)

	frames := make(chan *api.LeaseBatch, 16)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			lb, err := ls.Next()
			if err != nil {
				readErr <- err
				return
			}
			select {
			case frames <- lb:
			case <-done:
				return
			}
		}
	}()

	var (
		queue    []*api.Assignment
		marks    = make(map[string]bool) // cancellation notices not yet resolved
		inflight *api.Assignment
		resCh    chan string
		cancelEx context.CancelFunc
		release  func()
	)
	startExec := func(a *api.Assignment) {
		execCtx, cancel, rel := drainContext(ctx, cfg.DrainGrace)
		inflight, cancelEx, release, resCh = a, cancel, rel, make(chan string, 1)
		go func(ch chan<- string) { ch <- c.executeOne(execCtx, ref, a, cfg) }(resCh)
	}
	finishExec := func(outcome string) {
		cancelEx()
		release()
		delete(marks, inflight.ID)
		*pending = append(*pending, reportEntry{inflight, outcome})
		inflight = nil
	}
	abortExec := func() {
		if inflight != nil {
			cancelEx()
			finishExec(<-resCh)
		}
	}
	// abandonQueue converts every prefetched-but-unexecuted assignment into
	// a failure report, so the server hears about abandoned work as soon as
	// the next connection is up instead of waiting out a lease TTL. The
	// server holds the matching guarantee from the other side: re-opening a
	// stream expires and requeues whatever the worker still held, so these
	// reports land Stale at worst — never double-counted.
	abandonQueue := func() {
		for _, a := range queue {
			delete(marks, a.ID)
			*pending = append(*pending, reportEntry{a, api.OutcomeFailure})
		}
		queue = nil
	}
	flush := func() (bool, error) {
		if len(*pending) == 0 {
			return false, nil
		}
		items := make([]api.ReportItem, len(*pending))
		for i, p := range *pending {
			items[i] = api.ReportItem{AssignmentID: p.a.ID, Outcome: p.outcome}
		}
		// Reports must not die with ctx: like the classic loop's report, a
		// short detached context lets a draining worker land its outcomes.
		rctx, rcancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		results, err := c.ReportBatch(rctx, reg.WorkerID, items)
		rcancel()
		if err != nil {
			if authErr(err) {
				return false, fmt.Errorf("client: worker credentials rejected: %w", err)
			}
			// Transient (connection cut, shed, leader change): keep pending
			// for the next connection; the retry is stale at worst.
			return false, errReconnect
		}
		finished := *pending
		*pending = nil
		stop := false
		for i := range finished {
			if cfg.OnReport != nil && cfg.OnReport(ctx, finished[i].a, finished[i].outcome, &results[i]) {
				stop = true
			}
		}
		return stop, nil
	}

	for {
		for inflight == nil && len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			if marks[a.ID] {
				// Cancelled before it ever ran (a replica finished
				// elsewhere): report failure without executing; the server
				// accounts it as a cancellation.
				delete(marks, a.ID)
				*pending = append(*pending, reportEntry{a, api.OutcomeFailure})
				continue
			}
			startExec(a)
		}
		if len(*pending) > 0 && (inflight == nil || len(*pending) >= flushAt) {
			stop, err := flush()
			if stop || err != nil {
				abortExec()
				abandonQueue()
				return stop, err
			}
		}
		var rc chan string
		if inflight != nil {
			rc = resCh
		}
		select {
		case <-ctx.Done():
			// Drain: the in-flight task gets its DrainGrace, the queued
			// leases are abandoned (they expire and requeue server-side),
			// and whatever finished is reported.
			if inflight != nil {
				finishExec(<-resCh)
			}
			if _, err := flush(); err != nil && !errors.Is(err, errReconnect) {
				return true, err
			}
			return true, nil
		case <-readErr:
			// Stream dropped. Abort the in-flight execution and abandon the
			// queue; the next stream open (or the TTL sweep, if we never
			// reconnect) requeues everything this worker held.
			abortExec()
			abandonQueue()
			return false, errReconnect
		case lb := <-frames:
			for i := range lb.Assignments {
				queue = append(queue, &lb.Assignments[i])
			}
			for _, id := range lb.Cancelled {
				if inflight != nil && inflight.ID == id {
					cancelEx()
				}
				marks[id] = true
			}
			if lb.OpenJobs == 0 && inflight == nil && len(queue) == 0 && len(*pending) == 0 && cfg.OnIdle != nil {
				stop, err := cfg.OnIdle(ctx, &api.PullResponse{Status: api.StatusEmpty, OpenJobs: lb.OpenJobs})
				if err != nil || stop {
					return true, err
				}
			}
		case outcome := <-rc:
			finishExec(outcome)
		}
	}
}
