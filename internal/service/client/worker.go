package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
)

// WorkerConfig drives RunWorker.
type WorkerConfig struct {
	// Site pins the worker to a site; nil lets the server balance.
	Site *int
	// Tags are capability labels the worker advertises at registration;
	// jobs submitted with Requires only dispatch to workers whose tags
	// cover every required one.
	Tags []string
	// PollWait is the server-side long-poll budget per pull request.
	// Defaults to 2s; the worker simply pulls again on an empty poll, so
	// this bounds reaction time to shutdown, not to new work (new work
	// wakes parked polls immediately).
	PollWait time.Duration
	// StageDelay, when non-nil, models file staging cost: the worker
	// sleeps StageDelay(assignment.Staged) before executing, under the
	// execution context (a cancellation aborts the wait).
	StageDelay func(staged int) time.Duration
	// Execute runs one assignment. It must honor ctx promptly: ctx is
	// cancelled when the server reports the execution cancelled (a replica
	// completed elsewhere) or the lease lost. A nil Execute is a no-op.
	// An error is reported to the server as a failed execution (the
	// scheduler requeues the task); it does not stop the worker loop.
	Execute func(ctx context.Context, ref core.WorkerRef, a *api.Assignment) error
	// OnIdle is consulted after every empty poll; returning stop ends the
	// loop. Nil means keep polling forever (until ctx is cancelled).
	OnIdle func(ctx context.Context, resp *api.PullResponse) (stop bool, err error)
	// OnReport is consulted after every report the server accepted;
	// returning stop ends the loop without another pull. A job-draining
	// worker uses it to exit the moment its report completes the job
	// (rep.JobState) instead of discovering it on the next empty poll.
	// outcome is what this worker reported (api.OutcomeSuccess or
	// api.OutcomeFailure) — an interrupted or failed execution reports
	// failure, and a hook counting completions must filter on it.
	OnReport func(ctx context.Context, a *api.Assignment, outcome string, rep *api.ReportResponse) (stop bool)
	// StreamBatch, when positive, switches the worker onto the streaming
	// lease protocol: one GET /v1/workers/{id}/stream connection replaces
	// per-task long-poll pulls, the server keeps up to StreamBatch
	// assignments prefetched in the worker's pipeline, lease renewal rides
	// the stream (no per-assignment heartbeats), and completions are
	// reported in batches. Zero keeps the classic pull/heartbeat/report
	// loop. See docs/PROTOCOL.md.
	StreamBatch int
	// ReconnectWait, when positive, makes the worker survive server
	// outages: transport-level pull/register failures (connection refused
	// while gridschedd restarts) are retried at this interval instead of
	// ending the loop, and the worker re-registers once the server is
	// back. The server recovers its jobs from its journal but not worker
	// registrations — re-registration is the designed reconnect path.
	// Zero keeps the historical fail-fast behavior.
	ReconnectWait time.Duration
	// RebalanceWait, when positive, lets an idle worker move to where the
	// work is: after this long of empty polls with zero open jobs on its
	// current server, the worker deregisters and re-registers. Behind a
	// partition router a fresh registration is placed on the live
	// partition with the most open jobs, so an idle fleet drains a
	// partition that recovered work after an outage instead of starving
	// it. Against a single gridschedd re-registering is a harmless no-op
	// move. Zero disables rebalancing. Pull-mode only (streaming workers
	// hold a lease channel open; see docs/PARTITIONING.md).
	RebalanceWait time.Duration
	// DrainGrace, when positive, makes shutdown graceful: after ctx is
	// cancelled an in-flight execution keeps running for up to this long
	// — heartbeats included — so the task finishes and its outcome is
	// reported instead of abandoning the lease to expire server-side. The
	// loop stops pulling new work either way, and RunWorker still
	// deregisters on the way out. Zero keeps the historical behavior:
	// cancellation aborts the execution immediately (which reports a
	// failure, requeueing the task).
	DrainGrace time.Duration
}

// RunWorker registers a worker and runs the full protocol loop — long-poll
// pull, heartbeat while executing, report — until ctx is cancelled (returns
// nil), OnIdle stops it (nil), or a protocol error occurs. A worker whose
// registration lease lapsed (e.g. the process was suspended) re-registers
// transparently. Shed or rate-limited requests (429) are retried with
// capped, jittered backoff honoring the server's Retry-After; rejected
// credentials (401/403) end the loop with an error — they are the one
// failure retrying cannot fix.
func (c *Client) RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.PollWait <= 0 {
		cfg.PollWait = 2 * time.Second
	}
	// register enrolls (or re-enrolls), riding out server outages when
	// ReconnectWait allows. A shed registration (429) is always retried —
	// the server is up, merely overloaded, and its Retry-After says when —
	// but a rejected credential (401/403) is terminal immediately:
	// re-sending the same bad token forever is the one retry that can
	// never work.
	register := func() (*api.RegisterResponse, error) {
		var shed time.Duration
		for {
			reg, err := c.RegisterWorker(ctx, cfg.Site, cfg.Tags)
			if err == nil || ctx.Err() != nil || authErr(err) {
				return reg, err
			}
			var wait time.Duration
			var ae *APIError
			switch {
			case errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests:
				shed = shedDelay(shed, ae.RetryAfter)
				wait = shed
			case cfg.ReconnectWait > 0 && transientErr(err):
				wait = cfg.ReconnectWait
			default:
				return reg, err
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return nil, err
			}
		}
	}
	reg, err := register()
	if err != nil {
		if authErr(err) {
			return fmt.Errorf("client: worker credentials rejected: %w", err)
		}
		return err
	}
	defer func() {
		if reg == nil { // a mid-loop re-registration failed
			return
		}
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		_ = c.Deregister(dctx, reg.WorkerID)
	}()

	if cfg.StreamBatch > 0 {
		return c.runStreamWorker(ctx, cfg, &reg, register)
	}

	var shed time.Duration
	var idleSince time.Time // first empty poll of the current idle stretch
	for ctx.Err() == nil {
		resp, err := c.Pull(ctx, reg.WorkerID, cfg.PollWait)
		if err != nil {
			idleSince = time.Time{}
			if ctx.Err() != nil {
				return nil
			}
			var ae *APIError
			switch {
			case authErr(err):
				// The token was revoked (or the server's auth table
				// changed) mid-run. Terminal: see register.
				return fmt.Errorf("client: worker credentials rejected: %w", err)
			case errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests:
				// Load-shed or rate-limited pull. Registration is intact —
				// back off (capped, jittered, honoring Retry-After) and
				// pull again; re-registering would only add load.
				shed = shedDelay(shed, ae.RetryAfter)
				if sleepCtx(ctx, shed) != nil {
					return nil
				}
				continue
			case errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound:
				// Registration lease lapsed, or the server restarted and
				// recovered (worker registrations are not journaled);
				// start over.
			case errors.As(err, &ae) && ae.StatusCode == http.StatusConflict:
				// The server believes we hold an assignment — a Pull or
				// Report response was lost in transit. Deregister (which
				// requeues the orphaned assignment) and start over rather
				// than dying on a transient network fault.
				_ = c.Deregister(ctx, reg.WorkerID)
			case cfg.ReconnectWait > 0 && transientErr(err):
				// Server down (restarting?); wait and re-register.
				if sleepCtx(ctx, cfg.ReconnectWait) != nil {
					return nil
				}
			default:
				return err
			}
			if reg, err = register(); err != nil {
				if authErr(err) {
					return fmt.Errorf("client: worker credentials rejected: %w", err)
				}
				return err
			}
			continue
		}
		shed = 0
		if resp.Status != api.StatusAssigned {
			if cfg.OnIdle != nil {
				stop, err := cfg.OnIdle(ctx, resp)
				if err != nil || stop {
					return err
				}
			}
			if cfg.RebalanceWait > 0 && resp.OpenJobs == 0 {
				if idleSince.IsZero() {
					idleSince = time.Now()
				} else if time.Since(idleSince) >= cfg.RebalanceWait {
					// Nothing left here; re-enroll for fresh placement (a
					// partition router puts the registration where open
					// jobs are waiting). Deregistering first frees the
					// slot; if re-registration fails terminally the loop
					// ends like any registration failure.
					_ = c.Deregister(ctx, reg.WorkerID)
					reg = nil
					if reg, err = register(); err != nil {
						if authErr(err) {
							return fmt.Errorf("client: worker credentials rejected: %w", err)
						}
						return err
					}
					idleSince = time.Time{}
				}
			} else {
				idleSince = time.Time{}
			}
			continue
		}
		idleSince = time.Time{}
		rep, outcome := c.runAssignment(ctx, reg, resp.Assignment, cfg)
		if rep != nil && cfg.OnReport != nil && cfg.OnReport(ctx, resp.Assignment, outcome, rep) {
			return nil
		}
	}
	return nil
}

// runAssignment executes one leased task: heartbeat in the background,
// stage, execute, report. It returns the server's report response plus
// the outcome this worker reported, or a nil response when no report was
// made (lost lease) or the report did not go through.
func (c *Client) runAssignment(ctx context.Context, reg *api.RegisterResponse, a *api.Assignment, cfg WorkerConfig) (*api.ReportResponse, string) {
	ref := core.WorkerRef{Site: reg.Site, Worker: reg.Worker}
	execCtx, cancel, release := drainContext(ctx, cfg.DrainGrace)
	defer release()
	defer cancel()

	// Heartbeat at a third of the lease TTL until the execution ends; a
	// cancelled or lost lease cancels the execution context.
	hbEvery := time.Duration(a.LeaseTTLMillis) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	leaseGone := false
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-execCtx.Done():
				return
			case <-t.C:
			}
			hb, err := c.Heartbeat(execCtx, a.ID, reg.WorkerID)
			if err != nil {
				continue // transient; the lease survives until TTL
			}
			switch hb.State {
			case api.HeartbeatCancelled:
				cancel()
				return
			case api.HeartbeatGone:
				leaseGone = true
				cancel()
				return
			}
		}
	}()

	outcome := c.executeOne(execCtx, ref, a, cfg)
	cancel()
	<-hbDone

	if leaseGone {
		// The server already requeued the task; a report would be stale.
		return nil, ""
	}
	rctx, rcancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer rcancel()
	rep, err := c.Report(rctx, a.ID, reg.WorkerID, outcome)
	if err != nil {
		return nil, ""
	}
	return rep, outcome
}

// drainContext builds the execution context for one assignment. With a
// positive grace the context outlives ctx by up to grace — a shutdown
// signal lets the in-flight task finish and report instead of abandoning
// its lease — while the returned cancel still aborts it immediately
// (cancelled execution, lost lease). release must be called once the
// execution ends; it stops the grace watcher.
func drainContext(ctx context.Context, grace time.Duration) (context.Context, context.CancelFunc, func()) {
	if grace <= 0 {
		execCtx, cancel := context.WithCancel(ctx)
		return execCtx, cancel, func() {}
	}
	execCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-watchDone:
		case <-ctx.Done():
			t := time.NewTimer(grace)
			defer t.Stop()
			select {
			case <-watchDone:
			case <-t.C:
				cancel()
			}
		}
	}()
	var once sync.Once
	return execCtx, cancel, func() { once.Do(func() { close(watchDone) }) }
}

// executeOne stages and executes one assignment under execCtx and returns
// the outcome to report: failure when the execution errored or was
// interrupted mid-flight (never claim success for an abandoned task — the
// server counts it as cancelled if it obsoleted the execution itself).
func (c *Client) executeOne(execCtx context.Context, ref core.WorkerRef, a *api.Assignment, cfg WorkerConfig) string {
	var execErr error
	if cfg.StageDelay != nil && a.Staged > 0 {
		if d := cfg.StageDelay(a.Staged); d > 0 {
			select {
			case <-execCtx.Done():
			case <-time.After(d):
			}
		}
	}
	if execCtx.Err() == nil && cfg.Execute != nil {
		execErr = cfg.Execute(execCtx, ref, a)
	}
	if execErr != nil || execCtx.Err() != nil {
		return api.OutcomeFailure
	}
	return api.OutcomeSuccess
}
