package client_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestWorkerDrainsInFlightTaskOnShutdown: with DrainGrace set, cancelling
// the worker's context mid-execution must NOT abort the task — the worker
// finishes it, reports success, and deregisters, leaving no lease behind
// for the expiry sweeper (the gridworker SIGTERM path).
func TestWorkerDrainsInFlightTaskOnShutdown(t *testing.T) {
	s, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 64},
		NewScheduler: gridsched.SchedulerFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)

	jobID, err := cl.SubmitJob(context.Background(), "drain", "workqueue", 0, smallWorkload(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	aborted := make(chan error, 1)
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- cl.RunWorker(ctx, client.WorkerConfig{
			PollWait:   100 * time.Millisecond,
			DrainGrace: 10 * time.Second,
			Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
				close(started)
				select {
				case <-release:
					aborted <- nil
				case <-execCtx.Done():
					aborted <- execCtx.Err()
				}
				return nil
			},
		})
	}()

	<-started
	cancel() // SIGTERM-equivalent: shutdown lands mid-execution
	time.Sleep(50 * time.Millisecond)
	close(release) // the task finishes after the signal, within the grace
	if err := <-workerDone; err != nil {
		t.Fatalf("worker loop: %v", err)
	}
	if err := <-aborted; err != nil {
		t.Fatalf("execution aborted despite DrainGrace: %v", err)
	}

	st, err := cl.Job(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Completed != 1 || st.Expired != 0 || st.Failed != 0 {
		t.Fatalf("drained shutdown left %+v, want 1 completion, 0 expiries, 0 failures", st)
	}
	// Deregistered on the way out: the slot is free for a successor.
	if h := s.Health(); h.Workers != 0 {
		t.Fatalf("%d workers still registered after drain", h.Workers)
	}
}

// TestWorkerAbortsWithoutDrainGrace pins the historical contract: with no
// grace, cancellation interrupts the execution and the outcome reports as
// a failure (requeue) rather than a false success.
func TestWorkerAbortsWithoutDrainGrace(t *testing.T) {
	s, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 64},
		NewScheduler: gridsched.SchedulerFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)

	jobID, err := cl.SubmitJob(context.Background(), "abort", "workqueue", 0, smallWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- cl.RunWorker(ctx, client.WorkerConfig{
			PollWait: 100 * time.Millisecond,
			Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
				close(started)
				<-execCtx.Done()
				return nil
			},
		})
	}()
	<-started
	cancel()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker loop: %v", err)
	}
	st, err := cl.Job(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 0 || st.Failed != 1 {
		t.Fatalf("abort-without-grace reported %+v, want the failure/requeue path", st)
	}
}
