package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridsched/internal/service/api"
)

func TestNextDelayEnvelope(t *testing.T) {
	within := func(got, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got >= hi {
			t.Fatalf("delay %s outside [%s, %s)", got, lo, hi)
		}
	}
	for i := 0; i < 50; i++ {
		// submitDelay: exponential from 50ms, capped at 2s.
		within(submitDelay(0, 0), 25*time.Millisecond, 50*time.Millisecond)
		within(submitDelay(50*time.Millisecond, 0), 50*time.Millisecond, 100*time.Millisecond)
		within(submitDelay(time.Hour, 0), time.Second, 2*time.Second)
		// A Retry-After hint longer than the doubled delay wins, still capped.
		within(submitDelay(0, time.Second), 500*time.Millisecond, time.Second)
		within(submitDelay(0, time.Hour), time.Second, 2*time.Second)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uncancelled sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled sleep actually slept")
	}
}

// leaderStub is a minimal leader answering /healthz and counting hits.
func leaderStub(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestClientFailsOverOnTransportError: with the first endpoint dead, one
// failed attempt rotates to the live endpoint and stays there.
func TestClientFailsOverOnTransportError(t *testing.T) {
	var hits atomic.Int64
	live := leaderStub(t, &hits)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // reserve then release: a connect-refused endpoint

	c := NewMulti([]string{dead.URL, live.URL}, nil)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("first attempt against the dead endpoint succeeded")
	}
	if got := c.Endpoint(); got != live.URL {
		t.Fatalf("after transport error: endpoint %q, want %q", got, live.URL)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("after failover: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("live endpoint served %d requests, want 1", hits.Load())
	}
}

// TestClientFollowsLeaderHint: a follower's 421 plus X-Gridsched-Leader
// moves the client to the leader — even when the leader was never in the
// configured endpoint list (it is adopted).
func TestClientFollowsLeaderHint(t *testing.T) {
	var hits atomic.Int64
	leader := leaderStub(t, &hits)
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.LeaderHeader, leader.URL)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "follower: go to the leader"})
	}))
	t.Cleanup(follower.Close)

	c := NewMulti([]string{follower.URL}, nil)
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("421 response did not surface as an error")
	}
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("421 error: %v", err)
	}
	if got := c.Endpoint(); got != leader.URL {
		t.Fatalf("after 421 hint: endpoint %q, want %q", got, leader.URL)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retry at hinted leader: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("leader served %d requests, want 1", hits.Load())
	}
}

// TestMisdirectedIsTransient: 421 must be retryable for the idempotent
// submit path, so a submit racing a failover converges on the new leader
// instead of giving up.
func TestMisdirectedIsTransient(t *testing.T) {
	if !transientErr(&APIError{StatusCode: http.StatusMisdirectedRequest}) {
		t.Fatal("421 not transient")
	}
	if !transientErr(&APIError{StatusCode: http.StatusServiceUnavailable}) {
		t.Fatal("503 not transient")
	}
	if transientErr(&APIError{StatusCode: http.StatusBadRequest}) {
		t.Fatal("400 transient")
	}
}

// TestSubmitJobIdempotentRetriesAcrossFailover: the submit hits a
// follower (421 + hint), retries, and lands exactly once on the leader
// with the same submission id.
func TestSubmitJobIdempotentRetriesAcrossFailover(t *testing.T) {
	var submissions atomic.Int64
	var lastSubmission atomic.Value
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.SubmitJobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		submissions.Add(1)
		lastSubmission.Store(req.SubmissionID)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(api.SubmitJobResponse{JobID: "job-1"})
	}))
	t.Cleanup(leader.Close)
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.LeaderHeader, leader.URL)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "not the leader"})
	}))
	t.Cleanup(follower.Close)

	c := NewMulti([]string{follower.URL}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	id, err := c.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
		Name: "j", Algorithm: "workqueue", SubmissionID: "sub-1",
	})
	if err != nil {
		t.Fatalf("submit across failover: %v", err)
	}
	if id != "job-1" {
		t.Fatalf("job id %q", id)
	}
	if submissions.Load() != 1 {
		t.Fatalf("leader saw %d submissions, want 1", submissions.Load())
	}
	if sid, _ := lastSubmission.Load().(string); sid == "" {
		t.Fatal("submission id not set on the retried request")
	}
}

func asAPIError(err error, out **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*out = ae
	}
	return ok
}
