package client

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
)

// InProcess returns a Client whose requests are served by h directly —
// full HTTP protocol, no sockets. The live runtime (internal/live) uses it
// to embed gridschedd inside one process; tests use it to avoid port
// allocation. Long polls work unchanged (the handler blocks on the
// request's context like it would under net/http), and streaming endpoints
// get a real pipe: frames written by the handler are readable immediately,
// not after the handler returns.
func InProcess(h http.Handler) *Client {
	return New("http://gridschedd.inproc", &http.Client{Transport: handlerTransport{h: h}})
}

// handlerTransport serves each round-trip by invoking the handler
// synchronously on the caller's goroutine — except streaming paths, whose
// handlers run for the connection's lifetime and so get their own
// goroutine plus a pipe.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Streaming endpoints (the lease stream, the replication stream) hold
	// the response open and flush frames incrementally. Buffering them
	// would deadlock: the recorder's body never "completes". A pipe plus a
	// handler goroutine reproduces net/http's chunked-response behavior.
	if strings.HasSuffix(req.URL.Path, "/stream") {
		return t.stream(req)
	}
	rec := &responseRecorder{code: http.StatusOK, header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

func (t handlerTransport) stream(req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	sr := &streamRecorder{code: http.StatusOK, header: make(http.Header), pw: pw, committed: make(chan struct{})}
	go func() {
		t.h.ServeHTTP(sr, req)
		sr.commit()
		pw.Close()
	}()
	// Block until the handler commits the status line — exactly when a real
	// client's Do would return. The body then streams through the pipe;
	// closing it (or cancelling the request context) ends the handler.
	<-sr.committed
	return &http.Response{
		Status:        http.StatusText(sr.code),
		StatusCode:    sr.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        sr.header,
		Body:          pr,
		ContentLength: -1,
		Request:       req,
	}, nil
}

// responseRecorder is the minimal http.ResponseWriter the buffered
// handlers need (no hijacking, no flushing semantics beyond buffering).
type responseRecorder struct {
	code        int
	wroteHeader bool
	header      http.Header
	body        bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.code = code
		r.wroteHeader = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	return r.body.Write(p)
}

// streamRecorder is the streaming http.ResponseWriter: the first
// WriteHeader/Write commits the response (unblocking RoundTrip), and every
// Write goes straight down the pipe. Flush is a no-op — pipe writes are
// visible to the reader immediately — but implementing http.Flusher is
// what tells the handler streaming is possible at all.
type streamRecorder struct {
	code   int
	header http.Header
	pw     *io.PipeWriter

	once      sync.Once
	committed chan struct{}
}

func (r *streamRecorder) Header() http.Header { return r.header }

func (r *streamRecorder) WriteHeader(code int) {
	r.once.Do(func() {
		r.code = code
		close(r.committed)
	})
}

func (r *streamRecorder) Write(p []byte) (int, error) {
	r.commit()
	return r.pw.Write(p)
}

func (r *streamRecorder) Flush() {}

func (r *streamRecorder) commit() {
	r.once.Do(func() { close(r.committed) })
}
