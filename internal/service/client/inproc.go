package client

import (
	"bytes"
	"io"
	"net/http"
)

// InProcess returns a Client whose requests are served by h directly —
// full HTTP/JSON protocol, no sockets. The live runtime (internal/live)
// uses it to embed gridschedd inside one process; tests use it to avoid
// port allocation. Long polls work unchanged: the handler blocks on the
// request's context like it would under net/http.
func InProcess(h http.Handler) *Client {
	return New("http://gridschedd.inproc", &http.Client{Transport: handlerTransport{h: h}})
}

// handlerTransport serves each round-trip by invoking the handler
// synchronously on the caller's goroutine.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{code: http.StatusOK, header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is the minimal http.ResponseWriter the JSON handlers
// need (no hijacking, no flushing semantics beyond buffering).
type responseRecorder struct {
	code        int
	wroteHeader bool
	header      http.Header
	body        bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.code = code
		r.wroteHeader = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	return r.body.Write(p)
}
