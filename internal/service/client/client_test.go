package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

func smallWorkload(tasks int) *workload.Workload {
	w := &workload.Workload{Name: "client-test", NumFiles: tasks}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID: workload.TaskID(i), Files: []workload.FileID{workload.FileID(i)},
		})
	}
	return w
}

func durableService(t *testing.T, dir string) *service.Service {
	t.Helper()
	s, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 2, WorkersPerSite: 2, CapacityFiles: 64},
		NewScheduler: gridsched.SchedulerFactory(),
		DataDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSubmitIdempotentAcrossServerRestart: a duplicate submissionId must
// resolve to the original job even when the duplicate arrives at a
// different process that recovered the first submission from its journal —
// the lost-ack-then-restart retry scenario.
func TestSubmitIdempotentAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := api.SubmitJobRequest{
		Name: "idem", Algorithm: "workqueue", Workload: smallWorkload(8),
		SubmissionID: "retry-key-1",
	}

	s1 := durableService(t, dir)
	ts1 := httptest.NewServer(s1.Handler())
	id1, err := client.New(ts1.URL, nil).SubmitJobIdempotent(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Same key on the same process first (the in-memory dedupe path).
	again, err := client.New(ts1.URL, nil).SubmitJobIdempotent(ctx, req)
	if err != nil || again != id1 {
		t.Fatalf("same-process resubmit: %q, %v; want %q", again, err, id1)
	}
	ts1.Close()
	s1.Close()

	s2 := durableService(t, dir)
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	id2, err := client.New(ts2.URL, nil).SubmitJobIdempotent(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1 {
		t.Fatalf("restart resubmit created %q, original was %q", id2, id1)
	}
	jobs, err := client.New(ts2.URL, nil).Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("%d resident jobs after duplicate submissions, want 1", len(jobs))
	}
}

// TestSubmitRetryExhaustionSurfacesLastTransportError: when every attempt
// inside ResubmitWindow fails at the transport layer, SubmitJob returns
// that transport error (not a synthetic timeout, not an APIError).
func TestSubmitRetryExhaustionSurfacesLastTransportError(t *testing.T) {
	// A listener that is immediately closed: every dial is refused.
	ts := httptest.NewServer(http.NotFoundHandler())
	dead := ts.URL
	ts.Close()

	cl := client.New(dead, nil)
	cl.ResubmitWindow = 300 * time.Millisecond
	start := time.Now()
	_, err := cl.SubmitJob(context.Background(), "doomed", "workqueue", 0, smallWorkload(2))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("submit against a dead server succeeded")
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		t.Fatalf("got protocol error %v, want the underlying transport error", ae)
	}
	// At least one backoff round ran before giving up, and the window was
	// honored rather than retrying forever.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("gave up after %s, before the first retry", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("retried for %s, far past the 300ms window", elapsed)
	}
}

// TestSubmitRetriesThrough503: 503 is the "server up but not ready"
// answer (journal syncing, restarting); a keyed submission must ride it
// out and land exactly once.
func TestSubmitRetriesThrough503(t *testing.T) {
	s, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 64},
		NewScheduler: gridsched.SchedulerFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var attempts atomic.Int64
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, `{"error":"still syncing"}`, http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl := client.New(ts.URL, nil)
	id, err := cl.SubmitJob(context.Background(), "late", "workqueue", 0, smallWorkload(4))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty job id")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two 503s then success)", got)
	}
	// A rejection that is a real answer is NOT retried.
	attempts.Store(100)
	if _, err := cl.SubmitJob(context.Background(), "bad", "no-such-algorithm", 0, smallWorkload(4)); err == nil {
		t.Fatal("bad algorithm accepted")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
			t.Fatalf("got %v, want an immediate 400", err)
		}
	}
}
