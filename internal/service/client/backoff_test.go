package client

import (
	"testing"
	"time"
)

// TestShedDelay pins the 429 backoff envelope: exponential from 500ms,
// raised to the server hint, capped at 15s, jittered into [d/2, d).
func TestShedDelay(t *testing.T) {
	within := func(got, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got >= hi {
			t.Fatalf("delay %s outside [%s, %s)", got, lo, hi)
		}
	}
	for i := 0; i < 50; i++ {
		within(shedDelay(0, 0), 250*time.Millisecond, 500*time.Millisecond)
		within(shedDelay(400*time.Millisecond, 0), 400*time.Millisecond, 800*time.Millisecond)
		// The server's hint wins when it is longer than the doubled delay.
		within(shedDelay(0, 4*time.Second), 2*time.Second, 4*time.Second)
		// ... but never pushes past the cap.
		within(shedDelay(0, time.Minute), 7500*time.Millisecond, 15*time.Second)
		within(shedDelay(14*time.Second, 0), 7500*time.Millisecond, 15*time.Second)
	}
}
