// Worker context: per-slot capability tags plus fixed-point EWMAs of task
// duration and failure rate, folded server-side from report traffic. The
// store is keyed by worker SLOT (core.WorkerRef), not by registration id:
// registrations are liveness state that dies with the process, while the
// slot a worker occupies is stable across restarts, which is what lets
// recovery reproduce the EWMAs exactly.
//
// Determinism contract: the EWMAs are a pure function of the journal
// stream. An observation is folded exactly when a journal record is
// written for the event (or always, on an unjournaled service), and the
// folded sample is computed only from fields the record carries — the
// millisecond timestamps journaled with the dispatch and the report. In
// particular cancelled-ness is deliberately ignored: a late success report
// for a cancelled replica folds as a success, live and in replay, because
// the record stream cannot distinguish it. Integer fixed-point arithmetic
// (no floats) keeps the fold bit-exact across recovery.
package service

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"gridsched/internal/core"
)

const (
	// ewmaShift is the fixed-point fraction width of the EWMAs.
	ewmaShift = 16
	// ewmaOne is 1.0 in fixed point.
	ewmaOne = int64(1) << ewmaShift
	// ewmaAlphaShift sets the smoothing factor alpha = 1/8: each new
	// sample moves the accumulator 1/8 of the way toward it.
	ewmaAlphaShift = 3
)

// ewmaFold folds one fixed-point sample into a fixed-point accumulator.
// The first sample seeds the accumulator outright so a worker's estimate
// is meaningful from its first observation. Right shift of the (possibly
// negative) delta is arithmetic in Go, so the fold is deterministic.
func ewmaFold(acc, sample int64, first bool) int64 {
	if first {
		return sample
	}
	return acc + ((sample - acc) >> ewmaAlphaShift)
}

// slotStats is one worker slot's accumulated context.
type slotStats struct {
	tags     []string
	durEwma  int64 // EWMA of task duration, milliseconds << ewmaShift
	failEwma int64 // EWMA of the failure indicator, fraction << ewmaShift
	samples  int64 // successful duration samples folded
	events   int64 // outcome events folded (successes + failures)
}

// telemetry is the worker-context store. Leaf lock: nothing is acquired
// while tel.mu is held, and it may be taken under shard, coordinator, or
// registry locks.
type telemetry struct {
	mu    sync.Mutex
	slots [][]slotStats // [site][worker]
}

func newTelemetry(topo Topology) *telemetry {
	t := &telemetry{slots: make([][]slotStats, topo.Sites)}
	for i := range t.slots {
		t.slots[i] = make([]slotStats, topo.WorkersPerSite)
	}
	return t
}

func (t *telemetry) slot(ref core.WorkerRef) *slotStats {
	if ref.Site < 0 || ref.Site >= len(t.slots) {
		return nil
	}
	row := t.slots[ref.Site]
	if ref.Worker < 0 || ref.Worker >= len(row) {
		return nil
	}
	return &row[ref.Worker]
}

// setTags records the capability tags of the worker currently occupying
// the slot. Tags are liveness state (a re-registered worker brings its
// own), so they are not journaled and not part of the determinism
// contract.
func (t *telemetry) setTags(ref core.WorkerRef, tags []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.slot(ref); s != nil {
		s.tags = slices.Clone(tags)
	}
}

// observeSuccess folds a successful completion. durMillis is the
// journaled report timestamp minus the journaled grant timestamp; hasDur
// is false when the grant timestamp is unknown (pre-upgrade journal
// tails), in which case only the failure EWMA and the event count move.
// Negative durations (impossible from one journal stream, guarded anyway)
// clamp to zero.
func (t *telemetry) observeSuccess(ref core.WorkerRef, durMillis int64, hasDur bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slot(ref)
	if s == nil {
		return
	}
	if hasDur {
		if durMillis < 0 {
			durMillis = 0
		}
		s.durEwma = ewmaFold(s.durEwma, durMillis<<ewmaShift, s.samples == 0)
		s.samples++
	}
	s.failEwma = ewmaFold(s.failEwma, 0, s.events == 0)
	s.events++
}

// observeFailure folds a failed or expired execution.
func (t *telemetry) observeFailure(ref core.WorkerRef) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slot(ref)
	if s == nil {
		return
	}
	s.failEwma = ewmaFold(s.failEwma, ewmaOne, s.events == 0)
	s.events++
}

// WorkerContext implements core.ContextSource over the store, converting
// the fixed-point accumulators to the float view the wrapper scores with.
func (t *telemetry) WorkerContext(ref core.WorkerRef) (core.WorkerContext, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slot(ref)
	if s == nil || (s.events == 0 && len(s.tags) == 0) {
		return core.WorkerContext{}, false
	}
	return core.WorkerContext{
		Tags:           slices.Clone(s.tags),
		MeanTaskMillis: float64(s.durEwma) / float64(ewmaOne),
		FailureRate:    float64(s.failEwma) / float64(ewmaOne),
		Samples:        s.samples,
		Events:         s.events,
	}, true
}

// snapshotWorkers renders every slot with observations for the service
// snapshot, sorted by (site, worker) so snapshot bytes are deterministic.
func (t *telemetry) snapshotWorkers() []snapWorker {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []snapWorker
	for site := range t.slots {
		for wk := range t.slots[site] {
			s := &t.slots[site][wk]
			if s.events == 0 {
				continue
			}
			out = append(out, snapWorker{
				Site: site, Worker: wk,
				DurEwma: s.durEwma, FailEwma: s.failEwma,
				Samples: s.samples, Events: s.events,
			})
		}
	}
	return out
}

// restoreWorkers loads snapshot telemetry; journal tail records fold on
// top of it in LSN order (recovery.go).
func (t *telemetry) restoreWorkers(ws []snapWorker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range ws {
		w := &ws[i]
		s := t.slot(core.WorkerRef{Site: w.Site, Worker: w.Worker})
		if s == nil {
			continue // snapshot from a larger topology; drop the slot
		}
		s.durEwma, s.failEwma = w.DurEwma, w.FailEwma
		s.samples, s.events = w.Samples, w.Events
	}
}

// writeMetrics appends one gauge line per observed slot to b in the
// Prometheus text format used by /metrics.
func (t *telemetry) writeMetrics(b []byte) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	header := false
	for site := range t.slots {
		for wk := range t.slots[site] {
			s := &t.slots[site][wk]
			if s.events == 0 {
				continue
			}
			if !header {
				b = append(b, "# TYPE gridsched_worker_mean_task_seconds gauge\n"...)
				b = append(b, "# TYPE gridsched_worker_failure_rate gauge\n"...)
				b = append(b, "# TYPE gridsched_worker_samples gauge\n"...)
				header = true
			}
			mean := float64(s.durEwma) / float64(ewmaOne) / 1000.0
			rate := float64(s.failEwma) / float64(ewmaOne)
			b = fmt.Appendf(b, "gridsched_worker_mean_task_seconds{site=\"%d\",worker=\"%d\"} %g\n", site, wk, mean)
			b = fmt.Appendf(b, "gridsched_worker_failure_rate{site=\"%d\",worker=\"%d\"} %g\n", site, wk, rate)
			b = fmt.Appendf(b, "gridsched_worker_samples{site=\"%d\",worker=\"%d\"} %d\n", site, wk, s.samples)
		}
	}
	return b
}

// durRing is a per-job ring of recent completed-task durations in
// milliseconds, backing the straggler percentile. Liveness state only: it
// is guarded by the job's shard lock, never journaled, and starts empty
// after recovery (post-crash there are no live leases to speculate on, so
// nothing is lost).
type durRing struct {
	buf []int64
	n   int // total samples ever added (ring holds min(n, cap))
	idx int
}

// durRingCap bounds the per-job sample memory; a percentile over the most
// recent samples tracks the job's current phase better than its history.
const durRingCap = 256

func (r *durRing) add(d int64) {
	if d < 0 {
		d = 0
	}
	if r.buf == nil {
		r.buf = make([]int64, 0, 64)
	}
	if len(r.buf) < durRingCap {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.idx] = d
		r.idx = (r.idx + 1) % durRingCap
	}
	r.n++
}

// mean returns the average of the ring's samples, false on an empty ring.
func (r *durRing) mean() (int64, bool) {
	if len(r.buf) == 0 {
		return 0, false
	}
	sum := int64(0)
	for _, d := range r.buf {
		sum += d
	}
	return sum / int64(len(r.buf)), true
}

// percentile returns the p-quantile (nearest-rank) of the ring, false on
// an empty ring. p outside (0, 1] — including NaN — is clamped to 1 (the
// max), so a misconfigured percentile can only make speculation rarer.
func (r *durRing) percentile(p float64) (int64, bool) {
	if len(r.buf) == 0 {
		return 0, false
	}
	if math.IsNaN(p) || p <= 0 || p > 1 {
		p = 1
	}
	sorted := make([]int64, len(r.buf))
	copy(sorted, r.buf)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], true
}

// shouldSpeculate decides whether a lease of the given age is a straggler
// against the job's duration distribution. Cold start is absolute: with
// fewer than minSamples observations there is no distribution to be slow
// against, and the answer is always no. The threshold floor of 1ms is the
// zero-duration guard — a job whose observed tasks all completed within
// the clock tick must not speculate every in-flight lease on sight.
func shouldSpeculate(ageMillis int64, ring *durRing, pct, factor float64, minSamples int) bool {
	if ring == nil || ring.n < minSamples || len(ring.buf) == 0 {
		return false
	}
	p, ok := ring.percentile(pct)
	if !ok {
		return false
	}
	if math.IsNaN(factor) || factor < 1 {
		factor = 1
	}
	threshold := int64(float64(p) * factor)
	if threshold < 1 {
		threshold = 1
	}
	return ageMillis > threshold
}

// tagsSatisfy reports whether every required tag is present in have.
func tagsSatisfy(requires, have []string) bool {
	for _, want := range requires {
		if !slices.Contains(have, want) {
			return false
		}
	}
	return true
}

// maxTags and maxTagLen bound worker tags and job requires lists.
const (
	maxTags   = 16
	maxTagLen = 64
)

// validTag mirrors tenant-name hygiene: tags reach JSON status payloads
// and log lines, so the charset is conservative.
func validTag(tag string) bool {
	if len(tag) == 0 || len(tag) > maxTagLen {
		return false
	}
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

func validateTags(kind string, tags []string) error {
	if len(tags) > maxTags {
		return errf(400, "service: too many %s (%d > %d)", kind, len(tags), maxTags)
	}
	for _, tag := range tags {
		if !validTag(tag) {
			return errf(400, "service: bad %s %q (1-%d chars of [A-Za-z0-9._-])", kind, tag, maxTagLen)
		}
	}
	return nil
}
