package service_test

import (
	"fmt"
	"testing"

	"gridsched/internal/benchsuite"
	"gridsched/internal/journal"
)

// The benchmark bodies live in internal/benchsuite, shared with
// cmd/gridbench so the recorded perf trajectory measures exactly what CI
// smoke-runs here.

// BenchmarkDispatchRoundTripInProcess: protocol + JSON codec + scheduler,
// no sockets.
func BenchmarkDispatchRoundTripInProcess(b *testing.B) {
	benchsuite.ServiceDispatchInProcess(b)
}

// BenchmarkDispatchRoundTripIngress: the same round-trip behind the full
// production middleware chain (trace IDs, recovery, auth, rate limit,
// shedder) with nothing rejecting — the delta against
// BenchmarkDispatchRoundTripInProcess is the chain's no-shed overhead
// (acceptance bar: ≤5%).
func BenchmarkDispatchRoundTripIngress(b *testing.B) {
	benchsuite.ServiceDispatchIngress(b)
}

// BenchmarkDispatchRoundTripContended: six tenant-weighted jobs resident
// at once, so every pull exercises the fair-share arbiter across a
// contended job set.
func BenchmarkDispatchRoundTripContended(b *testing.B) {
	benchsuite.ServiceDispatchContended(b)
}

// BenchmarkDispatchSpeculative: one full straggler-mitigation cycle per
// iteration — sweep staging, speculative twin grant, winning report,
// cancelled-primary report — against the Service API directly (no
// transport codec), isolating the speculation machinery's cost.
func BenchmarkDispatchSpeculative(b *testing.B) {
	benchsuite.ServiceDispatchSpeculative(b)
}

// BenchmarkServiceDispatchParallel: 8 concurrent workers × 8 resident
// jobs against the Service API, at stripe counts bracketing the
// single-lock baseline (shards=1) and the sharded core (shards=8). The
// ISSUE-5 acceptance bar reads the shards=8 / shards=1 throughput ratio
// on a multi-core runner.
func BenchmarkServiceDispatchParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), benchsuite.ServiceDispatchParallel(shards))
	}
}

// BenchmarkDispatchRoundTripTCP: the same path over loopback HTTP.
func BenchmarkDispatchRoundTripTCP(b *testing.B) {
	benchsuite.ServiceDispatchWireJSON(b)
}

// BenchmarkServiceDispatchWire: the ISSUE-8 wire-speed comparison over
// real TCP — classic JSON long-poll (two HTTP round trips per task)
// against the streaming lease channel with batched binary reports. The
// acceptance bar reads stream at ≥3× the jsonpoll throughput with ≥5×
// fewer allocs/op; BENCH_PR8.json records both.
func BenchmarkServiceDispatchWire(b *testing.B) {
	b.Run("jsonpoll", benchsuite.ServiceDispatchWireJSON)
	b.Run("stream", benchsuite.ServiceDispatchWireStream)
}

// BenchmarkDispatchRoundTripJournaledBatch: in-process dispatch with the
// write-ahead journal at -fsync=batch — the acceptance bar is within 2x of
// BenchmarkDispatchRoundTripInProcess (see PERFORMANCE.md).
func BenchmarkDispatchRoundTripJournaledBatch(b *testing.B) {
	benchsuite.ServiceDispatchJournaled(journal.SyncBatch)(b)
}

// BenchmarkDispatchRoundTripJournaledAlways: every acknowledgement behind
// a (group-committed) fsync; the machine-crash-durable configuration.
func BenchmarkDispatchRoundTripJournaledAlways(b *testing.B) {
	benchsuite.ServiceDispatchJournaled(journal.SyncAlways)(b)
}

// BenchmarkServiceDispatchPartitioned: the ISSUE-10 horizontal scale-out
// comparison — aggregate durable (fsync-per-frame) dispatch throughput
// over real TCP with 1, 2, and 4 independent partitions, one streaming
// binary-codec worker each. The acceptance bar reads parts=2 at ≥1.7×
// the parts=1 throughput on a multi-core runner; BENCH_PR10.json records
// the curve.
func BenchmarkServiceDispatchPartitioned(b *testing.B) {
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parts=%d", parts), benchsuite.ServiceDispatchPartitioned(parts))
	}
}
