package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

// benchWorkload: one file per task so staging cost is constant and the
// benchmark isolates the service dispatch path, not the cache.
func benchWorkload(tasks int) *workload.Workload {
	w := &workload.Workload{Name: "bench", NumFiles: 512}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 512)},
		})
	}
	return w
}

// benchDispatch measures the pull→assign→report round-trip through the
// full HTTP/JSON protocol against the given client.
func benchDispatch(b *testing.B, svc *service.Service, cl *client.Client) {
	b.Helper()
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		b.Fatal(err)
	}
	submit := func() {
		w := benchWorkload(100_000)
		if _, err := svc.Submit("bench", "workqueue", w, core.NewWorkqueue(w)); err != nil {
			b.Fatal(err)
		}
	}
	submit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Pull(ctx, reg.WorkerID, 0)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			// Job drained mid-benchmark; refill outside the hot path's
			// accounting concerns (rare: every 100k iterations).
			submit()
			continue
		}
		if _, err := cl.Report(ctx, resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchService(b *testing.B) *service.Service {
	b.Helper()
	svc, err := service.New(service.Config{
		Topology: service.Topology{Sites: 4, WorkersPerSite: 4, CapacityFiles: 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

// BenchmarkDispatchRoundTripInProcess: protocol + JSON codec + scheduler,
// no sockets.
func BenchmarkDispatchRoundTripInProcess(b *testing.B) {
	svc := newBenchService(b)
	benchDispatch(b, svc, client.InProcess(svc.Handler()))
}

// BenchmarkDispatchRoundTripTCP: the same path over loopback HTTP.
func BenchmarkDispatchRoundTripTCP(b *testing.B) {
	svc := newBenchService(b)
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(ts.Close)
	benchDispatch(b, svc, client.New(ts.URL, nil))
}
