package service_test

import (
	"net/http/httptest"
	"testing"

	"gridsched/internal/benchsuite"
	"gridsched/internal/service/client"
)

// The benchmark bodies live in internal/benchsuite, shared with
// cmd/gridbench so the recorded perf trajectory measures exactly what CI
// smoke-runs here.

// BenchmarkDispatchRoundTripInProcess: protocol + JSON codec + scheduler,
// no sockets.
func BenchmarkDispatchRoundTripInProcess(b *testing.B) {
	benchsuite.ServiceDispatchInProcess(b)
}

// BenchmarkDispatchRoundTripTCP: the same path over loopback HTTP.
func BenchmarkDispatchRoundTripTCP(b *testing.B) {
	svc := benchsuite.NewDispatchService()
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(benchsuite.Handler(svc))
	b.Cleanup(ts.Close)
	benchsuite.DispatchRoundTrip(b, svc, client.New(ts.URL, nil))
}
