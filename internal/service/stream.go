// The streaming lease channel: GET /v1/workers/{id}/stream holds one
// chunked HTTP response open per worker and pushes LeaseBatch frames down
// it as the arbiter grants leases — the wire-speed replacement for
// per-task long-poll pulls. One request amortizes across the worker's
// whole tenure: grants arrive in batches of up to k (the ?batch
// parameter), lease renewal rides the stream itself instead of
// per-assignment heartbeats, and cancellation notices piggyback on the
// same frames. Reports flow back on the companion batch endpoint
// (POST /v1/workers/{id}/reports → Service.ReportBatch).
//
// The stream is the liveness signal: while it is open the loop renews the
// worker's registration and every held lease each TTL/3; when it drops,
// renewal stops and the ordinary sweep expires and requeues whatever the
// worker held — exactly the long-poll crash story, so exactly-once
// accounting needs no new mechanism.
package service

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"gridsched/internal/middleware"
	"gridsched/internal/service/api"
)

const (
	// defaultStreamBatch is the pipeline depth when ?batch is absent.
	defaultStreamBatch = 16
	// maxStreamBatch caps the per-worker pipeline a client may request:
	// deep enough to hide any realistic network round trip, shallow
	// enough that one slow worker cannot hoard a job's tail of tasks.
	maxStreamBatch = 256
)

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	batch := defaultStreamBatch
	if q := r.URL.Query().Get("batch"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, errf(http.StatusBadRequest, "service: bad batch %q", q))
			return
		}
		batch = min(v, maxStreamBatch)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(http.StatusInternalServerError, "service: transport cannot stream"))
		return
	}
	codec, ct := api.JSON, api.ContentTypeStreamJSON
	if api.AcceptsBinary(r.Header.Get("Accept")) {
		codec, ct = api.Binary, api.ContentTypeStreamBinary
	}
	wk, err := s.claimStream(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseStream(wk)
	// Commit the response before the first grant so the client unblocks
	// (and learns the negotiated codec) immediately.
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	// The stream's whole lifetime is a park, exactly like a long poll's
	// wait: report it to the ingress shedder so an open (mostly idle)
	// stream is never mistaken for a slow request.
	start := time.Now()
	s.streamLeases(r.Context(), w, flusher, wk, batch, codec)
	middleware.ObserveParked(r.Context(), time.Since(start))
}

// claimStream validates the worker and marks it streaming. At most one
// stream per worker, never concurrent with a classic pull — the two
// protocols disagree about how many leases a worker may hold.
//
// A new stream always starts with an empty pipeline: anything the worker
// still held is expired and requeued on the spot, exactly as Deregister
// would. This is load-bearing for liveness, not hygiene. Assignments
// granted on a previous stream but severed mid-frame were never received
// by the client, and grants are pushed only once — yet the new stream
// would renew those held leases every TTL/3, so they could neither expire
// nor be re-delivered and the pipeline capacity they occupy would be lost
// for the stream's whole lifetime. The client mirrors this: on a drop it
// abandons everything undelivered-to-execution and re-reports finished
// work, which lands stale against the requeue — never double-counted.
func (s *Service) claimStream(workerID string) (*worker, error) {
	if s.closed.Load() {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	now := s.now()
	s.maybeSweep(now)
	r := s.reg
	r.mu.Lock()
	w := r.workers[workerID]
	if w == nil {
		r.mu.Unlock()
		return nil, errf(http.StatusNotFound, "service: unknown worker %q (lease expired? re-register)", workerID)
	}
	if w.streaming {
		r.mu.Unlock()
		return nil, errf(http.StatusConflict, "service: worker %q already has a lease stream open", workerID)
	}
	if w.pulling {
		r.mu.Unlock()
		return nil, errf(http.StatusConflict, "service: worker %q has a pull in flight", workerID)
	}
	w.streaming = true
	if w.wake == nil {
		w.wake = make(chan struct{}, 1)
	}
	w.expires = now.Add(s.cfg.LeaseTTL)
	orphans := make([]*assignment, 0, len(w.assignments))
	for _, a := range w.assignments {
		orphans = append(orphans, a)
	}
	r.mu.Unlock()
	for _, a := range orphans {
		sh := s.shardOf(a.job.id)
		sh.mu.Lock()
		// A concurrent report (the client retrying its pending batch) may
		// have already ended the lease; only expire what is still live.
		if sh.assignments[a.id] == a {
			s.expireAssignmentLocked(sh, a, now)
		}
		sh.mu.Unlock()
	}
	if len(orphans) > 0 {
		s.hub.broadcast()
		s.snapshotIfDue()
	}
	return w, nil
}

func (s *Service) releaseStream(wk *worker) {
	s.reg.mu.Lock()
	if s.reg.workers[wk.id] == wk {
		wk.streaming = false
	}
	s.reg.mu.Unlock()
}

// streamLeases is the per-stream loop: grant up to the worker's free
// pipeline capacity, frame and flush, park until something changes. Locks
// follow the pull path exactly — registry and shards are taken one at a
// time, the hub subscription happens BEFORE the grant scan so no wakeup
// is lost, and the durability wait runs outside every lock.
func (s *Service) streamLeases(ctx context.Context, w io.Writer, flusher http.Flusher, wk *worker, batch int, codec api.Codec) {
	var buf []byte
	lastOpen := -1
	renewEvery := s.cfg.LeaseTTL / 3
	if renewEvery <= 0 {
		renewEvery = time.Second
	}
	lastRenew := s.now()
	done := ctx.Done()
	for {
		if s.closed.Load() {
			return
		}
		now := s.now()
		s.maybeSweep(now)

		r := s.reg
		r.mu.Lock()
		if r.workers[wk.id] != wk {
			// Swept or deregistered mid-stream; its leases were requeued.
			r.mu.Unlock()
			return
		}
		wk.expires = now.Add(s.cfg.LeaseTTL)
		free := batch - len(wk.assignments)
		ref, tags := wk.ref, wk.tags
		var held []*assignment
		renewDue := now.Sub(lastRenew) >= renewEvery
		if renewDue && len(wk.assignments) > 0 {
			held = make([]*assignment, 0, len(wk.assignments))
			for _, a := range wk.assignments {
				held = append(held, a)
			}
		}
		r.mu.Unlock()

		var lb api.LeaseBatch
		if renewDue {
			lastRenew = now
			lb.Cancelled = s.renewHeldLeases(held, now)
		}

		// Subscribe BEFORE the grant scan (see hub): any state change
		// after this point re-closes ch, so the park below never sleeps
		// through a wakeup.
		ch := s.hub.wait()

		var maxLSN uint64
		dispatchStart := time.Now()
		for free > 0 {
			a, resp, lsn := s.dispatchOnce(wk.id, ref, tags, now)
			if a == nil {
				break
			}
			r.mu.Lock()
			attached := r.workers[wk.id] == wk
			if attached {
				wk.assignments[a.id] = a
			}
			r.mu.Unlock()
			if !attached {
				s.requeueOrphan(a)
				return
			}
			if lsn > maxLSN {
				maxLSN = lsn
			}
			lb.Assignments = append(lb.Assignments, *resp.Assignment)
			free--
		}
		if len(lb.Assignments) > 0 {
			s.counters.ObserveDispatch(time.Since(dispatchStart).Nanoseconds())
		}

		open := int(s.counters.OpenJobs.Load())
		if len(lb.Assignments) > 0 || len(lb.Cancelled) > 0 || open != lastOpen {
			s.snapshotIfDue()
			// One durability wait covers the whole frame: the highest LSN
			// granted above fsyncs everything before it, which is how a
			// frame of k dispatch records costs one fsync, not k.
			if s.waitDurable(maxLSN) != nil {
				// The grants stand but were never delivered; ending the
				// stream lets them expire and requeue, like an abandoned
				// pull.
				return
			}
			lb.OpenJobs = open
			payload, err := codec.Marshal(&lb)
			if err != nil {
				return
			}
			buf = api.AppendFrame(buf[:0], payload)
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
			lastOpen = open
		}

		timer := time.NewTimer(renewEvery)
		select {
		case <-done:
			timer.Stop()
			return
		case <-ch:
			timer.Stop()
		case <-wk.wake:
			// Targeted nudge: one of THIS worker's leases finished, so the
			// pipeline has capacity again (plain successes don't broadcast).
			timer.Stop()
		case <-timer.C:
			// Renewal cadence: force a keepalive so the client sees a live
			// stream and the next iteration renews registration + leases.
			lastOpen = -1
		}
	}
}

// renewHeldLeases pushes every held lease's deadline forward and collects
// the ids of cancelled executions (a replica completed elsewhere) for the
// next frame. The open stream is the liveness signal for the whole
// pipeline — per-assignment heartbeats would reintroduce exactly the
// per-task request cost the stream removes. A dropped stream stops
// renewal, so an abandoned worker's leases expire and requeue within one
// TTL, same as a crashed long-poll worker. Cancellation notices repeat on
// every renewal until the worker reports the assignment; the client's
// handling is idempotent.
func (s *Service) renewHeldLeases(held []*assignment, now time.Time) []string {
	if len(held) == 0 {
		return nil
	}
	var cancelled []string
	deadline := now.Add(s.cfg.LeaseTTL)
	for _, a := range held {
		sh := s.shardOf(a.job.id)
		sh.mu.Lock()
		if sh.assignments[a.id] == a {
			a.deadline = deadline
			if a.cancelled {
				cancelled = append(cancelled, a.id)
			}
		}
		sh.mu.Unlock()
	}
	return cancelled
}
