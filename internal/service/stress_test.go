package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/faultinject"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestConcurrentMixedTraffic drives every mutation class at once across
// the shard stripes — submits, pulls, success/failure reports, worker
// churn, job deletion, quota overrides, and status reads — against a
// journaled service, then proves three invariants survived: no task was
// acknowledged complete twice, every job drained exactly its task count,
// and a recovery of the data dir reproduces the same completed set. Run
// under -race in CI, this is the lock-ordering and lost-wakeup detector
// for the sharded core.
func TestConcurrentMixedTraffic(t *testing.T) {
	const (
		submitters   = 4
		jobsEach     = 6
		tasksPerJob  = 8
		workers      = 8
		quotaFlips   = 40
		statusProbes = 60
	)
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Shards = 8
	cfg.SnapshotEvery = 128
	cfg.LeaseTTL = 5 * time.Second
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		ackMu sync.Mutex
		acks  = make(map[string]int) // "job/task" -> completions acknowledged
	)
	jobIDs := make(chan string, submitters*jobsEach)
	var submitted atomic.Int64

	var wg sync.WaitGroup
	// Submitters: tenant-spread jobs landing on every stripe.
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for k := 0; k < jobsEach; k++ {
				tenant := fmt.Sprintf("t%d", (n+k)%3)
				id, err := s.SubmitJob(api.SubmitJobRequest{
					Name:      fmt.Sprintf("stress-%d-%d", n, k),
					Algorithm: "workqueue",
					Workload:  syntheticWorkload(tasksPerJob, 2),
					Tenant:    tenant,
					Weight:    1 + (n+k)%4,
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted.Add(1)
				jobIDs <- id
			}
		}(i)
	}

	// Workers: pull/report loops with occasional failures and re-registration.
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n)))
			reg, err := s.Register(n % 2)
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			for {
				select {
				case <-stop:
					_ = s.Deregister(reg.WorkerID)
					return
				default:
				}
				resp, err := s.Pull(nil, reg.WorkerID, 20*time.Millisecond)
				if err != nil {
					t.Errorf("pull: %v", err)
					return
				}
				if resp.Status != api.StatusAssigned {
					continue
				}
				outcome := api.OutcomeSuccess
				if rng.Intn(10) == 0 {
					outcome = api.OutcomeFailure
				}
				rep, err := s.Report(resp.Assignment.ID, reg.WorkerID, outcome)
				if err != nil {
					t.Errorf("report: %v", err)
					return
				}
				if rep.Accepted && !rep.Stale && !rep.Cancelled && outcome == api.OutcomeSuccess {
					ackMu.Lock()
					acks[fmt.Sprintf("%s/%d", resp.Assignment.JobID, resp.Assignment.Task.ID)]++
					ackMu.Unlock()
				}
				// Occasional churn: drop the registration mid-stream and
				// come back, exercising slot recycling under load.
				if rng.Intn(50) == 0 {
					_ = s.Deregister(reg.WorkerID)
					if reg, err = s.Register(n % 2); err != nil {
						t.Errorf("re-register: %v", err)
						return
					}
				}
			}
		}(i)
	}

	// Quota flipper: override and revert tenant caps while dispatch runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < quotaFlips; i++ {
			tenant := fmt.Sprintf("t%d", rng.Intn(3))
			if _, err := s.SetTenantQuota(tenant, rng.Intn(4)); err != nil {
				t.Errorf("quota: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		// Leave every cap lifted so the drain below cannot be throttled to
		// a crawl.
		for i := 0; i < 3; i++ {
			if _, err := s.SetTenantQuota(fmt.Sprintf("t%d", i), 0); err != nil {
				t.Errorf("quota revert: %v", err)
			}
		}
	}()

	// Status readers + deleter: the read-mostly endpoints and retention
	// path run against live dispatch; completed jobs are deleted as they
	// appear, so recovery also exercises the deleted-jobs carry.
	var deleted atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < statusProbes; i++ {
			for _, st := range s.Jobs() {
				if st.State == api.JobCompleted && deleted.Load() < 8 {
					if err := s.DeleteJob(st.ID); err == nil {
						deleted.Add(1)
					}
				}
			}
			_ = s.Tenants()
			_ = s.Health()
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for the full submission volume, then let the workers drain it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if submitted.Load() == submitters*jobsEach && s.Counters().OpenJobs.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: %d submitted, %d open",
				submitted.Load(), s.Counters().OpenJobs.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	ackMu.Lock()
	perJob := make(map[string]int)
	for key, n := range acks {
		if n > 1 {
			t.Fatalf("%s acknowledged complete %d times", key, n)
		}
		perJob[key[:len(key)-2]]++ // task ids are single digits here
	}
	ackMu.Unlock()
	close(jobIDs)
	total := 0
	for id := range jobIDs {
		total++
		if got := perJob[id]; got != tasksPerJob {
			t.Fatalf("job %s acknowledged %d completions, want %d", id, got, tasksPerJob)
		}
	}
	if total != submitters*jobsEach {
		t.Fatalf("submitted %d jobs, want %d", total, submitters*jobsEach)
	}
	s.Close()

	// The journal must reproduce the same completed universe.
	r, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after mixed traffic: %v", err)
	}
	defer r.Close()
	resident := 0
	for _, st := range r.Jobs() {
		resident++
		if st.State != api.JobCompleted || st.Completed != tasksPerJob {
			t.Fatalf("recovered job %s: %+v", st.ID, st)
		}
	}
	if want := submitters*jobsEach - int(deleted.Load()); resident != want {
		t.Fatalf("recovered %d job records, want %d (%d deleted)", resident, want, deleted.Load())
	}
}

// TestSpeculativeChurnStress mixes speculative re-execution with the two
// ways executions die ugly — severed streams and worker churn — under
// real concurrency (CI runs this under -race). A "molasses" worker sits
// on every lease long enough to be flagged as a straggler, so twins are
// continuously granted into a pool of fast classic workers (which
// deregister and re-register mid-run) and one streaming worker behind a
// connection-severing proxy. The invariants: the job drains, completions
// are exactly-once despite first-report-wins races and batch retries,
// speculation actually fired, and a crash afterwards recovers to the
// identical job state.
func TestSpeculativeChurnStress(t *testing.T) {
	const tasks = 60
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.LeaseTTL = 600 * time.Millisecond
	cfg.SweepInterval = 10 * time.Millisecond
	cfg.Speculation = true
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	proxy, err := faultinject.NewProxy("127.0.0.1:0", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cl := client.New("http://"+proxy.Addr(), nil)

	jobID, err := s.SubmitByName("spec-churn", "workqueue", syntheticWorkload(tasks, 2), 11, "")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos: sever every proxied connection (the streaming worker's lease
	// channel and report batches) on a cadence that lets work through.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				proxy.CloseConns()
			}
		}
	}()

	// Streaming worker through the proxy.
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- cl.RunWorker(ctx, client.WorkerConfig{
			StreamBatch:   8,
			ReconnectWait: 30 * time.Millisecond,
			Execute: func(execCtx context.Context, _ core.WorkerRef, _ *api.Assignment) error {
				select {
				case <-execCtx.Done():
				case <-time.After(time.Millisecond):
				}
				return nil
			},
			OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
				return resp.OpenJobs == 0, nil
			},
		})
	}()

	// Molasses: holds each lease far past the fast workers' p95, making
	// every one of its leases a speculation candidate. Reports directly
	// (no proxy), so its late success races the twin's — whoever loses
	// comes back stale or cancelled, never as a second completion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg, err := s.Register(0)
		if err != nil {
			t.Errorf("molasses register: %v", err)
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := s.Pull(nil, reg.WorkerID, 20*time.Millisecond)
			if err != nil {
				t.Errorf("molasses pull: %v", err)
				return
			}
			if resp.Status != api.StatusAssigned {
				if resp.OpenJobs == 0 {
					return
				}
				continue
			}
			time.Sleep(150 * time.Millisecond)
			if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
				t.Errorf("molasses report: %v", err)
				return
			}
		}
	}()

	// Classic workers with churn: fast pull/report loops that sometimes
	// fail a task and sometimes drop their registration and come back —
	// both paths fold failure events into the very telemetry speculation
	// reads while it is being read.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + n)))
			reg, err := s.Register(n % 2)
			if err != nil {
				t.Errorf("worker register: %v", err)
				return
			}
			for {
				select {
				case <-stop:
					_ = s.Deregister(reg.WorkerID)
					return
				default:
				}
				resp, err := s.Pull(nil, reg.WorkerID, 20*time.Millisecond)
				if err != nil {
					t.Errorf("worker pull: %v", err)
					return
				}
				if resp.Status == api.StatusAssigned {
					outcome := api.OutcomeSuccess
					if rng.Intn(10) == 0 {
						outcome = api.OutcomeFailure
					}
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, outcome); err != nil {
						t.Errorf("worker report: %v", err)
						return
					}
				} else if resp.OpenJobs == 0 {
					return
				}
				if rng.Intn(40) == 0 {
					_ = s.Deregister(reg.WorkerID)
					if reg, err = s.Register(n % 2); err != nil {
						t.Errorf("re-register: %v", err)
						return
					}
				}
			}
		}(i)
	}

	deadline := time.Now().Add(80 * time.Second)
	for s.Counters().OpenJobs.Load() != 0 {
		if time.Now().After(deadline) {
			st, _ := s.JobStatus(jobID)
			t.Fatalf("drain stalled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := <-streamDone; err != nil {
		t.Fatalf("streaming worker: %v", err)
	}

	pre, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if pre.State != api.JobCompleted || pre.Completed != tasks || pre.Remaining != 0 {
		t.Fatalf("job after churn: %+v", pre)
	}
	if got := s.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d, want exactly %d (exactly-once broken)", got, tasks)
	}
	if got := s.Counters().SpeculativeDispatches.Load(); got == 0 {
		t.Fatal("no speculative dispatch fired; the stress did not exercise speculation")
	}

	// Crash and recover: the journal must reproduce the post-churn state.
	s.CrashForTest()
	r, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after speculative churn: %v", err)
	}
	defer r.Close()
	post, err := r.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("recovery identity broken:\n live %+v\nrecov %+v", pre, post)
	}
}
