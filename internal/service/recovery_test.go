package service_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// pull asks for one assignment without parking; nil means nothing was
// dispatchable.
func pull(t *testing.T, s *service.Service, workerID string) *api.Assignment {
	t.Helper()
	resp, err := s.Pull(nil, workerID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != api.StatusAssigned {
		return nil
	}
	return resp.Assignment
}

// durableConfig returns a journaled service config over dir.
func durableConfig(dir string) service.Config {
	return service.Config{
		Topology: service.Topology{
			Sites:          2,
			WorkersPerSite: 4,
			CapacityFiles:  120,
		},
		NewScheduler:  gridsched.SchedulerFactory(),
		Fsync:         journal.SyncBatch,
		SnapshotEvery: 64,
		DataDir:       dir,
	}
}

// crashWorker drives the worker protocol directly against the service,
// recording every acknowledged completion into acks (task id -> count).
// It exits when the service refuses it (crash) or the job completes.
func crashWorker(s *service.Service, site int, rng *rand.Rand, mu *sync.Mutex, acks map[workload.TaskID]int) {
	reg, err := s.Register(site)
	if err != nil {
		return
	}
	for {
		resp, err := s.Pull(nil, reg.WorkerID, 50*time.Millisecond)
		if err != nil {
			return
		}
		if resp.Status != api.StatusAssigned {
			if resp.OpenJobs == 0 {
				return
			}
			continue
		}
		// A little think time so crashes land mid-execution too.
		if d := rng.Intn(3); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		rep, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess)
		if err != nil {
			return
		}
		if rep.Accepted && !rep.Stale && !rep.Cancelled {
			mu.Lock()
			acks[resp.Assignment.Task.ID]++
			mu.Unlock()
		}
	}
}

// TestCrashRecoveryPreservesCompletions is the in-process crash gauntlet:
// an 8-worker sweep is SIGKILL-equivalently crashed several times at
// arbitrary points; every restart recovers from the data dir and the sweep
// continues. At the end the job must be completed with every task
// completed exactly once — no losses, no duplicates — for each scheduler
// family (randomized worker-centric, replicating storage affinity, FIFO).
func TestCrashRecoveryPreservesCompletions(t *testing.T) {
	for _, algo := range []string{"combined.2", "storage-affinity", "workqueue"} {
		t.Run(algo, func(t *testing.T) {
			const tasks = 150
			dir := t.TempDir()
			w := syntheticWorkload(tasks, 4)
			rng := rand.New(rand.NewSource(42))
			var ackMu sync.Mutex
			acks := make(map[workload.TaskID]int)

			var jobID string
			for cycle := 0; ; cycle++ {
				if cycle > 25 {
					t.Fatal("job did not finish within 25 crash cycles")
				}
				s, err := service.New(durableConfig(dir))
				if err != nil {
					t.Fatalf("cycle %d: recovery failed: %v", cycle, err)
				}
				if cycle == 0 {
					jobID, err = s.SubmitByName("gauntlet", algo, w, 7, "")
					if err != nil {
						t.Fatal(err)
					}
				} else if _, err := s.JobStatus(jobID); err != nil {
					t.Fatalf("cycle %d: job lost: %v", cycle, err)
				}

				var wg sync.WaitGroup
				for i := 0; i < 8; i++ {
					wg.Add(1)
					site := i % 2
					seed := rng.Int63()
					go func() {
						defer wg.Done()
						crashWorker(s, site, rand.New(rand.NewSource(seed)), &ackMu, acks)
					}()
				}

				// Let the sweep run a random while, then either crash it or
				// (on later cycles) give it time to finish.
				limit := time.Duration(20+rng.Intn(60)) * time.Millisecond
				if cycle >= 6 {
					limit = 5 * time.Second
				}
				finished := false
				deadline := time.Now().Add(limit)
				for time.Now().Before(deadline) {
					st, err := s.JobStatus(jobID)
					if err != nil {
						t.Fatal(err)
					}
					if st.State == api.JobCompleted {
						finished = true
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if finished {
					st, err := s.JobStatus(jobID)
					if err != nil {
						t.Fatal(err)
					}
					if st.Completed != tasks {
						t.Fatalf("completed %d of %d tasks (dup or loss)", st.Completed, tasks)
					}
					s.Close()
					wg.Wait()
					break
				}
				s.CrashForTest()
				wg.Wait()
			}

			ackMu.Lock()
			defer ackMu.Unlock()
			for id, n := range acks {
				if n > 1 {
					t.Fatalf("task %d acknowledged complete %d times", id, n)
				}
			}

			// One more restart: the completed job must still be there.
			s, err := service.New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			st, err := s.JobStatus(jobID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != api.JobCompleted || st.Completed != tasks {
				t.Fatalf("after final restart: %+v", st)
			}
		})
	}
}

// pullSequence runs one pinned worker against the service, completing n
// tasks (n < 0: until the job drains) and returning the task ids in
// dispatch order.
func pullSequence(t *testing.T, s *service.Service, n int) []workload.TaskID {
	t.Helper()
	site := 0
	reg, err := s.Register(site)
	if err != nil {
		t.Fatal(err)
	}
	var seq []workload.TaskID
	for n < 0 || len(seq) < n {
		resp, err := s.Pull(nil, reg.WorkerID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			if resp.OpenJobs == 0 {
				break
			}
			continue
		}
		seq = append(seq, resp.Assignment.Task.ID)
		if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	return seq
}

// TestRecoveredDispatchMatchesUninterrupted pins down the "RNG state is
// captured" claim: a combined.2 job interrupted by a crash must, after
// recovery, dispatch the remaining tasks in exactly the order an
// uninterrupted service would have — the recovery replay reproduces the
// scheduler's random draws, not just its task sets.
func TestRecoveredDispatchMatchesUninterrupted(t *testing.T) {
	const tasks, prefix = 80, 30
	w := syntheticWorkload(tasks, 4)

	// Reference: uninterrupted in-memory service.
	ref := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	refID, err := ref.SubmitByName("ref", "combined.2", w, 99, "")
	if err != nil {
		t.Fatal(err)
	}
	refSeq := pullSequence(t, ref, -1)
	if st, _ := ref.JobStatus(refID); st == nil || st.State != api.JobCompleted {
		t.Fatal("reference job did not complete")
	}

	// Crashed-and-recovered service, same submission.
	dir := t.TempDir()
	a, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitByName("crashy", "combined.2", w, 99, ""); err != nil {
		t.Fatal(err)
	}
	gotSeq := pullSequence(t, a, prefix)
	a.CrashForTest()

	b, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer b.Close()
	gotSeq = append(gotSeq, pullSequence(t, b, -1)...)

	if len(gotSeq) != len(refSeq) {
		t.Fatalf("dispatched %d tasks across the crash, reference %d", len(gotSeq), len(refSeq))
	}
	for i := range refSeq {
		if gotSeq[i] != refSeq[i] {
			t.Fatalf("dispatch %d: task %d after recovery, task %d uninterrupted", i, gotSeq[i], refSeq[i])
		}
	}
}

// TestRecoveryTruncatesTornJournalTail garbles the journal tail the way a
// crash mid-append would and checks recovery shrugs it off.
func TestRecoveryTruncatesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	w := syntheticWorkload(40, 3)
	s, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := s.SubmitByName("torn", "rest", w, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	seq := pullSequence(t, s, 10)
	if len(seq) != 10 {
		t.Fatalf("dispatched %d", len(seq))
	}
	s.CrashForTest()

	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0xAA, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer r.Close()
	st, err := r.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	// The 10 completions were acknowledged before the torn garbage.
	if st.Completed != 10 {
		t.Fatalf("recovered %d completions, want 10", st.Completed)
	}
	if rest := pullSequence(t, r, -1); len(rest) != 30 {
		t.Fatalf("drained %d tasks, want 30", len(rest))
	}
}

// TestSnapshotCompactsJournal checks the snapshot/rotate cycle: after a
// snapshot the journal restarts near-empty and recovery still sees
// everything.
func TestSnapshotCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	w := syntheticWorkload(60, 3)
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = 1 << 30 // only explicit snapshots
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := s.SubmitByName("snap", "overlap", w, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	pullSequence(t, s, 25)
	preSize := fileSize(t, filepath.Join(dir, "wal.log"))
	if err := s.SnapshotForTest(); err != nil {
		t.Fatal(err)
	}
	postSize := fileSize(t, filepath.Join(dir, "wal.log"))
	if postSize >= preSize {
		t.Fatalf("rotation did not shrink the journal: %d -> %d bytes", preSize, postSize)
	}
	if fileSize(t, filepath.Join(dir, "snapshot.json")) == 0 {
		t.Fatal("no snapshot written")
	}
	pullSequence(t, s, 5) // a post-snapshot tail
	s.CrashForTest()

	r, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer r.Close()
	st, err := r.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 30 {
		t.Fatalf("recovered %d completions, want 30", st.Completed)
	}
	if rest := pullSequence(t, r, -1); len(rest) != 30 {
		t.Fatalf("drained %d tasks, want 30", len(rest))
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestIdempotentSubmissionAcrossRestart: the same submission id must
// resolve to the same job before and after a crash — the property the
// client's resubmit-after-reconnect relies on.
func TestIdempotentSubmissionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	w := syntheticWorkload(20, 3)
	s, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.SubmitByName("once", "workqueue", w, 1, "key-abc")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.SubmitByName("once", "workqueue", w, 1, "key-abc")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("duplicate job: %s then %s", id1, id2)
	}
	s.CrashForTest()

	r, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	id3, err := r.SubmitByName("once", "workqueue", w, 1, "key-abc")
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("restart forgot submission key: %s then %s", id1, id3)
	}
	if jobs := r.Jobs(); len(jobs) != 1 {
		t.Fatalf("%d jobs resident, want 1", len(jobs))
	}
}

// TestJournaledServiceRejectsRawSubmit: opaque schedulers cannot be
// recovered, so a journaled service refuses them up front.
func TestJournaledServiceRejectsRawSubmit(t *testing.T) {
	s, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := syntheticWorkload(4, 2)
	if _, err := s.Submit("raw", "workqueue", w, core.NewWorkqueue(w)); err == nil {
		t.Fatal("journaled service accepted a raw scheduler")
	}
}

// leakyScheduler is a byzantine-but-legal Scheduler whose OnTaskComplete
// never names replica victims, recreating the invariant violation behind
// the completion/cancellation race: the job can complete while another
// worker still holds a live, un-cancelled execution of its task.
type leakyScheduler struct {
	w         *workload.Workload
	handedOut int
	done      bool
}

func (l *leakyScheduler) Name() string                                                  { return "leaky" }
func (l *leakyScheduler) AttachSite(site int)                                           {}
func (l *leakyScheduler) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {}
func (l *leakyScheduler) NextFor(at core.WorkerRef) (workload.Task, core.Status) {
	if l.done {
		return workload.Task{}, core.Done
	}
	if l.handedOut >= 2 {
		return workload.Task{}, core.Wait
	}
	l.handedOut++ // replicate task 0 to the first two askers
	return l.w.Tasks[0], core.Assigned
}
func (l *leakyScheduler) OnTaskComplete(id workload.TaskID, at core.WorkerRef) []core.WorkerRef {
	l.done = true
	return nil // never cancels the other replica — the leak
}
func (l *leakyScheduler) OnExecutionFailed(id workload.TaskID, at core.WorkerRef) {
	panic(fmt.Sprintf("resurrected task %d at %+v after completion", id, at))
}
func (l *leakyScheduler) Remaining() int {
	if l.done {
		return 0
	}
	return 1
}

// TestCompletedJobInFlightReportIsCancelled is the regression test for the
// completion/cancellation race: when a job completes while a replica is
// still in flight, the replica's late report must be absorbed as a
// cancellation — not resurrect the task, double-count the completion, or
// nil-panic on the released scheduler (the pre-fix behaviors).
func TestCompletedJobInFlightReportIsCancelled(t *testing.T) {
	w := syntheticWorkload(1, 2)
	for _, viaSweeper := range []bool{false, true} {
		name := "report-path"
		if viaSweeper {
			name = "sweeper-path"
		}
		t.Run(name, func(t *testing.T) {
			cfg := service.Config{}
			if viaSweeper {
				cfg.LeaseTTL = 50 * time.Millisecond
				cfg.SweepInterval = 5 * time.Millisecond
			}
			s := newService(t, cfg)
			jobID, err := s.Submit("leaky", "leaky", w, &leakyScheduler{w: w})
			if err != nil {
				t.Fatal(err)
			}
			w1 := register(t, s, 0)
			w2 := register(t, s, 0)
			a1 := pull(t, s, w1.WorkerID)
			a2 := pull(t, s, w2.WorkerID)
			if a1 == nil || a2 == nil || a1.Task.ID != 0 || a2.Task.ID != 0 {
				t.Fatalf("replication setup failed: %+v %+v", a1, a2)
			}

			// First replica completes the job.
			rep, err := s.Report(a1.ID, w1.WorkerID, api.OutcomeSuccess)
			if err != nil {
				t.Fatal(err)
			}
			if rep.JobState != api.JobCompleted {
				t.Fatalf("job state %q after completing report", rep.JobState)
			}

			if viaSweeper {
				// The second replica's lease expires under the sweeper.
				deadline := time.Now().Add(2 * time.Second)
				for {
					st, err := s.JobStatus(jobID)
					if err != nil {
						t.Fatal(err)
					}
					if st.Cancelled == 1 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("lease expiry never cancelled the replica: %+v", st)
					}
					time.Sleep(5 * time.Millisecond)
				}
			} else {
				// The second replica reports in after job completion.
				rep2, err := s.Report(a2.ID, w2.WorkerID, api.OutcomeSuccess)
				if err != nil {
					t.Fatal(err)
				}
				if !rep2.Accepted || !rep2.Cancelled {
					t.Fatalf("in-flight report after completion: %+v", rep2)
				}
			}

			st, err := s.JobStatus(jobID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != api.JobCompleted || st.Completed != 1 || st.Cancelled != 1 {
				t.Fatalf("final status %+v, want completed=1 cancelled=1", st)
			}
			// No resurrection: a fresh worker finds nothing to run.
			w3 := register(t, s, 1)
			if a := pull(t, s, w3.WorkerID); a != nil {
				t.Fatalf("completed task resurrected as %+v", a)
			}
		})
	}
}
