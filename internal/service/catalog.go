package service

import (
	"sort"
	"time"

	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// catalog is the follower's read-only projection of cluster state, folded
// from exactly the inputs recovery replays: the snapshot plus journal
// records. It tracks what status endpoints report — job counters, tenant
// quotas and dispatch totals — without schedulers, stores, or leases
// (liveness state that promotion rebuilds via the real recovery path).
//
// The counter fold mirrors replayEvent without an assignment table: a
// report or expiry for a task that already completed, or arriving after
// its job completed, can only be an obsolete replica and counts as
// cancelled — precisely when replayEvent's open-execution bookkeeping
// would have marked it cancelled, since OnTaskComplete victims are
// same-task replicas and job completion sweeps everything still open.
// The one field the records cannot reproduce is Transfers (it depends on
// site-store contents); the catalog reports it only for jobs the
// snapshot already summarized.
type catalog struct {
	defaultWeight int
	defaultQuota  int

	jobs    map[string]*catJob
	tenants map[string]*catTenant
}

// catJob is one job's folded summary.
type catJob struct {
	id         string
	name       string
	algorithm  string
	state      string
	tenant     string
	weight     int
	tasks      int
	submitMs   int64
	finishMs   int64
	requires   []string
	deadlineMs int64
	dispatched int
	completed  int
	failed     int
	cancelled  int
	expired    int
	speculated int
	transfers  int64

	// done holds the distinct tasks that completed successfully; the job
	// completes when every task is in it. Nil once the job completes.
	done map[workload.TaskID]struct{}
}

// catTenant is one tenant's folded durable state.
type catTenant struct {
	quota      int // in-flight override; 0 means the server default
	dispatches int64
}

func newCatalog(defaultWeight, defaultQuota int) *catalog {
	return &catalog{
		defaultWeight: defaultWeight,
		defaultQuota:  defaultQuota,
		jobs:          make(map[string]*catJob),
		tenants:       make(map[string]*catTenant),
	}
}

func (c *catalog) tenant(name string) *catTenant {
	t := c.tenants[name]
	if t == nil {
		t = &catTenant{}
		c.tenants[name] = t
	}
	return t
}

// loadSnapshot folds a snapshot in. Tenant dispatch totals are cumulative
// in the snapshot, so the per-job ledger folds below must not re-count
// them — only journal records applied after the snapshot do.
func (c *catalog) loadSnapshot(snap *snapshot) {
	for i := range snap.Tenants {
		st := &snap.Tenants[i]
		t := c.tenant(st.Name)
		t.quota, t.dispatches = st.Quota, st.Dispatches
	}
	for i := range snap.Jobs {
		sj := &snap.Jobs[i]
		j := &catJob{
			id:         sj.ID,
			name:       sj.Name,
			algorithm:  sj.Algorithm,
			state:      sj.State,
			tenant:     sj.Tenant,
			weight:     normalizeWeight(sj.Weight, c.defaultWeight),
			tasks:      sj.Tasks,
			submitMs:   sj.Submitted,
			finishMs:   sj.Finished,
			requires:   sj.Requires,
			deadlineMs: sj.Deadline,
		}
		if sj.State == api.JobCompleted {
			j.dispatched, j.completed, j.failed = sj.Dispatched, sj.Completed, sj.Failed
			j.cancelled, j.expired, j.transfers = sj.Cancelled, sj.Expired, sj.Transfers
			j.speculated = sj.Speculated
		} else {
			j.done = make(map[workload.TaskID]struct{})
			for _, e := range sj.Ledger {
				c.foldEvent(j, e.Op, e.Task, e.Ts)
			}
		}
		c.jobs[sj.ID] = j
	}
}

// applyRecord folds one journal record — the follower's live path and the
// restart path over the local log tail.
func (c *catalog) applyRecord(rec *record) {
	switch rec.Op {
	case opSubmit:
		if rec.Workload == nil {
			return // recovery would reject this; the catalog just skips it
		}
		j := &catJob{
			id:         rec.Job,
			name:       rec.Name,
			algorithm:  rec.Algorithm,
			state:      api.JobRunning,
			tenant:     rec.Tenant,
			weight:     normalizeWeight(rec.Weight, c.defaultWeight),
			tasks:      len(rec.Workload.Tasks),
			submitMs:   rec.Ts,
			requires:   rec.Requires,
			deadlineMs: rec.Deadline,
			done:       make(map[workload.TaskID]struct{}),
		}
		if j.tasks == 0 {
			// Empty workloads complete at submission, as on the leader.
			j.state, j.finishMs, j.done = api.JobCompleted, rec.Ts, nil
		}
		c.jobs[rec.Job] = j
	case opQuota:
		c.tenant(rec.Tenant).quota = rec.Quota
	case opDelete:
		delete(c.jobs, rec.Job)
	case opDispatch:
		j := c.jobs[rec.Job]
		if j == nil {
			return
		}
		c.tenant(j.tenant).dispatches++
		op := uint8(ledgerDispatch)
		if rec.Spec {
			op = ledgerSpecDispatch
		}
		c.foldEvent(j, op, rec.Task, rec.Ts)
	case opReport:
		op := ledgerFailure
		if rec.Outcome == api.OutcomeSuccess {
			op = ledgerSuccess
		}
		if j := c.jobs[rec.Job]; j != nil {
			c.foldEvent(j, op, rec.Task, rec.Ts)
		}
	case opExpire:
		if j := c.jobs[rec.Job]; j != nil {
			c.foldEvent(j, ledgerExpire, rec.Task, rec.Ts)
		}
	}
}

// foldEvent applies one dispatch/report/expiry to a job's counters.
// Tenant dispatch totals are the caller's concern: journal records add to
// them, a snapshot job's ledger does not (see loadSnapshot).
func (c *catalog) foldEvent(j *catJob, op uint8, task workload.TaskID, tsMs int64) {
	if op == ledgerDispatch || op == ledgerSpecDispatch {
		if j.state == api.JobRunning {
			j.dispatched++
			if op == ledgerSpecDispatch {
				j.speculated++
			}
		}
		return
	}
	// Obsolete replica: its task already completed, or its whole job did.
	if j.state == api.JobCompleted {
		j.cancelled++
		return
	}
	if _, dup := j.done[task]; dup {
		j.cancelled++
		return
	}
	switch op {
	case ledgerSuccess:
		j.completed++
		j.done[task] = struct{}{}
		if len(j.done) == j.tasks {
			j.state, j.finishMs, j.done = api.JobCompleted, tsMs, nil
		}
	case ledgerFailure:
		j.failed++
	case ledgerExpire:
		j.expired++
	}
}

// status renders one job in the leader's JobStatus conventions
// (timestamps in Unix seconds; Remaining only meaningful while running).
func (j *catJob) status() api.JobStatus {
	remaining := 0
	if j.state == api.JobRunning {
		remaining = j.tasks - len(j.done)
	}
	st := api.JobStatus{
		ID:              j.id,
		Name:            j.name,
		Algorithm:       j.algorithm,
		State:           j.state,
		Tenant:          j.tenant,
		Weight:          j.weight,
		Tasks:           j.tasks,
		Remaining:       remaining,
		Dispatched:      j.dispatched,
		Completed:       j.completed,
		Failed:          j.failed,
		Cancelled:       j.cancelled,
		Expired:         j.expired,
		Speculated:      j.speculated,
		Transfers:       j.transfers,
		Requires:        j.requires,
		DeadlineMillis:  j.deadlineMs,
		SubmittedAtUnix: time.UnixMilli(j.submitMs).Unix(),
	}
	if j.finishMs != 0 {
		st.FinishedAtUnix = time.UnixMilli(j.finishMs).Unix()
	}
	return st
}

// jobStatuses renders every resident job in submission order.
func (c *catalog) jobStatuses() []api.JobStatus {
	sts := make([]api.JobStatus, 0, len(c.jobs))
	for _, j := range c.jobs {
		sts = append(sts, j.status())
	}
	sortJobStatuses(sts)
	return sts
}

// tenantStatuses renders the tenants' durable state. Weight, RunningJobs
// and ShareTarget come from the resident running jobs; liveness-only
// fields (InFlight, ShareAchieved, Throttles) are zero on a follower —
// leases and share windows live on the leader.
func (c *catalog) tenantStatuses() []api.TenantStatus {
	type agg struct {
		weight  int64
		running int
	}
	byTenant := make(map[string]*agg)
	total := int64(0)
	for _, j := range c.jobs {
		if j.state != api.JobRunning {
			continue
		}
		a := byTenant[j.tenant]
		if a == nil {
			a = &agg{}
			byTenant[j.tenant] = a
		}
		a.weight += int64(j.weight)
		a.running++
		total += int64(j.weight)
	}
	names := make(map[string]struct{}, len(c.tenants)+len(byTenant))
	for name, t := range c.tenants {
		if t.quota != 0 || t.dispatches != 0 {
			names[name] = struct{}{}
		}
	}
	for name := range byTenant {
		names[name] = struct{}{}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	sts := make([]api.TenantStatus, 0, len(sorted))
	for _, name := range sorted {
		st := api.TenantStatus{Tenant: name, MaxInFlight: c.defaultQuota}
		if t := c.tenants[name]; t != nil {
			if t.quota > 0 {
				st.MaxInFlight = t.quota
			}
			st.Dispatches = t.dispatches
		}
		if a := byTenant[name]; a != nil {
			st.Weight, st.RunningJobs = a.weight, a.running
			if total > 0 {
				st.ShareTarget = float64(a.weight) / float64(total)
			}
		}
		sts = append(sts, st)
	}
	return sts
}
