package service

import (
	"math"
	"testing"

	"gridsched/internal/core"
)

// TestEwmaFold pins the fixed-point fold: first-sample seeding, the
// alpha=1/8 step, and convergence direction for both signs of delta.
func TestEwmaFold(t *testing.T) {
	tests := []struct {
		name   string
		acc    int64
		sample int64
		first  bool
		want   int64
	}{
		{"first sample seeds", 0, 800 << ewmaShift, true, 800 << ewmaShift},
		{"first sample seeds over garbage", 123456, 800 << ewmaShift, true, 800 << ewmaShift},
		{"no movement on equal sample", 800 << ewmaShift, 800 << ewmaShift, false, 800 << ewmaShift},
		{"one eighth toward larger", 0, 800 << ewmaShift, false, 100 << ewmaShift},
		{"one eighth toward zero", 800 << ewmaShift, 0, false, 700 << ewmaShift},
		{"zero stays zero", 0, 0, false, 0},
	}
	for _, tc := range tests {
		if got := ewmaFold(tc.acc, tc.sample, tc.first); got != tc.want {
			t.Errorf("%s: ewmaFold(%d, %d, %v) = %d, want %d",
				tc.name, tc.acc, tc.sample, tc.first, got, tc.want)
		}
	}
}

// TestTelemetryAccumulators drives the slot store through a scripted
// outcome sequence and checks the float view, including the cold-start
// miss and out-of-range refs.
func TestTelemetryAccumulators(t *testing.T) {
	tel := newTelemetry(Topology{Sites: 2, WorkersPerSite: 2})
	ref := core.WorkerRef{Site: 0, Worker: 1}

	if _, ok := tel.WorkerContext(ref); ok {
		t.Fatal("cold slot reported a context")
	}
	// Out-of-range refs must be inert, not panic.
	tel.observeSuccess(core.WorkerRef{Site: 9, Worker: 0}, 100, true)
	tel.observeFailure(core.WorkerRef{Site: 0, Worker: 9})
	tel.setTags(core.WorkerRef{Site: -1, Worker: 0}, []string{"x"})

	tel.observeSuccess(ref, 1000, true)
	wc, ok := tel.WorkerContext(ref)
	if !ok || wc.MeanTaskMillis != 1000 || wc.FailureRate != 0 || wc.Samples != 1 || wc.Events != 1 {
		t.Fatalf("after one success: %+v ok=%v", wc, ok)
	}
	// A success without a usable duration moves events, not samples.
	tel.observeSuccess(ref, -5, false)
	wc, _ = tel.WorkerContext(ref)
	if wc.Samples != 1 || wc.Events != 2 {
		t.Fatalf("durationless success folded a sample: %+v", wc)
	}
	// A negative duration (clock skew guard) clamps to zero.
	tel.observeSuccess(ref, -100, true)
	wc, _ = tel.WorkerContext(ref)
	if wc.Samples != 2 || wc.MeanTaskMillis != 875 { // 1000 + (0-1000)/8
		t.Fatalf("negative duration fold: %+v", wc)
	}
	tel.observeFailure(ref)
	wc, _ = tel.WorkerContext(ref)
	if wc.FailureRate != 0.125 || wc.Events != 4 {
		t.Fatalf("after one failure in four events: %+v", wc)
	}

	tel.setTags(ref, []string{"gpu"})
	wc, _ = tel.WorkerContext(ref)
	if len(wc.Tags) != 1 || wc.Tags[0] != "gpu" {
		t.Fatalf("tags: %+v", wc.Tags)
	}
}

// TestTelemetrySnapshotRoundTrip checks the accumulators restore
// bit-exact through the snapshot encoding, and that slots outside a
// smaller topology drop instead of corrupting memory.
func TestTelemetrySnapshotRoundTrip(t *testing.T) {
	tel := newTelemetry(Topology{Sites: 2, WorkersPerSite: 1})
	tel.observeSuccess(core.WorkerRef{Site: 0, Worker: 0}, 333, true)
	tel.observeFailure(core.WorkerRef{Site: 1, Worker: 0})
	tel.observeSuccess(core.WorkerRef{Site: 1, Worker: 0}, 77, true)

	snap := tel.snapshotWorkers()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d slots, want 2", len(snap))
	}

	tel2 := newTelemetry(Topology{Sites: 2, WorkersPerSite: 1})
	tel2.restoreWorkers(snap)
	if got := tel2.snapshotWorkers(); len(got) != 2 {
		t.Fatalf("restored snapshot has %d slots", len(got))
	} else {
		for i := range got {
			if got[i] != snap[i] {
				t.Fatalf("slot %d not bit-exact: %+v vs %+v", i, got[i], snap[i])
			}
		}
	}

	// A snapshot from a larger topology must not panic a smaller one.
	small := newTelemetry(Topology{Sites: 1, WorkersPerSite: 1})
	small.restoreWorkers(snap)
	if got := small.snapshotWorkers(); len(got) != 1 {
		t.Fatalf("small topology kept %d slots, want 1", len(got))
	}
}

// TestDurRingPercentile tables the nearest-rank percentile, including the
// NaN/out-of-range clamps and the ring's eviction behavior.
func TestDurRingPercentile(t *testing.T) {
	fill := func(ds ...int64) *durRing {
		r := &durRing{}
		for _, d := range ds {
			r.add(d)
		}
		return r
	}
	tests := []struct {
		name string
		ring *durRing
		p    float64
		want int64
		ok   bool
	}{
		{"empty ring", &durRing{}, 0.95, 0, false},
		{"single sample", fill(100), 0.95, 100, true},
		{"median of four", fill(10, 20, 30, 40), 0.5, 20, true},
		{"p95 of uniform", fill(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.95, 10, true},
		{"max at p=1", fill(5, 500, 50), 1, 500, true},
		{"NaN clamps to max", fill(5, 500, 50), math.NaN(), 500, true},
		{"zero clamps to max", fill(5, 500, 50), 0, 500, true},
		{"negative clamps to max", fill(5, 500, 50), -3, 500, true},
		{"above one clamps to max", fill(5, 500, 50), 7, 500, true},
		{"negative durations clamp to zero", fill(-7, -7, -7), 0.5, 0, true},
	}
	for _, tc := range tests {
		got, ok := tc.ring.percentile(tc.p)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: percentile(%v) = (%d, %v), want (%d, %v)",
				tc.name, tc.p, got, ok, tc.want, tc.ok)
		}
	}

	// Eviction: once past capacity the ring holds the most recent
	// durRingCap samples, so an early outlier ages out of the percentile.
	r := &durRing{}
	r.add(1_000_000)
	for i := 0; i < durRingCap; i++ {
		r.add(10)
	}
	if got, _ := r.percentile(1); got != 10 {
		t.Fatalf("outlier survived eviction: max = %d", got)
	}
	if r.n != durRingCap+1 {
		t.Fatalf("total count %d, want %d", r.n, durRingCap+1)
	}
}

// TestDurRingMean covers the mean helper the deadline-urgency estimate
// uses.
func TestDurRingMean(t *testing.T) {
	r := &durRing{}
	if _, ok := r.mean(); ok {
		t.Fatal("empty ring reported a mean")
	}
	for _, d := range []int64{10, 20, 30} {
		r.add(d)
	}
	if m, ok := r.mean(); !ok || m != 20 {
		t.Fatalf("mean = (%d, %v), want (20, true)", m, ok)
	}
}

// TestShouldSpeculate tables the straggler predicate: the absolute
// cold-start rule, the zero-duration floor, and the NaN/sub-one factor
// guards.
func TestShouldSpeculate(t *testing.T) {
	ring := func(ds ...int64) *durRing {
		r := &durRing{}
		for _, d := range ds {
			r.add(d)
		}
		return r
	}
	tests := []struct {
		name       string
		age        int64
		ring       *durRing
		pct        float64
		factor     float64
		minSamples int
		want       bool
	}{
		{"nil ring never speculates", 1 << 40, nil, 0.95, 2, 3, false},
		{"no samples never speculates", 1 << 40, ring(), 0.95, 2, 3, false},
		{"below minSamples never speculates", 1 << 40, ring(100, 100), 0.95, 2, 3, false},
		{"at minSamples, young lease", 150, ring(100, 100, 100), 0.95, 2, 3, false},
		{"at minSamples, at threshold", 200, ring(100, 100, 100), 0.95, 2, 3, false},
		{"at minSamples, over threshold", 201, ring(100, 100, 100), 0.95, 2, 3, true},
		{"zero durations floor at 1ms", 1, ring(0, 0, 0), 0.95, 2, 3, false},
		{"zero durations: 2ms is a straggler", 2, ring(0, 0, 0), 0.95, 2, 3, true},
		{"NaN factor behaves as 1", 101, ring(100, 100, 100), 0.95, math.NaN(), 3, true},
		{"sub-one factor clamps to 1", 101, ring(100, 100, 100), 0.95, 0.001, 3, true},
		{"sub-one factor: at percentile is fine", 100, ring(100, 100, 100), 0.95, 0.001, 3, false},
		{"NaN percentile takes the max", 600, ring(100, 100, 300), math.NaN(), 2, 3, false},
		{"NaN percentile: above 2x max", 601, ring(100, 100, 300), math.NaN(), 2, 3, true},
	}
	for _, tc := range tests {
		if got := shouldSpeculate(tc.age, tc.ring, tc.pct, tc.factor, tc.minSamples); got != tc.want {
			t.Errorf("%s: shouldSpeculate(%d, ..., %v, %v, %d) = %v, want %v",
				tc.name, tc.age, tc.pct, tc.factor, tc.minSamples, got, tc.want)
		}
	}
}

// TestTagsValidation tables tag hygiene for both worker tags and job
// requires lists.
func TestTagsValidation(t *testing.T) {
	if err := validateTags("tag", []string{"gpu", "avx-512", "rack.3", "a_b"}); err != nil {
		t.Fatalf("valid tags rejected: %v", err)
	}
	long := make([]byte, maxTagLen+1)
	for i := range long {
		long[i] = 'a'
	}
	bad := [][]string{
		{""},
		{"has space"},
		{"semi;colon"},
		{string(long)},
		make([]string, maxTags+1),
	}
	for i, tags := range bad {
		if i == len(bad)-1 {
			for j := range tags {
				tags[j] = "ok"
			}
		}
		if err := validateTags("tag", tags); err == nil {
			t.Errorf("bad tag set %d accepted: %q", i, tags)
		}
	}
	if !tagsSatisfy(nil, nil) || !tagsSatisfy([]string{"a"}, []string{"b", "a"}) {
		t.Fatal("tagsSatisfy false negatives")
	}
	if tagsSatisfy([]string{"a", "c"}, []string{"a", "b"}) {
		t.Fatal("tagsSatisfy accepted a missing tag")
	}
}
