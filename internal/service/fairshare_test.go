package service_test

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/journal"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// submitTenant submits a workqueue job under a tenant and weight.
func submitTenant(t *testing.T, s *service.Service, name, tenant string, weight, tasks int) string {
	t.Helper()
	id, err := s.SubmitJob(api.SubmitJobRequest{
		Name: name, Algorithm: "workqueue", Workload: syntheticWorkload(tasks, 2),
		Tenant: tenant, Weight: weight,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestFairShareConvergence is the fairness acceptance bar: two tenants at
// weights 2:1 over one contended worker converge to a 2:1 dispatch split
// (the arbiter is deterministic, so ±5% is generous).
func TestFairShareConvergence(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	gold := submitTenant(t, s, "gold-job", "gold", 2, 600)
	bronze := submitTenant(t, s, "bronze-job", "bronze", 1, 600)
	reg := register(t, s, 0)

	counts := map[string]int{}
	const dispatches = 300
	for i := 0; i < dispatches; i++ {
		a := pull(t, s, reg.WorkerID)
		if a == nil {
			t.Fatalf("dispatch %d: nothing dispatchable with both jobs half full", i)
		}
		counts[a.JobID]++
		if _, err := s.Report(a.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	goldShare := float64(counts[gold]) / dispatches
	if math.Abs(goldShare-2.0/3.0) > 0.05 {
		t.Fatalf("gold dispatched %d of %d (share %.3f), want 2/3 +-5%%", counts[gold], dispatches, goldShare)
	}
	if counts[bronze] == 0 {
		t.Fatal("bronze starved")
	}

	// The tenant listing reports targets and (windowed) achieved shares.
	var goldSt, bronzeSt *api.TenantStatus
	for _, st := range s.Tenants() {
		st := st
		switch st.Tenant {
		case "gold":
			goldSt = &st
		case "bronze":
			bronzeSt = &st
		}
	}
	if goldSt == nil || bronzeSt == nil {
		t.Fatalf("tenant listing missing gold/bronze: %+v", s.Tenants())
	}
	if math.Abs(goldSt.ShareTarget-2.0/3.0) > 1e-9 || math.Abs(bronzeSt.ShareTarget-1.0/3.0) > 1e-9 {
		t.Fatalf("share targets %g/%g, want 2/3 and 1/3", goldSt.ShareTarget, bronzeSt.ShareTarget)
	}
	if math.Abs(goldSt.ShareAchieved-2.0/3.0) > 0.05 {
		t.Fatalf("gold achieved %g, want ~2/3", goldSt.ShareAchieved)
	}
	if goldSt.Dispatches != int64(counts[gold]) || bronzeSt.Dispatches != int64(counts[bronze]) {
		t.Fatalf("dispatch totals %d/%d, counted %d/%d",
			goldSt.Dispatches, bronzeSt.Dispatches, counts[gold], counts[bronze])
	}
}

// TestUnweightedJobDrains: a job submitted with no tenant and no weight
// shares the pool with a heavily weighted tenant and still completes — the
// min-tag heap cannot starve any runnable job.
func TestUnweightedJobDrains(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	if _, err := s.SubmitJob(api.SubmitJobRequest{
		Name: "heavy", Algorithm: "workqueue", Workload: syntheticWorkload(60, 2),
		Tenant: "heavy", Weight: 8,
	}); err != nil {
		t.Fatal(err)
	}
	plainID, err := s.SubmitJob(api.SubmitJobRequest{
		Name: "plain", Algorithm: "workqueue", Workload: syntheticWorkload(60, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, s, 0)
	for i := 0; i < 60*2+10; i++ {
		a := pull(t, s, reg.WorkerID)
		if a == nil {
			break
		}
		if _, err := s.Report(a.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.JobStatus(plainID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted {
		t.Fatalf("unweighted job %s still %s (completed %d/%d)", plainID, st.State, st.Completed, st.Tasks)
	}
	if st.Weight != 1 || st.Tenant != "" {
		t.Fatalf("resolved tenant/weight = %q/%d, want \"\"/1", st.Tenant, st.Weight)
	}
}

// TestTenantQuotaEnforced: a tenant at its in-flight cap is skipped at
// lease grant — other tenants keep dispatching — and a report returns the
// capacity.
func TestTenantQuotaEnforced(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	capped := submitTenant(t, s, "capped-job", "capped", 4, 100)
	other := submitTenant(t, s, "other-job", "other", 1, 100)
	if _, err := s.SetTenantQuota("capped", 1); err != nil {
		t.Fatal(err)
	}

	w1, w2, w3 := register(t, s, 0), register(t, s, 0), register(t, s, 1)
	a1 := pull(t, s, w1.WorkerID)
	if a1 == nil || a1.JobID != capped {
		t.Fatalf("first dispatch went to %+v, want the capped tenant (most underserved)", a1)
	}
	// Quota 1 is now consumed; the capped tenant must be skipped while a1
	// is in flight.
	for i, w := range []*api.RegisterResponse{w2, w3} {
		a := pull(t, s, w.WorkerID)
		if a == nil || a.JobID != other {
			t.Fatalf("pull %d: got %+v, want job %s (capped tenant at quota)", i, a, other)
		}
		if _, err := s.Report(a.ID, w.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Report(a1.ID, w1.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	// Capacity returned; the badly underserved capped tenant goes first.
	if a := pull(t, s, w1.WorkerID); a == nil || a.JobID != capped {
		t.Fatalf("after report got %+v, want capped job %s", a, capped)
	}
	for _, st := range s.Tenants() {
		if st.Tenant == "capped" {
			if st.MaxInFlight != 1 || st.Throttles == 0 || st.InFlight != 1 {
				t.Fatalf("capped tenant status %+v, want maxInFlight 1, inFlight 1, throttles > 0", st)
			}
		}
	}
}

// TestTenantQuotaReturnedOnExpiry: a crashed worker's lease expiring gives
// the tenant its quota slot back.
func TestTenantQuotaReturnedOnExpiry(t *testing.T) {
	s := newService(t, service.Config{
		NewScheduler:      gridsched.SchedulerFactory(),
		TenantMaxInFlight: 1,
		LeaseTTL:          150 * time.Millisecond,
	})
	capped := submitTenant(t, s, "only", "capped", 1, 50)
	w1, w2 := register(t, s, 0), register(t, s, 0)
	if a := pull(t, s, w1.WorkerID); a == nil || a.JobID != capped {
		t.Fatalf("got %+v, want job %s", a, capped)
	}
	// w1 goes silent. Until its lease expires w2 gets nothing (quota), and
	// afterwards the requeued task is dispatchable again.
	if a := pull(t, s, w2.WorkerID); a != nil {
		t.Fatalf("tenant over quota dispatched %+v", a)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := s.Pull(nil, w2.WorkerID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == api.StatusAssigned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never returned the tenant's quota slot")
		}
	}
}

// TestQuotaReleaseWakesParkedPull: a success report that returns a
// throttled tenant's quota capacity must wake parked long polls — the
// freed slot makes work dispatchable, unlike a plain success on an
// unthrottled tenant.
func TestQuotaReleaseWakesParkedPull(t *testing.T) {
	s := newService(t, service.Config{
		NewScheduler:      gridsched.SchedulerFactory(),
		TenantMaxInFlight: 1,
	})
	capped := submitTenant(t, s, "only", "capped", 1, 50)
	w1, w2 := register(t, s, 0), register(t, s, 0)
	a1 := pull(t, s, w1.WorkerID)
	if a1 == nil || a1.JobID != capped {
		t.Fatalf("got %+v, want job %s", a1, capped)
	}
	woken := make(chan *api.PullResponse, 1)
	go func() {
		resp, _ := s.Pull(nil, w2.WorkerID, 10*time.Second)
		woken <- resp
	}()
	time.Sleep(100 * time.Millisecond) // let the pull park on the quota
	if _, err := s.Report(a1.ID, w1.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-woken:
		if resp == nil || resp.Status != api.StatusAssigned {
			t.Fatalf("woken pull got %+v, want an assignment", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("report freed the tenant's quota slot but the parked pull stayed parked")
	}
}

// TestFairShareValidation rejects malformed fair-share parameters.
func TestFairShareValidation(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	w := syntheticWorkload(4, 2)
	for _, tc := range []struct {
		name string
		req  api.SubmitJobRequest
	}{
		{"negative weight", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Weight: -1}},
		{"huge weight", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Weight: 1<<20 + 1}},
		{"long tenant", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Tenant: strings.Repeat("x", 200)}},
		{"tenant with slash", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Tenant: "team/a"}},
		{"dot-dot tenant", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Tenant: ".."}},
		{"tenant with space", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Tenant: "team a"}},
		{"non-utf8 tenant", api.SubmitJobRequest{Algorithm: "workqueue", Workload: w, Tenant: "t\xff"}},
	} {
		_, err := s.SubmitJob(tc.req)
		var se *service.Error
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !asServiceError(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("%s: got %v, want 400", tc.name, err)
		}
	}
	if _, err := s.SetTenantQuota("t", -2); err == nil {
		t.Fatal("negative quota accepted")
	}
	if _, err := s.SetTenantQuota("", 1); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if _, err := s.SetTenantQuota("team/a", 1); err == nil {
		t.Fatal("unaddressable tenant name accepted")
	}
}

func asServiceError(err error, out **service.Error) bool {
	se, ok := err.(*service.Error)
	if ok {
		*out = se
	}
	return ok
}

// jobTask identifies one dispatch in a cross-job sequence.
type jobTask struct {
	job  string
	task int
}

// pullPairs drives one worker through n dispatch+report rounds (all of
// them when n < 0), returning the exact (job, task) dispatch sequence.
func pullPairs(t *testing.T, s *service.Service, n int) []jobTask {
	t.Helper()
	reg := register(t, s, 0)
	var seq []jobTask
	for n < 0 || len(seq) < n {
		resp, err := s.Pull(nil, reg.WorkerID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			if resp.OpenJobs == 0 {
				break
			}
			continue
		}
		seq = append(seq, jobTask{job: resp.Assignment.JobID, task: int(resp.Assignment.Task.ID)})
		if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	return seq
}

// submitFairMix submits the three-job, two-tenant mix used by the
// recovery-equivalence test: a weighted randomized worker-centric job, a
// lighter one, and an unweighted workqueue job.
func submitFairMix(t *testing.T, s *service.Service) {
	t.Helper()
	for _, j := range []struct {
		name, algo, tenant string
		weight, seed       int
	}{
		{"a", "combined.2", "gold", 2, 7},
		{"b", "combined.2", "bronze", 1, 9},
		{"c", "workqueue", "", 0, 0},
	} {
		if _, err := s.SubmitJob(api.SubmitJobRequest{
			Name: j.name, Algorithm: j.algo, Workload: syntheticWorkload(60, 3),
			Tenant: j.tenant, Weight: j.weight, Seed: int64(j.seed),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFairDispatchRecoveryIdentical is the fairness half of the recovery
// acceptance bar: with multiple tenant-weighted jobs resident, a crash and
// recovery mid-run (with a snapshot boundary inside the prefix) must
// reproduce the exact dispatch sequence — job interleaving AND task choice
// — of an uninterrupted run. The arbiter tags, virtual time, and scheduler
// RNG streams all have to come back bit-identical for this to hold.
func TestFairDispatchRecoveryIdentical(t *testing.T) {
	// Reference: uninterrupted, in-memory.
	ref := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	submitFairMix(t, ref)
	want := pullPairs(t, ref, -1)
	if len(want) < 3*60 {
		t.Fatalf("reference dispatched %d, want at least %d", len(want), 3*60)
	}

	// Crashy twin: journaled, snapshot mid-prefix, crash, recover, drain.
	dir := t.TempDir()
	s1, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitFairMix(t, s1)
	got := pullPairs(t, s1, 20)
	if err := s1.SnapshotForTest(); err != nil {
		t.Fatal(err)
	}
	got = append(got, pullPairs(t, s1, 15)...)
	s1.CrashForTest()

	s2, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	got = append(got, pullPairs(t, s2, -1)...)

	if len(got) != len(want) {
		t.Fatalf("dispatched %d across the crash, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d: %+v after recovery, %+v uninterrupted", i, got[i], want[i])
		}
	}
}

// TestTenantStateSurvivesRestart: quota overrides and per-tenant dispatch
// totals are durable; liveness state (in-flight) restarts at zero.
func TestTenantStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SetTenantQuota("q", 3); err != nil {
		t.Fatal(err)
	}
	jobID := submitTenant(t, s1, "qjob", "q", 2, 40)
	n := len(pullPairs(t, s1, 5))
	if n != 5 {
		t.Fatalf("dispatched %d, want 5", n)
	}
	s1.Close()

	s2, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	found := false
	for _, st := range s2.Tenants() {
		if st.Tenant != "q" {
			continue
		}
		found = true
		if st.MaxInFlight != 3 {
			t.Fatalf("recovered quota %d, want 3", st.MaxInFlight)
		}
		if st.Dispatches != 5 {
			t.Fatalf("recovered dispatch total %d, want 5", st.Dispatches)
		}
		if st.InFlight != 0 {
			t.Fatalf("recovered in-flight %d, want 0 (liveness state)", st.InFlight)
		}
	}
	if !found {
		t.Fatalf("tenant q missing after restart: %+v", s2.Tenants())
	}
	st, err := s2.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "q" || st.Weight != 2 {
		t.Fatalf("recovered job tenant/weight %q/%d, want q/2", st.Tenant, st.Weight)
	}
}

// TestTenantPrunedWithLastJob: tenant retention follows job retention —
// deleting a tenant's last job record drops the tenant from listings and
// metrics, unless a quota override keeps it relevant.
func TestTenantPrunedWithLastJob(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	ephemeral := submitTenant(t, s, "run-1", "ephemeral", 1, 3)
	pinned := submitTenant(t, s, "run-2", "pinned", 1, 3)
	if _, err := s.SetTenantQuota("pinned", 4); err != nil {
		t.Fatal(err)
	}
	if n := len(pullPairs(t, s, -1)); n != 6 {
		t.Fatalf("drained %d dispatches, want 6", n)
	}
	for _, id := range []string{ephemeral, pinned} {
		if err := s.DeleteJob(id); err != nil {
			t.Fatal(err)
		}
	}
	left := s.Tenants()
	if len(left) != 1 || left[0].Tenant != "pinned" {
		t.Fatalf("tenants after deleting all jobs: %+v, want only the quota-pinned one", left)
	}
	// Reverting the survivor's quota removes its last anchor too.
	if _, err := s.SetTenantQuota("pinned", 0); err != nil {
		t.Fatal(err)
	}
	if left := s.Tenants(); len(left) != 0 {
		t.Fatalf("tenants after quota revert: %+v, want none", left)
	}
}

// TestQuotaRevertNotResurrectedByRecovery: a set-then-revert quota pair in
// the journal tail must not re-materialize the pruned tenant on replay.
func TestQuotaRevertNotResurrectedByRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SetTenantQuota("zombie", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SetTenantQuota("zombie", 0); err != nil {
		t.Fatal(err)
	}
	if left := s1.Tenants(); len(left) != 0 {
		t.Fatalf("live tenants after revert: %+v", left)
	}
	s1.CrashForTest() // both opQuota records sit in the journal tail

	s2, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if left := s2.Tenants(); len(left) != 0 {
		t.Fatalf("recovery resurrected pruned tenants: %+v", left)
	}
}

// TestDeletedTenantNotResurrectedByTailDelete: a job delete sitting in
// the journal tail (after a snapshot that still carried the job) must
// leave the tenant's resident-record count at exactly zero on recovery —
// not negative — so the tenant is pruned just as the live process pruned
// it, and stays prunable forever after. Regression test for a recovery
// ordering bug: deletes used to apply before record counting.
func TestDeletedTenantNotResurrectedByTailDelete(t *testing.T) {
	dir := t.TempDir()
	s1, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	jobID := submitTenant(t, s1, "once", "ephemeral", 1, 2)
	if n := len(pullPairs(t, s1, -1)); n != 2 {
		t.Fatalf("drained %d dispatches, want 2", n)
	}
	// Snapshot while the job record is resident, so the delete below lands
	// in the journal tail of the next recovery.
	if err := s1.SnapshotForTest(); err != nil {
		t.Fatal(err)
	}
	if err := s1.DeleteJob(jobID); err != nil {
		t.Fatal(err)
	}
	if left := s1.Tenants(); len(left) != 0 {
		t.Fatalf("live tenants after delete: %+v", left)
	}
	s1.CrashForTest()

	s2, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if left := s2.Tenants(); len(left) != 0 {
		t.Fatalf("recovery resurrected the deleted job's tenant: %+v", left)
	}
	// The count must be zero, not negative: one more live submit+delete
	// cycle for the same tenant must still prune it.
	jobID2 := submitTenant(t, s2, "again", "ephemeral", 1, 2)
	if n := len(pullPairs(t, s2, -1)); n != 2 {
		t.Fatalf("drained %d dispatches, want 2", n)
	}
	if err := s2.DeleteJob(jobID2); err != nil {
		t.Fatal(err)
	}
	if left := s2.Tenants(); len(left) != 0 {
		t.Fatalf("tenant record count recovered skewed; tenant leaked: %+v", left)
	}
	s2.Close()
}

// TestTenantPrunedWhenLastLeaseEnds: a cancelled replica's lease can
// outlive its job's record (job completed, then deleted); the tenant must
// be pruned when that last lease ends, not leak forever.
func TestTenantPrunedWhenLastLeaseEnds(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	jobID, err := s.SubmitJob(api.SubmitJobRequest{
		Name: "replicated", Algorithm: "storage-affinity",
		Workload: syntheticWorkload(1, 2), Tenant: "leasey",
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := register(t, s, 0), register(t, s, 1)
	a1 := pull(t, s, w1.WorkerID)
	if a1 == nil {
		t.Fatal("no primary assignment")
	}
	a2 := pull(t, s, w2.WorkerID) // idle site replicates the lone task
	if a2 == nil {
		t.Skip("scheduler did not replicate; scenario not reachable")
	}
	if _, err := s.Report(a1.ID, w1.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	// Job completed; w2's replica is cancel-marked but still leased.
	if err := s.DeleteJob(jobID); err != nil {
		t.Fatal(err)
	}
	if left := s.Tenants(); len(left) != 1 {
		t.Fatalf("tenant should survive while its lease is in flight: %+v", left)
	}
	rep, err := s.Report(a2.ID, w2.WorkerID, api.OutcomeSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cancelled {
		t.Fatalf("replica report %+v, want cancelled", rep)
	}
	if left := s.Tenants(); len(left) != 0 {
		t.Fatalf("tenant leaked after its last lease ended: %+v", left)
	}
}

// TestLateReportAfterDeleteSurvivesRecovery: a cancelled replica's report
// or expiry landing after its job was deleted AND a snapshot rotated the
// journal must not brick the data dir. The live path refuses to journal
// records naming non-resident jobs, and replay tolerates such records
// written by older binaries.
func TestLateReportAfterDeleteSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := s1.SubmitJob(api.SubmitJobRequest{
		Name: "replicated", Algorithm: "storage-affinity",
		Workload: syntheticWorkload(1, 2), Tenant: "leasey",
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := register(t, s1, 0), register(t, s1, 1)
	a1 := pull(t, s1, w1.WorkerID)
	if a1 == nil {
		t.Fatal("no primary assignment")
	}
	a2 := pull(t, s1, w2.WorkerID)
	if a2 == nil {
		t.Skip("scheduler did not replicate; scenario not reachable")
	}
	if _, err := s1.Report(a1.ID, w1.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	if err := s1.DeleteJob(jobID); err != nil {
		t.Fatal(err)
	}
	// Snapshot after the delete: the next recovery starts from a snapshot
	// that has never heard of the job.
	if err := s1.SnapshotForTest(); err != nil {
		t.Fatal(err)
	}
	// The late replica report must not append an unreplayable record.
	if rep, err := s1.Report(a2.ID, w2.WorkerID, api.OutcomeSuccess); err != nil || !rep.Cancelled {
		t.Fatalf("late replica report: %+v, %v", rep, err)
	}
	s1.CrashForTest()

	s2, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after late report on deleted job: %v", err)
	}
	s2.CrashForTest()

	// Older binaries did write such records; replay must shrug them off.
	wal := filepath.Join(dir, "wal.log")
	info, err := journal.ReadLog(wal, 0, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w, err := journal.OpenWriter(wal, journal.SyncAlways, 0, info.LastLSN, info.ValidSize, &journal.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte(`{"op":"expire","ts":1,"job":"j999","task":0,"site":0,"worker":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery over a legacy orphan expire record: %v", err)
	}
	s3.Close()
}

// TestTenantHTTPSurface drives the tenant endpoints and metrics through
// the real HTTP protocol with the Go client.
func TestTenantHTTPSurface(t *testing.T) {
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)
	ctx := context.Background()

	if _, err := cl.SubmitTenantJob(ctx, "acme", 3, "job", "workqueue", 0, syntheticWorkload(20, 2)); err != nil {
		t.Fatal(err)
	}
	st, err := cl.SetTenantQuota(ctx, "acme", 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" || st.MaxInFlight != 2 || st.Weight != 3 {
		t.Fatalf("quota response %+v", st)
	}
	tenants, err := cl.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0].Tenant != "acme" || tenants[0].ShareTarget != 1 {
		t.Fatalf("tenant listing %+v", tenants)
	}
	if _, err := cl.SetTenantQuota(ctx, "acme", -1); err == nil {
		t.Fatal("negative quota accepted over HTTP")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gridsched_tenant_weight{tenant="acme"} 3`,
		`gridsched_tenant_quota{tenant="acme"} 2`,
		`gridsched_tenant_share_target{tenant="acme"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
