package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestBinaryCodecConformance runs the whole dispatch protocol — submit,
// register, stream, batched report, pull, heartbeat, single report — under
// the strict binary codec and then checks the client's reply counters:
// every binary-capable call must have been answered in binary, none in
// JSON. This is the observable the CI codec matrix gates on; a server that
// quietly fell back to JSON would fail here, not pass by accident.
func TestBinaryCodecConformance(t *testing.T) {
	const tasks = 24
	s := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, nil)
	if err := cl.SetCodec("binary"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := syntheticWorkload(tasks, 2)
	jobID, err := cl.SubmitJob(ctx, "bin", "workqueue", 1, w)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming leg.
	err = cl.RunWorker(ctx, client.WorkerConfig{
		StreamBatch: 4,
		Execute:     func(context.Context, core.WorkerRef, *api.Assignment) error { return nil },
		OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
			return resp.OpenJobs == 0, nil
		},
	})
	if err != nil {
		t.Fatalf("streaming worker under binary codec: %v", err)
	}
	st, err := cl.Job(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Completed != tasks {
		t.Fatalf("job under binary codec: %+v", st)
	}

	// Classic leg: pull, heartbeat, report — the remaining binary-capable
	// endpoints.
	if _, err := cl.SubmitJob(ctx, "bin2", "workqueue", 1, syntheticWorkload(1, 2)); err != nil {
		t.Fatal(err)
	}
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Pull(ctx, reg.WorkerID, time.Second)
	if err != nil || resp.Status != api.StatusAssigned {
		t.Fatalf("pull: %+v, %v", resp, err)
	}
	if _, err := cl.Heartbeat(ctx, resp.Assignment.ID, reg.WorkerID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Report(ctx, resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}

	bin, jsonReplies := cl.CodecCounts()
	if bin == 0 {
		t.Fatal("no binary replies observed — binary never reached the wire")
	}
	if jsonReplies != 0 {
		t.Fatalf("%d binary-capable calls answered in JSON under strict binary codec", jsonReplies)
	}
}

// stripAccept simulates a downlevel server that does not speak the binary
// codec: it drops the Accept header, so every reply comes back JSON.
func stripAccept(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		next.ServeHTTP(w, r)
	})
}

// TestBinaryCodecRefusesSilentFallback: in strict binary mode a 2xx JSON
// reply to a binary-capable call is an error, never silently decoded —
// otherwise the conformance matrix could "pass" with JSON on the wire.
func TestBinaryCodecRefusesSilentFallback(t *testing.T) {
	s := newService(t, service.Config{})
	ts := httptest.NewServer(stripAccept(s.Handler()))
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, nil)
	if err := cl.SetCodec("binary"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, err := cl.Register(ctx, nil)
	if err == nil || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("register against JSON-only server: %v, want silent-fallback refusal", err)
	}

	// The stream negotiates per-connection and must refuse the same way.
	// Register through a JSON client (pinned, so the conformance matrix's
	// env override cannot flip it) so a worker exists to stream for.
	jcl := client.New(ts.URL, nil)
	if err := jcl.SetCodec("json"); err != nil {
		t.Fatal(err)
	}
	reg, err := jcl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StreamLeases(ctx, reg.WorkerID, 2); err == nil || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("stream against JSON-only server: %v, want silent-fallback refusal", err)
	}
}

// TestAutoCodecNegotiates: auto mode upgrades to binary against a capable
// server and degrades to JSON — without erroring — against one that is not.
func TestAutoCodecNegotiates(t *testing.T) {
	s := newService(t, service.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	up := client.New(ts.URL, nil)
	if err := up.SetCodec("auto"); err != nil {
		t.Fatal(err)
	}
	if _, err := up.Register(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if bin, _ := up.CodecCounts(); bin == 0 {
		t.Fatal("auto mode did not negotiate binary against a capable server")
	}

	legacy := httptest.NewServer(stripAccept(s.Handler()))
	t.Cleanup(legacy.Close)
	down := client.New(legacy.URL, nil)
	if err := down.SetCodec("auto"); err != nil {
		t.Fatal(err)
	}
	if _, err := down.Register(ctx, nil); err != nil {
		t.Fatalf("auto mode against JSON-only server: %v", err)
	}
	bin, jsonReplies := down.CodecCounts()
	if bin != 0 || jsonReplies == 0 {
		t.Fatalf("auto against JSON-only server: bin=%d json=%d", bin, jsonReplies)
	}
}
