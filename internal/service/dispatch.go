// The dispatch coordinator: the small, separately locked nucleus that
// decides WHICH runnable job a worker pull draws from. It owns the
// fair-share arbiter heap and virtual time (arbiter.go), the per-tenant
// quota table, and the submission-dedup index — and nothing else. A pull
// consults it twice per dispatch, microseconds each time: once to snapshot
// the fair-ordered candidate list, and once to commit the grant (quota
// accounting, fair charge, and the dispatch record's WAL position, whose
// order relative to other charges is what keeps recovery bit-exact). The
// scheduler call, staging, and lease bookkeeping — the expensive part —
// run under the chosen job's shard alone, so pulls serving different jobs
// proceed in parallel.
//
// Candidate traversal is two-pass: the first pass visits jobs in strict
// (fair, seq) order but skips a job whose shard lock is momentarily held
// by another pull (TryLock), so concurrent workers fan out across stripes
// instead of convoying behind the single most-underserved job; the second
// pass revisits the skipped jobs with blocking acquires, guaranteeing a
// pull never misses dispatchable work. Under a sequential caller — every
// determinism-sensitive test, and any single-worker deployment — no lock
// is ever contended, both passes collapse to the exact fair order, and
// the dispatch sequence is identical to the old single-lock scan.
package service

import (
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/metrics"
	"gridsched/internal/service/api"
)

// coordinator is the dispatch-decision state. See the file comment.
type coordinator struct {
	mu sync.Mutex
	arbiter
	// submissions maps client idempotency keys to job ids.
	submissions map[string]string
}

func newCoordinator() *coordinator {
	return &coordinator{
		arbiter: arbiter{
			tenants: make(map[string]*tenantState),
			window:  metrics.NewShareWindow(shareWindowSize),
		},
		submissions: make(map[string]string),
	}
}

// runnableWeight is the summed weight of all running jobs — the
// denominator of every tenant's share target. Callers hold c.mu.
func (c *coordinator) runnableWeight() int64 {
	total := int64(0)
	for _, t := range c.tenants {
		total += t.weight
	}
	return total
}

// prune drops a tenant's state when nothing keeps it relevant: no quota
// override, no live or reserved leases, no running jobs, and no resident
// job records (running or completed-but-retained; counted, not scanned).
// Called at every event that can strip a tenant of its last anchor —
// job-record deletion, quota-override revert, lease end, and the
// post-recovery sweep — so churning tenant names cannot grow the daemon,
// its snapshots, or its metrics without bound. Callers hold c.mu.
func (c *coordinator) prune(name string) {
	t := c.tenants[name]
	if t == nil || t.quota != 0 || t.running != 0 || t.inFlight != 0 || t.reserved != 0 || t.records != 0 {
		return
	}
	delete(c.tenants, name)
}

// candidate is one runnable job with its fair tag copied under the
// coordinator lock, so the out-of-lock ordering reads a consistent
// snapshot.
type candidate struct {
	j      *job
	fair   uint64
	seq    int64
	urgent bool
}

// candScratch is the per-pull candidate workspace, pooled so the hot
// path allocates nothing once warm.
type candScratch struct {
	cands []candidate
	retry []candidate
}

var candPool = sync.Pool{New: func() any { return &candScratch{} }}

// candLess orders candidates deadline-urgent jobs first, then
// most-underserved, submission order on ties — the heap's (fair, seq)
// total order with an urgency boost layered on top. Urgency reorders
// only the offer sequence, never the fair accounting: an urgent job
// still pays full fair charge for every dispatch, so the boost is a
// soft priority that starves no one (the boosted job's fair tag races
// ahead and the others win the next tie).
func candLess(a, b candidate) bool {
	if a.urgent != b.urgent {
		return a.urgent
	}
	if a.fair != b.fair {
		return a.fair < b.fair
	}
	return a.seq < b.seq
}

// candDown sifts index i of a candidate min-heap.
func candDown(h []candidate, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && candLess(h[l], h[min]) {
			min = l
		}
		if r < n && candLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// candInit heapifies in O(n); candPop then yields candidates in exact
// (fair, seq) order at O(log n) each. Lazy selection: a pull that
// dispatches off the first candidate — the common case — pays O(n) for
// the snapshot copy + heapify and a single pop, never a full sort.
func candInit(h []candidate) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		candDown(h, i)
	}
}

func candPop(h []candidate) (candidate, []candidate) {
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if last > 0 {
		candDown(h, 0)
	}
	return min, h
}

// Pull hands the worker a leased task, parking up to wait for one to become
// dispatchable. It blocks in ServeHTTP; done aborts the park (request
// context).
func (s *Service) Pull(done <-chan struct{}, workerID string, wait time.Duration) (*api.PullResponse, error) {
	resp, _, err := s.pull(done, workerID, wait)
	return resp, err
}

// pull implements Pull and additionally reports how long the call spent
// parked waiting for work. The park is the long-poll portion of the
// request's wall time — up to the full poll budget on an idle system —
// and the HTTP handler forwards it to the ingress shedder
// (middleware.ObserveParked) so it is never mistaken for service
// latency.
func (s *Service) pull(done <-chan struct{}, workerID string, wait time.Duration) (resp *api.PullResponse, parked time.Duration, err error) {
	if wait < 0 {
		wait = 0
	}
	if wait > maxPullWait {
		wait = maxPullWait
	}
	s.counters.Pulls.Add(1)
	deadline := time.Now().Add(wait)
	openAtEntry := -1
	for {
		if s.closed.Load() {
			return nil, parked, errf(503, "service: closed")
		}
		now := s.now()
		s.maybeSweep(now)

		s.reg.mu.Lock()
		w := s.reg.workers[workerID]
		if w == nil {
			s.reg.mu.Unlock()
			return nil, parked, errf(404, "service: unknown worker %q (lease expired? re-register)", workerID)
		}
		w.expires = now.Add(s.cfg.LeaseTTL)
		if w.streaming {
			s.reg.mu.Unlock()
			return nil, parked, errf(409, "service: worker %q has a lease stream open", workerID)
		}
		if len(w.assignments) > 0 {
			var id string
			for id = range w.assignments {
				break
			}
			s.reg.mu.Unlock()
			return nil, parked, errf(409, "service: worker %q already holds assignment %q", workerID, id)
		}
		if w.pulling {
			s.reg.mu.Unlock()
			return nil, parked, errf(409, "service: worker %q has another pull in flight", workerID)
		}
		w.pulling = true
		ref, tags := w.ref, w.tags
		s.reg.mu.Unlock()

		// Subscribe BEFORE scanning: any state change after this point
		// closes ch, so a wakeup between a fruitless scan and the park is
		// never lost.
		ch := s.hub.wait()
		dispatchStart := time.Now()
		a, resp, lsn := s.dispatchOnce(w.id, ref, tags, now)

		s.reg.mu.Lock()
		w.pulling = false
		orphaned := false
		if a != nil {
			if s.reg.workers[workerID] == w {
				w.assignments[a.id] = a
			} else {
				orphaned = true // deregistered mid-dispatch
			}
		}
		s.reg.mu.Unlock()
		if orphaned {
			// The worker vanished between the grant and the attach; requeue
			// the task as if the lease expired instantly.
			s.requeueOrphan(a)
			return nil, parked, errf(404, "service: unknown worker %q (lease expired? re-register)", workerID)
		}
		if a != nil {
			s.counters.ObserveDispatch(time.Since(dispatchStart).Nanoseconds())
			s.snapshotIfDue()
			if err := s.waitDurable(lsn); err != nil {
				// The assignment stands (journaled and leased); only its
				// durability confirmation failed. The worker gets an error,
				// abandons the pull, and the lease expires back into the
				// queue.
				return nil, parked, err
			}
			return resp, parked, nil
		}

		// Surface idleness promptly when a job finishes while we wait:
		// drain-watching clients (exit-when-idle workers, the live
		// runtime) react at the completion broadcast instead of sitting
		// out the rest of their poll budget.
		open := int(s.counters.OpenJobs.Load())
		if open > openAtEntry {
			openAtEntry = open
		}
		if open < openAtEntry {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, parked, nil
		}

		park := time.Until(deadline)
		if park <= 0 {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, parked, nil
		}
		// Cap each park below the lease TTL so the loop re-renews the
		// worker's registration lease while it waits.
		if cap := s.cfg.LeaseTTL / 3; cap > 0 && park > cap {
			park = cap
		}
		timer := time.NewTimer(park)
		parkStart := time.Now()
		aborted := false
		select {
		case <-done:
			timer.Stop()
			aborted = true
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
		parked += time.Since(parkStart)
		if aborted {
			return nil, parked, errf(499, "service: pull abandoned by client")
		}
	}
}

// requeueOrphan expires a just-granted assignment whose worker vanished
// between the grant and the attach (deregistered or swept mid-dispatch),
// returning the task to the queue as if the lease expired instantly.
func (s *Service) requeueOrphan(a *assignment) {
	sh := s.shardOf(a.job.id)
	sh.mu.Lock()
	if sh.assignments[a.id] == a {
		s.expireAssignmentLocked(sh, a, s.now())
	}
	sh.mu.Unlock()
	s.hub.broadcast()
}

// dispatchOnce offers the worker to runnable jobs in fair-share order —
// most underserved tenant-weighted job first — and dispatches the first
// task any scheduler grants it. Returns the granted assignment (nil when
// nothing was dispatchable), the wire response, and the dispatch record's
// LSN for the caller's durability wait.
func (s *Service) dispatchOnce(workerID string, ref core.WorkerRef, tags []string, now time.Time) (*assignment, *api.PullResponse, uint64) {
	c := s.coord
	scratch := candPool.Get().(*candScratch)
	defer func() {
		scratch.cands, scratch.retry = scratch.cands[:0], scratch.retry[:0]
		candPool.Put(scratch)
	}()
	c.mu.Lock()
	cands := scratch.cands[:0]
	for _, j := range c.heap {
		cands = append(cands, candidate{j: j, fair: j.fair, seq: j.seq, urgent: j.urgent.Load()})
	}
	c.mu.Unlock()
	scratch.cands = cands
	candInit(cands)

	// Pass 0 pops candidates lazily in exact (fair, seq) order, skipping
	// stripes another pull is inside; pass 1 revisits the skipped ones
	// (already in fair order — they were popped in it) with blocking
	// acquires.
	retry := scratch.retry[:0]
	for pass := 0; pass < 2; pass++ {
		remaining := len(cands)
		if pass == 1 {
			remaining = len(retry)
		}
		for i := 0; i < remaining; i++ {
			var cd candidate
			if pass == 0 {
				cd, cands = candPop(cands)
			} else {
				cd = retry[i]
			}
			sh := s.shardOf(cd.j.id)
			if pass == 0 {
				if !sh.mu.TryLock() {
					// Another pull is inside this stripe; try the next-most
					// underserved job first and come back.
					retry = append(retry, cd)
					continue
				}
			} else {
				sh.mu.Lock()
			}
			a, resp, lsn, granted := s.tryJobLocked(sh, cd.j, workerID, ref, tags, now)
			sh.mu.Unlock()
			if granted {
				scratch.retry = retry
				return a, resp, lsn
			}
		}
	}
	scratch.retry = retry
	return nil, nil, 0
}

// tryJobLocked asks one job's scheduler for a task for the worker and, on
// a grant, stages the batch, charges the fair tag, journals the dispatch,
// and creates the lease. Callers hold sh.mu.
//
// Quota is enforced by reservation: the tenant's slot is reserved under
// the coordinator BEFORE NextFor runs (NextFor mutates scheduler state —
// including the randomized pick stream — only when its assignment is
// used, so a throttled tenant's scheduler must not even be consulted),
// and converted to an in-flight charge or released afterwards. The
// reservation keeps concurrent pulls from overshooting a cap that a
// pre-check alone would allow.
func (s *Service) tryJobLocked(sh *shard, j *job, workerID string, ref core.WorkerRef, tags []string, now time.Time) (*assignment, *api.PullResponse, uint64, bool) {
	if sh.jobs[j.id] != j || j.state != api.JobRunning || j.sched == nil {
		return nil, nil, 0, false
	}
	if !tagsSatisfy(j.requires, tags) {
		// Capability constraint: enforced here, before the scheduler is
		// consulted, so an ineligible worker leaves no trace in scheduler
		// state (or its RNG stream) and recovery replay stays exact.
		return nil, nil, 0, false
	}
	if a, resp, lsn, ok := s.trySpeculateLocked(sh, j, workerID, ref, now); ok {
		return a, resp, lsn, true
	}
	c := s.coord
	c.mu.Lock()
	t := c.tenant(j.tenant)
	if q := c.quotaFor(t, s.cfg.TenantMaxInFlight); q > 0 && t.inFlight+t.reserved >= q {
		t.throttles++
		c.mu.Unlock()
		return nil, nil, 0, false
	}
	t.reserved++
	c.mu.Unlock()

	task, status := j.sched.NextFor(ref)
	if status != core.Assigned {
		c.mu.Lock()
		t.reserved--
		c.mu.Unlock()
		switch status {
		case core.Wait:
			// Nothing for this worker now; the caller tries the next-most
			// underserved job.
		case core.Done:
			// The scheduler has nothing pending, but in-flight leases may
			// still fail and requeue — only Remaining()==0 ends the job.
			if j.sched.Remaining() == 0 {
				s.completeJobLocked(sh, j, now)
			}
		default:
			panicf("service: unknown scheduler status %v", status)
		}
		return nil, nil, 0, false
	}

	fetched, evicted, err := j.stores[ref.Site].CommitBatchInto(task.Files, sh.fetchBuf[:0], sh.evictBuf[:0])
	if err != nil {
		// Submit validated capacity >= max task size.
		panicf("service: stage job %s task %d at site %d: %v", j.id, task.ID, ref.Site, err)
	}
	sh.fetchBuf, sh.evictBuf = fetched[:0], evicted[:0]
	j.sched.NoteBatch(ref.Site, task.Files, fetched, evicted)
	j.transfers += int64(len(fetched))
	j.dispatched++
	a := &assignment{
		id:       s.nextID("a"),
		job:      j,
		task:     task,
		workerID: workerID,
		ref:      ref,
		deadline: now.Add(s.cfg.LeaseTTL),
		staged:   len(fetched),
		granted:  now.UnixMilli(),
		schedRef: ref, // primary: the scheduler saw this very ref
	}

	var lsn uint64
	c.mu.Lock()
	t.reserved--
	t.inFlight++
	t.dispatches++
	c.charge(j)
	c.down(j.heapIdx)
	c.window.Observe(j.tenant)
	if s.pst != nil {
		// Appended inside the coordinator critical section: the WAL order
		// of dispatch records must equal the order their fair charges were
		// applied, or recovery's in-LSN-order re-charging would diverge.
		// The scheduler already moved (NextFor is the decision), so this
		// append cannot abort — mustAppend fail-stops on journal I/O
		// errors.
		lsn = s.mustAppend(&record{
			Op: opDispatch, Ts: now.UnixMilli(), Job: j.id,
			Task: task.ID, Site: ref.Site, Worker: ref.Worker,
			Assignment: a.id,
		})
	}
	c.mu.Unlock()
	if s.pst != nil {
		j.ledger = append(j.ledger, ledgerRec{
			Op: ledgerDispatch, Task: task.ID,
			Site: int32(ref.Site), Worker: int32(ref.Worker),
			Ts: now.UnixMilli(),
		})
	}
	sh.assignments[a.id] = a
	s.noteDeadline(a.deadline)
	s.counters.Assignments.Add(1)
	s.counters.ActiveLeases.Add(1)
	resp := &api.PullResponse{
		Status: api.StatusAssigned,
		Assignment: &api.Assignment{
			ID:             a.id,
			JobID:          j.id,
			Task:           task,
			Staged:         a.staged,
			LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
		},
		OpenJobs: int(s.counters.OpenJobs.Load()),
	}
	return a, resp, lsn, true
}

// trySpeculateLocked grants the worker a speculative twin of a straggling
// lease, if the sweeper queued one this worker can safely duplicate. The
// twin rides entirely above the scheduler: NextFor never runs — the
// primary's task is re-staged directly and the scheduler only observes
// the storage change through NoteBatch — and the twin's schedRef is the
// PRIMARY's ref, so every later scheduler callback resolves to the one
// execution the scheduler knows about. First report wins; the loser hits
// the existing stale/cancelled rejection. Callers hold sh.mu.
func (s *Service) trySpeculateLocked(sh *shard, j *job, workerID string, ref core.WorkerRef, now time.Time) (*assignment, *api.PullResponse, uint64, bool) {
	if !s.cfg.Speculation || len(j.specPending) == 0 {
		return nil, nil, 0, false
	}
	// Scan the queue (sweep-sorted by task id) for the first entry whose
	// primary is still live and whose replicas all run on OTHER workers —
	// a worker must never race itself. Entries whose primary is gone
	// (reported or expired since the sweep) are dropped and unmarked so
	// the sweeper may re-queue the task if a later lease straggles too.
	for qi := 0; qi < len(j.specPending); {
		taskID := j.specPending[qi]
		var primary *assignment
		conflict := false
		for _, a := range sh.assignments {
			if a.job != j || a.task.ID != taskID {
				continue
			}
			if a.ref == ref {
				conflict = true
				break
			}
			if a.cancelled || a.speculative {
				continue
			}
			// Deterministic pick among scheduler-created replicas: lowest
			// (site, worker). Replay derives the same schedRef by the same
			// rule from its open-execution map (recovery.go).
			if primary == nil || a.ref.Site < primary.ref.Site ||
				(a.ref.Site == primary.ref.Site && a.ref.Worker < primary.ref.Worker) {
				primary = a
			}
		}
		if conflict {
			qi++ // eligible for another worker; keep queued
			continue
		}
		if primary == nil {
			delete(j.specMarked, taskID)
			j.specPending = append(j.specPending[:qi], j.specPending[qi+1:]...)
			continue
		}

		// Quota by reservation, exactly like the primary path: the slot is
		// held before any irreversible mutation (staging moves store and
		// scheduler-locality state).
		c := s.coord
		c.mu.Lock()
		t := c.tenant(j.tenant)
		if q := c.quotaFor(t, s.cfg.TenantMaxInFlight); q > 0 && t.inFlight+t.reserved >= q {
			t.throttles++
			c.mu.Unlock()
			return nil, nil, 0, false
		}
		t.reserved++
		c.mu.Unlock()

		task := primary.task
		j.specPending = append(j.specPending[:qi], j.specPending[qi+1:]...)
		fetched, evicted, err := j.stores[ref.Site].CommitBatchInto(task.Files, sh.fetchBuf[:0], sh.evictBuf[:0])
		if err != nil {
			panicf("service: stage speculative job %s task %d at site %d: %v", j.id, task.ID, ref.Site, err)
		}
		sh.fetchBuf, sh.evictBuf = fetched[:0], evicted[:0]
		j.sched.NoteBatch(ref.Site, task.Files, fetched, evicted)
		j.transfers += int64(len(fetched))
		j.dispatched++
		j.speculated++
		a := &assignment{
			id:          s.nextID("a"),
			job:         j,
			task:        task,
			workerID:    workerID,
			ref:         ref,
			deadline:    now.Add(s.cfg.LeaseTTL),
			staged:      len(fetched),
			granted:     now.UnixMilli(),
			speculative: true,
			schedRef:    primary.schedRef,
		}

		var lsn uint64
		c.mu.Lock()
		t.reserved--
		t.inFlight++
		t.dispatches++
		// No fair charge and no heap re-sift: the twin redoes work the job
		// was already charged for at the primary's grant; billing it again
		// would penalize a job for its straggler.
		c.window.Observe(j.tenant)
		if s.pst != nil {
			lsn = s.mustAppend(&record{
				Op: opDispatch, Ts: now.UnixMilli(), Job: j.id,
				Task: task.ID, Site: ref.Site, Worker: ref.Worker,
				Assignment: a.id, Spec: true,
			})
		}
		c.mu.Unlock()
		if s.pst != nil {
			j.ledger = append(j.ledger, ledgerRec{
				Op: ledgerSpecDispatch, Task: task.ID,
				Site: int32(ref.Site), Worker: int32(ref.Worker),
				Ts: now.UnixMilli(),
			})
		}
		sh.assignments[a.id] = a
		s.noteDeadline(a.deadline)
		s.counters.Assignments.Add(1)
		s.counters.ActiveLeases.Add(1)
		s.counters.SpeculativeDispatches.Add(1)
		resp := &api.PullResponse{
			Status: api.StatusAssigned,
			Assignment: &api.Assignment{
				ID:             a.id,
				JobID:          j.id,
				Task:           task,
				Staged:         a.staged,
				LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			},
			OpenJobs: int(s.counters.OpenJobs.Load()),
		}
		return a, resp, lsn, true
	}
	return nil, nil, 0, false
}
