// Package service implements gridschedd: an embeddable scheduler daemon
// that wraps the paper's core.Scheduler strategies behind a concurrent,
// networked worker protocol (HTTP/JSON, see internal/service/api).
//
// The daemon is the middleware the paper's worker-centric model implies:
// workers are remote parties that register, long-poll for tasks, heartbeat
// their leases, and report outcomes; jobs are whole Bag-of-Tasks workloads
// submitted with a per-job algorithm choice, and several jobs can be
// resident at once. Per-site file stores live behind the service — a task
// is staged into its worker's site store at assignment time, and the
// scheduler observes the resulting batch commit through NoteBatch just as
// it does under the simulator. (Unlike the simulator's data server, which
// serves one batch at a time and charges transfer delay before the commit,
// the service commits instantly at assignment; clients model staging cost
// on their side from the Staged count. Timing fidelity to the paper's
// model is the simulator's job; the service's job is throughput.)
//
// Fault tolerance is lease-based: every assignment carries a deadline,
// heartbeats renew it, and an expired lease requeues the task through the
// scheduler's existing failure path (core.Scheduler.OnExecutionFailed). A
// report that arrives after its lease expired is rejected as stale, which
// is what guarantees a task is never completed twice.
//
// Concurrency: the service serializes all scheduler and store access under
// one mutex (see the core.Scheduler concurrency contract); long-poll
// waiters park outside the lock on a broadcast channel and are woken by any
// state change that could make new work dispatchable.
package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/metrics"
	"gridsched/internal/storage"
	"gridsched/internal/workload"

	"gridsched/internal/service/api"
)

// Topology fixes the worker pool the service schedules over: the same
// (sites × workers-per-site) grid the core schedulers expect, plus each
// site's store capacity.
type Topology struct {
	Sites          int            `json:"sites"`
	WorkersPerSite int            `json:"workersPerSite"`
	CapacityFiles  int            `json:"capacityFiles"`
	Policy         storage.Policy `json:"policy"`
}

// CheckWorkload reports whether every task of w can be staged at a site:
// a task needs all its inputs resident at once (assumption 5), so the
// largest task must fit the per-site store capacity.
func (t Topology) CheckWorkload(w *workload.Workload) error {
	maxFiles := 0
	for _, task := range w.Tasks {
		if len(task.Files) > maxFiles {
			maxFiles = len(task.Files)
		}
	}
	if maxFiles > t.CapacityFiles {
		return fmt.Errorf("capacity %d below largest task (%d files)", t.CapacityFiles, maxFiles)
	}
	return nil
}

// SchedulerFactory builds a scheduler by algorithm name for one submitted
// job. gridsched.SchedulerFactory supplies the canonical one (all of
// AlgorithmNames); a server embedding the service may restrict or extend
// the set.
type SchedulerFactory func(algorithm string, w *workload.Workload, topo Topology, seed int64) (core.Scheduler, error)

// Config parameterizes a Service.
type Config struct {
	Topology
	// LeaseTTL is the lease duration for worker registrations and task
	// assignments. Defaults to 15s.
	LeaseTTL time.Duration
	// SweepInterval is how often the expiry sweeper runs. Defaults to
	// LeaseTTL/4. Expiry is additionally checked on every pull, so the
	// sweeper only matters when no worker is polling.
	SweepInterval time.Duration
	// NewScheduler resolves algorithm names for jobs submitted over HTTP.
	// Nil disables by-name submission (Submit with a pre-built scheduler
	// still works). Required when DataDir is set: recovery rebuilds every
	// running job's scheduler through it.
	NewScheduler SchedulerFactory

	// DataDir enables durability: every externally visible mutation is
	// written to a write-ahead journal under this directory before it is
	// acknowledged, and New replays snapshot+journal to reconstruct the
	// service exactly as the previous process left it (see recovery.go).
	// Empty means in-memory only, the pre-journal behavior.
	DataDir string
	// Fsync selects the journal's machine-crash durability (process
	// crashes lose nothing in any mode): journal.SyncAlways groups
	// concurrent acknowledgements into shared fsyncs; journal.SyncBatch
	// (default) fsyncs every FsyncInterval; journal.SyncNever only syncs
	// at snapshots.
	Fsync journal.Mode
	// FsyncInterval is the SyncBatch flush cadence. Defaults to 25ms.
	FsyncInterval time.Duration
	// SnapshotEvery is how many journal records accumulate before the
	// service writes a compacting snapshot and rotates the journal.
	// Defaults to 4096.
	SnapshotEvery int
}

func (c *Config) normalize() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("service: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("service: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("service: CapacityFiles = %d", c.CapacityFiles)
	}
	if c.Policy == 0 {
		c.Policy = storage.LRU
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 4
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 25 * time.Millisecond
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 4096
	}
	if c.DataDir != "" && c.NewScheduler == nil {
		return fmt.Errorf("service: DataDir requires a NewScheduler factory (recovery rebuilds schedulers by name)")
	}
	return nil
}

// maxPullWait caps one long-poll request; clients just pull again.
const maxPullWait = 30 * time.Second

// Error is a protocol-level failure with an HTTP status.
type Error struct {
	Code int
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// job is one resident workload with its own scheduler and site stores.
// On completion the workload, scheduler, and stores are released (set to
// nil) so a long-running daemon does not accumulate every finished job's
// heavy state; the status summary fields survive.
type job struct {
	id           string
	name         string
	algorithm    string
	seed         int64
	submissionID string // client-chosen idempotency key, "" when absent
	tasks        int
	w            *workload.Workload
	sched        core.Scheduler
	stores       []*storage.Store
	state        string // api.JobRunning | api.JobCompleted
	// ledger is the job's replay history (journaling only): the ordered
	// dispatch/report/expiry events that, replayed through a freshly built
	// scheduler, reproduce its exact state. Serialized into snapshots;
	// released on completion with the rest of the heavy state.
	ledger []ledgerRec

	dispatched int
	completed  int
	failed     int
	cancelled  int
	expired    int
	transfers  int64
	submitted  time.Time
	finished   time.Time
}

// worker is one registered remote worker holding a (site, worker) slot.
type worker struct {
	id         string
	ref        core.WorkerRef
	expires    time.Time
	assignment *assignment // nil when idle; at most one at a time
}

// assignment is one leased task execution.
type assignment struct {
	id        string
	job       *job
	task      workload.Task
	workerID  string
	ref       core.WorkerRef
	deadline  time.Time
	cancelled bool // obsoleted by another replica's completion
	staged    int
}

// Service is the gridschedd core. Create with New, expose with Handler,
// stop with Close.
type Service struct {
	cfg      Config
	counters *metrics.ServiceCounters

	// instance is a per-process nonce suffixed onto worker ids: worker
	// registrations are not journaled, so after a recovery a fresh id
	// sequence could otherwise re-mint a pre-crash worker id while its
	// original holder is still retrying against it.
	instance string
	// pst is the journaling state; nil when Config.DataDir is unset.
	pst *persistence

	mu          sync.Mutex
	closed      bool
	seq         int64
	jobs        map[string]*job
	jobOrder    []*job            // submission order; pull scans it front to back
	submissions map[string]string // idempotency key -> job id
	workers     map[string]*worker
	assignments map[string]*assignment
	slots       [][]string // [site][worker] -> workerID, "" when free
	notify      chan struct{}
	// staging scratch reused across dispatches (guarded by mu; consumed
	// synchronously by NoteBatch before the next dispatch can run).
	fetchBuf, evictBuf []workload.FileID
	// nextSweep is the earliest known lease deadline; maybeSweepLocked
	// skips the O(assignments+workers) sweep until it is due. Zero means
	// unknown (sweep next time). It may lag behind renewals, which only
	// costs a harmless extra sweep.
	nextSweep time.Time

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a service and starts its lease sweeper. With cfg.DataDir set
// it first recovers the previous process's state from snapshot + journal;
// the service is not reachable until recovery finished, so every response
// it ever gives reflects the recovered history.
func New(cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:         cfg,
		counters:    metrics.NewServiceCounters(),
		instance:    hex.EncodeToString(nonce[:]),
		jobs:        make(map[string]*job),
		submissions: make(map[string]string),
		workers:     make(map[string]*worker),
		assignments: make(map[string]*assignment),
		slots:       make([][]string, cfg.Sites),
		notify:      make(chan struct{}),
		sweepStop:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
	}
	for i := range s.slots {
		s.slots[i] = make([]string, cfg.WorkersPerSite)
	}
	if cfg.DataDir != "" {
		s.pst = &persistence{dir: cfg.DataDir}
		if err := s.recover(); err != nil {
			if s.pst.w != nil {
				_ = s.pst.w.Close()
			}
			return nil, err
		}
	}
	go s.sweeper()
	return s, nil
}

// Counters exposes the service's metrics (also rendered at /metrics).
func (s *Service) Counters() *metrics.ServiceCounters { return s.counters }

// Close stops the sweeper and fails every parked long poll; with
// journaling enabled it then writes a final snapshot (making the next
// start a snapshot-only recovery) and closes the journal. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.sweepStop)
	s.broadcastLocked()
	s.mu.Unlock()
	<-s.sweepDone
	if s.pst != nil {
		s.mu.Lock()
		s.maybeSnapshotLocked()
		s.mu.Unlock()
		if err := s.pst.w.Close(); err != nil {
			// The snapshot above already persisted everything; the journal
			// close failing loses nothing, but say so.
			log.Printf("gridschedd: journal close: %v", err)
		}
	}
}

// sweeper periodically expires leases even when no worker is polling.
func (s *Service) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// broadcastLocked wakes every parked long poll. Callers hold s.mu.
func (s *Service) broadcastLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

func (s *Service) nextID(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

// Submit adds a job built around a caller-constructed scheduler. The
// scheduler must be fresh and is driven exclusively by the service from
// here on (the service serializes all calls; see core.Scheduler's
// concurrency contract). Incompatible with journaling: recovery cannot
// rebuild an opaque scheduler, so services with DataDir set only accept
// SubmitByName.
func (s *Service) Submit(name, algorithm string, w *workload.Workload, sched core.Scheduler) (string, error) {
	if s.pst != nil {
		return "", errf(http.StatusNotImplemented,
			"service: journaling requires by-name submission (the recovery path rebuilds schedulers from the factory)")
	}
	return s.submitJob(name, algorithm, 0, "", w, sched)
}

// SubmitByName builds the job's scheduler from the configured factory —
// the path behind POST /v1/jobs. submissionID, when non-empty, is an
// idempotency key: a resubmission carrying the same key returns the
// original job's id instead of creating a duplicate, which is what lets a
// client safely retry a submission whose acknowledgement was lost to a
// connection failure or a server restart. With journaling enabled the key
// survives restarts.
func (s *Service) SubmitByName(name, algorithm string, w *workload.Workload, seed int64, submissionID string) (string, error) {
	if s.cfg.NewScheduler == nil {
		return "", errf(http.StatusNotImplemented, "service: no scheduler factory configured")
	}
	if w == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	if submissionID != "" {
		// Fast path: an already-known key skips scheduler construction.
		s.mu.Lock()
		id, ok := s.submissions[submissionID]
		s.mu.Unlock()
		if ok {
			return id, nil
		}
	}
	sched, err := s.cfg.NewScheduler(algorithm, w, s.cfg.Topology, seed)
	if err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	return s.submitJob(name, algorithm, seed, submissionID, w, sched)
}

// submitJob validates, journals (before acknowledging), and registers one
// job.
func (s *Service) submitJob(name, algorithm string, seed int64, submissionID string, w *workload.Workload, sched core.Scheduler) (string, error) {
	if w == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	if err := w.Validate(); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	if err := s.cfg.CheckWorkload(w); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	now := time.Now()
	j := &job{
		name:         name,
		algorithm:    algorithm,
		seed:         seed,
		submissionID: submissionID,
		tasks:        len(w.Tasks),
		w:            w,
		sched:        sched,
		state:        api.JobRunning,
		submitted:    now,
	}
	for i := 0; i < s.cfg.Sites; i++ {
		st, err := storage.New(s.cfg.CapacityFiles, s.cfg.Policy)
		if err != nil {
			return "", err
		}
		st.Reserve(w.NumFiles)
		j.stores = append(j.stores, st)
		sched.AttachSite(i)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errf(http.StatusServiceUnavailable, "service: closed")
	}
	if submissionID != "" {
		if id, ok := s.submissions[submissionID]; ok {
			// Lost ack resent: the job already exists.
			s.mu.Unlock()
			return id, nil
		}
	}
	j.id = s.nextID("j")
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendLocked(&record{
			Op: opSubmit, Ts: now.UnixMilli(), Job: j.id,
			Name: name, Algorithm: algorithm, Seed: seed, Submission: submissionID,
			Workload: w,
		})
		if err != nil {
			s.mu.Unlock()
			return "", err
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j)
	if submissionID != "" {
		s.submissions[submissionID] = j.id
	}
	s.counters.JobsSubmitted.Add(1)
	s.counters.OpenJobs.Add(1)
	if len(w.Tasks) == 0 {
		s.completeJobLocked(j, now)
	}
	s.broadcastLocked()
	s.snapshotIfDueLocked()
	id := j.id
	s.mu.Unlock()
	if err := s.waitDurable(lsn); err != nil {
		// The job is journaled and resident but the configured durability
		// could not be confirmed; surface that. An idempotent retry
		// resolves to the same job id.
		return "", err
	}
	return id, nil
}

// Register enrolls a worker into a free (site, worker) slot. site < 0 picks
// the site with the most free slots.
func (s *Service) Register(site int) (*api.RegisterResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	s.maybeSweepLocked(time.Now())
	target := -1
	if site >= 0 {
		if site >= s.cfg.Sites {
			return nil, errf(http.StatusBadRequest, "service: site %d outside [0,%d)", site, s.cfg.Sites)
		}
		target = site
	} else {
		bestFree := 0
		for si := range s.slots {
			free := 0
			for _, id := range s.slots[si] {
				if id == "" {
					free++
				}
			}
			if free > bestFree {
				bestFree, target = free, si
			}
		}
		if target < 0 {
			return nil, errf(http.StatusServiceUnavailable, "service: all worker slots taken")
		}
	}
	slot := -1
	for wi, id := range s.slots[target] {
		if id == "" {
			slot = wi
			break
		}
	}
	if slot < 0 {
		return nil, errf(http.StatusServiceUnavailable, "service: site %d has no free worker slots", target)
	}
	// Worker ids carry the process instance nonce: registrations are not
	// journaled, so a recovered process would otherwise re-mint ids that
	// pre-crash workers still present.
	s.seq++
	w := &worker{
		id:      fmt.Sprintf("w%d-%s", s.seq, s.instance),
		ref:     core.WorkerRef{Site: target, Worker: slot},
		expires: time.Now().Add(s.cfg.LeaseTTL),
	}
	s.slots[target][slot] = w.id
	s.workers[w.id] = w
	s.noteDeadlineLocked(w.expires)
	s.counters.ActiveWorkers.Add(1)
	return &api.RegisterResponse{
		WorkerID:       w.id,
		Site:           w.ref.Site,
		Worker:         w.ref.Worker,
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Deregister removes a worker. An outstanding assignment is requeued
// through the scheduler's failure path.
func (s *Service) Deregister(workerID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[workerID]
	if w == nil {
		return errf(http.StatusNotFound, "service: unknown worker %q", workerID)
	}
	if w.assignment != nil {
		s.expireAssignmentLocked(w.assignment)
	}
	s.removeWorkerLocked(w)
	s.broadcastLocked()
	s.snapshotIfDueLocked()
	return nil
}

// removeWorkerLocked frees the worker's slot and forgets it.
func (s *Service) removeWorkerLocked(w *worker) {
	s.slots[w.ref.Site][w.ref.Worker] = ""
	delete(s.workers, w.id)
	s.counters.ActiveWorkers.Add(-1)
}

// Pull hands the worker a leased task, parking up to wait for one to become
// dispatchable. It blocks in ServeHTTP; done aborts the park (request
// context).
func (s *Service) Pull(done <-chan struct{}, workerID string, wait time.Duration) (*api.PullResponse, error) {
	if wait < 0 {
		wait = 0
	}
	if wait > maxPullWait {
		wait = maxPullWait
	}
	s.counters.Pulls.Add(1)
	deadline := time.Now().Add(wait)
	openAtEntry := -1
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errf(http.StatusServiceUnavailable, "service: closed")
		}
		now := time.Now()
		s.maybeSweepLocked(now)
		w := s.workers[workerID]
		if w == nil {
			s.mu.Unlock()
			return nil, errf(http.StatusNotFound, "service: unknown worker %q (lease expired? re-register)", workerID)
		}
		w.expires = now.Add(s.cfg.LeaseTTL)
		if w.assignment != nil {
			s.mu.Unlock()
			return nil, errf(http.StatusConflict, "service: worker %q already holds assignment %q", workerID, w.assignment.id)
		}
		dispatchStart := time.Now()
		if a, lsn := s.assignLocked(w, now); a != nil {
			s.counters.ObserveDispatch(time.Since(dispatchStart).Nanoseconds())
			resp := &api.PullResponse{
				Status:     api.StatusAssigned,
				Assignment: a,
				OpenJobs:   int(s.counters.OpenJobs.Load()),
			}
			s.snapshotIfDueLocked()
			s.mu.Unlock()
			if err := s.waitDurable(lsn); err != nil {
				// The assignment stands (journaled and leased); only its
				// durability confirmation failed. The worker gets an error,
				// abandons the pull, and the lease expires back into the
				// queue.
				return nil, err
			}
			return resp, nil
		}
		open := int(s.counters.OpenJobs.Load())
		ch := s.notify
		s.mu.Unlock()

		// Surface idleness promptly when a job finishes while we wait:
		// drain-watching clients (exit-when-idle workers, the live
		// runtime) react at the completion broadcast instead of sitting
		// out the rest of their poll budget.
		if open > openAtEntry {
			openAtEntry = open
		}
		if open < openAtEntry {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, nil
		}

		park := time.Until(deadline)
		if park <= 0 {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, nil
		}
		// Cap each park below the lease TTL so the loop re-renews the
		// worker's registration lease while it waits.
		if cap := s.cfg.LeaseTTL / 3; cap > 0 && park > cap {
			park = cap
		}
		timer := time.NewTimer(park)
		select {
		case <-done:
			timer.Stop()
			return nil, errf(499, "service: pull abandoned by client")
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// assignLocked scans resident jobs in submission order and dispatches the
// first task any scheduler grants this worker. Staging happens here: the
// batch is committed into the job's site store and the scheduler notified,
// exactly as the simulator and live runtime do around an execution start.
// With journaling enabled the dispatch record is appended before the
// assignment is returned; the caller must confirm durability (waitDurable
// on the returned LSN) before acknowledging it to the worker.
func (s *Service) assignLocked(w *worker, now time.Time) (*api.Assignment, uint64) {
	for _, j := range s.jobOrder {
		if j.state != api.JobRunning {
			continue
		}
		task, status := j.sched.NextFor(w.ref)
		switch status {
		case core.Assigned:
			fetched, evicted, err := j.stores[w.ref.Site].CommitBatchInto(task.Files, s.fetchBuf[:0], s.evictBuf[:0])
			if err != nil {
				// Submit validated capacity >= max task size.
				panic(fmt.Sprintf("service: stage job %s task %d at site %d: %v", j.id, task.ID, w.ref.Site, err))
			}
			s.fetchBuf, s.evictBuf = fetched[:0], evicted[:0]
			j.sched.NoteBatch(w.ref.Site, task.Files, fetched, evicted)
			j.transfers += int64(len(fetched))
			j.dispatched++
			a := &assignment{
				id:       s.nextID("a"),
				job:      j,
				task:     task,
				workerID: w.id,
				ref:      w.ref,
				deadline: now.Add(s.cfg.LeaseTTL),
				staged:   len(fetched),
			}
			s.assignments[a.id] = a
			w.assignment = a
			s.noteDeadlineLocked(a.deadline)
			s.counters.Assignments.Add(1)
			s.counters.ActiveLeases.Add(1)
			var lsn uint64
			if s.pst != nil {
				// The scheduler already moved (NextFor is the decision), so
				// this append cannot abort — mustAppendLocked fail-stops on
				// journal I/O errors.
				lsn = s.mustAppendLocked(&record{
					Op: opDispatch, Ts: now.UnixMilli(), Job: j.id,
					Task: task.ID, Site: w.ref.Site, Worker: w.ref.Worker,
					Assignment: a.id,
				})
				j.ledger = append(j.ledger, ledgerRec{
					Op: ledgerDispatch, Task: task.ID,
					Site: int32(w.ref.Site), Worker: int32(w.ref.Worker),
					Ts: now.UnixMilli(),
				})
			}
			return &api.Assignment{
				ID:             a.id,
				JobID:          j.id,
				Task:           task,
				Staged:         a.staged,
				LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			}, lsn
		case core.Wait:
			// Nothing for this worker now; try the next job.
		case core.Done:
			// The scheduler has nothing pending, but in-flight leases may
			// still fail and requeue — only Remaining()==0 ends the job.
			if j.sched.Remaining() == 0 {
				s.completeJobLocked(j, now)
			}
		default:
			panic(fmt.Sprintf("service: unknown scheduler status %v", status))
		}
	}
	return nil, 0
}

// Heartbeat renews an assignment's lease and reports whether the execution
// is still wanted.
func (s *Service) Heartbeat(assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.Heartbeats.Add(1)
	a := s.assignments[assignmentID]
	if a == nil || a.workerID != workerID {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	now := time.Now()
	a.deadline = now.Add(s.cfg.LeaseTTL)
	if w := s.workers[workerID]; w != nil {
		w.expires = now.Add(s.cfg.LeaseTTL)
	}
	if a.cancelled {
		return &api.HeartbeatResponse{State: api.HeartbeatCancelled}, nil
	}
	return &api.HeartbeatResponse{State: api.HeartbeatActive}, nil
}

// Report ends an assignment. Reports on expired (requeued) assignments are
// rejected as stale; reports on cancelled replicas are accepted but counted
// as cancellations, not completions. The first successful completion of a
// task wins — both properties together guarantee no duplicate completions.
func (s *Service) Report(assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	if outcome != api.OutcomeSuccess && outcome != api.OutcomeFailure {
		return nil, errf(http.StatusBadRequest, "service: unknown outcome %q", outcome)
	}
	s.mu.Lock()
	a := s.assignments[assignmentID]
	if a == nil || a.workerID != workerID {
		s.counters.StaleReports.Add(1)
		s.mu.Unlock()
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	now := time.Now()
	j := a.job
	var lsn uint64
	if s.pst != nil {
		// Journal before applying: if the append fails the report is
		// refused with the assignment intact, and the worker's retry (or
		// eventual lease expiry) keeps state and log agreeing.
		var err error
		lsn, err = s.appendLocked(&record{
			Op: opReport, Ts: now.UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
			Outcome: outcome,
		})
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		op := ledgerFailure
		if outcome == api.OutcomeSuccess {
			op = ledgerSuccess
		}
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: op, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: now.UnixMilli(),
			})
		}
	}
	s.detachAssignmentLocked(a)
	if w := s.workers[workerID]; w != nil {
		w.expires = now.Add(s.cfg.LeaseTTL)
	}
	resp := &api.ReportResponse{Accepted: true}
	// Long-poll wakeups are targeted: parked pulls only care about events
	// that can make new work dispatchable (a failure requeues the task) or
	// change the open-job count (completion of the job's last task, which
	// completeJobLocked broadcasts itself). A plain success or a cancelled
	// replica frees no work for anyone else — completion only shrinks the
	// schedulable set, and replica cancellation is delivered through the
	// running worker's own heartbeat — so the common case no longer wakes
	// the whole herd just to find nothing.
	switch {
	case a.cancelled:
		// Covers replicas obsoleted by another completion AND any
		// execution that outlived its job: completeJobLocked cancel-marks
		// every assignment still in flight for the job, so no report can
		// reach a completed job's (released) scheduler or resurrect a task
		// another worker already finished.
		j.cancelled++
		s.counters.Cancellations.Add(1)
		resp.Cancelled = true
	case outcome == api.OutcomeFailure:
		j.failed++
		s.counters.Failures.Add(1)
		if j.sched != nil { // defensive: unreachable once completed (cancel-marked above)
			j.sched.OnExecutionFailed(a.task.ID, a.ref)
		}
		s.broadcastLocked()
	default:
		victims := j.sched.OnTaskComplete(a.task.ID, a.ref)
		j.completed++
		s.counters.Completions.Add(1)
		for _, v := range victims {
			s.cancelExecutionLocked(j, a.task.ID, v)
		}
		if j.sched.Remaining() == 0 {
			s.completeJobLocked(j, now) // broadcasts
		}
	}
	resp.JobState = j.state
	s.snapshotIfDueLocked()
	s.mu.Unlock()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return resp, nil
}

// cancelExecutionLocked marks the assignment running task id at ref (if
// any) as cancelled; the worker learns at its next heartbeat.
func (s *Service) cancelExecutionLocked(j *job, id workload.TaskID, ref core.WorkerRef) {
	wid := s.slots[ref.Site][ref.Worker]
	if wid == "" {
		return
	}
	w := s.workers[wid]
	if w == nil || w.assignment == nil {
		return
	}
	if a := w.assignment; a.job == j && a.task.ID == id {
		a.cancelled = true
	}
}

// detachAssignmentLocked removes the assignment from the lease table and
// its worker without touching the scheduler.
func (s *Service) detachAssignmentLocked(a *assignment) {
	delete(s.assignments, a.id)
	if w := s.workers[a.workerID]; w != nil && w.assignment == a {
		w.assignment = nil
	}
	s.counters.ActiveLeases.Add(-1)
}

// expireAssignmentLocked ends a lease without a report: the task is
// requeued through the scheduler's failure path (unless the execution was
// already cancelled — a replica obsoleted by a completion, or any lease
// that outlived its job — in which case there is nothing to requeue).
// The expiry is journaled like every other scheduler-affecting event: a
// later dispatch record of the requeued task only replays if the expiry
// that made it pending replays first.
func (s *Service) expireAssignmentLocked(a *assignment) {
	s.detachAssignmentLocked(a)
	j := a.job
	if s.pst != nil {
		s.mustAppendLocked(&record{
			Op: opExpire, Ts: time.Now().UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
		})
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: ledgerExpire, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: time.Now().UnixMilli(),
			})
		}
	}
	if a.cancelled {
		j.cancelled++
		s.counters.Cancellations.Add(1)
		return
	}
	j.expired++
	s.counters.LeasesExpired.Add(1)
	if j.sched != nil { // defensive: unreachable once completed (cancel-marked)
		j.sched.OnExecutionFailed(a.task.ID, a.ref)
	}
}

// maybeSweepLocked sweeps only when the earliest known deadline is due —
// the request-path entry point, so parked pulls woken by a broadcast do
// not all pay the full sweep.
func (s *Service) maybeSweepLocked(now time.Time) {
	if !s.nextSweep.IsZero() && now.Before(s.nextSweep) {
		return
	}
	s.sweepLocked(now)
}

// noteDeadlineLocked lowers nextSweep to cover a newly created deadline.
func (s *Service) noteDeadlineLocked(t time.Time) {
	if s.nextSweep.IsZero() || t.Before(s.nextSweep) {
		s.nextSweep = t
	}
}

// sweepLocked expires overdue assignment leases and worker registrations,
// then recomputes the next deadline.
func (s *Service) sweepLocked(now time.Time) {
	changed := false
	for _, a := range s.assignments {
		if now.After(a.deadline) {
			s.expireAssignmentLocked(a)
			changed = true
		}
	}
	for _, w := range s.workers {
		if now.After(w.expires) {
			if w.assignment != nil {
				s.expireAssignmentLocked(w.assignment)
			}
			s.removeWorkerLocked(w)
			s.counters.WorkersExpired.Add(1)
			changed = true
		}
	}
	next := time.Time{}
	for _, a := range s.assignments {
		if next.IsZero() || a.deadline.Before(next) {
			next = a.deadline
		}
	}
	for _, w := range s.workers {
		if next.IsZero() || w.expires.Before(next) {
			next = w.expires
		}
	}
	s.nextSweep = next
	if changed {
		s.broadcastLocked()
	}
	s.snapshotIfDueLocked()
}

// completeJobLocked transitions a job to completed (idempotent) and
// releases its heavy state, cancel-marking every assignment still in
// flight for it first. The marking is what makes releasing the scheduler
// safe against late reports and lease expiries: both route cancelled
// executions to counting paths that never touch the scheduler. Earlier
// revisions relied on the completing OnTaskComplete's victim list covering
// all in-flight replicas — an invariant a scheduler implementation behind
// the public Submit API need not uphold, and whose violation let a
// cancelled job's in-flight report resurrect an already-completed task
// (or nil-panic the report path). See TestCompletedJobInFlightReport*.
func (s *Service) completeJobLocked(j *job, now time.Time) {
	if j.state == api.JobCompleted {
		return
	}
	j.state = api.JobCompleted
	j.finished = now
	for _, a := range s.assignments {
		if a.job == j {
			a.cancelled = true
		}
	}
	j.w, j.sched, j.stores, j.ledger = nil, nil, nil, nil
	s.counters.JobsCompleted.Add(1)
	s.counters.OpenJobs.Add(-1)
	s.broadcastLocked()
}

// DeleteJob drops a completed job's record (retention control for
// long-running daemons). Running jobs cannot be deleted. With journaling,
// the job's monotone counter totals are folded into a carry persisted with
// every snapshot, so deletion never makes the global /metrics counters
// jump backwards across a restart.
func (s *Service) DeleteJob(jobID string) error {
	s.mu.Lock()
	j := s.jobs[jobID]
	if j == nil {
		s.mu.Unlock()
		return errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	if j.state != api.JobCompleted {
		s.mu.Unlock()
		return errf(http.StatusConflict, "service: job %q is %s; only completed jobs can be deleted", jobID, j.state)
	}
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendLocked(&record{Op: opDelete, Ts: time.Now().UnixMilli(), Job: jobID})
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.dropJobLocked(j)
	s.snapshotIfDueLocked()
	s.mu.Unlock()
	return s.waitDurable(lsn)
}

// JobStatus returns one job's observable state.
func (s *Service) JobStatus(jobID string) (*api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[jobID]
	if j == nil {
		return nil, errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	st := s.jobStatusLocked(j)
	return &st, nil
}

// Jobs lists every resident job in submission order.
func (s *Service) Jobs() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.jobOrder))
	for _, j := range s.jobOrder {
		out = append(out, s.jobStatusLocked(j))
	}
	return out
}

func (s *Service) jobStatusLocked(j *job) api.JobStatus {
	remaining := 0
	if j.sched != nil {
		remaining = j.sched.Remaining()
	}
	st := api.JobStatus{
		ID:              j.id,
		Name:            j.name,
		Algorithm:       j.algorithm,
		State:           j.state,
		Tasks:           j.tasks,
		Remaining:       remaining,
		Dispatched:      j.dispatched,
		Completed:       j.completed,
		Failed:          j.failed,
		Cancelled:       j.cancelled,
		Expired:         j.expired,
		Transfers:       j.transfers,
		SubmittedAtUnix: j.submitted.Unix(),
	}
	if !j.finished.IsZero() {
		st.FinishedAtUnix = j.finished.Unix()
	}
	return st
}

// Health summarizes liveness for /healthz.
func (s *Service) Health() api.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.Health{Status: "ok", Jobs: len(s.jobs), Workers: len(s.workers)}
}
