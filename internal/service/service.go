// Package service implements gridschedd: an embeddable scheduler daemon
// that wraps the paper's core.Scheduler strategies behind a concurrent,
// networked worker protocol (HTTP/JSON, see internal/service/api).
//
// The daemon is the middleware the paper's worker-centric model implies:
// workers are remote parties that register, long-poll for tasks, heartbeat
// their leases, and report outcomes; jobs are whole Bag-of-Tasks workloads
// submitted with a per-job algorithm choice, and several jobs can be
// resident at once. Per-site file stores live behind the service — a task
// is staged into its worker's site store at assignment time, and the
// scheduler observes the resulting batch commit through NoteBatch just as
// it does under the simulator. (Unlike the simulator's data server, which
// serves one batch at a time and charges transfer delay before the commit,
// the service commits instantly at assignment; clients model staging cost
// on their side from the Staged count. Timing fidelity to the paper's
// model is the simulator's job; the service's job is throughput.)
//
// Fault tolerance is lease-based: every assignment carries a deadline,
// heartbeats renew it, and an expired lease requeues the task through the
// scheduler's existing failure path (core.Scheduler.OnExecutionFailed). A
// report that arrives after its lease expired is rejected as stale, which
// is what guarantees a task is never completed twice.
//
// Concurrency: the service serializes all scheduler and store access under
// one mutex (see the core.Scheduler concurrency contract); long-poll
// waiters park outside the lock on a broadcast channel and are woken by any
// state change that could make new work dispatchable.
package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/metrics"
	"gridsched/internal/storage"
	"gridsched/internal/workload"

	"gridsched/internal/service/api"
)

// Topology fixes the worker pool the service schedules over: the same
// (sites × workers-per-site) grid the core schedulers expect, plus each
// site's store capacity.
type Topology struct {
	Sites          int            `json:"sites"`
	WorkersPerSite int            `json:"workersPerSite"`
	CapacityFiles  int            `json:"capacityFiles"`
	Policy         storage.Policy `json:"policy"`
}

// CheckWorkload reports whether every task of w can be staged at a site:
// a task needs all its inputs resident at once (assumption 5), so the
// largest task must fit the per-site store capacity.
func (t Topology) CheckWorkload(w *workload.Workload) error {
	maxFiles := 0
	for _, task := range w.Tasks {
		if len(task.Files) > maxFiles {
			maxFiles = len(task.Files)
		}
	}
	if maxFiles > t.CapacityFiles {
		return fmt.Errorf("capacity %d below largest task (%d files)", t.CapacityFiles, maxFiles)
	}
	return nil
}

// SchedulerFactory builds a scheduler by algorithm name for one submitted
// job. gridsched.SchedulerFactory supplies the canonical one (all of
// AlgorithmNames); a server embedding the service may restrict or extend
// the set.
type SchedulerFactory func(algorithm string, w *workload.Workload, topo Topology, seed int64) (core.Scheduler, error)

// Config parameterizes a Service.
type Config struct {
	Topology
	// LeaseTTL is the lease duration for worker registrations and task
	// assignments. Defaults to 15s.
	LeaseTTL time.Duration
	// SweepInterval is how often the expiry sweeper runs. Defaults to
	// LeaseTTL/4. Expiry is additionally checked on every pull, so the
	// sweeper only matters when no worker is polling.
	SweepInterval time.Duration
	// NewScheduler resolves algorithm names for jobs submitted over HTTP.
	// Nil disables by-name submission (Submit with a pre-built scheduler
	// still works). Required when DataDir is set: recovery rebuilds every
	// running job's scheduler through it.
	NewScheduler SchedulerFactory

	// DefaultWeight is the fair-share weight given to jobs submitted
	// without one. Defaults to 1. See arbiter.go for the dispatch
	// discipline.
	DefaultWeight int
	// TenantMaxInFlight caps any one tenant's concurrently leased
	// assignments (enforced at lease grant, returned on report or lease
	// expiry). 0 disables the cap. Per-tenant overrides set via
	// SetTenantQuota (PUT /v1/tenants/{tenant}) take precedence.
	TenantMaxInFlight int

	// DataDir enables durability: every externally visible mutation is
	// written to a write-ahead journal under this directory before it is
	// acknowledged, and New replays snapshot+journal to reconstruct the
	// service exactly as the previous process left it (see recovery.go).
	// Empty means in-memory only, the pre-journal behavior.
	DataDir string
	// Fsync selects the journal's machine-crash durability (process
	// crashes lose nothing in any mode): journal.SyncAlways groups
	// concurrent acknowledgements into shared fsyncs; journal.SyncBatch
	// (default) fsyncs every FsyncInterval; journal.SyncNever only syncs
	// at snapshots.
	Fsync journal.Mode
	// FsyncInterval is the SyncBatch flush cadence. Defaults to 25ms.
	FsyncInterval time.Duration
	// SnapshotEvery is how many journal records accumulate before the
	// service writes a compacting snapshot and rotates the journal.
	// Defaults to 4096.
	SnapshotEvery int
}

func (c *Config) normalize() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("service: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("service: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("service: CapacityFiles = %d", c.CapacityFiles)
	}
	if c.Policy == 0 {
		c.Policy = storage.LRU
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 4
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 25 * time.Millisecond
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.DefaultWeight > maxWeight {
		return fmt.Errorf("service: DefaultWeight %d above the maximum %d", c.DefaultWeight, maxWeight)
	}
	if c.TenantMaxInFlight < 0 {
		return fmt.Errorf("service: TenantMaxInFlight = %d", c.TenantMaxInFlight)
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 4096
	}
	if c.DataDir != "" && c.NewScheduler == nil {
		return fmt.Errorf("service: DataDir requires a NewScheduler factory (recovery rebuilds schedulers by name)")
	}
	return nil
}

// maxPullWait caps one long-poll request; clients just pull again.
const maxPullWait = 30 * time.Second

// maxTenantName bounds tenant names (they become metrics label values and
// journal payload).
const maxTenantName = 128

// validateFairShare rejects malformed tenant/weight parameters. O(name
// length); submission paths run it before scheduler construction so a
// doomed request never pays the O(workload) factory cost.
func validateFairShare(req *api.SubmitJobRequest) error {
	if req.Weight < 0 || req.Weight > maxWeight {
		return errf(http.StatusBadRequest, "service: weight %d outside [0,%d]", req.Weight, maxWeight)
	}
	if !validTenantName(req.Tenant) {
		return errf(http.StatusBadRequest,
			"service: invalid tenant name %q (up to %d of [A-Za-z0-9._-])", req.Tenant, maxTenantName)
	}
	return nil
}

// validTenantName restricts tenant names to characters that survive every
// place a tenant name travels: a single URL path segment (PUT
// /v1/tenants/{tenant}), a Prometheus label value, a JSON field. "" (the
// default tenant) is valid on submission but not addressable by PUT.
// "." and ".." are excluded outright: ServeMux path-cleans them away, so
// such a tenant could be created but never addressed.
func validTenantName(name string) bool {
	if len(name) > maxTenantName || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Error is a protocol-level failure with an HTTP status.
type Error struct {
	Code int
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// job is one resident workload with its own scheduler and site stores.
// On completion the workload, scheduler, and stores are released (set to
// nil) so a long-running daemon does not accumulate every finished job's
// heavy state; the status summary fields survive.
type job struct {
	id           string
	name         string
	algorithm    string
	seed         int64
	submissionID string // client-chosen idempotency key, "" when absent
	tasks        int
	w            *workload.Workload
	sched        core.Scheduler
	stores       []*storage.Store
	state        string // api.JobRunning | api.JobCompleted

	// Fair-share state (see arbiter.go). tenant and weight are resolved at
	// submission ("" = default tenant; weight never below 1) and journaled
	// resolved, so a changed server default cannot skew recovery. seq is
	// the numeric part of the job id, the deterministic tie-breaker. fair
	// is the virtual finish tag; heapIdx the arbiter-heap position (-1:
	// not runnable/not in heap).
	tenant  string
	weight  int
	seq     int64
	fair    uint64
	heapIdx int
	// ledger is the job's replay history (journaling only): the ordered
	// dispatch/report/expiry events that, replayed through a freshly built
	// scheduler, reproduce its exact state. Serialized into snapshots;
	// released on completion with the rest of the heavy state.
	ledger []ledgerRec

	dispatched int
	completed  int
	failed     int
	cancelled  int
	expired    int
	transfers  int64
	submitted  time.Time
	finished   time.Time
}

// worker is one registered remote worker holding a (site, worker) slot.
type worker struct {
	id         string
	ref        core.WorkerRef
	expires    time.Time
	assignment *assignment // nil when idle; at most one at a time
}

// assignment is one leased task execution.
type assignment struct {
	id        string
	job       *job
	task      workload.Task
	workerID  string
	ref       core.WorkerRef
	deadline  time.Time
	cancelled bool // obsoleted by another replica's completion
	staged    int
}

// Service is the gridschedd core. Create with New, expose with Handler,
// stop with Close.
type Service struct {
	cfg      Config
	counters *metrics.ServiceCounters

	// instance is a per-process nonce suffixed onto worker ids: worker
	// registrations are not journaled, so after a recovery a fresh id
	// sequence could otherwise re-mint a pre-crash worker id while its
	// original holder is still retrying against it.
	instance string
	// pst is the journaling state; nil when Config.DataDir is unset.
	pst *persistence

	mu          sync.Mutex
	closed      bool
	seq         int64
	jobs        map[string]*job
	jobOrder    []*job            // submission order (status listings)
	arb         *arbiter          // fair-share dispatch order (arbiter.go)
	submissions map[string]string // idempotency key -> job id
	workers     map[string]*worker
	assignments map[string]*assignment
	slots       [][]string // [site][worker] -> workerID, "" when free
	notify      chan struct{}
	// staging scratch reused across dispatches (guarded by mu; consumed
	// synchronously by NoteBatch before the next dispatch can run).
	fetchBuf, evictBuf []workload.FileID
	// nextSweep is the earliest known lease deadline; maybeSweepLocked
	// skips the O(assignments+workers) sweep until it is due. Zero means
	// unknown (sweep next time). It may lag behind renewals, which only
	// costs a harmless extra sweep.
	nextSweep time.Time

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a service and starts its lease sweeper. With cfg.DataDir set
// it first recovers the previous process's state from snapshot + journal;
// the service is not reachable until recovery finished, so every response
// it ever gives reflects the recovered history.
func New(cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:         cfg,
		counters:    metrics.NewServiceCounters(),
		instance:    hex.EncodeToString(nonce[:]),
		arb:         newArbiter(),
		jobs:        make(map[string]*job),
		submissions: make(map[string]string),
		workers:     make(map[string]*worker),
		assignments: make(map[string]*assignment),
		slots:       make([][]string, cfg.Sites),
		notify:      make(chan struct{}),
		sweepStop:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
	}
	for i := range s.slots {
		s.slots[i] = make([]string, cfg.WorkersPerSite)
	}
	if cfg.DataDir != "" {
		s.pst = &persistence{dir: cfg.DataDir}
		if err := s.recover(); err != nil {
			if s.pst.w != nil {
				_ = s.pst.w.Close()
			}
			return nil, err
		}
	}
	go s.sweeper()
	return s, nil
}

// Counters exposes the service's metrics (also rendered at /metrics).
func (s *Service) Counters() *metrics.ServiceCounters { return s.counters }

// Close stops the sweeper and fails every parked long poll; with
// journaling enabled it then writes a final snapshot (making the next
// start a snapshot-only recovery) and closes the journal. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.sweepStop)
	s.broadcastLocked()
	s.mu.Unlock()
	<-s.sweepDone
	if s.pst != nil {
		s.mu.Lock()
		s.maybeSnapshotLocked()
		s.mu.Unlock()
		if err := s.pst.w.Close(); err != nil {
			// The snapshot above already persisted everything; the journal
			// close failing loses nothing, but say so.
			log.Printf("gridschedd: journal close: %v", err)
		}
	}
}

// sweeper periodically expires leases even when no worker is polling.
func (s *Service) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked(time.Now())
			s.mu.Unlock()
		}
	}
}

// broadcastLocked wakes every parked long poll. Callers hold s.mu.
func (s *Service) broadcastLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

func (s *Service) nextID(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

// Submit adds a job built around a caller-constructed scheduler. The
// scheduler must be fresh and is driven exclusively by the service from
// here on (the service serializes all calls; see core.Scheduler's
// concurrency contract). Incompatible with journaling: recovery cannot
// rebuild an opaque scheduler, so services with DataDir set only accept
// SubmitByName.
func (s *Service) Submit(name, algorithm string, w *workload.Workload, sched core.Scheduler) (string, error) {
	if s.pst != nil {
		return "", errf(http.StatusNotImplemented,
			"service: journaling requires by-name submission (the recovery path rebuilds schedulers from the factory)")
	}
	return s.submitJob(api.SubmitJobRequest{Name: name, Algorithm: algorithm, Workload: w}, sched)
}

// SubmitByName builds the job's scheduler from the configured factory.
// submissionID, when non-empty, is an idempotency key: a resubmission
// carrying the same key returns the original job's id instead of creating
// a duplicate, which is what lets a client safely retry a submission whose
// acknowledgement was lost to a connection failure or a server restart.
// With journaling enabled the key survives restarts. The job joins the
// default tenant at the default weight; SubmitJob takes the full request.
func (s *Service) SubmitByName(name, algorithm string, w *workload.Workload, seed int64, submissionID string) (string, error) {
	return s.SubmitJob(api.SubmitJobRequest{
		Name: name, Algorithm: algorithm, Workload: w, Seed: seed, SubmissionID: submissionID,
	})
}

// SubmitJob is the path behind POST /v1/jobs: it resolves the request's
// fair-share parameters (tenant, weight), builds the scheduler from the
// configured factory, and registers the job.
func (s *Service) SubmitJob(req api.SubmitJobRequest) (string, error) {
	if s.cfg.NewScheduler == nil {
		return "", errf(http.StatusNotImplemented, "service: no scheduler factory configured")
	}
	if req.Workload == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	// Cheap rejections before the factory call: scheduler construction is
	// O(workload) and not worth paying for a request that cannot land.
	if err := validateFairShare(&req); err != nil {
		return "", err
	}
	if req.SubmissionID != "" {
		// Fast path: an already-known key skips scheduler construction.
		s.mu.Lock()
		id, ok := s.submissions[req.SubmissionID]
		s.mu.Unlock()
		if ok {
			return id, nil
		}
	}
	sched, err := s.cfg.NewScheduler(req.Algorithm, req.Workload, s.cfg.Topology, req.Seed)
	if err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	return s.submitJob(req, sched)
}

// submitJob validates, journals (before acknowledging), and registers one
// job.
func (s *Service) submitJob(req api.SubmitJobRequest, sched core.Scheduler) (string, error) {
	name, w, submissionID := req.Name, req.Workload, req.SubmissionID
	if w == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	if err := validateFairShare(&req); err != nil {
		return "", err
	}
	if err := w.Validate(); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	if err := s.cfg.CheckWorkload(w); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	now := time.Now()
	j := &job{
		name:         name,
		algorithm:    req.Algorithm,
		seed:         req.Seed,
		submissionID: submissionID,
		tenant:       req.Tenant,
		weight:       normalizeWeight(req.Weight, s.cfg.DefaultWeight),
		heapIdx:      -1,
		tasks:        len(w.Tasks),
		w:            w,
		sched:        sched,
		state:        api.JobRunning,
		submitted:    now,
	}
	for i := 0; i < s.cfg.Sites; i++ {
		st, err := storage.New(s.cfg.CapacityFiles, s.cfg.Policy)
		if err != nil {
			return "", err
		}
		st.Reserve(w.NumFiles)
		j.stores = append(j.stores, st)
		sched.AttachSite(i)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errf(http.StatusServiceUnavailable, "service: closed")
	}
	if submissionID != "" {
		if id, ok := s.submissions[submissionID]; ok {
			// Lost ack resent: the job already exists.
			s.mu.Unlock()
			return id, nil
		}
	}
	j.id = s.nextID("j")
	j.seq = s.seq
	var lsn uint64
	if s.pst != nil {
		var err error
		// Tenant and weight are journaled resolved (weight never zero), so
		// replay is independent of the server's default-weight setting.
		lsn, err = s.appendLocked(&record{
			Op: opSubmit, Ts: now.UnixMilli(), Job: j.id,
			Name: name, Algorithm: req.Algorithm, Seed: req.Seed, Submission: submissionID,
			Tenant: j.tenant, Weight: j.weight,
			Workload: w,
		})
		if err != nil {
			s.mu.Unlock()
			return "", err
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j)
	s.arb.admit(j)
	if submissionID != "" {
		s.submissions[submissionID] = j.id
	}
	s.counters.JobsSubmitted.Add(1)
	s.counters.OpenJobs.Add(1)
	if len(w.Tasks) == 0 {
		s.completeJobLocked(j, now)
	}
	s.broadcastLocked()
	s.snapshotIfDueLocked()
	id := j.id
	s.mu.Unlock()
	if err := s.waitDurable(lsn); err != nil {
		// The job is journaled and resident but the configured durability
		// could not be confirmed; surface that. An idempotent retry
		// resolves to the same job id.
		return "", err
	}
	return id, nil
}

// Register enrolls a worker into a free (site, worker) slot. site < 0 picks
// the site with the most free slots.
func (s *Service) Register(site int) (*api.RegisterResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	s.maybeSweepLocked(time.Now())
	target := -1
	if site >= 0 {
		if site >= s.cfg.Sites {
			return nil, errf(http.StatusBadRequest, "service: site %d outside [0,%d)", site, s.cfg.Sites)
		}
		target = site
	} else {
		bestFree := 0
		for si := range s.slots {
			free := 0
			for _, id := range s.slots[si] {
				if id == "" {
					free++
				}
			}
			if free > bestFree {
				bestFree, target = free, si
			}
		}
		if target < 0 {
			return nil, errf(http.StatusServiceUnavailable, "service: all worker slots taken")
		}
	}
	slot := -1
	for wi, id := range s.slots[target] {
		if id == "" {
			slot = wi
			break
		}
	}
	if slot < 0 {
		return nil, errf(http.StatusServiceUnavailable, "service: site %d has no free worker slots", target)
	}
	// Worker ids carry the process instance nonce: registrations are not
	// journaled, so a recovered process would otherwise re-mint ids that
	// pre-crash workers still present.
	s.seq++
	w := &worker{
		id:      fmt.Sprintf("w%d-%s", s.seq, s.instance),
		ref:     core.WorkerRef{Site: target, Worker: slot},
		expires: time.Now().Add(s.cfg.LeaseTTL),
	}
	s.slots[target][slot] = w.id
	s.workers[w.id] = w
	s.noteDeadlineLocked(w.expires)
	s.counters.ActiveWorkers.Add(1)
	return &api.RegisterResponse{
		WorkerID:       w.id,
		Site:           w.ref.Site,
		Worker:         w.ref.Worker,
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Deregister removes a worker. An outstanding assignment is requeued
// through the scheduler's failure path.
func (s *Service) Deregister(workerID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[workerID]
	if w == nil {
		return errf(http.StatusNotFound, "service: unknown worker %q", workerID)
	}
	if w.assignment != nil {
		s.expireAssignmentLocked(w.assignment)
	}
	s.removeWorkerLocked(w)
	s.broadcastLocked()
	s.snapshotIfDueLocked()
	return nil
}

// removeWorkerLocked frees the worker's slot and forgets it.
func (s *Service) removeWorkerLocked(w *worker) {
	s.slots[w.ref.Site][w.ref.Worker] = ""
	delete(s.workers, w.id)
	s.counters.ActiveWorkers.Add(-1)
}

// Pull hands the worker a leased task, parking up to wait for one to become
// dispatchable. It blocks in ServeHTTP; done aborts the park (request
// context).
func (s *Service) Pull(done <-chan struct{}, workerID string, wait time.Duration) (*api.PullResponse, error) {
	if wait < 0 {
		wait = 0
	}
	if wait > maxPullWait {
		wait = maxPullWait
	}
	s.counters.Pulls.Add(1)
	deadline := time.Now().Add(wait)
	openAtEntry := -1
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errf(http.StatusServiceUnavailable, "service: closed")
		}
		now := time.Now()
		s.maybeSweepLocked(now)
		w := s.workers[workerID]
		if w == nil {
			s.mu.Unlock()
			return nil, errf(http.StatusNotFound, "service: unknown worker %q (lease expired? re-register)", workerID)
		}
		w.expires = now.Add(s.cfg.LeaseTTL)
		if w.assignment != nil {
			s.mu.Unlock()
			return nil, errf(http.StatusConflict, "service: worker %q already holds assignment %q", workerID, w.assignment.id)
		}
		dispatchStart := time.Now()
		if a, lsn := s.assignLocked(w, now); a != nil {
			s.counters.ObserveDispatch(time.Since(dispatchStart).Nanoseconds())
			resp := &api.PullResponse{
				Status:     api.StatusAssigned,
				Assignment: a,
				OpenJobs:   int(s.counters.OpenJobs.Load()),
			}
			s.snapshotIfDueLocked()
			s.mu.Unlock()
			if err := s.waitDurable(lsn); err != nil {
				// The assignment stands (journaled and leased); only its
				// durability confirmation failed. The worker gets an error,
				// abandons the pull, and the lease expires back into the
				// queue.
				return nil, err
			}
			return resp, nil
		}
		open := int(s.counters.OpenJobs.Load())
		ch := s.notify
		s.mu.Unlock()

		// Surface idleness promptly when a job finishes while we wait:
		// drain-watching clients (exit-when-idle workers, the live
		// runtime) react at the completion broadcast instead of sitting
		// out the rest of their poll budget.
		if open > openAtEntry {
			openAtEntry = open
		}
		if open < openAtEntry {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, nil
		}

		park := time.Until(deadline)
		if park <= 0 {
			return &api.PullResponse{Status: api.StatusEmpty, OpenJobs: open}, nil
		}
		// Cap each park below the lease TTL so the loop re-renews the
		// worker's registration lease while it waits.
		if cap := s.cfg.LeaseTTL / 3; cap > 0 && park > cap {
			park = cap
		}
		timer := time.NewTimer(park)
		select {
		case <-done:
			timer.Stop()
			return nil, errf(499, "service: pull abandoned by client")
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// assignLocked offers the worker to runnable jobs in fair-share order —
// most underserved tenant-weighted job first (see arbiter.go) — and
// dispatches the first task any scheduler grants it. Jobs whose tenant is
// at its in-flight quota are skipped before their scheduler is consulted
// (NextFor mutates scheduler state, including the randomized pick stream,
// only when its assignment is used). Staging happens here: the batch is
// committed into the job's site store and the scheduler notified, exactly
// as the simulator and live runtime do around an execution start. With
// journaling enabled the dispatch record is appended before the assignment
// is returned; the caller must confirm durability (waitDurable on the
// returned LSN) before acknowledging it to the worker.
func (s *Service) assignLocked(w *worker, now time.Time) (*api.Assignment, uint64) {
	arb := s.arb
	// Jobs that cannot serve this pull (quota-throttled, scheduler said
	// Wait) are popped aside and reinserted afterwards; each costs one
	// O(log jobs) heap round-trip, and the common case dispatches straight
	// off the root.
	deferred := arb.deferred[:0]
	var out *api.Assignment
	var lsn uint64
	for len(arb.heap) > 0 && out == nil {
		j := arb.heap[0]
		t := arb.tenant(j.tenant)
		if q := arb.quotaFor(t, s.cfg.TenantMaxInFlight); q > 0 && t.inFlight >= q {
			t.throttles++
			deferred = append(deferred, arb.pop())
			continue
		}
		task, status := j.sched.NextFor(w.ref)
		switch status {
		case core.Assigned:
			fetched, evicted, err := j.stores[w.ref.Site].CommitBatchInto(task.Files, s.fetchBuf[:0], s.evictBuf[:0])
			if err != nil {
				// Submit validated capacity >= max task size.
				panic(fmt.Sprintf("service: stage job %s task %d at site %d: %v", j.id, task.ID, w.ref.Site, err))
			}
			s.fetchBuf, s.evictBuf = fetched[:0], evicted[:0]
			j.sched.NoteBatch(w.ref.Site, task.Files, fetched, evicted)
			j.transfers += int64(len(fetched))
			j.dispatched++
			arb.charge(j)
			arb.down(j.heapIdx)
			t.inFlight++
			t.dispatches++
			arb.window.Observe(j.tenant)
			a := &assignment{
				id:       s.nextID("a"),
				job:      j,
				task:     task,
				workerID: w.id,
				ref:      w.ref,
				deadline: now.Add(s.cfg.LeaseTTL),
				staged:   len(fetched),
			}
			s.assignments[a.id] = a
			w.assignment = a
			s.noteDeadlineLocked(a.deadline)
			s.counters.Assignments.Add(1)
			s.counters.ActiveLeases.Add(1)
			if s.pst != nil {
				// The scheduler already moved (NextFor is the decision), so
				// this append cannot abort — mustAppendLocked fail-stops on
				// journal I/O errors.
				lsn = s.mustAppendLocked(&record{
					Op: opDispatch, Ts: now.UnixMilli(), Job: j.id,
					Task: task.ID, Site: w.ref.Site, Worker: w.ref.Worker,
					Assignment: a.id,
				})
				j.ledger = append(j.ledger, ledgerRec{
					Op: ledgerDispatch, Task: task.ID,
					Site: int32(w.ref.Site), Worker: int32(w.ref.Worker),
					Ts: now.UnixMilli(),
				})
			}
			out = &api.Assignment{
				ID:             a.id,
				JobID:          j.id,
				Task:           task,
				Staged:         a.staged,
				LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
			}
		case core.Wait:
			// Nothing for this worker now; try the next-most underserved.
			deferred = append(deferred, arb.pop())
		case core.Done:
			// The scheduler has nothing pending, but in-flight leases may
			// still fail and requeue — only Remaining()==0 ends the job.
			if j.sched.Remaining() == 0 {
				s.completeJobLocked(j, now) // retires the job from the heap
			} else {
				deferred = append(deferred, arb.pop())
			}
		default:
			panic(fmt.Sprintf("service: unknown scheduler status %v", status))
		}
	}
	for _, j := range deferred {
		arb.push(j)
	}
	arb.deferred = deferred[:0]
	return out, lsn
}

// Heartbeat renews an assignment's lease and reports whether the execution
// is still wanted.
func (s *Service) Heartbeat(assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.Heartbeats.Add(1)
	a := s.assignments[assignmentID]
	if a == nil || a.workerID != workerID {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	now := time.Now()
	a.deadline = now.Add(s.cfg.LeaseTTL)
	if w := s.workers[workerID]; w != nil {
		w.expires = now.Add(s.cfg.LeaseTTL)
	}
	if a.cancelled {
		return &api.HeartbeatResponse{State: api.HeartbeatCancelled}, nil
	}
	return &api.HeartbeatResponse{State: api.HeartbeatActive}, nil
}

// Report ends an assignment. Reports on expired (requeued) assignments are
// rejected as stale; reports on cancelled replicas are accepted but counted
// as cancellations, not completions. The first successful completion of a
// task wins — both properties together guarantee no duplicate completions.
func (s *Service) Report(assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	if outcome != api.OutcomeSuccess && outcome != api.OutcomeFailure {
		return nil, errf(http.StatusBadRequest, "service: unknown outcome %q", outcome)
	}
	s.mu.Lock()
	a := s.assignments[assignmentID]
	if a == nil || a.workerID != workerID {
		s.counters.StaleReports.Add(1)
		s.mu.Unlock()
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	now := time.Now()
	j := a.job
	var lsn uint64
	// Journal only while the job record is resident: a cancelled replica's
	// lease can outlive its completed-then-DELETEd job, and a record
	// naming a dropped job id would be unreplayable after the next
	// snapshot no longer carries the job (recovery would refuse the data
	// dir). The report still counts below; it just isn't history anyone
	// can replay.
	if s.pst != nil && s.jobs[j.id] == j {
		// Journal before applying: if the append fails the report is
		// refused with the assignment intact, and the worker's retry (or
		// eventual lease expiry) keeps state and log agreeing.
		var err error
		lsn, err = s.appendLocked(&record{
			Op: opReport, Ts: now.UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
			Outcome: outcome,
		})
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		op := ledgerFailure
		if outcome == api.OutcomeSuccess {
			op = ledgerSuccess
		}
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: op, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: now.UnixMilli(),
			})
		}
	}
	s.detachAssignmentLocked(a)
	if w := s.workers[workerID]; w != nil {
		w.expires = now.Add(s.cfg.LeaseTTL)
	}
	resp := &api.ReportResponse{Accepted: true}
	// Long-poll wakeups are targeted: parked pulls only care about events
	// that can make new work dispatchable (a failure requeues the task) or
	// change the open-job count (completion of the job's last task, which
	// completeJobLocked broadcasts itself). A plain success or a cancelled
	// replica frees no work for anyone else — completion only shrinks the
	// schedulable set, and replica cancellation is delivered through the
	// running worker's own heartbeat — so the common case no longer wakes
	// the whole herd just to find nothing.
	switch {
	case a.cancelled:
		// Covers replicas obsoleted by another completion AND any
		// execution that outlived its job: completeJobLocked cancel-marks
		// every assignment still in flight for the job, so no report can
		// reach a completed job's (released) scheduler or resurrect a task
		// another worker already finished.
		j.cancelled++
		s.counters.Cancellations.Add(1)
		resp.Cancelled = true
	case outcome == api.OutcomeFailure:
		j.failed++
		s.counters.Failures.Add(1)
		if j.sched != nil { // defensive: unreachable once completed (cancel-marked above)
			j.sched.OnExecutionFailed(a.task.ID, a.ref)
		}
		s.broadcastLocked()
	default:
		victims := j.sched.OnTaskComplete(a.task.ID, a.ref)
		j.completed++
		s.counters.Completions.Add(1)
		for _, v := range victims {
			s.cancelExecutionLocked(j, a.task.ID, v)
		}
		if j.sched.Remaining() == 0 {
			s.completeJobLocked(j, now) // broadcasts
		}
	}
	resp.JobState = j.state
	s.snapshotIfDueLocked()
	s.mu.Unlock()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return resp, nil
}

// cancelExecutionLocked marks the assignment running task id at ref (if
// any) as cancelled; the worker learns at its next heartbeat.
func (s *Service) cancelExecutionLocked(j *job, id workload.TaskID, ref core.WorkerRef) {
	wid := s.slots[ref.Site][ref.Worker]
	if wid == "" {
		return
	}
	w := s.workers[wid]
	if w == nil || w.assignment == nil {
		return
	}
	if a := w.assignment; a.job == j && a.task.ID == id {
		a.cancelled = true
	}
}

// detachAssignmentLocked removes the assignment from the lease table and
// its worker without touching the scheduler. This is the single point
// where a lease ends (report, expiry, deregistration), so it is also where
// the tenant's in-flight quota capacity is returned. When the tenant was
// at its quota — parked pulls may have skipped its runnable jobs — the
// freed capacity makes work dispatchable again, so this is a wakeup
// event even on a plain success report (the targeted-wakeup rationale
// "success frees no work for anyone else" predates quotas and does not
// hold for a throttled tenant).
func (s *Service) detachAssignmentLocked(a *assignment) {
	delete(s.assignments, a.id)
	if w := s.workers[a.workerID]; w != nil && w.assignment == a {
		w.assignment = nil
	}
	t := s.arb.tenant(a.job.tenant)
	if q := s.arb.quotaFor(t, s.cfg.TenantMaxInFlight); q > 0 && t.inFlight >= q && t.running > 0 {
		s.broadcastLocked()
	}
	t.inFlight--
	// A lease can be a tenant's last anchor: its job record may have been
	// deleted while this assignment was still in flight (a cancelled
	// replica outliving its completed, then deleted, job). O(1) for any
	// tenant with running jobs — pruneTenantLocked early-outs before its
	// job scan.
	s.pruneTenantLocked(a.job.tenant)
	s.counters.ActiveLeases.Add(-1)
}

// expireAssignmentLocked ends a lease without a report: the task is
// requeued through the scheduler's failure path (unless the execution was
// already cancelled — a replica obsoleted by a completion, or any lease
// that outlived its job — in which case there is nothing to requeue).
// The expiry is journaled like every other scheduler-affecting event: a
// later dispatch record of the requeued task only replays if the expiry
// that made it pending replays first.
func (s *Service) expireAssignmentLocked(a *assignment) {
	s.detachAssignmentLocked(a)
	j := a.job
	// Same residency guard as Report: never journal history for a job id
	// that snapshots no longer carry.
	if s.pst != nil && s.jobs[j.id] == j {
		s.mustAppendLocked(&record{
			Op: opExpire, Ts: time.Now().UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
		})
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: ledgerExpire, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: time.Now().UnixMilli(),
			})
		}
	}
	if a.cancelled {
		j.cancelled++
		s.counters.Cancellations.Add(1)
		return
	}
	j.expired++
	s.counters.LeasesExpired.Add(1)
	if j.sched != nil { // defensive: unreachable once completed (cancel-marked)
		j.sched.OnExecutionFailed(a.task.ID, a.ref)
	}
}

// maybeSweepLocked sweeps only when the earliest known deadline is due —
// the request-path entry point, so parked pulls woken by a broadcast do
// not all pay the full sweep.
func (s *Service) maybeSweepLocked(now time.Time) {
	if !s.nextSweep.IsZero() && now.Before(s.nextSweep) {
		return
	}
	s.sweepLocked(now)
}

// noteDeadlineLocked lowers nextSweep to cover a newly created deadline.
func (s *Service) noteDeadlineLocked(t time.Time) {
	if s.nextSweep.IsZero() || t.Before(s.nextSweep) {
		s.nextSweep = t
	}
}

// sweepLocked expires overdue assignment leases and worker registrations,
// then recomputes the next deadline.
func (s *Service) sweepLocked(now time.Time) {
	changed := false
	for _, a := range s.assignments {
		if now.After(a.deadline) {
			s.expireAssignmentLocked(a)
			changed = true
		}
	}
	for _, w := range s.workers {
		if now.After(w.expires) {
			if w.assignment != nil {
				s.expireAssignmentLocked(w.assignment)
			}
			s.removeWorkerLocked(w)
			s.counters.WorkersExpired.Add(1)
			changed = true
		}
	}
	next := time.Time{}
	for _, a := range s.assignments {
		if next.IsZero() || a.deadline.Before(next) {
			next = a.deadline
		}
	}
	for _, w := range s.workers {
		if next.IsZero() || w.expires.Before(next) {
			next = w.expires
		}
	}
	s.nextSweep = next
	if changed {
		s.broadcastLocked()
	}
	s.snapshotIfDueLocked()
}

// completeJobLocked transitions a job to completed (idempotent) and
// releases its heavy state, cancel-marking every assignment still in
// flight for it first. The marking is what makes releasing the scheduler
// safe against late reports and lease expiries: both route cancelled
// executions to counting paths that never touch the scheduler. Earlier
// revisions relied on the completing OnTaskComplete's victim list covering
// all in-flight replicas — an invariant a scheduler implementation behind
// the public Submit API need not uphold, and whose violation let a
// cancelled job's in-flight report resurrect an already-completed task
// (or nil-panic the report path). See TestCompletedJobInFlightReport*.
func (s *Service) completeJobLocked(j *job, now time.Time) {
	if j.state == api.JobCompleted {
		return
	}
	j.state = api.JobCompleted
	j.finished = now
	s.arb.retire(j)
	for _, a := range s.assignments {
		if a.job == j {
			a.cancelled = true
		}
	}
	j.w, j.sched, j.stores, j.ledger = nil, nil, nil, nil
	s.counters.JobsCompleted.Add(1)
	s.counters.OpenJobs.Add(-1)
	s.broadcastLocked()
}

// DeleteJob drops a completed job's record (retention control for
// long-running daemons). Running jobs cannot be deleted. With journaling,
// the job's monotone counter totals are folded into a carry persisted with
// every snapshot, so deletion never makes the global /metrics counters
// jump backwards across a restart.
func (s *Service) DeleteJob(jobID string) error {
	s.mu.Lock()
	j := s.jobs[jobID]
	if j == nil {
		s.mu.Unlock()
		return errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	if j.state != api.JobCompleted {
		s.mu.Unlock()
		return errf(http.StatusConflict, "service: job %q is %s; only completed jobs can be deleted", jobID, j.state)
	}
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendLocked(&record{Op: opDelete, Ts: time.Now().UnixMilli(), Job: jobID})
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.dropJobLocked(j)
	s.snapshotIfDueLocked()
	s.mu.Unlock()
	return s.waitDurable(lsn)
}

// JobStatus returns one job's observable state.
func (s *Service) JobStatus(jobID string) (*api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[jobID]
	if j == nil {
		return nil, errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	st := s.jobStatusLocked(j)
	return &st, nil
}

// Jobs lists every resident job in submission order.
func (s *Service) Jobs() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.jobOrder))
	for _, j := range s.jobOrder {
		out = append(out, s.jobStatusLocked(j))
	}
	return out
}

func (s *Service) jobStatusLocked(j *job) api.JobStatus {
	remaining := 0
	if j.sched != nil {
		remaining = j.sched.Remaining()
	}
	st := api.JobStatus{
		ID:              j.id,
		Name:            j.name,
		Algorithm:       j.algorithm,
		State:           j.state,
		Tenant:          j.tenant,
		Weight:          j.weight,
		Tasks:           j.tasks,
		Remaining:       remaining,
		Dispatched:      j.dispatched,
		Completed:       j.completed,
		Failed:          j.failed,
		Cancelled:       j.cancelled,
		Expired:         j.expired,
		Transfers:       j.transfers,
		SubmittedAtUnix: j.submitted.Unix(),
	}
	if !j.finished.IsZero() {
		st.FinishedAtUnix = j.finished.Unix()
	}
	return st
}

// SetTenantQuota overrides one tenant's in-flight concurrency quota — the
// path behind PUT /v1/tenants/{tenant}. maxInFlight > 0 caps the tenant's
// concurrently leased assignments; 0 reverts to Config.TenantMaxInFlight.
// With journaling enabled the override is journaled before it is
// acknowledged and survives restarts.
func (s *Service) SetTenantQuota(tenant string, maxInFlight int) (*api.TenantStatus, error) {
	if tenant == "" {
		return nil, errf(http.StatusBadRequest, "service: empty tenant name (the default tenant's quota is the server-wide -tenant-quota)")
	}
	if !validTenantName(tenant) {
		return nil, errf(http.StatusBadRequest,
			"service: invalid tenant name %q (up to %d of [A-Za-z0-9._-])", tenant, maxTenantName)
	}
	if maxInFlight < 0 {
		return nil, errf(http.StatusBadRequest, "service: maxInFlight = %d", maxInFlight)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendLocked(&record{
			Op: opQuota, Ts: time.Now().UnixMilli(), Tenant: tenant, Quota: maxInFlight,
		})
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	t := s.arb.tenant(tenant)
	t.quota = maxInFlight
	// A raised (or lifted) quota can make a throttled tenant's work
	// dispatchable; wake parked pulls rather than leaving them to their
	// poll timeout. Rare operator action, so no need to be selective.
	s.broadcastLocked()
	st := s.tenantStatusLocked(t, s.runnableWeightLocked())
	// Reverting a jobless tenant's quota leaves nothing relevant about it;
	// drop the state rather than let reverted names accumulate.
	s.pruneTenantLocked(tenant)
	s.snapshotIfDueLocked()
	s.mu.Unlock()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return &st, nil
}

// Tenants returns every known tenant's fair-share state, sorted by name
// (the anonymous default tenant, "", sorts first when present).
func (s *Service) Tenants() []api.TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.arb.tenants))
	for name := range s.arb.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	total := s.runnableWeightLocked()
	out := make([]api.TenantStatus, 0, len(names))
	for _, name := range names {
		out = append(out, s.tenantStatusLocked(s.arb.tenants[name], total))
	}
	return out
}

// runnableWeightLocked is the summed weight of all running jobs — the
// denominator of every tenant's share target.
func (s *Service) runnableWeightLocked() int64 {
	total := int64(0)
	for _, t := range s.arb.tenants {
		total += t.weight
	}
	return total
}

// pruneTenantLocked drops a tenant's state when nothing keeps it
// relevant: no quota override, no live leases, and no resident job
// records (running or completed-but-retained). Called at every event
// that can strip a tenant of its last anchor — job-record deletion,
// quota-override revert, lease end, and the post-recovery sweep — so
// churning tenant names cannot grow the daemon, its snapshots, or its
// metrics without bound. The job scan is guarded by O(1) early-outs, so
// hot paths only pay it for tenants that are actually dying.
func (s *Service) pruneTenantLocked(name string) {
	t := s.arb.tenants[name]
	if t == nil || t.quota != 0 || t.running != 0 || t.inFlight != 0 {
		return
	}
	for _, o := range s.jobOrder {
		if o.tenant == name {
			return
		}
	}
	delete(s.arb.tenants, name)
}

func (s *Service) tenantStatusLocked(t *tenantState, totalWeight int64) api.TenantStatus {
	st := api.TenantStatus{
		Tenant:        t.name,
		Weight:        t.weight,
		RunningJobs:   t.running,
		InFlight:      t.inFlight,
		MaxInFlight:   s.arb.quotaFor(t, s.cfg.TenantMaxInFlight),
		ShareAchieved: s.arb.window.Share(t.name),
		Dispatches:    t.dispatches,
		Throttles:     t.throttles,
	}
	if totalWeight > 0 {
		st.ShareTarget = float64(t.weight) / float64(totalWeight)
	}
	return st
}

// Health summarizes liveness for /healthz.
func (s *Service) Health() api.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.Health{Status: "ok", Jobs: len(s.jobs), Workers: len(s.workers)}
}
