// Package service implements gridschedd: an embeddable scheduler daemon
// that wraps the paper's core.Scheduler strategies behind a concurrent,
// networked worker protocol (HTTP/JSON, see internal/service/api).
//
// The daemon is the middleware the paper's worker-centric model implies:
// workers are remote parties that register, long-poll for tasks, heartbeat
// their leases, and report outcomes; jobs are whole Bag-of-Tasks workloads
// submitted with a per-job algorithm choice, and several jobs can be
// resident at once. Per-site file stores live behind the service — a task
// is staged into its worker's site store at assignment time, and the
// scheduler observes the resulting batch commit through NoteBatch just as
// it does under the simulator. (Unlike the simulator's data server, which
// serves one batch at a time and charges transfer delay before the commit,
// the service commits instantly at assignment; clients model staging cost
// on their side from the Staged count. Timing fidelity to the paper's
// model is the simulator's job; the service's job is throughput.)
//
// Fault tolerance is lease-based: every assignment carries a deadline,
// heartbeats renew it, and an expired lease requeues the task through the
// scheduler's existing failure path (core.Scheduler.OnExecutionFailed). A
// report that arrives after its lease expired is rejected as stale, which
// is what guarantees a task is never completed twice.
//
// # Concurrency model
//
// There is no global service mutex. Mutable state is split across four
// separately locked domains (see docs/ARCHITECTURE.md, "Concurrency
// model", for the full treatment):
//
//   - N lock-striped shards (shard.go) own job state — scheduler, site
//     stores, replay ledger, assignment leases — keyed by job id, so
//     submits, reports, heartbeats, and lease expiries on different jobs
//     never contend.
//   - The dispatch coordinator (dispatch.go) owns the fair-share arbiter
//     heap, the per-tenant quota table, and the submission-dedup index.
//     A pull consults it only to decide WHICH runnable job to offer the
//     worker to; the scheduler call and lease grant then run under that
//     job's shard alone.
//   - The worker registry (leases.go) owns worker registrations and
//     (site, worker) slots.
//   - The commit stage (commit.go) serializes journal appends from all
//     shards into the single totally-ordered WAL, batching concurrent
//     appends into one write(2); fsync waits happen outside every lock.
//
// Lock ordering: a shard lock may be held while acquiring the coordinator
// or the registry (one at a time, never both); the coordinator may be held
// while acquiring the commit stage or the wakeup hub; no path ever holds
// two shard locks (the stop-the-world snapshot is the one exception and
// acquires shards in index order). Read-mostly endpoints (/v1/status,
// /v1/tenants, /metrics) are served from atomic counters plus brief
// per-shard copy-on-read, so they never block dispatch. Long-poll waiters
// park outside every lock on a broadcast hub and are woken by any state
// change that could make new work dispatchable.
package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/metrics"
	"gridsched/internal/storage"
	"gridsched/internal/workload"

	"gridsched/internal/service/api"
)

// Topology fixes the worker pool the service schedules over: the same
// (sites × workers-per-site) grid the core schedulers expect, plus each
// site's store capacity.
type Topology struct {
	Sites          int            `json:"sites"`
	WorkersPerSite int            `json:"workersPerSite"`
	CapacityFiles  int            `json:"capacityFiles"`
	Policy         storage.Policy `json:"policy"`
}

// CheckWorkload reports whether every task of w can be staged at a site:
// a task needs all its inputs resident at once (assumption 5), so the
// largest task must fit the per-site store capacity.
func (t Topology) CheckWorkload(w *workload.Workload) error {
	maxFiles := 0
	for _, task := range w.Tasks {
		if len(task.Files) > maxFiles {
			maxFiles = len(task.Files)
		}
	}
	if maxFiles > t.CapacityFiles {
		return fmt.Errorf("capacity %d below largest task (%d files)", t.CapacityFiles, maxFiles)
	}
	return nil
}

// SchedulerFactory builds a scheduler by algorithm name for one submitted
// job. gridsched.SchedulerFactory supplies the canonical one (all of
// AlgorithmNames); a server embedding the service may restrict or extend
// the set.
type SchedulerFactory func(algorithm string, w *workload.Workload, topo Topology, seed int64) (core.Scheduler, error)

// maxShards bounds the stripe count; beyond this the per-shard maps stop
// paying for themselves.
const maxShards = 1024

// Config parameterizes a Service.
type Config struct {
	Topology
	// LeaseTTL is the lease duration for worker registrations and task
	// assignments. Defaults to 15s.
	LeaseTTL time.Duration
	// SweepInterval is how often the expiry sweeper runs. Defaults to
	// LeaseTTL/4. Expiry is additionally checked on every pull, so the
	// sweeper only matters when no worker is polling.
	SweepInterval time.Duration
	// NewScheduler resolves algorithm names for jobs submitted over HTTP.
	// Nil disables by-name submission (Submit with a pre-built scheduler
	// still works). Required when DataDir is set: recovery rebuilds every
	// running job's scheduler through it.
	NewScheduler SchedulerFactory

	// Shards is the number of lock-striped job-state shards. Job state is
	// distributed by job id, so operations on different jobs contend only
	// when they land on the same stripe. 0 picks a default sized to the
	// machine (GOMAXPROCS, at least 4, at most 32). The stripe count is a
	// pure concurrency knob: it never affects scheduling decisions,
	// journal contents, or recovery (a data dir written under one shard
	// count recovers under any other).
	Shards int

	// PartitionIndex and PartitionCount place this service in a
	// horizontally partitioned deployment (docs/PARTITIONING.md): N
	// independent gridschedd processes behind a job-keyed router
	// (cmd/gridrouter). Partition identity is encoded into minted ids the
	// same way job ids pick a shard stripe: partition i of n mints
	// job/assignment/worker sequence numbers ≡ i (mod n), so any component
	// holding an id — the router, a partition-aware client — can name the
	// owning partition with arithmetic alone, no lookup table. The zero
	// value (0 of 0) normalizes to the standalone identity 0 of 1, whose
	// id sequence is byte-identical to the pre-partitioning one. The
	// identity is persisted in snapshots; a DataDir written under one
	// identity refuses to recover under another (re-partitioning is a
	// migration, not a flag flip).
	PartitionIndex int
	PartitionCount int

	// DefaultWeight is the fair-share weight given to jobs submitted
	// without one. Defaults to 1. See arbiter.go for the dispatch
	// discipline.
	DefaultWeight int
	// TenantMaxInFlight caps any one tenant's concurrently leased
	// assignments (enforced at lease grant, returned on report or lease
	// expiry). 0 disables the cap. Per-tenant overrides set via
	// SetTenantQuota (PUT /v1/tenants/{tenant}) take precedence.
	TenantMaxInFlight int

	// DataDir enables durability: every externally visible mutation is
	// written to a write-ahead journal under this directory before it is
	// acknowledged, and New replays snapshot+journal to reconstruct the
	// service exactly as the previous process left it (see recovery.go).
	// Empty means in-memory only, the pre-journal behavior.
	DataDir string
	// Fsync selects the journal's machine-crash durability (process
	// crashes lose nothing in any mode): journal.SyncAlways groups
	// concurrent acknowledgements into shared fsyncs; journal.SyncBatch
	// (default) fsyncs every FsyncInterval; journal.SyncNever only syncs
	// at snapshots.
	Fsync journal.Mode
	// FsyncInterval is the SyncBatch flush cadence. Defaults to 25ms.
	FsyncInterval time.Duration
	// SnapshotEvery is how many journal records accumulate before the
	// service writes a compacting snapshot and rotates the journal.
	// Defaults to 4096.
	SnapshotEvery int

	// Clock overrides the service's time source: journal timestamps,
	// lease deadlines, and sweep scheduling all read it. Nil uses
	// time.Now. The policy-trace harness injects a fake clock here so
	// time-driven behavior (expiry, straggler detection, deadline
	// urgency) is a deterministic function of the scripted timeline.
	Clock func() time.Time

	// Speculation enables straggler mitigation: the sweeper compares
	// each live lease's age against the owning job's observed
	// task-duration distribution and grants a speculative second lease
	// for the slowest stragglers; first report wins, the loser is
	// rejected as stale. See docs/SCHEDULING.md.
	Speculation bool
	// SpeculationPercentile is the quantile of the job's recent task
	// durations that defines "expected duration". Defaults to 0.95.
	SpeculationPercentile float64
	// SpeculationFactor is how many multiples of the percentile a lease
	// must age past before it is a straggler. Defaults to 2.
	SpeculationFactor float64
	// SpeculationMinSamples is the per-job observation floor below which
	// no lease is ever speculated (cold start). Defaults to 3.
	SpeculationMinSamples int
}

func (c *Config) normalize() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("service: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("service: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("service: CapacityFiles = %d", c.CapacityFiles)
	}
	if c.Policy == 0 {
		c.Policy = storage.LRU
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 4
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 25 * time.Millisecond
	}
	if c.Shards < 0 {
		return fmt.Errorf("service: Shards = %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = min(max(runtime.GOMAXPROCS(0), 4), 32)
	}
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	if c.PartitionCount == 0 {
		c.PartitionCount = 1
	}
	if c.PartitionCount < 0 {
		return fmt.Errorf("service: PartitionCount = %d", c.PartitionCount)
	}
	if c.PartitionIndex < 0 || c.PartitionIndex >= c.PartitionCount {
		return fmt.Errorf("service: PartitionIndex %d outside [0,%d)", c.PartitionIndex, c.PartitionCount)
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.DefaultWeight > maxWeight {
		return fmt.Errorf("service: DefaultWeight %d above the maximum %d", c.DefaultWeight, maxWeight)
	}
	if c.TenantMaxInFlight < 0 {
		return fmt.Errorf("service: TenantMaxInFlight = %d", c.TenantMaxInFlight)
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 4096
	}
	if c.SpeculationPercentile == 0 {
		c.SpeculationPercentile = 0.95
	}
	if c.SpeculationFactor == 0 {
		c.SpeculationFactor = 2
	}
	if c.SpeculationMinSamples == 0 {
		c.SpeculationMinSamples = 3
	}
	if c.DataDir != "" && c.NewScheduler == nil {
		return fmt.Errorf("service: DataDir requires a NewScheduler factory (recovery rebuilds schedulers by name)")
	}
	return nil
}

// maxPullWait caps one long-poll request; clients just pull again.
const maxPullWait = 30 * time.Second

// maxTenantName bounds tenant names (they become metrics label values and
// journal payload).
const maxTenantName = 128

// validateFairShare rejects malformed tenant/weight parameters. O(name
// length); submission paths run it before scheduler construction so a
// doomed request never pays the O(workload) factory cost.
func validateFairShare(req *api.SubmitJobRequest) error {
	if req.Weight < 0 || req.Weight > maxWeight {
		return errf(http.StatusBadRequest, "service: weight %d outside [0,%d]", req.Weight, maxWeight)
	}
	if !validTenantName(req.Tenant) {
		return errf(http.StatusBadRequest,
			"service: invalid tenant name %q (up to %d of [A-Za-z0-9._-])", req.Tenant, maxTenantName)
	}
	return nil
}

// validTenantName restricts tenant names to characters that survive every
// place a tenant name travels: a single URL path segment (PUT
// /v1/tenants/{tenant}), a Prometheus label value, a JSON field. "" (the
// default tenant) is valid on submission but not addressable by PUT.
// "." and ".." are excluded outright: ServeMux path-cleans them away, so
// such a tenant could be created but never addressed.
func validTenantName(name string) bool {
	if len(name) > maxTenantName || name == "." || name == ".." {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Error is a protocol-level failure with an HTTP status.
type Error struct {
	Code int
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// job is one resident workload with its own scheduler and site stores.
// On completion the workload, scheduler, and stores are released (set to
// nil) so a long-running daemon does not accumulate every finished job's
// heavy state; the status summary fields survive.
//
// Locking: id, name, algorithm, seed, submissionID, tenant, weight, and
// seq are immutable after registration. fair and heapIdx belong to the
// coordinator. Everything else — scheduler, stores, ledger, state, and
// the counters — belongs to the job's shard.
type job struct {
	id           string
	name         string
	algorithm    string
	seed         int64
	submissionID string // client-chosen idempotency key, "" when absent
	tasks        int
	w            *workload.Workload
	sched        core.Scheduler
	stores       []*storage.Store
	state        string // api.JobRunning | api.JobCompleted

	// Fair-share state (see arbiter.go, dispatch.go). tenant and weight
	// are resolved at submission ("" = default tenant; weight never below
	// 1) and journaled resolved, so a changed server default cannot skew
	// recovery. seq is the numeric part of the job id, the deterministic
	// tie-breaker. fair is the virtual finish tag; heapIdx the
	// arbiter-heap position (-1: not runnable/not in heap). Both are
	// guarded by the coordinator, not the shard.
	tenant  string
	weight  int
	seq     int64
	fair    uint64
	heapIdx int
	// ledger is the job's replay history (journaling only): the ordered
	// dispatch/report/expiry events that, replayed through a freshly built
	// scheduler, reproduce its exact state. Serialized into snapshots;
	// released on completion with the rest of the heavy state.
	ledger []ledgerRec

	// Context-aware scheduling state (docs/SCHEDULING.md). requires and
	// deadlineMs are immutable after registration and journaled with the
	// submit record; urgent is a sweep-maintained cache of the deadline
	// projection read by the dispatch candidate ordering. durs,
	// specPending, and specMarked are shard-guarded liveness state for
	// straggler detection: the ring of recent task durations, the sorted
	// queue of straggling tasks awaiting a speculative twin, and the
	// tasks already queued or twinned (so one straggler is speculated at
	// most once at a time). None of the three is journaled — after a
	// crash there are no live leases left to speculate on.
	requires    []string
	deadlineMs  int64 // soft deadline, unix millis; 0 = none
	urgent      atomic.Bool
	durs        durRing
	specPending []workload.TaskID
	specMarked  map[workload.TaskID]bool
	// speculated counts speculative grants over the job's lifetime; it
	// is journaled via the ledger and part of the recovery identity.
	speculated int

	dispatched int
	completed  int
	failed     int
	cancelled  int
	expired    int
	transfers  int64
	submitted  time.Time
	finished   time.Time
}

// worker is one registered remote worker holding a (site, worker) slot.
// Guarded by the registry mutex.
type worker struct {
	id      string
	ref     core.WorkerRef
	expires time.Time
	// tags are the capability tags the worker registered with; jobs with
	// a requires list only dispatch to workers carrying every tag.
	tags []string
	// assignments are the worker's outstanding leases by assignment id. A
	// long-poll worker holds at most one; a streaming worker pipelines up
	// to its stream's batch size.
	assignments map[string]*assignment
	pulling     bool // a Pull is mid-dispatch for this worker
	// streaming marks an open lease stream (at most one per worker; a
	// concurrent Pull is rejected while it is set).
	streaming bool
	// wake, once a stream opened, is the worker-targeted nudge channel: a
	// finished lease frees pipeline capacity for THIS worker only, which
	// must not broadcast-wake every parked poller. Buffered(1), never
	// closed; it outlives individual streams across reconnects.
	wake chan struct{}
}

// assignment is one leased task execution. id, job, task, workerID, ref,
// granted, speculative, schedRef, and staged are immutable; deadline and
// cancelled are guarded by the owning job's shard.
type assignment struct {
	id        string
	job       *job
	task      workload.Task
	workerID  string
	ref       core.WorkerRef
	deadline  time.Time
	cancelled bool // obsoleted by another replica's completion
	staged    int
	// granted is the journaled grant timestamp (unix millis): the Ts of
	// the opDispatch record. A success report's journaled Ts minus
	// granted is the duration sample folded into worker telemetry, which
	// keeps the telemetry a pure function of the record stream.
	granted int64
	// speculative marks a straggler twin granted by the sweeper outside
	// the scheduler's view (the scheduler never saw a NextFor for it).
	speculative bool
	// schedRef is the worker ref the scheduler associates with this
	// execution: the assignment's own ref for a primary, the PRIMARY's
	// ref for a speculative twin. Every scheduler callback for the
	// assignment must use schedRef, never ref — the scheduler only knows
	// about one execution per (task, ref) and the twin is invisible.
	schedRef core.WorkerRef
}

// hub is the long-poll wakeup primitive: waiters grab the current channel
// BEFORE scanning for work and park on it; a broadcast closes the channel
// and replaces it, so any state change after the waiter subscribed is
// never lost. Leaf lock — a hub never acquires another service lock.
type hub struct {
	mu sync.Mutex
	ch chan struct{}
}

func newHub() *hub { return &hub{ch: make(chan struct{})} }

// wait returns the channel the next broadcast will close.
func (h *hub) wait() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ch
}

// broadcast wakes every parked waiter.
func (h *hub) broadcast() {
	h.mu.Lock()
	close(h.ch)
	h.ch = make(chan struct{})
	h.mu.Unlock()
}

// Service is the gridschedd core. Create with New, expose with Handler,
// stop with Close.
type Service struct {
	cfg      Config
	counters *metrics.ServiceCounters
	// repl tracks WAL-replication activity (leader side: streams and
	// frames served to followers).
	repl *metrics.ReplicationCounters

	// instance is a per-process nonce suffixed onto worker ids: worker
	// registrations are not journaled, so after a recovery a fresh id
	// sequence could otherwise re-mint a pre-crash worker id while its
	// original holder is still retrying against it.
	instance string
	// pst is the journaling state; nil when Config.DataDir is unset.
	pst *persistence

	seq    atomic.Int64 // job/assignment/worker id sequence
	closed atomic.Bool
	ready  atomic.Bool // recovery finished; flips before New returns

	shards []*shard
	coord  *coordinator
	reg    *registry
	hub    *hub
	// tel is the per-slot worker-context store (tags + outcome EWMAs),
	// fed from report traffic and consumed by context-aware schedulers,
	// GET /v1/workers, and /metrics. Leaf lock.
	tel *telemetry

	// nextSweep is the earliest known lease deadline (unix nanos);
	// maybeSweep skips the cross-shard sweep until it is due. 0 means
	// unknown (sweep next time). It may lag behind a deadline created
	// mid-sweep, which costs at most one SweepInterval of expiry delay —
	// the background sweeper runs unconditionally.
	nextSweep atomic.Int64

	snapMu    sync.Mutex // serializes stop-the-world snapshots
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a service and starts its lease sweeper. With cfg.DataDir set
// it first recovers the previous process's state from snapshot + journal;
// the service is not reachable until recovery finished, so every response
// it ever gives reflects the recovered history. Ready reports the
// recovery status for /readyz-style probes that bind their listener
// before construction completes.
func New(cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		counters:  metrics.NewServiceCounters(),
		repl:      &metrics.ReplicationCounters{},
		instance:  hex.EncodeToString(nonce[:]),
		coord:     newCoordinator(),
		reg:       newRegistry(cfg.Sites, cfg.WorkersPerSite),
		hub:       newHub(),
		tel:       newTelemetry(cfg.Topology),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	s.counters.Shards.Store(int64(cfg.Shards))
	// Seed the id sequence into this partition's residue class: nextSeq
	// strides by PartitionCount, so every value it ever mints stays
	// ≡ PartitionIndex (mod PartitionCount). Standalone (0 of 1) yields
	// the classic 1, 2, 3, …
	s.seq.Store(int64(cfg.PartitionIndex))
	if cfg.DataDir != "" {
		s.pst = &persistence{dir: cfg.DataDir}
		if err := s.recover(); err != nil {
			if s.pst.w != nil {
				_ = s.pst.w.Close()
			}
			return nil, err
		}
	}
	s.ready.Store(true)
	go s.sweeper()
	return s, nil
}

// Counters exposes the service's metrics (also rendered at /metrics).
func (s *Service) Counters() *metrics.ServiceCounters { return s.counters }

// Ready reports whether recovery completed — true for the whole lifetime
// of a constructed Service (New only returns after recovery), exposed so
// a server can answer /readyz from a handler bound before New finished.
func (s *Service) Ready() bool { return s.ready.Load() }

// Close stops the sweeper and fails every parked long poll; with
// journaling enabled it then writes a final snapshot (making the next
// start a snapshot-only recovery) and closes the journal. Idempotent.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.sweepStop)
	s.hub.broadcast()
	<-s.sweepDone
	if s.pst != nil {
		s.snapMu.Lock()
		if err := s.snapshot(); err != nil {
			log.Printf("gridschedd: final snapshot: %v", err)
		}
		s.snapMu.Unlock()
		if err := s.pst.w.Close(); err != nil {
			// The snapshot above already persisted everything; the journal
			// close failing loses nothing, but say so.
			log.Printf("gridschedd: journal close: %v", err)
		}
	}
}

// now is the service clock (Config.Clock when set, else time.Now). All
// scheduling-visible time — journal timestamps, lease deadlines, sweep
// decisions — goes through it; wall-clock plumbing like long-poll park
// timers stays on real time.
func (s *Service) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// sweeper periodically expires leases even when no worker is polling.
func (s *Service) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.maybeSweep(s.now())
		}
	}
}

// nextSeq mints the next id sequence number. The stride keeps the value
// in the partition's residue class (see Config.PartitionIndex); recovery
// restores seq from ids of the same class, so the invariant survives
// restarts.
func (s *Service) nextSeq() int64 {
	return s.seq.Add(int64(s.cfg.PartitionCount))
}

func (s *Service) nextID(prefix string) string {
	return fmt.Sprintf("%s%d", prefix, s.nextSeq())
}

// Submit adds a job built around a caller-constructed scheduler. The
// scheduler must be fresh and is driven exclusively by the service from
// here on (the service serializes all calls per job under its shard; see
// core.Scheduler's concurrency contract). Incompatible with journaling:
// recovery cannot rebuild an opaque scheduler, so services with DataDir
// set only accept SubmitByName.
func (s *Service) Submit(name, algorithm string, w *workload.Workload, sched core.Scheduler) (string, error) {
	if s.pst != nil {
		return "", errf(http.StatusNotImplemented,
			"service: journaling requires by-name submission (the recovery path rebuilds schedulers from the factory)")
	}
	return s.submitJob(api.SubmitJobRequest{Name: name, Algorithm: algorithm, Workload: w}, sched)
}

// SubmitByName builds the job's scheduler from the configured factory.
// submissionID, when non-empty, is an idempotency key: a resubmission
// carrying the same key returns the original job's id instead of creating
// a duplicate, which is what lets a client safely retry a submission whose
// acknowledgement was lost to a connection failure or a server restart.
// With journaling enabled the key survives restarts. The job joins the
// default tenant at the default weight; SubmitJob takes the full request.
func (s *Service) SubmitByName(name, algorithm string, w *workload.Workload, seed int64, submissionID string) (string, error) {
	return s.SubmitJob(api.SubmitJobRequest{
		Name: name, Algorithm: algorithm, Workload: w, Seed: seed, SubmissionID: submissionID,
	})
}

// SubmitJob is the path behind POST /v1/jobs: it resolves the request's
// fair-share parameters (tenant, weight), builds the scheduler from the
// configured factory, and registers the job.
func (s *Service) SubmitJob(req api.SubmitJobRequest) (string, error) {
	if s.cfg.NewScheduler == nil {
		return "", errf(http.StatusNotImplemented, "service: no scheduler factory configured")
	}
	if req.Workload == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	// Cheap rejections before the factory call: scheduler construction is
	// O(workload) and not worth paying for a request that cannot land.
	if err := validateFairShare(&req); err != nil {
		return "", err
	}
	if req.SubmissionID != "" {
		// Fast path: an already-known key skips scheduler construction.
		s.coord.mu.Lock()
		id, ok := s.coord.submissions[req.SubmissionID]
		s.coord.mu.Unlock()
		if ok {
			return id, nil
		}
	}
	sched, err := s.buildScheduler(req.Algorithm, req.Workload, req.Seed)
	if err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	return s.submitJob(req, sched)
}

// buildScheduler resolves an algorithm name through the configured
// factory. The "context:" prefix wraps the named strategy in the
// context-aware gate fed by the service's worker telemetry; the prefixed
// name is what gets journaled, so recovery rebuilds the same wrapping.
func (s *Service) buildScheduler(algorithm string, w *workload.Workload, seed int64) (core.Scheduler, error) {
	if inner, ok := strings.CutPrefix(algorithm, "context:"); ok {
		sched, err := s.cfg.NewScheduler(inner, w, s.cfg.Topology, seed)
		if err != nil {
			return nil, err
		}
		return core.NewContextAware(sched, s.tel, core.ContextPolicy{}), nil
	}
	return s.cfg.NewScheduler(algorithm, w, s.cfg.Topology, seed)
}

// submitJob validates, journals (before acknowledging), and registers one
// job. The submit record is appended under the coordinator lock, in the
// same critical section that admits the job at the current virtual time:
// the WAL position of a submit record relative to dispatch records is
// what lets recovery reconstruct the admission tag bit-exactly.
func (s *Service) submitJob(req api.SubmitJobRequest, sched core.Scheduler) (string, error) {
	name, w, submissionID := req.Name, req.Workload, req.SubmissionID
	if w == nil {
		return "", errf(http.StatusBadRequest, "service: nil workload")
	}
	if err := validateFairShare(&req); err != nil {
		return "", err
	}
	if err := validateTags("requires tag", req.Requires); err != nil {
		return "", err
	}
	if req.DeadlineMillis < 0 {
		return "", errf(http.StatusBadRequest, "service: deadlineMillis = %d", req.DeadlineMillis)
	}
	if err := w.Validate(); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	if err := s.cfg.CheckWorkload(w); err != nil {
		return "", errf(http.StatusBadRequest, "service: %v", err)
	}
	if s.closed.Load() {
		return "", errf(http.StatusServiceUnavailable, "service: closed")
	}
	now := s.now()
	j := &job{
		name:         name,
		algorithm:    req.Algorithm,
		seed:         req.Seed,
		submissionID: submissionID,
		tenant:       req.Tenant,
		weight:       normalizeWeight(req.Weight, s.cfg.DefaultWeight),
		heapIdx:      -1,
		tasks:        len(w.Tasks),
		w:            w,
		sched:        sched,
		state:        api.JobRunning,
		requires:     slices.Clone(req.Requires),
		deadlineMs:   req.DeadlineMillis,
		submitted:    now,
	}
	if j.deadlineMs > 0 && now.UnixMilli() >= j.deadlineMs {
		// Already past deadline at submission: urgent from the start; the
		// sweeper keeps the flag current from here on.
		j.urgent.Store(true)
	}
	for i := 0; i < s.cfg.Sites; i++ {
		st, err := storage.New(s.cfg.CapacityFiles, s.cfg.Policy)
		if err != nil {
			return "", err
		}
		st.Reserve(w.NumFiles)
		j.stores = append(j.stores, st)
		sched.AttachSite(i)
	}

	n := s.nextSeq()
	j.id, j.seq = fmt.Sprintf("j%d", n), n
	sh := s.shardOf(j.id)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return "", errf(http.StatusServiceUnavailable, "service: closed")
	}
	c := s.coord
	c.mu.Lock()
	if submissionID != "" {
		if id, ok := c.submissions[submissionID]; ok {
			// Lost ack resent: the job already exists.
			c.mu.Unlock()
			sh.mu.Unlock()
			return id, nil
		}
	}
	var lsn uint64
	if s.pst != nil {
		var err error
		// Tenant and weight are journaled resolved (weight never zero), so
		// replay is independent of the server's default-weight setting.
		lsn, err = s.appendRecord(&record{
			Op: opSubmit, Ts: now.UnixMilli(), Job: j.id,
			Name: name, Algorithm: req.Algorithm, Seed: req.Seed, Submission: submissionID,
			Tenant: j.tenant, Weight: j.weight,
			Requires: j.requires, Deadline: j.deadlineMs,
			Workload: w,
		})
		if err != nil {
			c.mu.Unlock()
			sh.mu.Unlock()
			return "", err
		}
	}
	c.admit(j)
	c.tenant(j.tenant).records++
	if submissionID != "" {
		c.submissions[submissionID] = j.id
	}
	c.mu.Unlock()
	sh.jobs[j.id] = j
	s.counters.JobsSubmitted.Add(1)
	s.counters.OpenJobs.Add(1)
	if len(w.Tasks) == 0 {
		s.completeJobLocked(sh, j, now)
	}
	sh.mu.Unlock()
	s.hub.broadcast()
	s.snapshotIfDue()
	if err := s.waitDurable(lsn); err != nil {
		// The job is journaled and resident but the configured durability
		// could not be confirmed; surface that. An idempotent retry
		// resolves to the same job id.
		return "", err
	}
	return j.id, nil
}

// DeleteJob drops a completed job's record (retention control for
// long-running daemons). Running jobs cannot be deleted. With journaling,
// the job's monotone counter totals are folded into a carry persisted with
// every snapshot, so deletion never makes the global /metrics counters
// jump backwards across a restart.
func (s *Service) DeleteJob(jobID string) error {
	sh := s.shardOf(jobID)
	sh.mu.Lock()
	j := sh.jobs[jobID]
	if j == nil {
		sh.mu.Unlock()
		return errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	if j.state != api.JobCompleted {
		sh.mu.Unlock()
		return errf(http.StatusConflict, "service: job %q is %s; only completed jobs can be deleted", jobID, j.state)
	}
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendRecord(&record{Op: opDelete, Ts: s.now().UnixMilli(), Job: jobID})
		if err != nil {
			sh.mu.Unlock()
			return err
		}
	}
	s.dropJobLocked(sh, j)
	sh.mu.Unlock()
	s.snapshotIfDue()
	return s.waitDurable(lsn)
}

// JobStatus returns one job's observable state.
func (s *Service) JobStatus(jobID string) (*api.JobStatus, error) {
	sh := s.shardOf(jobID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j := sh.jobs[jobID]
	if j == nil {
		return nil, errf(http.StatusNotFound, "service: unknown job %q", jobID)
	}
	st := jobStatusLocked(j)
	return &st, nil
}

// Jobs lists every resident job in submission order. Copy-on-read: each
// shard is locked just long enough to copy its jobs' summaries, so a
// status listing never blocks dispatch on the other stripes.
func (s *Service) Jobs() []api.JobStatus {
	var out []api.JobStatus
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, j := range sh.jobs {
			out = append(out, jobStatusLocked(j))
		}
		sh.mu.Unlock()
	}
	// Submission order: job ids are minted from one sequence.
	sort.Slice(out, func(i, k int) bool { return idNum(out[i].ID) < idNum(out[k].ID) })
	return out
}

// jobStatusLocked copies one job's summary. Callers hold the job's shard.
func jobStatusLocked(j *job) api.JobStatus {
	remaining := 0
	if j.sched != nil {
		remaining = j.sched.Remaining()
	}
	st := api.JobStatus{
		ID:              j.id,
		Name:            j.name,
		Algorithm:       j.algorithm,
		State:           j.state,
		Tenant:          j.tenant,
		Weight:          j.weight,
		Tasks:           j.tasks,
		Remaining:       remaining,
		Dispatched:      j.dispatched,
		Completed:       j.completed,
		Failed:          j.failed,
		Cancelled:       j.cancelled,
		Expired:         j.expired,
		Speculated:      j.speculated,
		Transfers:       j.transfers,
		Requires:        j.requires,
		DeadlineMillis:  j.deadlineMs,
		SubmittedAtUnix: j.submitted.Unix(),
	}
	if !j.finished.IsZero() {
		st.FinishedAtUnix = j.finished.Unix()
	}
	return st
}

// SetTenantQuota overrides one tenant's in-flight concurrency quota — the
// path behind PUT /v1/tenants/{tenant}. maxInFlight > 0 caps the tenant's
// concurrently leased assignments; 0 reverts to Config.TenantMaxInFlight.
// With journaling enabled the override is journaled before it is
// acknowledged and survives restarts.
func (s *Service) SetTenantQuota(tenant string, maxInFlight int) (*api.TenantStatus, error) {
	if tenant == "" {
		return nil, errf(http.StatusBadRequest, "service: empty tenant name (the default tenant's quota is the server-wide -tenant-quota)")
	}
	if !validTenantName(tenant) {
		return nil, errf(http.StatusBadRequest,
			"service: invalid tenant name %q (up to %d of [A-Za-z0-9._-])", tenant, maxTenantName)
	}
	if maxInFlight < 0 {
		return nil, errf(http.StatusBadRequest, "service: maxInFlight = %d", maxInFlight)
	}
	if s.closed.Load() {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	c := s.coord
	c.mu.Lock()
	var lsn uint64
	if s.pst != nil {
		var err error
		lsn, err = s.appendRecord(&record{
			Op: opQuota, Ts: s.now().UnixMilli(), Tenant: tenant, Quota: maxInFlight,
		})
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	t := c.tenant(tenant)
	t.quota = maxInFlight
	st := s.tenantStatusLocked(t, c.runnableWeight())
	// Reverting a jobless tenant's quota leaves nothing relevant about it;
	// drop the state rather than let reverted names accumulate.
	c.prune(tenant)
	c.mu.Unlock()
	// A raised (or lifted) quota can make a throttled tenant's work
	// dispatchable; wake parked pulls rather than leaving them to their
	// poll timeout. Rare operator action, so no need to be selective.
	s.hub.broadcast()
	s.snapshotIfDue()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return &st, nil
}

// Tenants returns every known tenant's fair-share state, sorted by name
// (the anonymous default tenant, "", sorts first when present).
func (s *Service) Tenants() []api.TenantStatus {
	c := s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	total := c.runnableWeight()
	out := make([]api.TenantStatus, 0, len(names))
	for _, name := range names {
		out = append(out, s.tenantStatusLocked(c.tenants[name], total))
	}
	return out
}

// TenantWeight returns a tenant's current fair-share weight — the summed
// weight of its running jobs — or 0 for a tenant with none. The ingress
// chain uses it to scale rate limits and order load shedding, so the
// same signal that divides dispatch capacity (arbiter) also divides
// admission: a tenant running weight-4 work sheds after one running
// weight-1 work.
func (s *Service) TenantWeight(tenant string) int64 {
	c := s.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.tenants[tenant]; t != nil {
		return t.weight
	}
	return 0
}

// tenantStatusLocked copies one tenant's status. Callers hold the
// coordinator.
func (s *Service) tenantStatusLocked(t *tenantState, totalWeight int64) api.TenantStatus {
	st := api.TenantStatus{
		Tenant:        t.name,
		Weight:        t.weight,
		RunningJobs:   t.running,
		InFlight:      t.inFlight,
		MaxInFlight:   s.coord.quotaFor(t, s.cfg.TenantMaxInFlight),
		ShareAchieved: s.coord.window.Share(t.name),
		Dispatches:    t.dispatches,
		Throttles:     t.throttles,
	}
	if totalWeight > 0 {
		st.ShareTarget = float64(t.weight) / float64(totalWeight)
	}
	return st
}

// Workers lists every live registered worker with its slot, tags, lease
// count, and observed context — the path behind GET /v1/workers. Sorted
// by (site, worker); the registry holds at most one live registration
// per slot, so the order is total.
func (s *Service) Workers() []api.WorkerStatus {
	s.reg.mu.Lock()
	out := make([]api.WorkerStatus, 0, len(s.reg.workers))
	for _, w := range s.reg.workers {
		out = append(out, api.WorkerStatus{
			WorkerID:      w.id,
			Site:          w.ref.Site,
			Worker:        w.ref.Worker,
			Tags:          slices.Clone(w.tags),
			Assignments:   len(w.assignments),
			ExpiresAtUnix: w.expires.Unix(),
		})
	}
	s.reg.mu.Unlock()
	for i := range out {
		ref := core.WorkerRef{Site: out[i].Site, Worker: out[i].Worker}
		if ctx, ok := s.tel.WorkerContext(ref); ok {
			out[i].MeanTaskMillis = ctx.MeanTaskMillis
			out[i].FailureRate = ctx.FailureRate
			out[i].Samples = ctx.Samples
			out[i].Events = ctx.Events
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Site != out[k].Site {
			return out[i].Site < out[k].Site
		}
		return out[i].Worker < out[k].Worker
	})
	return out
}

// Health summarizes liveness for /healthz.
func (s *Service) Health() api.Health {
	jobs := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		jobs += len(sh.jobs)
		sh.mu.Unlock()
	}
	s.reg.mu.Lock()
	workers := len(s.reg.workers)
	s.reg.mu.Unlock()
	return api.Health{
		Status:   "ok",
		Jobs:     jobs,
		Workers:  workers,
		OpenJobs: int(s.counters.OpenJobs.Load()),
	}
}
