package service_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/metrics"
	"gridsched/internal/middleware"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestIngressAuthEndToEnd drives the real service through the full ingress
// chain over HTTP and pins the auth contract: mutating endpoints reject
// tokenless callers 401, probes and metrics stay open, admin endpoints
// need an admin token, and submissions are bound to the token's tenant.
func TestIngressAuthEndToEnd(t *testing.T) {
	svc := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	c := metrics.NewIngressCounters()
	store := middleware.NewTokenStore(map[string]middleware.Principal{
		"gold-token":   {Tenant: "gold"},
		"bronze-token": {Tenant: "bronze"},
		"admin-token":  {Tenant: "ops", Admin: true},
	})
	ts := httptest.NewServer(middleware.Ingress(middleware.Config{
		Counters: c, Log: io.Discard, Tokens: store, TenantWeight: svc.TenantWeight,
	}, svc.Handler()))
	defer ts.Close()
	ctx := context.Background()

	// Tokenless mutations are 401; probes and metrics answer anyone.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless submit: %d, want 401", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with auth enabled: %d, want 200", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "gridsched_ingress_requests_total") {
			t.Fatalf("/metrics missing ingress counters:\n%s", body)
		}
	}

	gold := client.New(ts.URL, nil)
	gold.AuthToken = "gold-token"
	// A tenant token cannot submit on another tenant's behalf...
	_, err = gold.SubmitTenantJob(ctx, "bronze", 1, "sneaky", "workqueue", 0, syntheticWorkload(8, 1))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant submit: %v, want 403", err)
	}
	// ... and a submission without a tenant is bound to the token's.
	id, err := gold.SubmitJob(ctx, "mine", "workqueue", 0, syntheticWorkload(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := gold.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "gold" {
		t.Fatalf("submitted job bound to tenant %q, want gold", st.Tenant)
	}

	// Admin endpoint: tenant token 403, admin token 200.
	if _, err := gold.SetTenantQuota(ctx, "gold", 4); err == nil {
		t.Fatal("non-admin quota override accepted")
	} else if !errors.As(err, &ae) || ae.StatusCode != http.StatusForbidden {
		t.Fatalf("non-admin quota override: %v, want 403", err)
	}
	admin := client.New(ts.URL, nil)
	admin.AuthToken = "admin-token"
	if _, err := admin.SetTenantQuota(ctx, "gold", 4); err != nil {
		t.Fatalf("admin quota override: %v", err)
	}

	// Job deletion is tenant-scoped: another tenant's token is refused
	// outright (403, before any state check), while the owner reaches the
	// delete path itself — the job is still running, so the service
	// answers 409, proving the request got past authorization.
	bronze := client.New(ts.URL, nil)
	bronze.AuthToken = "bronze-token"
	if err := bronze.DeleteJob(ctx, id); !errors.As(err, &ae) || ae.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant delete: %v, want 403", err)
	}
	if err := gold.DeleteJob(ctx, id); !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("owner delete of running job: %v, want 409", err)
	}
	if err := admin.DeleteJob(ctx, id); !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("admin delete of running job: %v, want 409", err)
	}
	if c.AuthFailures.Load() == 0 || c.AuthDenied.Load() == 0 {
		t.Fatalf("counters: failures=%d denied=%d, want both > 0",
			c.AuthFailures.Load(), c.AuthDenied.Load())
	}
}

// TestIngressIdleLongPollsDoNotShed: an idle fleet long-polling an empty
// queue parks server-side for the full poll budget on every pull. Those
// parked waits must not be read as request latency — with a 50ms shed
// bound and ~100ms polls, a shedder that counted them would escalate
// immediately and shed a completely unloaded system.
func TestIngressIdleLongPollsDoNotShed(t *testing.T) {
	svc := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	c := metrics.NewIngressCounters()
	ts := httptest.NewServer(middleware.Ingress(middleware.Config{
		Counters:       c,
		Log:            io.Discard,
		ShedP99:        50 * time.Millisecond,
		ShedMinSamples: 4,
		ShedEvalEvery:  10 * time.Millisecond,
		TenantWeight:   svc.TenantWeight,
	}, svc.Handler()))
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL, nil)
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		resp, err := cl.Pull(ctx, reg.WorkerID, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("pull %d on an idle cluster: %v", i, err)
		}
		if resp.Status != api.StatusEmpty {
			t.Fatalf("pull %d: status %q, want empty", i, resp.Status)
		}
	}
	if n := c.Sheds.Load(); n != 0 {
		t.Fatalf("idle long-polls drove %d sheds (parked waits sampled as latency)", n)
	}
	if lvl := c.ShedLevel.Load(); lvl != 0 {
		t.Fatalf("shed level = %d on an idle cluster, want 0", lvl)
	}
}

// TestIngressOverloadShedsLightTenantLast is the two-tenant overload e2e:
// a deliberately slow service (every request over the shed bound) with a
// weight-4 and a weight-1 tenant pulling as fast as they can. The shedder
// must throttle both tenants' intake but keep the heavier tenant's
// admitted-pull throughput at least twice the lighter one's — the paying
// tenant sheds last and is readmitted first.
func TestIngressOverloadShedsLightTenantLast(t *testing.T) {
	svc := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	c := metrics.NewIngressCounters()
	store := middleware.NewTokenStore(map[string]middleware.Principal{
		"gold-token":   {Tenant: "gold"},
		"bronze-token": {Tenant: "bronze"},
	})
	// The overload: every service request costs ~2ms against a 1ms p99
	// bound, so the breach is sustained for as long as traffic is admitted.
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		svc.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(middleware.Ingress(middleware.Config{
		Counters:       c,
		Log:            io.Discard,
		Tokens:         store,
		ShedP99:        time.Millisecond,
		ShedMinSamples: 12,
		ShedEvalEvery:  25 * time.Millisecond,
		TenantWeight:   svc.TenantWeight,
	}, slow))
	defer ts.Close()
	ctx := context.Background()

	// One long-running job per tenant establishes the weights the shedder
	// orders by: gold 4, bronze 1.
	gold := client.New(ts.URL, nil)
	gold.AuthToken = "gold-token"
	bronze := client.New(ts.URL, nil)
	bronze.AuthToken = "bronze-token"
	if _, err := gold.SubmitTenantJob(ctx, "gold", 4, "gold-load", "workqueue", 0, syntheticWorkload(4000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := bronze.SubmitTenantJob(ctx, "bronze", 1, "bronze-load", "workqueue", 0, syntheticWorkload(4000, 1)); err != nil {
		t.Fatal(err)
	}

	// Each tenant hammers pulls for the duration; admitted assignments are
	// reported immediately so workers never block on held leases.
	var mu sync.Mutex
	admitted := map[string]int{}
	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	for _, tn := range []struct {
		name string
		cl   *client.Client
	}{{"gold", gold}, {"bronze", bronze}} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(name string, cl *client.Client) {
				defer wg.Done()
				reg, err := cl.Register(ctx, nil)
				if err != nil {
					t.Errorf("%s register: %v", name, err)
					return
				}
				for time.Now().Before(deadline) {
					resp, err := cl.Pull(ctx, reg.WorkerID, 0)
					if err != nil {
						var ae *client.APIError
						if errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests {
							continue // shed; try again immediately to keep pressure up
						}
						t.Errorf("%s pull: %v", name, err)
						return
					}
					mu.Lock()
					admitted[name]++
					mu.Unlock()
					if resp.Status == api.StatusAssigned {
						if _, err := cl.Report(ctx, resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
							t.Errorf("%s report: %v", name, err)
							return
						}
					}
				}
			}(tn.name, tn.cl)
		}
	}
	wg.Wait()

	goldOK, bronzeOK := admitted["gold"], admitted["bronze"]
	t.Logf("admitted pulls: gold=%d bronze=%d; sheds: gold=%d bronze=%d level=%d p99=%s",
		goldOK, bronzeOK, c.TenantSheds("gold"), c.TenantSheds("bronze"),
		c.ShedLevel.Load(), time.Duration(c.RequestP99Nanos.Load()))
	if c.TenantSheds("bronze") == 0 {
		t.Fatal("overload never shed the light tenant")
	}
	if goldOK < 5 {
		t.Fatalf("heavy tenant starved: only %d admitted pulls", goldOK)
	}
	if goldOK < 2*bronzeOK {
		t.Fatalf("weighted shedding inverted: gold=%d bronze=%d, want gold >= 2x bronze",
			goldOK, bronzeOK)
	}
}
