// The worker registry and the lease protocol surface (register,
// deregister, heartbeat, report — single and batched). The registry is a
// leaf lock guarding worker registrations, (site, worker) slots, and each
// worker's outstanding-lease set; everything lease-state-ful about an
// assignment itself (deadline, cancellation, the live lease table) lives
// on the owning job's shard. A report or heartbeat therefore touches two
// locks back to back — registry to resolve the assignment, shard to act
// on it — and never blocks traffic for unrelated jobs.
package service

import (
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
)

// registry guards worker registrations and slots.
type registry struct {
	mu      sync.Mutex
	workers map[string]*worker
	slots   [][]string // [site][worker] -> workerID, "" when free
}

func newRegistry(sites, workersPerSite int) *registry {
	r := &registry{
		workers: make(map[string]*worker),
		slots:   make([][]string, sites),
	}
	for i := range r.slots {
		r.slots[i] = make([]string, workersPerSite)
	}
	return r
}

// removeLocked frees the worker's slot and forgets it. Callers hold r.mu.
func (r *registry) removeLocked(w *worker) {
	r.slots[w.ref.Site][w.ref.Worker] = ""
	delete(r.workers, w.id)
}

// Register enrolls a worker with no capability tags. See RegisterWorker.
func (s *Service) Register(site int) (*api.RegisterResponse, error) {
	return s.RegisterWorker(site, nil)
}

// RegisterWorker enrolls a worker into a free (site, worker) slot. site <
// 0 picks the site with the most free slots. tags are the worker's
// capability tags: a job submitted with a requires list dispatches only
// to workers carrying every required tag.
func (s *Service) RegisterWorker(site int, tags []string) (*api.RegisterResponse, error) {
	if s.closed.Load() {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	if err := validateTags("tag", tags); err != nil {
		return nil, err
	}
	now := s.now()
	s.maybeSweep(now)
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	target := -1
	if site >= 0 {
		if site >= s.cfg.Sites {
			return nil, errf(http.StatusBadRequest, "service: site %d outside [0,%d)", site, s.cfg.Sites)
		}
		target = site
	} else {
		bestFree := 0
		for si := range r.slots {
			free := 0
			for _, id := range r.slots[si] {
				if id == "" {
					free++
				}
			}
			if free > bestFree {
				bestFree, target = free, si
			}
		}
		if target < 0 {
			return nil, errf(http.StatusServiceUnavailable, "service: all worker slots taken")
		}
	}
	slot := -1
	for wi, id := range r.slots[target] {
		if id == "" {
			slot = wi
			break
		}
	}
	if slot < 0 {
		return nil, errf(http.StatusServiceUnavailable, "service: site %d has no free worker slots", target)
	}
	// Worker ids carry the process instance nonce: registrations are not
	// journaled, so a recovered process would otherwise re-mint ids that
	// pre-crash workers still present.
	w := &worker{
		id:          fmt.Sprintf("w%d-%s", s.nextSeq(), s.instance),
		ref:         core.WorkerRef{Site: target, Worker: slot},
		expires:     now.Add(s.cfg.LeaseTTL),
		tags:        slices.Clone(tags),
		assignments: make(map[string]*assignment),
	}
	r.slots[target][slot] = w.id
	r.workers[w.id] = w
	s.tel.setTags(w.ref, tags) // telemetry is a leaf lock; safe under r.mu
	s.noteDeadline(w.expires)
	s.counters.ActiveWorkers.Add(1)
	return &api.RegisterResponse{
		WorkerID:       w.id,
		Site:           w.ref.Site,
		Worker:         w.ref.Worker,
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Deregister removes a worker. An outstanding assignment is requeued
// through the scheduler's failure path.
func (s *Service) Deregister(workerID string) error {
	r := s.reg
	r.mu.Lock()
	w := r.workers[workerID]
	if w == nil {
		r.mu.Unlock()
		return errf(http.StatusNotFound, "service: unknown worker %q", workerID)
	}
	orphans := make([]*assignment, 0, len(w.assignments))
	for _, a := range w.assignments {
		orphans = append(orphans, a)
	}
	r.removeLocked(w)
	s.counters.ActiveWorkers.Add(-1)
	r.mu.Unlock()
	now := s.now()
	for _, a := range orphans {
		sh := s.shardOf(a.job.id)
		sh.mu.Lock()
		if sh.assignments[a.id] == a {
			s.expireAssignmentLocked(sh, a, now)
		}
		sh.mu.Unlock()
	}
	s.hub.broadcast()
	s.snapshotIfDue()
	return nil
}

// lookupLease resolves (assignmentID, workerID) to the worker's live
// assignment, renewing the worker's registration lease on the way. nil
// means the pair names no live lease — the stale/gone outcome.
func (s *Service) lookupLease(assignmentID, workerID string, now time.Time) *assignment {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil {
		return nil
	}
	a := w.assignments[assignmentID]
	if a == nil {
		return nil
	}
	w.expires = now.Add(s.cfg.LeaseTTL)
	return a
}

// Heartbeat renews an assignment's lease and reports whether the execution
// is still wanted.
func (s *Service) Heartbeat(assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	s.counters.Heartbeats.Add(1)
	now := s.now()
	a := s.lookupLease(assignmentID, workerID, now)
	if a == nil {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	sh := s.shardOf(a.job.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.assignments[assignmentID] != a {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	a.deadline = now.Add(s.cfg.LeaseTTL)
	if a.cancelled {
		return &api.HeartbeatResponse{State: api.HeartbeatCancelled}, nil
	}
	return &api.HeartbeatResponse{State: api.HeartbeatActive}, nil
}

// Report ends an assignment. Reports on expired (requeued) assignments are
// rejected as stale; reports on cancelled replicas are accepted but counted
// as cancellations, not completions. The first successful completion of a
// task wins — both properties together guarantee no duplicate completions.
func (s *Service) Report(assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	if outcome != api.OutcomeSuccess && outcome != api.OutcomeFailure {
		return nil, errf(http.StatusBadRequest, "service: unknown outcome %q", outcome)
	}
	now := s.now()
	a := s.lookupLease(assignmentID, workerID, now)
	if a == nil {
		s.counters.StaleReports.Add(1)
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	sh := s.shardOf(a.job.id)
	sh.mu.Lock()
	if sh.assignments[assignmentID] != a {
		sh.mu.Unlock()
		s.counters.StaleReports.Add(1)
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	// Journal before applying: if the append fails the report is refused
	// with the assignment intact, and the worker's retry (or eventual
	// lease expiry) keeps state and log agreeing.
	var lsn uint64
	if rec := s.reportRecord(sh, a, outcome, now); rec != nil {
		var err error
		if lsn, err = s.appendRecord(rec); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
	}
	resp, wake := s.applyReportLocked(sh, a, outcome, now)
	sh.mu.Unlock()
	s.finishLease(a)
	if wake {
		s.hub.broadcast()
	}
	s.snapshotIfDue()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return resp, nil
}

// reportRecord builds the WAL record for a report, or nil when the report
// must not be journaled. Journal only while the job record is resident: a
// cancelled replica's lease can outlive its completed-then-DELETEd job,
// and a record naming a dropped job id would be unreplayable after the
// next snapshot no longer carries the job (recovery would refuse the data
// dir). The report still counts in memory; it just isn't history anyone
// can replay. Callers hold sh.mu.
func (s *Service) reportRecord(sh *shard, a *assignment, outcome string, now time.Time) *record {
	if s.pst == nil || sh.jobs[a.job.id] != a.job {
		return nil
	}
	return &record{
		Op: opReport, Ts: now.UnixMilli(), Job: a.job.id,
		Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
		Outcome: outcome,
	}
}

// applyReportLocked applies one validated, already-journaled (when due)
// report to its job: ledger, scheduler callbacks, counters, job
// completion. Callers hold sh.mu, have verified the lease is live
// (sh.assignments[a.id] == a), and must finishLease(a) after unlocking.
// wake asks for a hub broadcast — see the comment inside for why most
// reports do not wake anyone.
func (s *Service) applyReportLocked(sh *shard, a *assignment, outcome string, now time.Time) (*api.ReportResponse, bool) {
	j := a.job
	// recorded mirrors reportRecord's journaling condition: with
	// journaling on, telemetry folds exactly when a WAL record was
	// written, which is what keeps the EWMAs a pure function of the
	// record stream (recovery folds the same records back). Without
	// journaling it degrades to "job resident".
	recorded := sh.jobs[j.id] == j
	if s.pst != nil && recorded && j.state == api.JobRunning {
		op := ledgerFailure
		if outcome == api.OutcomeSuccess {
			op = ledgerSuccess
		}
		j.ledger = append(j.ledger, ledgerRec{
			Op: op, Task: a.task.ID,
			Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
			Ts: now.UnixMilli(),
		})
	}
	delete(sh.assignments, a.id)
	if a.speculative {
		// The twin ended (whichever way): the task may be speculated again
		// if a remaining lease straggles too.
		delete(j.specMarked, a.task.ID)
	}
	if recorded {
		// Telemetry folds by outcome alone, cancelled or not — the journal
		// record carries only the outcome, and live must match replay.
		if outcome == api.OutcomeSuccess {
			s.tel.observeSuccess(a.ref, now.UnixMilli()-a.granted, a.granted > 0)
		} else {
			s.tel.observeFailure(a.ref)
		}
	}
	resp := &api.ReportResponse{Accepted: true}
	// Long-poll wakeups are targeted: parked pulls only care about events
	// that can make new work dispatchable (a failure requeues the task, a
	// freed quota slot unthrottles a tenant — finishLease handles that
	// one) or change the open-job count (completion of the job's last
	// task, which completeJobLocked broadcasts itself). A plain success or
	// a cancelled replica frees no work for anyone else, so the common
	// case does not wake the whole herd just to find nothing.
	wake := false
	switch {
	case a.cancelled:
		// Covers replicas obsoleted by another completion AND any
		// execution that outlived its job: completeJobLocked cancel-marks
		// every assignment still in flight for the job, so no report can
		// reach a completed job's (released) scheduler or resurrect a task
		// another worker already finished.
		j.cancelled++
		s.counters.Cancellations.Add(1)
		if a.speculative {
			s.counters.SpeculationLosses.Add(1)
		}
		resp.Cancelled = true
	case outcome == api.OutcomeFailure:
		j.failed++
		s.counters.Failures.Add(1)
		if a.speculative {
			s.counters.SpeculationLosses.Add(1)
		}
		// Sibling rule: when the scheduler's view of this execution
		// survives in a live primary/twin sibling (same schedRef), the
		// failure must not requeue the task — the scheduler still sees one
		// running execution, and it is still running.
		if j.sched != nil && !liveSiblingLocked(sh, a) {
			j.sched.OnExecutionFailed(a.task.ID, a.schedRef)
		}
		wake = true
	default:
		if a.granted > 0 {
			j.durs.add(now.UnixMilli() - a.granted)
		}
		if a.speculative {
			s.counters.SpeculationWins.Add(1)
		}
		victims := j.sched.OnTaskComplete(a.task.ID, a.schedRef)
		j.completed++
		s.counters.Completions.Add(1)
		for _, v := range victims {
			s.cancelExecutionLocked(sh, j, a.task.ID, v)
		}
		// First report wins: cancel-mark every OTHER live execution of the
		// task. The victims loop above covers replicas the scheduler knows
		// about; this covers the ones it does not — a speculative twin, or
		// the straggling primary a winning twin just beat. Their eventual
		// reports come back cancelled, never as a second completion.
		for _, other := range sh.assignments {
			if other.job == j && other.task.ID == a.task.ID && !other.cancelled {
				other.cancelled = true
			}
		}
		delete(j.specMarked, a.task.ID)
		if j.sched.Remaining() == 0 {
			s.completeJobLocked(sh, j, now) // broadcasts
		}
	}
	resp.JobState = j.state
	return resp, wake
}

// liveSiblingLocked reports whether another live, non-cancelled execution
// of a's task shares a's schedRef — i.e. a is one half of a primary/twin
// pair whose other half still runs. Scheduler-created replicas carry
// their own refs and are never siblings. Callers hold sh.mu.
func liveSiblingLocked(sh *shard, a *assignment) bool {
	for _, other := range sh.assignments {
		if other != a && other.job == a.job && other.task.ID == a.task.ID &&
			!other.cancelled && other.schedRef == a.schedRef {
			return true
		}
	}
	return false
}

// ReportBatch ends up to a stream's worth of assignments (at most
// maxStreamBatch, enforced) in one call. Per item the semantics are
// exactly Report's — stale rejection, cancelled accounting,
// first-completion-wins, and a duplicate assignment id within the batch
// is stale just as a second Report call would be — which is what keeps
// exactly-once accounting intact when a worker retries a whole batch
// after a dropped connection: items that landed the first time come back
// stale, never double-counted. The batch's WAL records go through ONE contiguous
// commit-stage append per shard group (consecutive LSNs, one write(2))
// and one durability wait covers them all, amortizing the fsync that
// dominates a journaled report's cost.
func (s *Service) ReportBatch(workerID string, items []api.ReportItem) (*api.ReportBatchResponse, error) {
	// A worker's outstanding leases are capped at maxStreamBatch, so no
	// honest batch is bigger; an unbounded one would hold sh.mu across an
	// arbitrarily large journal append.
	if len(items) > maxStreamBatch {
		return nil, errf(http.StatusBadRequest, "service: batch of %d reports exceeds the %d-item cap", len(items), maxStreamBatch)
	}
	for i := range items {
		if items[i].AssignmentID == "" {
			return nil, errf(http.StatusBadRequest, "service: empty assignment id (report %d)", i)
		}
		if o := items[i].Outcome; o != api.OutcomeSuccess && o != api.OutcomeFailure {
			return nil, errf(http.StatusBadRequest, "service: unknown outcome %q (report %d)", o, i)
		}
	}
	now := s.now()
	results := make([]api.ReportResponse, len(items))
	as := make([]*assignment, len(items))

	// Resolve every lease in one registry pass (one registration renewal).
	// An unknown worker makes every item stale — same contract as Report.
	// Duplicate assignment ids inside one batch resolve for the FIRST
	// occurrence only: a later duplicate is what a second Report call would
	// be — the lease is gone by then — so it must come back Stale, not be
	// applied twice (twice through applyReportLocked would double-journal
	// and double-count, and if the first apply completed the job the second
	// would find j.sched nil).
	r := s.reg
	r.mu.Lock()
	if w := r.workers[workerID]; w != nil {
		w.expires = now.Add(s.cfg.LeaseTTL)
		seen := make(map[string]struct{}, len(items))
		for i := range items {
			id := items[i].AssignmentID
			if _, dup := seen[id]; dup {
				continue // as[i] stays nil → Stale below
			}
			seen[id] = struct{}{}
			as[i] = w.assignments[id]
		}
	}
	r.mu.Unlock()

	// Group live leases by owning shard, preserving item order within each
	// group (ledger and WAL order inside a shard match the batch's order).
	groups := make(map[*shard][]int)
	for i, a := range as {
		if a == nil {
			s.counters.StaleReports.Add(1)
			results[i] = api.ReportResponse{Stale: true}
			continue
		}
		groups[s.shardOf(a.job.id)] = append(groups[s.shardOf(a.job.id)], i)
	}

	var maxLSN uint64
	wake := false
	var finished []*assignment
	for sh, idxs := range groups {
		sh.mu.Lock()
		// Re-validate under the shard lock and journal the whole group
		// with one contiguous append BEFORE applying anything (the same
		// journal-before-apply rule as Report, batch-wide: an append
		// failure refuses the group with every lease intact).
		live := make([]int, 0, len(idxs))
		var recs []*record
		for _, i := range idxs {
			a := as[i]
			if sh.assignments[a.id] != a {
				s.counters.StaleReports.Add(1)
				results[i] = api.ReportResponse{Stale: true}
				continue
			}
			if rec := s.reportRecord(sh, a, items[i].Outcome, now); rec != nil {
				recs = append(recs, rec)
			}
			live = append(live, i)
		}
		if len(recs) > 0 {
			first, err := s.appendRecords(recs)
			if err != nil {
				sh.mu.Unlock()
				return nil, err
			}
			if last := first + uint64(len(recs)) - 1; last > maxLSN {
				maxLSN = last
			}
		}
		for _, i := range live {
			a := as[i]
			resp, w := s.applyReportLocked(sh, a, items[i].Outcome, now)
			results[i] = *resp
			wake = wake || w
			finished = append(finished, a)
		}
		sh.mu.Unlock()
	}
	for _, a := range finished {
		s.finishLease(a)
	}
	if wake {
		s.hub.broadcast()
	}
	s.snapshotIfDue()
	if err := s.waitDurable(maxLSN); err != nil {
		return nil, err
	}
	return &api.ReportBatchResponse{Results: results}, nil
}
