// The worker registry and the lease protocol surface (register,
// deregister, heartbeat, report). The registry is a leaf lock guarding
// worker registrations, (site, worker) slots, and each worker's
// current-assignment pointer; everything lease-state-ful about an
// assignment itself (deadline, cancellation, the live lease table) lives
// on the owning job's shard. A report or heartbeat therefore touches two
// locks back to back — registry to resolve the assignment, shard to act
// on it — and never blocks traffic for unrelated jobs.
package service

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
)

// registry guards worker registrations and slots.
type registry struct {
	mu      sync.Mutex
	workers map[string]*worker
	slots   [][]string // [site][worker] -> workerID, "" when free
}

func newRegistry(sites, workersPerSite int) *registry {
	r := &registry{
		workers: make(map[string]*worker),
		slots:   make([][]string, sites),
	}
	for i := range r.slots {
		r.slots[i] = make([]string, workersPerSite)
	}
	return r
}

// removeLocked frees the worker's slot and forgets it. Callers hold r.mu.
func (r *registry) removeLocked(w *worker) {
	r.slots[w.ref.Site][w.ref.Worker] = ""
	delete(r.workers, w.id)
}

// Register enrolls a worker into a free (site, worker) slot. site < 0 picks
// the site with the most free slots.
func (s *Service) Register(site int) (*api.RegisterResponse, error) {
	if s.closed.Load() {
		return nil, errf(http.StatusServiceUnavailable, "service: closed")
	}
	now := time.Now()
	s.maybeSweep(now)
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	target := -1
	if site >= 0 {
		if site >= s.cfg.Sites {
			return nil, errf(http.StatusBadRequest, "service: site %d outside [0,%d)", site, s.cfg.Sites)
		}
		target = site
	} else {
		bestFree := 0
		for si := range r.slots {
			free := 0
			for _, id := range r.slots[si] {
				if id == "" {
					free++
				}
			}
			if free > bestFree {
				bestFree, target = free, si
			}
		}
		if target < 0 {
			return nil, errf(http.StatusServiceUnavailable, "service: all worker slots taken")
		}
	}
	slot := -1
	for wi, id := range r.slots[target] {
		if id == "" {
			slot = wi
			break
		}
	}
	if slot < 0 {
		return nil, errf(http.StatusServiceUnavailable, "service: site %d has no free worker slots", target)
	}
	// Worker ids carry the process instance nonce: registrations are not
	// journaled, so a recovered process would otherwise re-mint ids that
	// pre-crash workers still present.
	w := &worker{
		id:      fmt.Sprintf("w%d-%s", s.seq.Add(1), s.instance),
		ref:     core.WorkerRef{Site: target, Worker: slot},
		expires: now.Add(s.cfg.LeaseTTL),
	}
	r.slots[target][slot] = w.id
	r.workers[w.id] = w
	s.noteDeadline(w.expires)
	s.counters.ActiveWorkers.Add(1)
	return &api.RegisterResponse{
		WorkerID:       w.id,
		Site:           w.ref.Site,
		Worker:         w.ref.Worker,
		LeaseTTLMillis: s.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Deregister removes a worker. An outstanding assignment is requeued
// through the scheduler's failure path.
func (s *Service) Deregister(workerID string) error {
	r := s.reg
	r.mu.Lock()
	w := r.workers[workerID]
	if w == nil {
		r.mu.Unlock()
		return errf(http.StatusNotFound, "service: unknown worker %q", workerID)
	}
	a := w.assignment
	r.removeLocked(w)
	s.counters.ActiveWorkers.Add(-1)
	r.mu.Unlock()
	if a != nil {
		sh := s.shardOf(a.job.id)
		sh.mu.Lock()
		if sh.assignments[a.id] == a {
			s.expireAssignmentLocked(sh, a, time.Now())
		}
		sh.mu.Unlock()
	}
	s.hub.broadcast()
	s.snapshotIfDue()
	return nil
}

// lookupLease resolves (assignmentID, workerID) to the worker's live
// assignment, renewing the worker's registration lease on the way. nil
// means the pair names no live lease — the stale/gone outcome.
func (s *Service) lookupLease(assignmentID, workerID string, now time.Time) *assignment {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil || w.assignment == nil || w.assignment.id != assignmentID {
		return nil
	}
	w.expires = now.Add(s.cfg.LeaseTTL)
	return w.assignment
}

// Heartbeat renews an assignment's lease and reports whether the execution
// is still wanted.
func (s *Service) Heartbeat(assignmentID, workerID string) (*api.HeartbeatResponse, error) {
	s.counters.Heartbeats.Add(1)
	now := time.Now()
	a := s.lookupLease(assignmentID, workerID, now)
	if a == nil {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	sh := s.shardOf(a.job.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.assignments[assignmentID] != a {
		return &api.HeartbeatResponse{State: api.HeartbeatGone}, nil
	}
	a.deadline = now.Add(s.cfg.LeaseTTL)
	if a.cancelled {
		return &api.HeartbeatResponse{State: api.HeartbeatCancelled}, nil
	}
	return &api.HeartbeatResponse{State: api.HeartbeatActive}, nil
}

// Report ends an assignment. Reports on expired (requeued) assignments are
// rejected as stale; reports on cancelled replicas are accepted but counted
// as cancellations, not completions. The first successful completion of a
// task wins — both properties together guarantee no duplicate completions.
func (s *Service) Report(assignmentID, workerID, outcome string) (*api.ReportResponse, error) {
	if outcome != api.OutcomeSuccess && outcome != api.OutcomeFailure {
		return nil, errf(http.StatusBadRequest, "service: unknown outcome %q", outcome)
	}
	now := time.Now()
	a := s.lookupLease(assignmentID, workerID, now)
	if a == nil {
		s.counters.StaleReports.Add(1)
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	sh := s.shardOf(a.job.id)
	sh.mu.Lock()
	if sh.assignments[assignmentID] != a {
		sh.mu.Unlock()
		s.counters.StaleReports.Add(1)
		return &api.ReportResponse{Accepted: false, Stale: true}, nil
	}
	j := a.job
	var lsn uint64
	// Journal only while the job record is resident: a cancelled replica's
	// lease can outlive its completed-then-DELETEd job, and a record
	// naming a dropped job id would be unreplayable after the next
	// snapshot no longer carries the job (recovery would refuse the data
	// dir). The report still counts below; it just isn't history anyone
	// can replay.
	if s.pst != nil && sh.jobs[j.id] == j {
		// Journal before applying: if the append fails the report is
		// refused with the assignment intact, and the worker's retry (or
		// eventual lease expiry) keeps state and log agreeing.
		var err error
		lsn, err = s.appendRecord(&record{
			Op: opReport, Ts: now.UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
			Outcome: outcome,
		})
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		op := ledgerFailure
		if outcome == api.OutcomeSuccess {
			op = ledgerSuccess
		}
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: op, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: now.UnixMilli(),
			})
		}
	}
	delete(sh.assignments, a.id)
	resp := &api.ReportResponse{Accepted: true}
	// Long-poll wakeups are targeted: parked pulls only care about events
	// that can make new work dispatchable (a failure requeues the task, a
	// freed quota slot unthrottles a tenant — finishLease handles that
	// one) or change the open-job count (completion of the job's last
	// task, which completeJobLocked broadcasts itself). A plain success or
	// a cancelled replica frees no work for anyone else, so the common
	// case does not wake the whole herd just to find nothing.
	wake := false
	switch {
	case a.cancelled:
		// Covers replicas obsoleted by another completion AND any
		// execution that outlived its job: completeJobLocked cancel-marks
		// every assignment still in flight for the job, so no report can
		// reach a completed job's (released) scheduler or resurrect a task
		// another worker already finished.
		j.cancelled++
		s.counters.Cancellations.Add(1)
		resp.Cancelled = true
	case outcome == api.OutcomeFailure:
		j.failed++
		s.counters.Failures.Add(1)
		if j.sched != nil { // defensive: unreachable once completed (cancel-marked above)
			j.sched.OnExecutionFailed(a.task.ID, a.ref)
		}
		wake = true
	default:
		victims := j.sched.OnTaskComplete(a.task.ID, a.ref)
		j.completed++
		s.counters.Completions.Add(1)
		for _, v := range victims {
			s.cancelExecutionLocked(sh, j, a.task.ID, v)
		}
		if j.sched.Remaining() == 0 {
			s.completeJobLocked(sh, j, now) // broadcasts
		}
	}
	resp.JobState = j.state
	sh.mu.Unlock()
	s.finishLease(a)
	if wake {
		s.hub.broadcast()
	}
	s.snapshotIfDue()
	if err := s.waitDurable(lsn); err != nil {
		return nil, err
	}
	return resp, nil
}
