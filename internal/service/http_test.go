package service_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

func coaddWorkload(t *testing.T, tasks int) *workload.Workload {
	t.Helper()
	cfg := workload.CoaddSmallConfig(workload.DefaultCoaddSeed)
	cfg.Tasks = tasks
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEndToEndWorkloadOverHTTP is the acceptance scenario: a Coadd workload
// submitted over HTTP completes via 8 concurrent pull-based workers, a
// killed worker's task is requeued after lease expiry, and no completion is
// duplicated.
func TestEndToEndWorkloadOverHTTP(t *testing.T) {
	svc, err := gridsched.NewService(gridsched.ServiceConfig{
		Topology: gridsched.ServiceTopology{
			Sites:          4,
			WorkersPerSite: 3, // 8 live workers + the victim + slack
			CapacityFiles:  2000,
		},
		LeaseTTL:      300 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const tasks = 48
	w := coaddWorkload(t, tasks)
	jobID, err := cl.SubmitJob(ctx, "e2e", "rest", 1, w)
	if err != nil {
		t.Fatal(err)
	}

	// The victim worker takes one task and is killed: it never heartbeats
	// and never reports, so its lease must expire and the task must be
	// re-dispatched to the live fleet.
	victim, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	victimPull, err := cl.Pull(ctx, victim.WorkerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if victimPull.Status != api.StatusAssigned {
		t.Fatalf("victim pull: %q", victimPull.Status)
	}

	// 8 concurrent workers drive the rest of the workload to completion.
	var executions atomic.Int64
	perTask := make([]atomic.Int32, tasks)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := cl.RunWorker(ctx, client.WorkerConfig{
				PollWait: 200 * time.Millisecond,
				Execute: func(execCtx context.Context, ref core.WorkerRef, a *api.Assignment) error {
					executions.Add(1)
					perTask[a.Task.ID].Add(1)
					select {
					case <-execCtx.Done():
					case <-time.After(time.Millisecond):
					}
					return nil
				},
				OnIdle: func(idleCtx context.Context, resp *api.PullResponse) (bool, error) {
					return resp.OpenJobs == 0, nil
				},
			})
			if err != nil && ctx.Err() == nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("workload did not complete before the test deadline")
	}

	st, err := cl.Job(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted {
		t.Fatalf("job state %q: %+v", st.State, st)
	}
	if st.Completed != tasks {
		t.Fatalf("completed %d of %d (duplicate or lost completions)", st.Completed, tasks)
	}
	if st.Expired < 1 {
		t.Fatalf("expired leases = %d, want >= 1 (the killed worker's)", st.Expired)
	}
	if got := int(executions.Load()); got < tasks {
		t.Fatalf("executions %d < tasks %d", got, tasks)
	}
	// The victim's task ran again in the fleet; its late success report
	// must be rejected as stale, leaving the completion count untouched.
	rep, err := cl.Report(context.Background(), victimPull.Assignment.ID, victim.WorkerID, api.OutcomeSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.Stale {
		t.Fatalf("zombie report not rejected: %+v", rep)
	}
	st, _ = cl.Job(context.Background(), jobID)
	if st.Completed != tasks {
		t.Fatalf("completions moved after stale report: %d", st.Completed)
	}
	// Worker-centric scheduling never replicates: absent lease expiry a
	// task runs once, so only the victim's task may have run on two
	// workers (once on the victim — not counted in perTask, which only
	// tracks fleet executions — and once or more after requeue).
	for id := range perTask {
		if n := perTask[id].Load(); n > 2 {
			t.Errorf("task %d executed %d times in the fleet", id, n)
		}
	}
}

func TestHTTPSubmitRejectsUnknownAlgorithm(t *testing.T) {
	svc, err := gridsched.NewService(gridsched.ServiceConfig{
		Topology: gridsched.ServiceTopology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)
	_, err = cl.SubmitJob(context.Background(), "bad", "bogus", 0, syntheticWorkload(1, 1))
	var ae *client.APIError
	if err == nil {
		t.Fatal("accepted bogus algorithm")
	}
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	svc, err := service.New(service.Config{
		Topology: service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL, nil)

	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health: %+v", h)
	}

	w := syntheticWorkload(2, 1)
	if _, err := svc.Submit("m", "workqueue", w, core.NewWorkqueue(w)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"gridsched_jobs_submitted_total 1",
		"gridsched_open_jobs 1",
		"gridsched_job_remaining",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
