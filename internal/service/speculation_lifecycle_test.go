// Speculation lifecycle coverage: what happens to a primary/twin pair
// when the process crashes mid-speculation, when either worker of the
// pair deregisters, and when the primary's lease expires — the paths
// where a naive implementation double-completes the task or loses it.
// The crash tests double as recovery-identity coverage for the new
// journal records (speculative dispatch ops, worker-context snapshots).
package service_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// specDurableConfig is durableConfig plus the speculation knobs and a fake
// clock: virtual-hour TTL and sweep cadence so nothing moves except when
// the test advances the clock and sweeps.
func specDurableConfig(dir string, clk *policyClock) service.Config {
	cfg := durableConfig(dir)
	cfg.LeaseTTL = time.Hour
	cfg.SweepInterval = time.Hour
	cfg.Clock = clk.now
	cfg.Speculation = true
	return cfg
}

// specLiveConfig is the non-durable variant for the deregistration and
// expiry tests, which need no journal.
func specLiveConfig(clk *policyClock) service.Config {
	return service.Config{
		Topology: service.Topology{
			Sites:          2,
			WorkersPerSite: 4,
			CapacityFiles:  120,
		},
		NewScheduler:  gridsched.SchedulerFactory(),
		LeaseTTL:      time.Hour,
		SweepInterval: time.Hour,
		Clock:         clk.now,
		Speculation:   true,
	}
}

// stagedSpec is the mid-speculation state every lifecycle test starts
// from: a straggling primary lease on the slow worker, three fast
// completions that gave the job a duration distribution, and a freshly
// granted speculative twin on the fast worker.
type stagedSpec struct {
	jobID     string
	slow      *api.RegisterResponse // site 0, holds the straggling primary
	fast      *api.RegisterResponse // site 1, holds the speculative twin
	straggler *api.Assignment       // the primary lease (granted at t=0)
	twin      *api.Assignment       // the speculative twin (granted at t=1000)
}

// stageSpeculation drives s to the staged state: slow pulls at t=0 and
// never reports; fast completes three tasks at 100ms each; at t=1000 the
// sweep flags the straggler (age 1000ms >> 2x p95 of 100ms) and the next
// pull grants its speculative twin.
func stageSpeculation(t *testing.T, s *service.Service, clk *policyClock, algo string, tasks int) *stagedSpec {
	t.Helper()
	jobID, err := s.SubmitByName("spec-lifecycle", algo, syntheticWorkload(tasks, 2), 99, "")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.RegisterWorker(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.RegisterWorker(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	straggler := pull(t, s, slow.WorkerID)
	if straggler == nil {
		t.Fatal("no assignment for the straggling worker")
	}
	for i := 0; i < 3; i++ {
		asg := pull(t, s, fast.WorkerID)
		if asg == nil {
			t.Fatalf("fast worker starved at pull %d", i)
		}
		clk.ms.Add(100)
		rep, err := s.Report(asg.ID, fast.WorkerID, api.OutcomeSuccess)
		if err != nil || !rep.Accepted || rep.Stale || rep.Cancelled {
			t.Fatalf("fast report %d: %+v (err=%v)", i, rep, err)
		}
	}
	clk.ms.Store(1000)
	s.SweepForTest()
	twin := pull(t, s, fast.WorkerID)
	if twin == nil {
		t.Fatal("sweep staged no speculative twin")
	}
	if twin.Task.ID != straggler.Task.ID {
		t.Fatalf("twin runs task %d, straggler holds task %d", twin.Task.ID, straggler.Task.ID)
	}
	st, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Speculated != 1 || st.Dispatched != 5 || st.Completed != 3 {
		t.Fatalf("staged state: %+v", st)
	}
	return &stagedSpec{jobID: jobID, slow: slow, fast: fast, straggler: straggler, twin: twin}
}

// workerStatusAt finds the merged WorkerStatus for a slot; the caller must
// have a live registration there (telemetry is only visible through one).
func workerStatusAt(t *testing.T, s *service.Service, site, worker int) api.WorkerStatus {
	t.Helper()
	for _, ws := range s.Workers() {
		if ws.Site == site && ws.Worker == worker {
			return ws
		}
	}
	t.Fatalf("no registered worker at slot (%d,%d)", site, worker)
	return api.WorkerStatus{}
}

// drainAll pulls and succeeds assignments on one worker until nothing is
// dispatchable, returning the task ids in dispatch order.
func drainAll(t *testing.T, s *service.Service, workerID string) []workload.TaskID {
	t.Helper()
	var seq []workload.TaskID
	for i := 0; i < 10_000; i++ {
		asg := pull(t, s, workerID)
		if asg == nil {
			return seq
		}
		seq = append(seq, asg.Task.ID)
		rep, err := s.Report(asg.ID, workerID, api.OutcomeSuccess)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted || rep.Stale || rep.Cancelled {
			t.Fatalf("drain report for task %d: %+v", asg.Task.ID, rep)
		}
	}
	t.Fatal("drain did not terminate")
	return nil
}

// copyDirForTest duplicates a data dir byte for byte, so two recoveries
// can replay the same journal independently.
func copyDirForTest(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCrashRecoveryMidSpeculation kills the service with BOTH halves of a
// primary/twin pair in flight and checks that recovery rebuilds exactly
// the state a live observer saw: the speculative dispatch count, the
// worker-context EWMAs (including the forced-expiry folds recovery itself
// appends), and — across a second crash — bit-identical job status. The
// job then drains to exactly-once completion.
func TestCrashRecoveryMidSpeculation(t *testing.T) {
	const tasks = 8
	dir := t.TempDir()
	clk := &policyClock{base: time.Unix(1_700_000_000, 0)}

	a, err := service.New(specDurableConfig(dir, clk))
	if err != nil {
		t.Fatal(err)
	}
	st := stageSpeculation(t, a, clk, "workqueue", tasks)

	// Pre-crash telemetry on the fast slot: three 100ms successes.
	pre := workerStatusAt(t, a, 1, 0)
	if pre.MeanTaskMillis != 100 || pre.FailureRate != 0 || pre.Samples != 3 || pre.Events != 3 {
		t.Fatalf("pre-crash fast-slot telemetry: %+v", pre)
	}

	a.CrashForTest()
	b, err := service.New(specDurableConfig(dir, clk))
	if err != nil {
		t.Fatalf("recovery mid-speculation: %v", err)
	}

	// Recovery force-expired both open leases of the straggling task. The
	// sibling rule requeues the task once (not twice), and the speculative
	// dispatch survives in both the job status and the monotone counter.
	stB, err := b.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Speculated != 1 || stB.Dispatched != 5 || stB.Completed != 3 ||
		stB.Expired != 2 || stB.Failed != 0 || stB.Cancelled != 0 {
		t.Fatalf("recovered job status: %+v", stB)
	}
	if got := b.Counters().SpeculativeDispatches.Load(); got != 1 {
		t.Fatalf("recovered speculative-dispatch counter = %d, want 1", got)
	}
	if got := b.Counters().LeasesExpired.Load(); got != 2 {
		t.Fatalf("recovered expired counter = %d, want 2", got)
	}

	// Registrations are not journaled, so re-register probes into the same
	// slots to read the recovered telemetry. The snapshot restored the
	// pre-crash accumulators and the forced expiries folded one failure
	// onto each slot that held a lease: the slow slot (0,0) saw its first
	// event ever (failure EWMA seeds at 1.0), the fast slot folded one
	// failure into three successes (1/8 step from 0).
	if _, err := b.RegisterWorker(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterWorker(1, nil); err != nil {
		t.Fatal(err)
	}
	slowTel := workerStatusAt(t, b, 0, 0)
	if slowTel.MeanTaskMillis != 0 || slowTel.FailureRate != 1 || slowTel.Samples != 0 || slowTel.Events != 1 {
		t.Fatalf("recovered slow-slot telemetry: %+v", slowTel)
	}
	fastTel := workerStatusAt(t, b, 1, 0)
	if fastTel.MeanTaskMillis != 100 || fastTel.FailureRate != 0.125 || fastTel.Samples != 3 || fastTel.Events != 4 {
		t.Fatalf("recovered fast-slot telemetry: %+v", fastTel)
	}

	// Crash the recovered service before it does anything and recover
	// again: the forced-expiry records it appended must replay to the
	// identical state — the second recovery sees them as ordinary journal
	// tail, not as leases to expire.
	b.CrashForTest()
	d, err := service.New(specDurableConfig(dir, clk))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer d.Close()
	stD, err := d.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stB, stD) {
		t.Fatalf("double-recovery identity broken:\n first %+v\nsecond %+v", stB, stD)
	}

	// Drain: the requeued straggler plus the four never-dispatched tasks,
	// each completed exactly once.
	w, err := d.RegisterWorker(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := drainAll(t, d, w.WorkerID)
	if len(seq) != 5 {
		t.Fatalf("drain dispatched %d tasks, want 5: %v", len(seq), seq)
	}
	fin, err := d.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobCompleted || fin.Completed != tasks || fin.Remaining != 0 ||
		fin.Dispatched != tasks+2 || fin.Speculated != 1 {
		t.Fatalf("final job status: %+v", fin)
	}
	if got := d.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d, want exactly %d", got, tasks)
	}
}

// TestSpeculativeRecoveryDispatchIdentity crashes mid-speculation under
// the randomized scheduler and replays the same journal twice (via a
// byte-for-byte copy of the data dir): both recoveries must land on the
// same RNG state, so identically scripted drains dispatch the same task
// sequence. This is the recovery-identity gate for the speculative
// dispatch ledger op, which replays through CommitBatchInto/NoteBatch
// without touching the scheduler's RNG.
func TestSpeculativeRecoveryDispatchIdentity(t *testing.T) {
	const tasks = 12
	dirA := t.TempDir()
	clk := &policyClock{base: time.Unix(1_700_000_000, 0)}

	a, err := service.New(specDurableConfig(dirA, clk))
	if err != nil {
		t.Fatal(err)
	}
	st := stageSpeculation(t, a, clk, "combined.2", tasks)
	a.CrashForTest()
	dirB := copyDirForTest(t, dirA)

	b, err := service.New(specDurableConfig(dirA, clk))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := service.New(specDurableConfig(dirB, clk))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stB, err := b.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	stC, err := c.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stB, stC) {
		t.Fatalf("recoveries of the same journal disagree:\n b %+v\n c %+v", stB, stC)
	}

	// Identically scripted drains. The slow slot (0,0) carries one
	// forced-expiry failure event, below the context gate's MinEvents
	// floor, so the probe worker is dispatchable.
	wb, err := b.RegisterWorker(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := c.RegisterWorker(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqB := drainAll(t, b, wb.WorkerID)
	seqC := drainAll(t, c, wc.WorkerID)
	if !reflect.DeepEqual(seqB, seqC) {
		t.Fatalf("dispatch sequences diverge after recovery:\n b %v\n c %v", seqB, seqC)
	}
	finB, err := b.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	finC, err := c.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(finB, finC) {
		t.Fatalf("drained states diverge:\n b %+v\n c %+v", finB, finC)
	}
	if finB.State != api.JobCompleted || finB.Completed != tasks {
		t.Fatalf("job did not drain cleanly: %+v", finB)
	}
	if got := b.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d, want exactly %d", got, tasks)
	}
}

// TestDeregisterMidSpeculation is the satellite-fix regression: worker
// deregistration with an outstanding speculative twin. Expiring one half
// of the pair must not requeue the task (its sibling still runs it), must
// not let the survivor's completion double-count, and — when the twin is
// the half that dies — must re-arm the task for a later speculation.
func TestDeregisterMidSpeculation(t *testing.T) {
	const tasks = 8

	t.Run("primary", func(t *testing.T) {
		clk := &policyClock{base: time.Unix(1_700_000_000, 0)}
		s, err := service.New(specLiveConfig(clk))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		st := stageSpeculation(t, s, clk, "workqueue", tasks)

		// The primary's worker walks away. Its lease expires through the
		// deregistration path; the twin still runs the task, so the
		// scheduler must NOT get a failure (which would requeue a task
		// that is being executed).
		if err := s.Deregister(st.slow.WorkerID); err != nil {
			t.Fatal(err)
		}
		mid, err := s.JobStatus(st.jobID)
		if err != nil {
			t.Fatal(err)
		}
		if mid.Expired != 1 || mid.Failed != 0 {
			t.Fatalf("after primary deregistration: %+v", mid)
		}

		// The twin's completion is the task's one completion.
		rep, err := s.Report(st.twin.ID, st.fast.WorkerID, api.OutcomeSuccess)
		if err != nil || !rep.Accepted || rep.Stale || rep.Cancelled {
			t.Fatalf("twin report: %+v (err=%v)", rep, err)
		}
		if got := s.Counters().SpeculationWins.Load(); got != 1 {
			t.Fatalf("speculation wins = %d, want 1", got)
		}

		seq := drainAll(t, s, st.fast.WorkerID)
		for _, id := range seq {
			if id == st.straggler.Task.ID {
				t.Fatalf("straggler task %d was re-dispatched after deregistration", id)
			}
		}
		fin, err := s.JobStatus(st.jobID)
		if err != nil {
			t.Fatal(err)
		}
		// tasks+1 dispatches: every task once, plus the one twin. A requeue
		// bug would re-dispatch the straggler and break both asserts.
		if fin.State != api.JobCompleted || fin.Completed != tasks || fin.Dispatched != tasks+1 {
			t.Fatalf("final job status: %+v", fin)
		}
		if got := s.Counters().Completions.Load(); got != tasks {
			t.Fatalf("completions = %d, want exactly %d", got, tasks)
		}
	})

	t.Run("twin", func(t *testing.T) {
		clk := &policyClock{base: time.Unix(1_700_000_000, 0)}
		s, err := service.New(specLiveConfig(clk))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		st := stageSpeculation(t, s, clk, "workqueue", tasks)

		// The twin's worker walks away: a speculation loss, no requeue (the
		// primary still runs), and the task is re-armed for speculation.
		if err := s.Deregister(st.fast.WorkerID); err != nil {
			t.Fatal(err)
		}
		mid, err := s.JobStatus(st.jobID)
		if err != nil {
			t.Fatal(err)
		}
		if mid.Expired != 1 || mid.Failed != 0 {
			t.Fatalf("after twin deregistration: %+v", mid)
		}
		if got := s.Counters().SpeculationLosses.Load(); got != 1 {
			t.Fatalf("speculation losses = %d, want 1", got)
		}

		// Still straggling at t=2000: the sweep stages a second twin.
		clk.ms.Store(2000)
		s.SweepForTest()
		w3, err := s.RegisterWorker(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		twin2 := pull(t, s, w3.WorkerID)
		if twin2 == nil || twin2.Task.ID != st.straggler.Task.ID {
			t.Fatalf("no second twin after the first died: %+v", twin2)
		}

		// The primary finally lands: it wins, the second twin is obsolete.
		rep, err := s.Report(st.straggler.ID, st.slow.WorkerID, api.OutcomeSuccess)
		if err != nil || !rep.Accepted || rep.Stale || rep.Cancelled {
			t.Fatalf("primary report: %+v (err=%v)", rep, err)
		}
		rep2, err := s.Report(twin2.ID, w3.WorkerID, api.OutcomeSuccess)
		if err != nil || !rep2.Accepted || !rep2.Cancelled {
			t.Fatalf("obsolete twin report: %+v (err=%v)", rep2, err)
		}
		if got := s.Counters().SpeculationLosses.Load(); got != 2 {
			t.Fatalf("speculation losses = %d, want 2", got)
		}
		if got := s.Counters().SpeculationWins.Load(); got != 0 {
			t.Fatalf("speculation wins = %d, want 0", got)
		}

		drainAll(t, s, w3.WorkerID)
		fin, err := s.JobStatus(st.jobID)
		if err != nil {
			t.Fatal(err)
		}
		// tasks+2 dispatches: every task once plus the two twins; exactly
		// one completion per task, the second twin counted cancelled.
		if fin.State != api.JobCompleted || fin.Completed != tasks ||
			fin.Dispatched != tasks+2 || fin.Speculated != 2 || fin.Cancelled != 1 {
			t.Fatalf("final job status: %+v", fin)
		}
		if got := s.Counters().Completions.Load(); got != tasks {
			t.Fatalf("completions = %d, want exactly %d", got, tasks)
		}
	})
}

// TestLeaseExpiryWithSpeculativeTwin expires the straggling primary
// through the sweep's TTL path (not deregistration) while its twin is
// live: same sibling rule, same single completion.
func TestLeaseExpiryWithSpeculativeTwin(t *testing.T) {
	const tasks = 8
	clk := &policyClock{base: time.Unix(1_700_000_000, 0)}
	s, err := service.New(specLiveConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := stageSpeculation(t, s, clk, "workqueue", tasks)

	// One virtual hour and a millisecond: the primary's lease (granted at
	// t=0) is past its TTL, the twin's (granted at t=1000) is not. The
	// slow worker's registration lapses with it — the sweep expires the
	// worker and orphan-expires its lease.
	clk.ms.Store(time.Hour.Milliseconds() + 1)
	s.SweepForTest()
	mid, err := s.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Expired != 1 || mid.Failed != 0 {
		t.Fatalf("after primary expiry: %+v", mid)
	}

	rep, err := s.Report(st.twin.ID, st.fast.WorkerID, api.OutcomeSuccess)
	if err != nil || !rep.Accepted || rep.Stale || rep.Cancelled {
		t.Fatalf("twin report after primary expiry: %+v (err=%v)", rep, err)
	}
	if got := s.Counters().SpeculationWins.Load(); got != 1 {
		t.Fatalf("speculation wins = %d, want 1", got)
	}

	seq := drainAll(t, s, st.fast.WorkerID)
	for _, id := range seq {
		if id == st.straggler.Task.ID {
			t.Fatalf("straggler task %d was re-dispatched after expiry with a live twin", id)
		}
	}
	fin, err := s.JobStatus(st.jobID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobCompleted || fin.Completed != tasks || fin.Dispatched != tasks+1 {
		t.Fatalf("final job status: %+v", fin)
	}
	if got := s.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d, want exactly %d", got, tasks)
	}
}
