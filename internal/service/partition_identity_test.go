package service_test

import (
	"strings"
	"testing"

	"gridsched"
	"gridsched/internal/partition"
	"gridsched/internal/service"
	"gridsched/internal/workload"
)

func partitionedConfig(dir string, index, count int) service.Config {
	cfg := durableConfig(dir)
	cfg.PartitionIndex = index
	cfg.PartitionCount = count
	return cfg
}

func smallWorkload(tasks int) *workload.Workload {
	w := &workload.Workload{Name: "part-ids", NumFiles: 16}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 16)},
		})
	}
	return w
}

// TestPartitionStridedMinting: partition i of n mints every id with
// sequence numbers ≡ i (mod n), so Owner recovers the minting partition
// from any id — the arithmetic the whole routing layer rests on.
func TestPartitionStridedMinting(t *testing.T) {
	const count = 3
	for index := 0; index < count; index++ {
		svc, err := service.New(service.Config{
			Topology:       service.Topology{Sites: 2, WorkersPerSite: 2, CapacityFiles: 64},
			NewScheduler:   gridsched.SchedulerFactory(),
			PartitionIndex: index,
			PartitionCount: count,
		})
		if err != nil {
			t.Fatal(err)
		}
		var minted []string
		for k := 0; k < 3; k++ {
			jobID, err := svc.SubmitByName("strided", "workqueue", smallWorkload(2), 0, "")
			if err != nil {
				t.Fatal(err)
			}
			minted = append(minted, jobID)
			reg, err := svc.Register(k % 2)
			if err != nil {
				t.Fatal(err)
			}
			minted = append(minted, reg.WorkerID)
			if a := pull(t, svc, reg.WorkerID); a != nil {
				minted = append(minted, a.ID)
			}
		}
		for _, id := range minted {
			owner, ok := partition.Owner(id, count)
			if !ok || owner != index {
				t.Errorf("partition %d of %d minted %q; Owner says %d (ok=%v)",
					index, count, id, owner, ok)
			}
		}
		svc.Close()
	}
}

// TestPartitionZeroOfOneMintsLegacySequence: the standalone configuration
// (partition 0 of 1, or unset) must mint the same 1,2,3… sequence as
// before partitioning existed — no id churn on upgrade.
func TestPartitionZeroOfOneMintsLegacySequence(t *testing.T) {
	svc, err := service.New(service.Config{
		Topology:     service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 64},
		NewScheduler: gridsched.SchedulerFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	jobID, err := svc.SubmitByName("legacy", "workqueue", smallWorkload(1), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if jobID != "j1" {
		t.Fatalf("first minted id %q, want j1 (legacy sequence)", jobID)
	}
}

// TestPartitionIdentityRecovery: a restart with the same identity
// continues minting on the partition's residue class; a restart with a
// different identity is refused with a migration hint.
func TestPartitionIdentityRecovery(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.New(partitionedConfig(dir, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.SubmitByName("recover", "workqueue", smallWorkload(2), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc, err = service.New(partitionedConfig(dir, 1, 2))
	if err != nil {
		t.Fatalf("same-identity restart: %v", err)
	}
	second, err := svc.SubmitByName("recover-2", "workqueue", smallWorkload(2), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	for _, id := range []string{first, second} {
		if owner, ok := partition.Owner(id, 2); !ok || owner != 1 {
			t.Fatalf("id %q not on residue 1 after restart", id)
		}
	}
	if second == first {
		t.Fatalf("restart re-minted %q", first)
	}

	// Wrong index, wrong count, and legacy (unpartitioned) configs must
	// all be refused: the data dir belongs to partition 1 of 2.
	for _, bad := range [][2]int{{0, 2}, {1, 3}, {0, 1}} {
		_, err := service.New(partitionedConfig(dir, bad[0], bad[1]))
		if err == nil || !strings.Contains(err.Error(), "migration") {
			t.Fatalf("identity %v over partition-1-of-2 data dir: err = %v, want migration refusal", bad, err)
		}
	}
}

// TestPartitionLegacyDataDirAdoptable: a pre-partitioning data dir (no
// identity in its snapshot) is readable by partition 0 of 1 only.
func TestPartitionLegacyDataDirAdoptable(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.New(durableConfig(dir)) // no partition identity
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitByName("legacy-dir", "workqueue", smallWorkload(1), 0, ""); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	if _, err := service.New(partitionedConfig(dir, 1, 2)); err == nil {
		t.Fatal("partition 1 of 2 adopted a legacy data dir")
	}
	svc, err = service.New(partitionedConfig(dir, 0, 1))
	if err != nil {
		t.Fatalf("standalone reopen of legacy dir: %v", err)
	}
	svc.Close()
}

// TestPartitionConfigValidation: out-of-range identities are rejected at
// construction.
func TestPartitionConfigValidation(t *testing.T) {
	for _, bad := range [][2]int{{2, 2}, {-1, 2}, {0, -1}} {
		cfg := service.Config{
			Topology:       service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 64},
			NewScheduler:   gridsched.SchedulerFactory(),
			PartitionIndex: bad[0],
			PartitionCount: bad[1],
		}
		if _, err := service.New(cfg); err == nil {
			t.Errorf("Config{PartitionIndex: %d, PartitionCount: %d} accepted", bad[0], bad[1])
		}
	}
}
