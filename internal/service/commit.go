// The commit stage: the funnel between the lock-striped shards and the
// single totally-ordered write-ahead log. Shards (and the dispatch
// coordinator, for order-sensitive records) enqueue marshaled records
// while holding their own locks; the stage serializes them into the WAL
// and batches whatever accumulates while a write is in flight into one
// AppendBatch — one write(2) for the whole group. The enqueue returns
// once the record is appended (process-crash durable, LSN assigned), so
// write-ahead error semantics are preserved exactly; fsync — machine-crash
// durability — stays behind Writer.WaitDurable, which callers invoke
// after releasing every service lock. No shard ever holds its lock
// across an fsync.
package service

import (
	"sync"

	"gridsched/internal/journal"
)

// commitReq is one record waiting for its batch to reach the log.
type commitReq struct {
	payload []byte
	lsn     uint64
	err     error
	done    bool
}

// commitStage batches concurrent journal appends. Leaf lock: the stage
// never acquires any other service lock.
type commitStage struct {
	w *journal.Writer

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*commitReq
	writing bool // a batch write is in flight
}

func newCommitStage(w *journal.Writer) *commitStage {
	c := &commitStage{w: w}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// append enqueues one payload and blocks until it is written to the log,
// returning its LSN. Requests that arrive while a batch write is in
// flight coalesce into the next batch; the first waiter of that batch
// becomes its writer (flat combining — no dedicated goroutine to stall
// behind). FIFO: LSN order equals enqueue order, which is what lets
// callers fix a record's WAL position by enqueueing inside the relevant
// critical section.
func (c *commitStage) append(payload []byte) (uint64, error) {
	return c.appendAll(payload)
}

// appendAll enqueues a group of payloads atomically and blocks until the
// whole group is in the log, returning the FIRST payload's LSN. Because
// the group enters the queue under one lock hold and every writer drains
// the entire queue into a single AppendBatch, the group's LSNs are
// guaranteed consecutive (first, first+1, …) and land in the log with one
// write(2) — this is what lets a batched report amortize one WAL append
// (and one fsync, via a single WaitDurable on the last LSN) across k
// outcomes while each record still gets its own totally-ordered LSN.
func (c *commitStage) appendAll(payloads ...[]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	reqs := make([]*commitReq, len(payloads))
	for i, p := range payloads {
		reqs[i] = &commitReq{payload: p}
	}
	c.mu.Lock()
	c.queue = append(c.queue, reqs...)
	// Waiting on the last request suffices for the whole group: any batch
	// that drains it necessarily drained everything enqueued before it.
	req := reqs[len(reqs)-1]
	for !req.done {
		if c.writing {
			c.cond.Wait()
			continue
		}
		// Become the writer for everything queued so far (including req).
		batch := c.queue
		c.queue = nil
		c.writing = true
		c.mu.Unlock()

		payloads := make([][]byte, len(batch))
		for i, r := range batch {
			payloads[i] = r.payload
		}
		first, err := c.w.AppendBatch(payloads)

		c.mu.Lock()
		for i, r := range batch {
			if err == nil {
				r.lsn = first + uint64(i)
			}
			r.err = err
			r.done = true
		}
		c.writing = false
		c.cond.Broadcast()
	}
	lsn, err := reqs[0].lsn, reqs[0].err
	c.mu.Unlock()
	return lsn, err
}
