// The commit stage: the funnel between the lock-striped shards and the
// single totally-ordered write-ahead log. Shards (and the dispatch
// coordinator, for order-sensitive records) enqueue marshaled records
// while holding their own locks; the stage serializes them into the WAL
// and batches whatever accumulates while a write is in flight into one
// AppendBatch — one write(2) for the whole group. The enqueue returns
// once the record is appended (process-crash durable, LSN assigned), so
// write-ahead error semantics are preserved exactly; fsync — machine-crash
// durability — stays behind Writer.WaitDurable, which callers invoke
// after releasing every service lock. No shard ever holds its lock
// across an fsync.
package service

import (
	"sync"

	"gridsched/internal/journal"
)

// commitReq is one record waiting for its batch to reach the log.
type commitReq struct {
	payload []byte
	lsn     uint64
	err     error
	done    bool
}

// commitStage batches concurrent journal appends. Leaf lock: the stage
// never acquires any other service lock.
type commitStage struct {
	w *journal.Writer

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*commitReq
	writing bool // a batch write is in flight
}

func newCommitStage(w *journal.Writer) *commitStage {
	c := &commitStage{w: w}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// append enqueues one payload and blocks until it is written to the log,
// returning its LSN. Requests that arrive while a batch write is in
// flight coalesce into the next batch; the first waiter of that batch
// becomes its writer (flat combining — no dedicated goroutine to stall
// behind). FIFO: LSN order equals enqueue order, which is what lets
// callers fix a record's WAL position by enqueueing inside the relevant
// critical section.
func (c *commitStage) append(payload []byte) (uint64, error) {
	req := &commitReq{payload: payload}
	c.mu.Lock()
	c.queue = append(c.queue, req)
	for !req.done {
		if c.writing {
			c.cond.Wait()
			continue
		}
		// Become the writer for everything queued so far (including req).
		batch := c.queue
		c.queue = nil
		c.writing = true
		c.mu.Unlock()

		payloads := make([][]byte, len(batch))
		for i, r := range batch {
			payloads[i] = r.payload
		}
		first, err := c.w.AppendBatch(payloads)

		c.mu.Lock()
		for i, r := range batch {
			if err == nil {
				r.lsn = first + uint64(i)
			}
			r.err = err
			r.done = true
		}
		c.writing = false
		c.cond.Broadcast()
	}
	lsn, err := req.lsn, req.err
	c.mu.Unlock()
	return lsn, err
}
