package service_test

import (
	"errors"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// never parks a pull long enough to matter in tests.
const noWait = 0

// syntheticWorkload builds tasks tasks of filesPer files each, with enough
// sharing (file ids wrap) to exercise the data-aware schedulers.
func syntheticWorkload(tasks, filesPer int) *workload.Workload {
	numFiles := tasks*filesPer/2 + filesPer
	w := &workload.Workload{Name: "synthetic", NumFiles: numFiles}
	for i := 0; i < tasks; i++ {
		t := workload.Task{ID: workload.TaskID(i)}
		for f := 0; f < filesPer; f++ {
			t.Files = append(t.Files, workload.FileID((i*filesPer/2+f)%numFiles))
		}
		w.Tasks = append(w.Tasks, t)
	}
	return w
}

func newService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	if cfg.Sites == 0 {
		cfg.Sites = 2
	}
	if cfg.WorkersPerSite == 0 {
		cfg.WorkersPerSite = 2
	}
	if cfg.CapacityFiles == 0 {
		cfg.CapacityFiles = 100
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func submitWorkqueue(t *testing.T, s *service.Service, w *workload.Workload) string {
	t.Helper()
	id, err := s.Submit("test", "workqueue", w, core.NewWorkqueue(w))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func register(t *testing.T, s *service.Service, site int) *api.RegisterResponse {
	t.Helper()
	reg, err := s.Register(site)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func never(t *testing.T) <-chan struct{} {
	t.Helper()
	return make(chan struct{})
}

func TestPullReportDrivesJobToCompletion(t *testing.T) {
	s := newService(t, service.Config{})
	w := syntheticWorkload(20, 3)
	jobID := submitWorkqueue(t, s, w)
	reg := register(t, s, -1)

	for i := 0; i < len(w.Tasks); i++ {
		resp, err := s.Pull(never(t), reg.WorkerID, noWait)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			t.Fatalf("pull %d: status %q", i, resp.Status)
		}
		rep, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted || rep.Stale {
			t.Fatalf("report %d rejected: %+v", i, rep)
		}
	}
	st, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Completed != 20 || st.Remaining != 0 {
		t.Fatalf("job after drain: %+v", st)
	}
	if st.Dispatched != 20 {
		t.Fatalf("dispatched %d, want 20 (no retries, no replicas)", st.Dispatched)
	}
	if st.Transfers == 0 {
		t.Fatal("no file transfers recorded despite staging")
	}
	if got := s.Counters().Completions.Load(); got != 20 {
		t.Fatalf("completions counter = %d", got)
	}
}

func TestMultipleJobsResident(t *testing.T) {
	s := newService(t, service.Config{})
	wa, wb := syntheticWorkload(8, 2), syntheticWorkload(6, 2)
	jobA := submitWorkqueue(t, s, wa)
	jobB, err := s.Submit("b", "rest", wb, mustWC(t, wb))
	if err != nil {
		t.Fatal(err)
	}
	reg := register(t, s, -1)
	for i := 0; i < 14; i++ {
		resp, err := s.Pull(never(t), reg.WorkerID, noWait)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusAssigned {
			t.Fatalf("pull %d: status %q", i, resp.Status)
		}
		if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{jobA, jobB} {
		st, err := s.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != api.JobCompleted {
			t.Fatalf("job %s not completed: %+v", id, st)
		}
	}
	if open := s.Counters().OpenJobs.Load(); open != 0 {
		t.Fatalf("open jobs gauge = %d", open)
	}
}

func mustWC(t *testing.T, w *workload.Workload) core.Scheduler {
	t.Helper()
	s, err := core.NewWorkerCentric(w, core.WorkerCentricConfig{Metric: core.MetricRest, ChooseN: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLeaseExpiryRequeuesAndRejectsStaleReport(t *testing.T) {
	s := newService(t, service.Config{
		LeaseTTL:      60 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	w := syntheticWorkload(1, 2)
	jobID := submitWorkqueue(t, s, w)

	// Worker 1 takes the task and goes silent (no heartbeat, no report).
	dead := register(t, s, 0)
	resp, err := s.Pull(never(t), dead.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != api.StatusAssigned {
		t.Fatalf("status %q", resp.Status)
	}
	deadAssignment := resp.Assignment.ID

	// Worker 2 long-polls; the expired lease must hand it the same task.
	live := register(t, s, 1)
	resp2, err := s.Pull(never(t), live.WorkerID, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != api.StatusAssigned {
		t.Fatalf("re-dispatch: status %q", resp2.Status)
	}
	if resp2.Assignment.Task.ID != resp.Assignment.Task.ID {
		t.Fatalf("re-dispatched task %d, want %d", resp2.Assignment.Task.ID, resp.Assignment.Task.ID)
	}
	if rep, err := s.Report(resp2.Assignment.ID, live.WorkerID, api.OutcomeSuccess); err != nil || !rep.Accepted {
		t.Fatalf("live report: %+v, %v", rep, err)
	}

	// The dead worker comes back: its report must be rejected as stale.
	rep, err := s.Report(deadAssignment, dead.WorkerID, api.OutcomeSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.Stale {
		t.Fatalf("stale report accepted: %+v", rep)
	}

	st, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.State != api.JobCompleted {
		t.Fatalf("duplicate or missing completion: %+v", st)
	}
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if st.Dispatched != 2 {
		t.Fatalf("dispatched = %d, want 2", st.Dispatched)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	s := newService(t, service.Config{
		LeaseTTL:      80 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	jobID := submitWorkqueue(t, s, syntheticWorkload(1, 2))
	reg := register(t, s, -1)
	resp, err := s.Pull(never(t), reg.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	// Outlive several TTLs on heartbeats alone.
	for i := 0; i < 12; i++ {
		time.Sleep(25 * time.Millisecond)
		hb, err := s.Heartbeat(resp.Assignment.ID, reg.WorkerID)
		if err != nil {
			t.Fatal(err)
		}
		if hb.State != api.HeartbeatActive {
			t.Fatalf("heartbeat %d: state %q", i, hb.State)
		}
	}
	if rep, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil || !rep.Accepted {
		t.Fatalf("report after heartbeats: %+v, %v", rep, err)
	}
	st, _ := s.JobStatus(jobID)
	if st.Expired != 0 || st.Completed != 1 {
		t.Fatalf("lease expired despite heartbeats: %+v", st)
	}
}

func TestFailureReportRequeues(t *testing.T) {
	s := newService(t, service.Config{})
	jobID := submitWorkqueue(t, s, syntheticWorkload(1, 2))
	reg := register(t, s, -1)

	resp, err := s.Pull(never(t), reg.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeFailure); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Pull(never(t), reg.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != api.StatusAssigned {
		t.Fatalf("after failure: status %q", resp.Status)
	}
	if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	st, _ := s.JobStatus(jobID)
	if st.State != api.JobCompleted || st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("retry path: %+v", st)
	}
}

func TestWorkerSlotsExhaustAndRecycle(t *testing.T) {
	s := newService(t, service.Config{Topology: service.Topology{Sites: 1, WorkersPerSite: 2, CapacityFiles: 10}})
	a := register(t, s, 0)
	register(t, s, 0)
	if _, err := s.Register(0); err == nil {
		t.Fatal("third worker accepted into 2 slots")
	}
	if err := s.Deregister(a.WorkerID); err != nil {
		t.Fatal(err)
	}
	c := register(t, s, 0)
	if c.Worker != a.Worker {
		t.Fatalf("recycled slot %d, want %d", c.Worker, a.Worker)
	}
	if _, err := s.Register(7); err == nil {
		t.Fatal("accepted out-of-range site")
	}
}

func TestDeregisterRequeuesOutstandingAssignment(t *testing.T) {
	s := newService(t, service.Config{})
	jobID := submitWorkqueue(t, s, syntheticWorkload(1, 2))
	reg := register(t, s, -1)
	if _, err := s.Pull(never(t), reg.WorkerID, noWait); err != nil {
		t.Fatal(err)
	}
	if err := s.Deregister(reg.WorkerID); err != nil {
		t.Fatal(err)
	}
	reg2 := register(t, s, -1)
	resp, err := s.Pull(never(t), reg2.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != api.StatusAssigned {
		t.Fatalf("after deregister: status %q", resp.Status)
	}
	if _, err := s.Report(resp.Assignment.ID, reg2.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	st, _ := s.JobStatus(jobID)
	if st.State != api.JobCompleted {
		t.Fatalf("job not completed: %+v", st)
	}
}

func TestLongPollWakesOnSubmission(t *testing.T) {
	s := newService(t, service.Config{})
	reg := register(t, s, -1)
	type result struct {
		resp *api.PullResponse
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := s.Pull(never(t), reg.WorkerID, 5*time.Second)
		got <- result{resp, err}
	}()
	time.Sleep(30 * time.Millisecond) // let the poll park
	start := time.Now()
	submitWorkqueue(t, s, syntheticWorkload(1, 2))
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.resp.Status != api.StatusAssigned {
			t.Fatalf("status %q", r.resp.Status)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("parked poll took %v to wake after submission", waited)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("parked poll never woke on job submission")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newService(t, service.Config{Topology: service.Topology{Sites: 1, WorkersPerSite: 1, CapacityFiles: 2}})
	big := syntheticWorkload(2, 4) // 4 files per task > capacity 2
	if _, err := s.Submit("big", "workqueue", big, core.NewWorkqueue(big)); err == nil {
		t.Fatal("accepted workload larger than store capacity")
	}
	if _, err := s.Submit("nil", "workqueue", nil, nil); err == nil {
		t.Fatal("accepted nil workload")
	}
	var se *service.Error
	_, err := s.JobStatus("nope")
	if !errors.As(err, &se) {
		t.Fatalf("JobStatus error %T, want *service.Error", err)
	}
}

func TestUnknownWorkerAndOutcome(t *testing.T) {
	s := newService(t, service.Config{})
	if _, err := s.Pull(never(t), "w999", noWait); err == nil {
		t.Fatal("pull for unknown worker accepted")
	}
	submitWorkqueue(t, s, syntheticWorkload(1, 2))
	reg := register(t, s, -1)
	resp, err := s.Pull(never(t), reg.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, "shrug"); err == nil {
		t.Fatal("accepted unknown outcome")
	}
	// Pull while holding an assignment is a protocol violation.
	if _, err := s.Pull(never(t), reg.WorkerID, noWait); err == nil {
		t.Fatal("double pull accepted")
	}
}

func TestReplicaCancellationPropagates(t *testing.T) {
	// Storage affinity with replicas: two workers run the same task; the
	// first success marks the other execution cancelled, its heartbeat
	// says so, and its report counts as cancelled, not completed.
	w := &workload.Workload{
		Name:     "single",
		NumFiles: 2,
		Tasks:    []workload.Task{{ID: 0, Files: []workload.FileID{0, 1}}},
	}
	s := newService(t, service.Config{Topology: service.Topology{Sites: 2, WorkersPerSite: 1, CapacityFiles: 10}})
	sa, err := core.NewStorageAffinity(w, core.StorageAffinityConfig{
		Sites: 2, WorkersPerSite: 1, CapacityFiles: 10, MaxReplicas: 2, Policy: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := s.Submit("replicas", "storage-affinity", w, sa)
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := register(t, s, 0), register(t, s, 1)
	r0, err := s.Pull(never(t), w0.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Pull(never(t), w1.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Status != api.StatusAssigned || r1.Status != api.StatusAssigned {
		t.Fatalf("both workers should run the single task: %q %q", r0.Status, r1.Status)
	}
	if r0.Assignment.Task.ID != r1.Assignment.Task.ID {
		t.Fatal("workers got different tasks from a one-task workload")
	}
	if rep, err := s.Report(r0.Assignment.ID, w0.WorkerID, api.OutcomeSuccess); err != nil || !rep.Accepted {
		t.Fatalf("first completion: %+v, %v", rep, err)
	}
	hb, err := s.Heartbeat(r1.Assignment.ID, w1.WorkerID)
	if err != nil {
		t.Fatal(err)
	}
	if hb.State != api.HeartbeatCancelled {
		t.Fatalf("replica heartbeat state %q, want cancelled", hb.State)
	}
	rep, err := s.Report(r1.Assignment.ID, w1.WorkerID, api.OutcomeFailure)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || !rep.Cancelled {
		t.Fatalf("replica report: %+v", rep)
	}
	st, _ := s.JobStatus(jobID)
	if st.Completed != 1 || st.Cancelled != 1 || st.State != api.JobCompleted {
		t.Fatalf("replica accounting: %+v", st)
	}
}

func TestDeleteJobRetention(t *testing.T) {
	s := newService(t, service.Config{})
	jobID := submitWorkqueue(t, s, syntheticWorkload(1, 2))
	if err := s.DeleteJob(jobID); err == nil {
		t.Fatal("deleted a running job")
	}
	reg := register(t, s, -1)
	resp, err := s.Pull(never(t), reg.WorkerID, noWait)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(resp.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatal(err)
	}
	// Completed: the status summary survives (heavy state is released)...
	st, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Tasks != 1 || st.Completed != 1 || st.Remaining != 0 {
		t.Fatalf("completed summary: %+v", st)
	}
	// ...and the record can now be dropped.
	if err := s.DeleteJob(jobID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.JobStatus(jobID); err == nil {
		t.Fatal("deleted job still readable")
	}
	if err := s.DeleteJob(jobID); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestClosedServiceRefuses(t *testing.T) {
	s := newService(t, service.Config{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Register(-1); err == nil {
		t.Fatal("register on closed service accepted")
	}
	w := syntheticWorkload(1, 1)
	if _, err := s.Submit("late", "workqueue", w, core.NewWorkqueue(w)); err == nil {
		t.Fatal("submit on closed service accepted")
	}
}
