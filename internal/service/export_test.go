package service

// CrashForTest kills the service the way SIGKILL would: the sweeper stops,
// parked long polls fail, and the journal's file descriptor is closed with
// no final sync and no shutdown snapshot. Everything the journal already
// wrote stays readable (it reached the page cache before any mutation was
// acknowledged), which is exactly the state a kill -9 leaves on disk.
// Crash-recovery tests reopen the data dir with New afterwards.
func (s *Service) CrashForTest() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.sweepStop)
	s.hub.broadcast()
	<-s.sweepDone
	if s.pst != nil {
		s.pst.w.Abandon()
	}
}

// SnapshotForTest forces a snapshot+rotation, so tests can pin down which
// state came from the snapshot and which from the journal tail.
func (s *Service) SnapshotForTest() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapshot()
}

// SweepForTest runs one sweep at the service's current clock. The policy
// harness drives a fake clock and calls this instead of waiting out the
// wall-clock sweep cadence, which keeps straggler detection and deadline
// urgency deterministic.
func (s *Service) SweepForTest() {
	s.sweep(s.now())
}
