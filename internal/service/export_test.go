package service

// CrashForTest kills the service the way SIGKILL would: the sweeper stops,
// parked long polls fail, and the journal's file descriptor is closed with
// no final sync and no shutdown snapshot. Everything the journal already
// wrote stays readable (it reached the page cache before any mutation was
// acknowledged), which is exactly the state a kill -9 leaves on disk.
// Crash-recovery tests reopen the data dir with New afterwards.
func (s *Service) CrashForTest() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.sweepStop)
	s.broadcastLocked()
	s.mu.Unlock()
	<-s.sweepDone
	if s.pst != nil {
		s.pst.w.Abandon()
	}
}

// SnapshotForTest forces a snapshot+rotation, so tests can pin down which
// state came from the snapshot and which from the journal tail.
func (s *Service) SnapshotForTest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}
