package service

import (
	"encoding/json"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// Persistence layout inside Config.DataDir.
const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.json"
)

// Journal record ops. The write-ahead log records every externally visible
// mutation — job submission, task dispatch, execution report, lease
// expiry, job deletion — before it is acknowledged; everything else
// (worker registration, lease renewals, long polls) is ephemeral and is
// reconstructed as re-registration after a restart.
const (
	opSubmit   = "submit"
	opDispatch = "dispatch"
	opReport   = "report"
	opExpire   = "expire"
	opDelete   = "delete"
	// opQuota records a per-tenant in-flight quota override (PUT
	// /v1/tenants/{tenant}); quotas gate live dispatch, so they must
	// survive restarts like every other externally visible setting.
	opQuota = "quota"
)

// record is the JSON payload of one journal frame.
type record struct {
	Op string `json:"op"`
	Ts int64  `json:"ts"` // unix milliseconds, for operators and recovered timestamps

	Job string `json:"job,omitempty"`

	// opSubmit
	Name       string             `json:"name,omitempty"`
	Algorithm  string             `json:"algorithm,omitempty"`
	Seed       int64              `json:"seed,omitempty"`
	Submission string             `json:"submission,omitempty"`
	Workload   *workload.Workload `json:"workload,omitempty"`
	// Tenant rides on opSubmit (the job's tenant, resolved) and opQuota
	// (the tenant being configured). Weight is the job's resolved
	// fair-share weight — journaled resolved so replay cannot be skewed by
	// a changed server default; absent (0) in pre-fair-share journals and
	// re-resolved against the default at replay. Quota is opQuota's new
	// in-flight cap (0: revert to the server default).
	Tenant string `json:"tenant,omitempty"`
	Weight int    `json:"weight,omitempty"`
	Quota  int    `json:"quota,omitempty"`

	// Context-aware scheduling (opSubmit): required worker tags and the
	// soft deadline (unix millis, 0 = none). Journaled with the submit so
	// a recovered job enforces the same constraints.
	Requires []string `json:"requires,omitempty"`
	Deadline int64    `json:"deadline,omitempty"`

	// opDispatch / opReport / opExpire
	Task       workload.TaskID `json:"task,omitempty"`
	Site       int             `json:"site,omitempty"`
	Worker     int             `json:"worker,omitempty"`
	Assignment string          `json:"assignment,omitempty"` // opDispatch: minted id, for seq recovery and debugging
	Outcome    string          `json:"outcome,omitempty"`    // opReport
	// Spec marks an opDispatch as a speculative twin grant: replayed
	// without a scheduler NextFor and without a fair charge, exactly as
	// it was granted (see trySpeculateLocked / replayEvent).
	Spec bool `json:"spec,omitempty"`
}

// Ledger ops: the per-job replay history, a compact projection of the
// job's journal records. Replaying a ledger through the job's freshly
// rebuilt scheduler reproduces its dispatch state exactly (see recovery.go).
const (
	ledgerDispatch = uint8(iota)
	ledgerSuccess
	ledgerFailure
	ledgerExpire
	// ledgerSpecDispatch is a speculative twin grant: the task was
	// re-leased alongside a live primary without consulting the
	// scheduler. Replay restages the batch and NoteBatches it, but issues
	// no ReplayAssign.
	ledgerSpecDispatch
)

// ledgerRec is one replayable scheduler-affecting event.
type ledgerRec struct {
	Op     uint8           `json:"op"`
	Task   workload.TaskID `json:"t"`
	Site   int32           `json:"s"`
	Worker int32           `json:"w"`
	Ts     int64           `json:"ms,omitempty"` // unix milliseconds
}

// carryCounters preserves the monotone totals of deleted jobs across
// snapshots, so the global /metrics counters stay exact over restarts.
type carryCounters struct {
	Jobs          int64 `json:"jobs"`
	CompletedJobs int64 `json:"completedJobs"`
	Dispatched    int64 `json:"dispatched"`
	Completions   int64 `json:"completions"`
	Failures      int64 `json:"failures"`
	Cancellations int64 `json:"cancellations"`
	Expired       int64 `json:"expired"`
	Speculated    int64 `json:"speculated,omitempty"`
}

// snapshot is the atomically-replaced checkpoint: everything the service
// needs so that log records at or below LastLSN can be discarded.
// Completed jobs shrink to their status summary; running jobs carry their
// workload and replay ledger. Scheduler internals (weight-class indexes,
// RNG state) are deliberately NOT serialized — they are reconstructed by
// replaying the ledger through a freshly built scheduler, which reproduces
// the exact state (including pending random draws) of the crashed process.
type snapshot struct {
	Version int   `json:"version"`
	Seq     int64 `json:"seq"`
	// Partition identity the data dir was written under (see
	// Config.PartitionIndex). Count 0 marks a pre-partitioning snapshot,
	// which recovers only as the standalone identity 0 of 1 — the only
	// identity such a dir can have minted ids for.
	PartitionIndex int           `json:"partitionIndex,omitempty"`
	PartitionCount int           `json:"partitionCount,omitempty"`
	LastLSN        uint64        `json:"lastLsn"`
	Carry          carryCounters `json:"carry"`
	// VTime is the fair-share arbiter's virtual time floor and Tenants its
	// per-tenant durable state; journal tail records re-apply charges on
	// top (see recovery.go). Both absent in pre-fair-share snapshots,
	// which recover with all tags zero — submission order, the old
	// behavior.
	VTime   uint64       `json:"vtime,omitempty"`
	Tenants []snapTenant `json:"tenants,omitempty"` // sorted by name
	Jobs    []snapJob    `json:"jobs"`              // submission order
	// Workers is the per-slot telemetry (duration/failure EWMAs); journal
	// tail records fold on top in LSN order. Sorted by (site, worker).
	// Absent in pre-context snapshots, which recover with cold telemetry.
	Workers []snapWorker `json:"workers,omitempty"`
}

// snapWorker is one worker slot's accumulated telemetry in a snapshot.
// Fixed-point accumulators are serialized raw so restore is bit-exact.
type snapWorker struct {
	Site     int   `json:"site"`
	Worker   int   `json:"worker"`
	DurEwma  int64 `json:"durEwma,omitempty"`
	FailEwma int64 `json:"failEwma,omitempty"`
	Samples  int64 `json:"samples,omitempty"`
	Events   int64 `json:"events"`
}

// snapTenant is one tenant's durable state in a snapshot: its quota
// override and its exact cumulative dispatch total (in-flight counts and
// share windows are liveness state and restart empty).
type snapTenant struct {
	Name       string `json:"name"`
	Quota      int    `json:"quota,omitempty"`
	Dispatches int64  `json:"dispatches,omitempty"`
}

const snapshotVersion = 1

// snapJob is one resident job in a snapshot.
type snapJob struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Algorithm  string `json:"algorithm"`
	Seed       int64  `json:"seed"`
	Submission string `json:"submission,omitempty"`
	State      string `json:"state"`
	Tasks      int    `json:"tasks"`
	Submitted  int64  `json:"submittedMs"`
	Finished   int64  `json:"finishedMs,omitempty"`
	// Fair-share state: resolved tenant and weight, plus (running jobs
	// only) the arbiter's virtual finish tag, restored exactly so the
	// post-recovery dispatch order matches an uninterrupted run.
	Tenant string `json:"tenant,omitempty"`
	Weight int    `json:"weight,omitempty"`
	Fair   uint64 `json:"fair,omitempty"`

	// Context-aware scheduling: the job's required worker tags and soft
	// deadline (unix millis, 0 = none), restored verbatim.
	Requires []string `json:"requires,omitempty"`
	Deadline int64    `json:"deadline,omitempty"`

	// Running jobs: replay inputs.
	Workload *workload.Workload `json:"workload,omitempty"`
	Ledger   []ledgerRec        `json:"ledger,omitempty"`

	// Completed jobs: the surviving summary.
	Dispatched int   `json:"dispatched,omitempty"`
	Completed  int   `json:"completed,omitempty"`
	Failed     int   `json:"failed,omitempty"`
	Cancelled  int   `json:"cancelled,omitempty"`
	Expired    int   `json:"expired,omitempty"`
	Speculated int   `json:"speculated,omitempty"`
	Transfers  int64 `json:"transfers,omitempty"`
}

// persistence is the journaling state of a Service with Config.DataDir
// set. carry is guarded by the coordinator mutex; sinceSnapshot is
// atomic; stage serializes appends (commit.go).
type persistence struct {
	dir            string
	w              *journal.Writer
	stage          *commitStage
	journalMetrics *journal.Metrics
	carry          carryCounters
	sinceSnapshot  atomic.Int64 // records appended since the last snapshot
}

// refreshJournalMetrics copies the log writer's counters into the service
// counters rendered at /metrics.
func (s *Service) refreshJournalMetrics() {
	if s.pst == nil || s.pst.journalMetrics == nil {
		return
	}
	m := s.pst.journalMetrics
	s.counters.JournalRecords.Store(m.Records.Load())
	s.counters.JournalBytes.Store(m.Bytes.Load())
	s.counters.JournalFsyncs.Store(m.Fsyncs.Load())
}

func (s *Service) walPath() string      { return filepath.Join(s.pst.dir, walFile) }
func (s *Service) snapshotPath() string { return filepath.Join(s.pst.dir, snapshotFile) }

// appendRecord journals rec through the commit stage. Callers hold the
// lock that owns rec's state change (the job's shard, or the coordinator
// for records whose WAL position must match arbiter order); the returned
// LSN is what waitDurable (outside every lock) keys on. An error leaves
// service state untouched, so callers that can abort cleanly (submit,
// report, delete) surface it to the client. The append-then-apply pair
// always sits inside one critical section of a lock the snapshot path
// acquires, so a snapshot can never claim (via LastLSN) to cover a record
// whose effect it does not contain.
func (s *Service) appendRecord(rec *record) (uint64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, errf(500, "service: journal encode: %v", err)
	}
	lsn, err := s.pst.stage.append(payload)
	if err != nil {
		return 0, errf(503, "service: journal append: %v", err)
	}
	s.pst.sinceSnapshot.Add(1)
	return lsn, nil
}

// appendRecords journals a group of records as one contiguous WAL append
// (consecutive LSNs, one write(2) — see commitStage.appendAll), returning
// the first LSN. All-or-nothing: on error nothing was appended, so the
// caller may abort without applying any of the group. Like appendRecord,
// call while holding the lock that owns the records' WAL order.
func (s *Service) appendRecords(recs []*record) (uint64, error) {
	payloads := make([][]byte, len(recs))
	for i, rec := range recs {
		p, err := json.Marshal(rec)
		if err != nil {
			return 0, errf(500, "service: journal encode: %v", err)
		}
		payloads[i] = p
	}
	first, err := s.pst.stage.appendAll(payloads...)
	if err != nil {
		return 0, errf(503, "service: journal append: %v", err)
	}
	s.pst.sinceSnapshot.Add(int64(len(recs)))
	return first, nil
}

// mustAppend journals rec on a path that cannot abort (the state change
// already happened, or must happen — dispatch after NextFor, lease expiry
// past its deadline). A journal failure there is fail-stop: better to
// crash and recover from the last durable state than to let memory and
// log diverge. The one tolerated error is the closed writer — the
// shutdown path stops journaling before in-flight requests drain, and
// recovery re-derives whatever the lost records described (all open
// leases expire at startup).
func (s *Service) mustAppend(rec *record) uint64 {
	lsn, err := s.appendRecord(rec)
	if err != nil {
		if s.closed.Load() {
			return 0
		}
		panicf("service: write-ahead journal failed: %v", err)
	}
	return lsn
}

// waitDurable blocks until the record at lsn is durable per the configured
// fsync mode. Call without holding any service lock.
func (s *Service) waitDurable(lsn uint64) error {
	if s.pst == nil || lsn == 0 {
		return nil
	}
	if err := s.pst.w.WaitDurable(lsn); err != nil {
		return errf(503, "service: journal sync: %v", err)
	}
	return nil
}

// snapshotIfDue snapshots once enough records accumulated. Callers must
// hold no service lock: the snapshot is stop-the-world (lockAll).
func (s *Service) snapshotIfDue() {
	if s.pst == nil || s.pst.sinceSnapshot.Load() < int64(s.cfg.SnapshotEvery) {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.pst.sinceSnapshot.Load() < int64(s.cfg.SnapshotEvery) {
		return // another request snapshotted while we waited
	}
	if err := s.snapshot(); err != nil {
		log.Printf("gridschedd: snapshot failed (journal keeps growing): %v", err)
		// Back off a full interval before retrying.
		s.pst.sinceSnapshot.Store(0)
	}
}

// snapshot serializes the full service state and rotates the log.
// Stop-the-world under every shard plus the coordinator (lockAll): for
// the workload sizes gridschedd serves this is milliseconds, and it runs
// only every SnapshotEvery records. With all stripes held no append can
// be in flight, so LastLSN names a frozen log position whose every
// record's effect the snapshot contains. Callers hold snapMu.
func (s *Service) snapshot() error {
	pauseStart := time.Now()
	s.lockAll()
	snap := snapshot{
		Version:        snapshotVersion,
		Seq:            s.seq.Load(),
		PartitionIndex: s.cfg.PartitionIndex,
		PartitionCount: s.cfg.PartitionCount,
		LastLSN:        s.pst.w.LastLSN(),
		Carry:          s.pst.carry,
		VTime:          s.coord.vtime,
	}
	tenantNames := make([]string, 0, len(s.coord.tenants))
	for name := range s.coord.tenants {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)
	for _, name := range tenantNames {
		t := s.coord.tenants[name]
		if t.quota == 0 && t.dispatches == 0 {
			continue // nothing durable to say about this tenant
		}
		snap.Tenants = append(snap.Tenants, snapTenant{
			Name: name, Quota: t.quota, Dispatches: t.dispatches,
		})
	}
	var jobs []*job
	for _, sh := range s.shards {
		for _, j := range sh.jobs {
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq }) // submission order
	for _, j := range jobs {
		sj := snapJob{
			ID:         j.id,
			Name:       j.name,
			Algorithm:  j.algorithm,
			Seed:       j.seed,
			Submission: j.submissionID,
			State:      j.state,
			Tasks:      j.tasks,
			Submitted:  j.submitted.UnixMilli(),
			Tenant:     j.tenant,
			Weight:     j.weight,
			Requires:   j.requires,
			Deadline:   j.deadlineMs,
		}
		if !j.finished.IsZero() {
			sj.Finished = j.finished.UnixMilli()
		}
		if j.state == api.JobCompleted {
			sj.Dispatched, sj.Completed, sj.Failed = j.dispatched, j.completed, j.failed
			sj.Cancelled, sj.Expired, sj.Transfers = j.cancelled, j.expired, j.transfers
			sj.Speculated = j.speculated
		} else {
			// Running jobs re-derive speculated (and the rest of the
			// counters' replayable parts) from the ledger.
			sj.Workload = j.w
			sj.Ledger = j.ledger
			sj.Fair = j.fair
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	snap.Workers = s.tel.snapshotWorkers()
	// The locks stay held through the file replacement AND the rotation:
	// Rotate truncates the whole log, so an append landing between the
	// LastLSN capture and the truncation would be destroyed without being
	// represented in the snapshot. With every stripe held no such append
	// can exist. The full lockAll→unlockAll span is the stop-the-world
	// pause every in-flight request rides out; record it so the pause is
	// visible in /metrics rather than only as tail latency.
	defer func() {
		s.unlockAll()
		s.counters.ObserveSnapshotPause(time.Since(pauseStart).Nanoseconds())
	}()
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	if err := journal.WriteFileAtomic(s.snapshotPath(), data); err != nil {
		return err
	}
	if err := s.pst.w.Rotate(); err != nil {
		return err
	}
	s.pst.sinceSnapshot.Store(0)
	s.counters.Snapshots.Add(1)
	s.counters.SnapshotBytes.Store(int64(len(data)))
	return nil
}

// replayAssignSched drives sched into the post-dispatch state for (id, at):
// through ReplayAssign where the scheduler provides one, otherwise by
// re-asking NextFor and verifying the decision — exact for the worker-
// centric schedulers, whose NextFor mutates state (including the
// ChooseTask(n) RNG) only when it assigns. A mismatch means the journal
// and the scheduler disagree, which recovery treats as corruption.
func replayAssignSched(sched core.Scheduler, id workload.TaskID, at core.WorkerRef) error {
	if r, ok := sched.(core.Replayer); ok {
		return r.ReplayAssign(id, at)
	}
	task, status := sched.NextFor(at)
	if status != core.Assigned {
		return fmt.Errorf("replay: scheduler returned %v for task %d at %+v", status, id, at)
	}
	if task.ID != id {
		return fmt.Errorf("replay: scheduler assigned task %d, journal says %d (at %+v)", task.ID, id, at)
	}
	return nil
}
