package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"gridsched/internal/metrics"
	"gridsched/internal/middleware"
	"gridsched/internal/service/api"
)

// maxBodyBytes bounds request bodies; workloads dominate (a 100k-task
// trace is ~10MB of JSON).
const maxBodyBytes = 64 << 20

// Handler returns the service's HTTP/JSON surface (see internal/service/api
// for the route table and wire types).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleTenantQuota)
	mux.HandleFunc("POST /v1/workers", s.handleRegister)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.HandleFunc("DELETE /v1/workers/{id}", s.handleDeregister)
	mux.HandleFunc("POST /v1/workers/{id}/pull", s.handlePull)
	mux.HandleFunc("GET /v1/workers/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/workers/{id}/reports", s.handleReportBatch)
	mux.HandleFunc("POST /v1/assignments/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/assignments/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/replication/stream", s.handleReplicationStream)
	mux.HandleFunc("GET /v1/partitions", s.handlePartitions)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if errors.As(err, &se) {
		writeJSON(w, se.Code, api.ErrorResponse{Error: se.Msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, api.ErrorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return false
	}
	return true
}

// readBody decodes the request body with whichever codec its Content-Type
// names: the compact binary codec under api.ContentTypeBinary, JSON for
// everything else (including an absent header). The hot-path handlers use
// this; cold endpoints stay readJSON-only.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if !api.IsBinary(r.Header.Get("Content-Type")) {
		return readJSON(w, r, v)
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = api.Binary.Unmarshal(data, v)
	}
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad request body: %v", err))
		return false
	}
	return true
}

// writeReply answers with the binary codec when the request's Accept
// header asked for it and the payload has a binary encoding; JSON
// otherwise. Errors never go through here — writeError keeps them JSON so
// a failure is always human-readable.
func writeReply(w http.ResponseWriter, r *http.Request, code int, v any) {
	if api.AcceptsBinary(r.Header.Get("Accept")) && api.Binary.Supports(v) {
		if b, err := api.Binary.Marshal(v); err == nil {
			w.Header().Set("Content-Type", api.ContentTypeBinary)
			w.WriteHeader(code)
			_, _ = w.Write(b)
			return
		}
	}
	writeJSON(w, code, v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitJobRequest
	if !readBody(w, r, &req) {
		return
	}
	// When the ingress chain authenticated the caller, the submission is
	// bound to the token's tenant: a non-admin token may not submit on
	// another tenant's behalf. Unauthenticated deployments (no chain, or
	// no -auth-tokens) keep the historical request-names-the-tenant
	// behavior.
	if p, ok := middleware.PrincipalFrom(r.Context()); ok && !p.Admin {
		if req.Tenant != "" && req.Tenant != p.Tenant {
			writeError(w, errf(http.StatusForbidden,
				"token for tenant %q cannot submit as tenant %q", p.Tenant, req.Tenant))
			return
		}
		req.Tenant = p.Tenant
	}
	id, err := s.SubmitJob(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusCreated, api.SubmitJobResponse{JobID: id})
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Tenants())
}

func (s *Service) handleTenantQuota(w http.ResponseWriter, r *http.Request) {
	var req api.TenantQuotaRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := s.SetTenantQuota(r.PathValue("tenant"), req.MaxInFlight)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.JobStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Deletion is tenant-scoped: a non-admin token may delete only its own
	// tenant's jobs (job tenants are immutable, so the check cannot race
	// the delete). Reads stay cluster-visible by design — see the
	// visibility model in docs/INGRESS.md.
	if p, ok := middleware.PrincipalFrom(r.Context()); ok && !p.Admin {
		st, err := s.JobStatus(id)
		if err != nil {
			writeError(w, err)
			return
		}
		if st.Tenant != p.Tenant {
			writeError(w, errf(http.StatusForbidden,
				"token for tenant %q cannot delete tenant %q's job %q", p.Tenant, st.Tenant, id))
			return
		}
	}
	if err := s.DeleteJob(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if !readBody(w, r, &req) {
		return
	}
	site := -1
	if req.Site != nil {
		site = *req.Site
	}
	resp, err := s.RegisterWorker(site, req.Tags)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusCreated, resp)
}

func (s *Service) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Workers())
}

func (s *Service) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.Deregister(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Service) handlePull(w http.ResponseWriter, r *http.Request) {
	var req api.PullRequest
	if !readBody(w, r, &req) {
		return
	}
	resp, parked, err := s.pull(r.Context().Done(), r.PathValue("id"), time.Duration(req.WaitMillis)*time.Millisecond)
	// Report the long-poll park to the ingress shedder: an idle worker's
	// empty pull spends its whole poll budget parked here, and counting
	// that as request latency would shed a healthy, unloaded system.
	middleware.ObserveParked(r.Context(), parked)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusOK, resp)
}

func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req api.HeartbeatRequest
	if !readBody(w, r, &req) {
		return
	}
	resp, err := s.Heartbeat(r.PathValue("id"), req.WorkerID)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusOK, resp)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	var req api.ReportRequest
	if !readBody(w, r, &req) {
		return
	}
	resp, err := s.Report(r.PathValue("id"), req.WorkerID, req.Outcome)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusOK, resp)
}

func (s *Service) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	var req api.ReportBatchRequest
	if !readBody(w, r, &req) {
		return
	}
	resp, err := s.ReportBatch(r.PathValue("id"), req.Reports)
	if err != nil {
		writeError(w, err)
		return
	}
	writeReply(w, r, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handlePartitions reports this service's partition identity. A bare
// partition only knows itself; the router overlays the full deployment
// view (URLs, per-partition health) on the same route. See
// docs/PARTITIONING.md.
func (s *Service) handlePartitions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.PartitionTopology{
		Count: s.cfg.PartitionCount,
		Self:  s.cfg.PartitionIndex,
	})
}

// handleReadyz answers readiness probes: 200 once recovery completed, 503
// before. A constructed Service is always ready (New only returns after
// recovery), so the 503 arm matters to servers that bind their listener
// before construction finishes — cmd/gridschedd serves its own
// recovering-state /readyz until the service exists, then routes here.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := s.readiness()
	if rd.Status != "ready" {
		writeJSON(w, http.StatusServiceUnavailable, rd)
		return
	}
	writeJSON(w, http.StatusOK, rd)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.refreshJournalMetrics()
	if err := s.counters.WriteText(w); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
	if s.cfg.PartitionCount > 1 {
		fmt.Fprintf(w, "# TYPE gridsched_partition_index gauge\ngridsched_partition_index %d\n", s.cfg.PartitionIndex)
		fmt.Fprintf(w, "# TYPE gridsched_partition_count gauge\ngridsched_partition_count %d\n", s.cfg.PartitionCount)
	}
	s.repl.LocalLSN.Store(int64(s.ReplicationLastLSN()))
	if err := metrics.WriteReplicationText(w, api.RoleLeader, s.repl); err != nil {
		return
	}
	if b := s.tel.writeMetrics(nil); len(b) > 0 {
		if _, err := w.Write(b); err != nil {
			return
		}
	}
	for _, st := range s.Jobs() {
		fmt.Fprintf(w, "gridsched_job_remaining{job=%q,algorithm=%q} %d\n", st.ID, st.Algorithm, st.Remaining)
		fmt.Fprintf(w, "gridsched_job_completed{job=%q,algorithm=%q} %d\n", st.ID, st.Algorithm, st.Completed)
	}
	tenants := s.Tenants()
	lines := make([]metrics.TenantLine, 0, len(tenants))
	for _, t := range tenants {
		lines = append(lines, metrics.TenantLine{
			Tenant:        t.Tenant,
			Weight:        t.Weight,
			InFlight:      int64(t.InFlight),
			MaxInFlight:   int64(t.MaxInFlight),
			ShareTarget:   t.ShareTarget,
			ShareAchieved: t.ShareAchieved,
			Dispatches:    t.Dispatches,
			Throttles:     t.Throttles,
		})
	}
	_ = metrics.WriteTenantText(w, lines)
}
