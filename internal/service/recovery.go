// Recovery rebuilds a Service from Config.DataDir: load the snapshot,
// replay the write-ahead log tail on top of it, and reconstruct every
// running job's scheduler, site stores, and counters exactly as the
// crashed process left them.
//
// Scheduler state is reconstructed by *command replay*, not
// deserialization: the factory rebuilds the scheduler from (algorithm,
// workload, seed) — fully deterministic — and the job's ledger drives it
// through the same dispatch/complete/fail sequence the original instance
// saw. That reproduces internal state the schedulers could never
// serialize portably, in particular the ChooseTask(n) RNG stream: a
// recovered worker-centric scheduler makes the same future random draws an
// uninterrupted run would have made.
//
// Worker registrations and leases are NOT recovered — they are liveness
// state about processes that may not have survived the outage. Every
// assignment open at crash time is expired through the scheduler's normal
// failure path (journaled, so a second crash replays identically), and
// workers re-register on their next pull; the client loop does this
// transparently.
//
// Recovery runs single-threaded from New, before the sweeper starts and
// before the service is reachable, so it touches shard and coordinator
// state without contention; it still goes through the locked helpers it
// shares with the live paths. The shard stripe count is irrelevant to
// what is recovered: jobs land on whatever stripe the current Config
// routes them to.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/journal"
	"gridsched/internal/service/api"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// openKey identifies one in-flight execution during replay. At most one
// live assignment exists per (task, worker slot): the service grants a
// worker one assignment at a time, and a slot is vacated only after its
// assignment ended.
type openKey struct {
	task   int32
	site   int32
	worker int32
}

// openExec mirrors an assignment's replay-relevant state: cancelled, the
// speculative-twin flag, and schedRef — the worker ref the scheduler
// associates with the execution (the primary's ref for a twin).
type openExec struct {
	cancelled bool
	spec      bool
	schedRef  core.WorkerRef
}

// grantKey identifies one granted lease across the whole log for the
// telemetry fold: the success-report duration sample is report Ts minus
// grant Ts, and the grant may live in the snapshot's ledgers or the tail.
type grantKey struct {
	job    string
	task   int32
	site   int32
	worker int32
}

// recoveryState carries the submission-ordered job list recovery builds
// up from the snapshot and the log tail, plus the open-grant timestamps
// feeding the telemetry fold.
type recoveryState struct {
	order   []*job
	deletes []string
	grants  map[grantKey]int64 // grant Ts (unix millis) of still-open leases
}

// recover loads DataDir and rebuilds state. Called from New, before the
// sweeper starts and before the service is reachable.
func (s *Service) recover() error {
	start := time.Now()
	if err := os.MkdirAll(s.pst.dir, 0o755); err != nil {
		return err
	}
	// Sweep snapshot temp files orphaned by a crash between CreateTemp and
	// rename; without this every crash-during-snapshot leaks one file into
	// the data dir forever.
	if stale, err := filepath.Glob(s.snapshotPath() + ".tmp*"); err == nil {
		for _, p := range stale {
			_ = os.Remove(p)
		}
	}
	rs := &recoveryState{grants: make(map[grantKey]int64)}

	// 1. Snapshot.
	var snap snapshot
	data, err := os.ReadFile(s.snapshotPath())
	switch {
	case os.IsNotExist(err):
		// Fresh data dir: keep the partition-seeded sequence New installed
		// rather than clobbering it with the zero value.
		snap.Version = snapshotVersion
		snap.Seq = s.seq.Load()
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("service: corrupt snapshot %s: %w", s.snapshotPath(), err)
		}
		if snap.Version != snapshotVersion {
			return fmt.Errorf("service: snapshot version %d, this binary speaks %d", snap.Version, snapshotVersion)
		}
		// Partition identity check: ids in this dir were minted in the
		// recorded partition's residue class, so recovering under any other
		// identity would mis-route every one of them. Pre-partitioning
		// snapshots (count 0) can only be the standalone identity.
		snapIdx, snapCnt := snap.PartitionIndex, snap.PartitionCount
		if snapCnt == 0 {
			snapIdx, snapCnt = 0, 1
		}
		if snapIdx != s.cfg.PartitionIndex || snapCnt != s.cfg.PartitionCount {
			return fmt.Errorf("service: data dir belongs to partition %d of %d, configured as %d of %d (re-partitioning needs a migration, not a restart)",
				snapIdx, snapCnt, s.cfg.PartitionIndex, s.cfg.PartitionCount)
		}
	}
	s.seq.Store(snap.Seq)
	s.pst.carry = snap.Carry
	// Fair-share state: the arbiter's virtual time and per-tenant durable
	// state come from the snapshot; tail records then re-apply charges and
	// quota changes in log order, exactly as the live paths did.
	s.coord.vtime = snap.VTime
	for _, st := range snap.Tenants {
		t := s.coord.tenant(st.Name)
		t.quota, t.dispatches = st.Quota, st.Dispatches
	}
	// Worker telemetry: the snapshot's fixed-point accumulators restore
	// bit-exact; tail records fold on top in LSN order (applyLogRecord),
	// reproducing the crashed process's EWMAs exactly.
	s.tel.restoreWorkers(snap.Workers)
	for i := range snap.Jobs {
		if err := s.restoreSnapJob(rs, &snap.Jobs[i]); err != nil {
			return err
		}
	}

	// 2. Log tail: records the snapshot does not cover. They extend the
	// per-job ledgers (and create/delete jobs) but are not applied yet.
	info, err := journal.ReadLog(s.walPath(), snap.LastLSN, func(lsn uint64, payload []byte) error {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("service: journal record %d: %w", lsn, err)
		}
		return s.applyLogRecord(rs, &rec)
	})
	if err != nil {
		return err
	}

	// 3. Open the writer over the validated prefix (truncating any torn
	// tail) before replay: replay appends the expiry records for
	// assignments that were in flight at the crash. The commit stage
	// comes up with the writer — replay appends go through it too.
	lastLSN := max(snap.LastLSN, info.LastLSN)
	met := &journal.Metrics{}
	w, err := journal.OpenWriter(s.walPath(), s.cfg.Fsync, s.cfg.FsyncInterval, lastLSN, info.ValidSize, met)
	if err != nil {
		return err
	}
	s.pst.w = w
	s.pst.stage = newCommitStage(w)
	s.pst.journalMetrics = met

	// 4. Replay each resident job's ledger through a rebuilt scheduler,
	// then expire whatever was still in flight.
	replayed := info.Records
	for _, j := range rs.order {
		if j.state == api.JobCompleted {
			continue
		}
		n, err := s.replayJob(j)
		if err != nil {
			return fmt.Errorf("service: replay job %s (%s): %w", j.id, j.algorithm, err)
		}
		replayed += n
	}
	for _, id := range rs.deletes {
		sh := s.shardOf(id)
		j := sh.jobs[id]
		if j == nil {
			return fmt.Errorf("service: journal deletes unknown job %s", id)
		}
		if j.state != api.JobCompleted {
			return fmt.Errorf("service: journal deletes running job %s", id)
		}
		sh.mu.Lock()
		s.dropJobLocked(sh, j)
		sh.mu.Unlock()
	}

	// 5. Rebuild the monotone counters from carry + resident jobs, and the
	// arbiter's runnable set: every still-running job enters the heap with
	// its recovered tag, and its tenant's weight/running gauges return.
	// (Tenant record counts were anchored at materialization, before the
	// deletes above ran against them; in-flight counts stay zero: step 4
	// expired every recovered lease.)
	s.restoreCounters()
	for _, sh := range s.shards {
		for _, j := range sh.jobs {
			if j.state == api.JobRunning {
				t := s.coord.tenant(j.tenant)
				t.weight += int64(j.weight)
				t.running++
				s.coord.push(j)
			}
		}
	}
	// Sweep anchorless tenant states: replaying a set-then-revert opQuota
	// pair (or loading a legacy snapshot) can materialize tenants the live
	// process had already pruned, and recovery must not resurrect them.
	for name := range s.coord.tenants {
		s.coord.prune(name)
	}

	// 6. Compact: a fresh snapshot makes the next restart O(snapshot) and
	// clears the replayed tail. Skipped for a pristine data dir.
	if replayed > 0 || info.Torn || len(snap.Jobs) > 0 {
		s.snapMu.Lock()
		if err := s.snapshot(); err != nil {
			// Not fatal: the log keeps growing until a later snapshot
			// succeeds, which costs replay time but never correctness.
			fmt.Fprintf(os.Stderr, "gridschedd: post-recovery snapshot: %v\n", err)
		}
		s.snapMu.Unlock()
	}

	s.counters.ReplayRecords.Store(int64(replayed))
	s.counters.ReplayNanos.Store(time.Since(start).Nanoseconds())
	return nil
}

// restoreSnapJob materializes one snapshot entry as a resident job shell.
// Running jobs get their scheduler and stores in replayJob.
func (s *Service) restoreSnapJob(rs *recoveryState, sj *snapJob) error {
	if sj.State != api.JobRunning && sj.State != api.JobCompleted {
		return fmt.Errorf("service: snapshot job %s in state %q", sj.ID, sj.State)
	}
	j := &job{
		id:           sj.ID,
		name:         sj.Name,
		algorithm:    sj.Algorithm,
		seed:         sj.Seed,
		submissionID: sj.Submission,
		tenant:       sj.Tenant,
		weight:       normalizeWeight(sj.Weight, s.cfg.DefaultWeight),
		seq:          idNum(sj.ID),
		fair:         sj.Fair,
		heapIdx:      -1,
		tasks:        sj.Tasks,
		state:        sj.State,
		requires:     sj.Requires,
		deadlineMs:   sj.Deadline,
		submitted:    time.UnixMilli(sj.Submitted),
	}
	if sj.Finished != 0 {
		j.finished = time.UnixMilli(sj.Finished)
	}
	if sj.State == api.JobCompleted {
		j.dispatched, j.completed, j.failed = sj.Dispatched, sj.Completed, sj.Failed
		j.cancelled, j.expired, j.transfers = sj.Cancelled, sj.Expired, sj.Transfers
		j.speculated = sj.Speculated
	} else {
		if sj.Workload == nil {
			return fmt.Errorf("service: snapshot job %s running but has no workload", sj.ID)
		}
		j.w = sj.Workload
		j.ledger = sj.Ledger
		// Seed the open-grant timestamps from the snapshot ledger: a tail
		// success report's duration sample is measured from a grant the
		// snapshot may already carry. (Closed leases of completed snapshot
		// jobs lost their ledgers; a tail report on one folds without a
		// duration sample — the one corner where a recovered EWMA can lag
		// the uninterrupted one by a sample.)
		for _, e := range sj.Ledger {
			k := grantKey{job: sj.ID, task: int32(e.Task), site: e.Site, worker: e.Worker}
			switch e.Op {
			case ledgerDispatch, ledgerSpecDispatch:
				rs.grants[k] = e.Ts
			default:
				delete(rs.grants, k)
			}
		}
	}
	s.addRecoveredJob(rs, j)
	return nil
}

// applyLogRecord folds one tail record into the job shells. Deletions are
// collected and applied after replay: a delete always refers to a job that
// completed earlier in the log, and completion is only known once the
// ledger has been replayed.
func (s *Service) applyLogRecord(rs *recoveryState, rec *record) error {
	switch rec.Op {
	case opSubmit:
		if rec.Workload == nil {
			return fmt.Errorf("service: submit record %s has no workload", rec.Job)
		}
		j := &job{
			id:           rec.Job,
			name:         rec.Name,
			algorithm:    rec.Algorithm,
			seed:         rec.Seed,
			submissionID: rec.Submission,
			tenant:       rec.Tenant,
			weight:       normalizeWeight(rec.Weight, s.cfg.DefaultWeight),
			seq:          idNum(rec.Job),
			fair:         s.coord.vtime, // exactly what admit gave it live
			heapIdx:      -1,
			tasks:        len(rec.Workload.Tasks),
			w:            rec.Workload,
			state:        api.JobRunning,
			requires:     rec.Requires,
			deadlineMs:   rec.Deadline,
			submitted:    time.UnixMilli(rec.Ts),
		}
		s.addRecoveredJob(rs, j)
	case opQuota:
		s.coord.tenant(rec.Tenant).quota = rec.Quota
	case opDispatch, opReport, opExpire:
		// Fold worker telemetry FIRST, before any early return: the record
		// exists, so the live process folded the observation when it wrote
		// it — even when the job is unknown or already completed here.
		ref := core.WorkerRef{Site: rec.Site, Worker: rec.Worker}
		gk := grantKey{job: rec.Job, task: int32(rec.Task), site: int32(rec.Site), worker: int32(rec.Worker)}
		switch {
		case rec.Op == opDispatch:
			rs.grants[gk] = rec.Ts
		case rec.Op == opReport && rec.Outcome == api.OutcomeSuccess:
			g, hasGrant := rs.grants[gk]
			delete(rs.grants, gk)
			s.tel.observeSuccess(ref, rec.Ts-g, hasGrant)
		default: // failure report or expiry
			delete(rs.grants, gk)
			s.tel.observeFailure(ref)
		}
		j := s.shardOf(rec.Job).jobs[rec.Job]
		if j == nil {
			// A report/expiry naming a job neither the snapshot nor the
			// tail knows is the trace of a cancelled replica that outlived
			// its deleted job, written by a pre-residency-guard binary;
			// there is nothing left to apply it to. A dispatch into an
			// unknown job, by contrast, can only be corruption.
			if rec.Op == opReport || rec.Op == opExpire {
				return nil
			}
			return fmt.Errorf("service: journal %s record for unknown job %s", rec.Op, rec.Job)
		}
		op := ledgerExpire
		switch {
		case rec.Op == opDispatch:
			op = ledgerDispatch
			s.bumpSeqFromID(rec.Assignment)
			if rec.Spec {
				// A speculative twin never charged the arbiter live; replay
				// must not either. The tenant's dispatch total did move.
				op = ledgerSpecDispatch
				s.coord.tenant(j.tenant).dispatches++
				break
			}
			// Re-apply the fair-share charge in log order: tags and the
			// virtual time floor end up bit-identical to the crashed
			// process (the live path appends dispatch records in charge
			// order, under the coordinator), so the recovered arbiter
			// makes the same choices an uninterrupted one would have.
			s.coord.charge(j)
			s.coord.tenant(j.tenant).dispatches++
		case rec.Op == opReport && rec.Outcome == api.OutcomeSuccess:
			op = ledgerSuccess
		case rec.Op == opReport:
			op = ledgerFailure
		}
		// Records for jobs the snapshot already saw completed are leftover
		// reports/expiries of cancelled replicas; only the counter survives.
		if j.state == api.JobCompleted {
			if op == ledgerDispatch || op == ledgerSpecDispatch {
				return fmt.Errorf("service: journal dispatches into completed job %s", j.id)
			}
			j.cancelled++
			return nil
		}
		j.ledger = append(j.ledger, ledgerRec{
			Op: op, Task: rec.Task, Site: int32(rec.Site), Worker: int32(rec.Worker), Ts: rec.Ts,
		})
	case opDelete:
		rs.deletes = append(rs.deletes, rec.Job)
	default:
		return fmt.Errorf("service: unknown journal op %q", rec.Op)
	}
	return nil
}

// replayJob rebuilds a running job's scheduler and stores and drives them
// through the job's ledger, mirroring the live mutation paths
// (tryJobLocked, Report, expireAssignmentLocked) event for event. Returns
// the number of ledger events replayed.
func (s *Service) replayJob(j *job) (int, error) {
	if err := j.w.Validate(); err != nil {
		return 0, err
	}
	if err := s.cfg.CheckWorkload(j.w); err != nil {
		return 0, err
	}
	sched, err := s.buildScheduler(j.algorithm, j.w, j.seed)
	if err != nil {
		return 0, err
	}
	j.sched = sched
	j.stores = nil
	for i := 0; i < s.cfg.Sites; i++ {
		st, err := storage.New(s.cfg.CapacityFiles, s.cfg.Policy)
		if err != nil {
			return 0, err
		}
		st.Reserve(j.w.NumFiles)
		j.stores = append(j.stores, st)
		sched.AttachSite(i)
	}
	if len(j.w.Tasks) == 0 {
		s.completeJobReplay(j, j.submitted.UnixMilli())
		return 0, nil
	}

	open := make(map[openKey]*openExec)
	for i, e := range j.ledger {
		if err := s.replayEvent(j, e, open); err != nil {
			return i, fmt.Errorf("ledger event %d/%d: %w", i, len(j.ledger), err)
		}
	}

	// Expire everything still in flight: the workers holding those leases
	// predate the restart. Journaled like a live expiry so a second crash
	// replays the same way.
	if len(open) > 0 && j.state == api.JobRunning {
		now := s.now().UnixMilli()
		keys := make([]openKey, 0, len(open))
		for k := range open {
			keys = append(keys, k)
		}
		// Deterministic order (map iteration is not): by task, site, worker.
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].task != keys[b].task {
				return keys[a].task < keys[b].task
			}
			if keys[a].site != keys[b].site {
				return keys[a].site < keys[b].site
			}
			return keys[a].worker < keys[b].worker
		})
		for _, k := range keys {
			e := ledgerRec{Op: ledgerExpire, Task: workload.TaskID(k.task), Site: k.site, Worker: k.worker, Ts: now}
			s.mustAppend(&record{
				Op: opExpire, Ts: now, Job: j.id,
				Task: e.Task, Site: int(k.site), Worker: int(k.worker),
			})
			j.ledger = append(j.ledger, e)
			// These are fresh journal records, so fold them into telemetry
			// like any live expiry — the post-recovery snapshot covers them.
			s.tel.observeFailure(core.WorkerRef{Site: int(k.site), Worker: int(k.worker)})
			if err := s.replayEvent(j, e, open); err != nil {
				return len(j.ledger), err
			}
			s.counters.RecoveredExpired.Add(1)
		}
	}
	return len(j.ledger), nil
}

// replayEvent applies one ledger event, keeping open in sync with what the
// live assignment table would have held.
func (s *Service) replayEvent(j *job, e ledgerRec, open map[openKey]*openExec) error {
	key := openKey{task: int32(e.Task), site: e.Site, worker: e.Worker}
	ref := core.WorkerRef{Site: int(e.Site), Worker: int(e.Worker)}
	switch e.Op {
	case ledgerDispatch, ledgerSpecDispatch:
		if j.state != api.JobRunning || j.sched == nil {
			return fmt.Errorf("dispatch of task %d into %s job", e.Task, j.state)
		}
		if int(e.Task) < 0 || int(e.Task) >= len(j.w.Tasks) {
			return fmt.Errorf("dispatch of unknown task %d", e.Task)
		}
		if ref.Site < 0 || ref.Site >= s.cfg.Sites || ref.Worker < 0 || ref.Worker >= s.cfg.WorkersPerSite {
			return fmt.Errorf("dispatch at %+v outside the configured pool", ref)
		}
		if open[key] != nil {
			return fmt.Errorf("task %d already in flight at %+v", e.Task, ref)
		}
		schedRef := ref
		if e.Op == ledgerSpecDispatch {
			// A twin was granted above the scheduler: no ReplayAssign. Its
			// schedRef is the live primary's ref, re-derived by the same
			// deterministic rule the grant used — lowest (site, worker)
			// among the task's open non-speculative executions.
			found := false
			for k, o := range open {
				if k.task != int32(e.Task) || o.spec || o.cancelled {
					continue
				}
				r := core.WorkerRef{Site: int(k.site), Worker: int(k.worker)}
				if !found || r.Site < schedRef.Site ||
					(r.Site == schedRef.Site && r.Worker < schedRef.Worker) {
					schedRef, found = r, true
				}
			}
			if !found {
				return fmt.Errorf("speculative dispatch of task %d with no live primary", e.Task)
			}
		} else if err := replayAssignSched(j.sched, e.Task, ref); err != nil {
			return err
		}
		sh := s.shardOf(j.id)
		task := j.w.Tasks[e.Task]
		fetched, evicted, err := j.stores[ref.Site].CommitBatchInto(task.Files, sh.fetchBuf[:0], sh.evictBuf[:0])
		if err != nil {
			return fmt.Errorf("stage task %d at site %d: %w", e.Task, ref.Site, err)
		}
		sh.fetchBuf, sh.evictBuf = fetched[:0], evicted[:0]
		j.sched.NoteBatch(ref.Site, task.Files, fetched, evicted)
		j.transfers += int64(len(fetched))
		j.dispatched++
		if e.Op == ledgerSpecDispatch {
			j.speculated++
		}
		open[key] = &openExec{spec: e.Op == ledgerSpecDispatch, schedRef: schedRef}
	case ledgerSuccess, ledgerFailure, ledgerExpire:
		o := open[key]
		if o == nil {
			return fmt.Errorf("%d on task %d at %+v with no open execution", e.Op, e.Task, ref)
		}
		delete(open, key)
		switch {
		case o.cancelled:
			j.cancelled++
		case e.Op == ledgerSuccess:
			victims := j.sched.OnTaskComplete(e.Task, o.schedRef)
			j.completed++
			for _, v := range victims {
				vk := openKey{task: int32(e.Task), site: int32(v.Site), worker: int32(v.Worker)}
				if vo := open[vk]; vo != nil {
					vo.cancelled = true
				}
			}
			// First-report-wins blanket cancel, mirroring applyReportLocked:
			// every other open execution of the task is obsolete.
			for k2, o2 := range open {
				if k2.task == int32(e.Task) && !o2.cancelled {
					o2.cancelled = true
				}
			}
			if j.sched.Remaining() == 0 {
				s.completeJobReplay(j, e.Ts)
				// Mirror completeJobLocked's cancellation sweep: whatever is
				// still in flight is an obsolete replica.
				for _, vo := range open {
					vo.cancelled = true
				}
			}
		case e.Op == ledgerFailure:
			j.failed++
			if j.sched != nil && !openSibling(open, int32(e.Task), o.schedRef) {
				j.sched.OnExecutionFailed(e.Task, o.schedRef)
			}
		default: // ledgerExpire
			j.expired++
			if j.sched != nil && !openSibling(open, int32(e.Task), o.schedRef) {
				j.sched.OnExecutionFailed(e.Task, o.schedRef)
			}
		}
	default:
		return fmt.Errorf("unknown ledger op %d", e.Op)
	}
	return nil
}

// openSibling mirrors liveSiblingLocked for replay: another open,
// non-cancelled execution of the task shares schedRef, so the failed or
// expired half of a primary/twin pair must not requeue the task.
func openSibling(open map[openKey]*openExec, task int32, schedRef core.WorkerRef) bool {
	for k, o := range open {
		if k.task == task && !o.cancelled && o.schedRef == schedRef {
			return true
		}
	}
	return false
}

// completeJobReplay is completeJobLocked minus the live-only concerns
// (broadcast, arbiter retirement, counters — rebuilt afterwards).
func (s *Service) completeJobReplay(j *job, tsMillis int64) {
	j.state = api.JobCompleted
	j.finished = time.UnixMilli(tsMillis)
	j.w, j.sched, j.stores, j.ledger = nil, nil, nil, nil
}

// addRecoveredJob registers a job shell during recovery: into its shard,
// the submission index, the replay order, and its tenant's record count.
// The record is anchored HERE, at materialization — not in the post-replay
// sweep — so a journal-tail delete (dropJobLocked, which decrements)
// always runs against a count that included the job, exactly as the live
// path does; counting later would drive the tenant negative and defeat
// pruning forever.
func (s *Service) addRecoveredJob(rs *recoveryState, j *job) {
	if j.state == api.JobRunning && j.deadlineMs > 0 && s.now().UnixMilli() >= j.deadlineMs {
		j.urgent.Store(true) // sweeps refine this; seed the overdue case now
	}
	s.shardOf(j.id).jobs[j.id] = j
	if j.submissionID != "" {
		s.coord.submissions[j.submissionID] = j.id
	}
	s.coord.tenant(j.tenant).records++
	rs.order = append(rs.order, j)
	s.bumpSeqFromID(j.id)
}

// restoreCounters rebuilds the monotone /metrics totals as carry (deleted
// jobs) plus the resident jobs. Process-local series — pulls, heartbeats,
// dispatch latency, stale reports — restart at zero.
func (s *Service) restoreCounters() {
	c := s.pst.carry
	open := int64(0)
	for _, sh := range s.shards {
		for _, j := range sh.jobs {
			c.Jobs++
			if j.state == api.JobCompleted {
				c.CompletedJobs++
			} else {
				open++
			}
			c.Dispatched += int64(j.dispatched)
			c.Completions += int64(j.completed)
			c.Failures += int64(j.failed)
			c.Cancellations += int64(j.cancelled)
			c.Expired += int64(j.expired)
			c.Speculated += int64(j.speculated)
		}
	}
	s.counters.JobsSubmitted.Store(c.Jobs)
	s.counters.JobsCompleted.Store(c.CompletedJobs)
	s.counters.Assignments.Store(c.Dispatched)
	s.counters.Completions.Store(c.Completions)
	s.counters.Failures.Store(c.Failures)
	s.counters.Cancellations.Store(c.Cancellations)
	s.counters.LeasesExpired.Store(c.Expired)
	s.counters.SpeculativeDispatches.Store(c.Speculated)
	s.counters.OpenJobs.Store(open)
}

// idNum extracts the numeric part of a "j<n>"/"a<n>" id (0 when the id
// does not parse). For jobs it doubles as the arbiter's deterministic
// tie-breaker AND the shard routing key: it is the submission sequence
// number, so consecutively submitted jobs round-robin across stripes.
func idNum(id string) int64 {
	if len(id) < 2 {
		return 0
	}
	n := int64(0)
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int64(r-'0')
	}
	return n
}

// bumpSeqFromID raises the id sequence above a recovered "j<n>"/"a<n>" id
// so freshly minted ids never collide with journaled ones. (Worker ids
// carry a per-process nonce instead: registrations are not journaled, so
// their ids cannot be recovered this way.) Recovery is single-threaded,
// so the load/store pair cannot race.
func (s *Service) bumpSeqFromID(id string) {
	if n := idNum(id); n > s.seq.Load() {
		s.seq.Store(n)
	}
}
