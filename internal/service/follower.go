package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/journal"
	"gridsched/internal/metrics"
	"gridsched/internal/replicate"
	"gridsched/internal/service/api"
)

// Follower is a hot standby: it streams the leader's WAL
// (internal/replicate), persists every frame through its own
// journal.Writer, and keeps a read-only catalog of job and tenant state
// folded from the very records recovery would replay. It serves status
// endpoints and rejects mutations with a leader redirect; Promote ends
// the stream and runs the full recovery path (New) over the replicated
// data dir — the same code path the kill -9 gauntlet proves bit-exact —
// returning a live leader Service.
type Follower struct {
	svcCfg Config // normalized; used verbatim at promotion
	cfg    FollowerConfig

	repl *metrics.ReplicationCounters
	jmet *journal.Metrics

	mu     sync.Mutex
	w      *journal.Writer
	cat    *catalog
	last   uint64 // last LSN applied locally
	halted error  // terminal stream divergence; nil while healthy

	leaderLSN   atomic.Uint64
	lastContact atomic.Int64 // unix nanos of the last leader contact
	promoting   atomic.Bool
	promoted    atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// FollowerConfig parameterizes the replication client side of a Follower;
// the service side (data dir, fsync mode, topology — everything promotion
// needs) comes from the Config passed alongside it.
type FollowerConfig struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:8080").
	Leader string
	// Token, when non-empty, is the bearer token presented on the stream
	// request; it must resolve to an admin principal on the leader.
	Token string
	// HTTPClient performs the stream request. It must have NO client-level
	// timeout (the stream is long-lived). Nil picks a default.
	HTTPClient *http.Client
	// ReconnectMax caps the backoff between stream reconnect attempts.
	// 0 picks 2s.
	ReconnectMax time.Duration
}

// NewFollower opens (or resumes) the replicated data dir under cfg.DataDir
// and starts streaming from the leader. The local state is validated the
// same way recovery would — snapshot load plus journal tail scan — but
// folded into a read-only catalog instead of live schedulers.
func NewFollower(cfg Config, fcfg FollowerConfig) (*Follower, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: follower requires DataDir (it exists to replicate a journal)")
	}
	if fcfg.Leader == "" {
		return nil, fmt.Errorf("service: follower requires a leader URL")
	}
	if fcfg.HTTPClient == nil {
		fcfg.HTTPClient = &http.Client{}
	}
	if fcfg.ReconnectMax <= 0 {
		fcfg.ReconnectMax = 2 * time.Second
	}
	f := &Follower{
		svcCfg: cfg,
		cfg:    fcfg,
		repl:   &metrics.ReplicationCounters{},
		jmet:   &journal.Metrics{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := f.openLocal(); err != nil {
		return nil, err
	}
	f.touchContact()
	go f.run()
	return f, nil
}

func (f *Follower) walPath() string { return filepath.Join(f.svcCfg.DataDir, walFile) }
func (f *Follower) snapPath() string {
	return filepath.Join(f.svcCfg.DataDir, snapshotFile)
}

// openLocal loads whatever replicated state already exists on disk:
// snapshot into the catalog, journal tail folded on top, writer opened at
// the validated prefix — a restartable follower, not a from-scratch one.
func (f *Follower) openLocal() error {
	if err := os.MkdirAll(f.svcCfg.DataDir, 0o755); err != nil {
		return err
	}
	snap, err := readLocalSnapshot(f.snapPath())
	if err != nil {
		return err
	}
	cat := newCatalog(f.svcCfg.DefaultWeight, f.svcCfg.TenantMaxInFlight)
	if snap != nil {
		if snap.Version != snapshotVersion {
			return fmt.Errorf("service: snapshot version %d (want %d)", snap.Version, snapshotVersion)
		}
		cat.loadSnapshot(snap)
	}
	after := uint64(0)
	if snap != nil {
		after = snap.LastLSN
	}
	info, err := journal.ReadLog(f.walPath(), after, func(lsn uint64, payload []byte) error {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("service: journal record %d: %w", lsn, err)
		}
		cat.applyRecord(&rec)
		return nil
	})
	if err != nil {
		return err
	}
	last := max(after, info.LastLSN)
	w, err := journal.OpenWriter(f.walPath(), f.svcCfg.Fsync, f.svcCfg.FsyncInterval, last, info.ValidSize, f.jmet)
	if err != nil {
		return err
	}
	f.w, f.cat, f.last = w, cat, last
	f.repl.LocalLSN.Store(int64(last))
	return nil
}

// readLocalSnapshot parses the follower's on-disk snapshot, nil when none
// exists yet.
func readLocalSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("service: snapshot %s: %w", path, err)
	}
	return &snap, nil
}

func (f *Follower) touchContact() { f.lastContact.Store(time.Now().UnixNano()) }

// run is the reconnect loop: one replicate.Follow per connection, capped
// jittered-ish backoff between attempts, permanent halt on divergence.
func (f *Follower) run() {
	defer close(f.done)
	backoff := time.Duration(0)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-f.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		err := replicate.Follow(ctx, f.cfg.HTTPClient, f.cfg.Leader, f.cfg.Token, f.LastLSN(), f)
		cancel()
		select {
		case <-f.stop:
			return
		default:
		}
		if errors.Is(err, replicate.ErrDiverged) || errors.Is(err, errFollowerWAL) {
			// Halt rather than diverge: applying past a gap, a rewinding
			// snapshot, or a poisoned local journal could only produce a
			// log that disagrees with the leader's. The follower keeps
			// serving its (valid-prefix) catalog; an operator restarts it
			// to re-sync, or promotes it if the leader is gone.
			f.mu.Lock()
			f.halted = err
			f.mu.Unlock()
			f.repl.Halted.Store(1)
			log.Printf("gridschedd: follower halted: %v", err)
			return
		}
		f.repl.Reconnects.Add(1)
		if backoff < 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		} else {
			backoff *= 2
		}
		if backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
	}
}

// errFollowerWAL wraps local journal failures — terminal for the stream,
// since a poisoned writer can never apply another frame.
var errFollowerWAL = errors.New("service: follower journal failed")

// ApplyFrame persists one streamed record and folds it into the catalog.
// replicate.Replay has already proven lsn is exactly last+1.
func (f *Follower) ApplyFrame(lsn uint64, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.w == nil {
		return fmt.Errorf("service: follower is promoting")
	}
	got, err := f.w.Append(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", errFollowerWAL, err)
	}
	if got != lsn {
		// The writer's LSN sequence is seeded from the replicated log, so
		// this can only mean local and leader histories disagree.
		return fmt.Errorf("%w: local writer assigned lsn %d, stream says %d", replicate.ErrDiverged, got, lsn)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		// The bytes are already durable and identical to the leader's;
		// recovery at promotion would fail on them exactly as the leader
		// would. Surface it now instead of serving a stale catalog.
		return fmt.Errorf("%w: undecodable record at lsn %d: %v", replicate.ErrDiverged, lsn, err)
	}
	f.cat.applyRecord(&rec)
	f.last = lsn
	f.repl.FramesApplied.Add(1)
	f.repl.LocalLSN.Store(int64(lsn))
	if l := f.leaderLSN.Load(); lsn > l {
		f.leaderLSN.Store(lsn)
		f.repl.LeaderLSN.Store(int64(lsn))
	}
	f.touchContact()
	return nil
}

// ApplySnapshot installs a full catch-up snapshot: the on-disk snapshot
// file is replaced atomically, the local WAL resets to an empty log
// seeded at the snapshot's LSN (exactly the state a leader has right
// after rotation), and the catalog is rebuilt.
func (f *Follower) ApplySnapshot(lsn uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.w == nil {
		return fmt.Errorf("service: follower is promoting")
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%w: undecodable snapshot: %v", replicate.ErrDiverged, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("%w: snapshot version %d (want %d)", replicate.ErrDiverged, snap.Version, snapshotVersion)
	}
	if snap.LastLSN != lsn {
		return fmt.Errorf("%w: snapshot body covers lsn %d, header says %d", replicate.ErrDiverged, snap.LastLSN, lsn)
	}
	if err := journal.WriteFileAtomic(f.snapPath(), data); err != nil {
		return fmt.Errorf("%w: %v", errFollowerWAL, err)
	}
	if err := f.w.Close(); err != nil {
		log.Printf("gridschedd: follower journal close before snapshot reset: %v", err)
	}
	// validSize 0 resets the file to a fresh empty log; the LSN sequence
	// continues from the snapshot position.
	w, err := journal.OpenWriter(f.walPath(), f.svcCfg.Fsync, f.svcCfg.FsyncInterval, lsn, 0, f.jmet)
	if err != nil {
		return fmt.Errorf("%w: %v", errFollowerWAL, err)
	}
	f.w = w
	cat := newCatalog(f.svcCfg.DefaultWeight, f.svcCfg.TenantMaxInFlight)
	cat.loadSnapshot(&snap)
	f.cat = cat
	f.last = lsn
	f.repl.SnapshotsApplied.Add(1)
	f.repl.LocalLSN.Store(int64(lsn))
	f.touchContact()
	return nil
}

// Heartbeat records the leader's position (lag = leader - local).
func (f *Follower) Heartbeat(lastLSN uint64) {
	f.leaderLSN.Store(lastLSN)
	f.repl.LeaderLSN.Store(int64(lastLSN))
	f.touchContact()
}

// LastLSN is the last LSN the follower holds locally.
func (f *Follower) LastLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// LeaderLSN is the leader's last announced LSN.
func (f *Follower) LeaderLSN() uint64 { return f.leaderLSN.Load() }

// LastContact is when the follower last heard from the leader (frame,
// snapshot, or heartbeat) — the signal automatic promotion keys on.
func (f *Follower) LastContact() time.Time {
	return time.Unix(0, f.lastContact.Load())
}

// Halted reports the terminal divergence error, nil while healthy.
func (f *Follower) Halted() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.halted
}

// Promote flips the follower live: the stream stops, the local journal is
// synced and closed, and the full recovery path (New) rebuilds a leader
// Service over the replicated data dir — schedulers, fair-share tags, RNG
// state and all, exactly as the recovery-identity tests prove. The call
// is synchronous: when it returns, the Service answers traffic. A second
// call fails with 409.
func (f *Follower) Promote() (*Service, error) {
	if !f.promoting.CompareAndSwap(false, true) {
		return nil, errf(http.StatusConflict, "service: promotion already requested")
	}
	f.shutdownStream()
	f.mu.Lock()
	w := f.w
	f.w = nil
	f.mu.Unlock()
	if w != nil {
		if err := w.Close(); err != nil {
			// Everything acked to the leader's stream is in the page
			// cache already; a failed final fsync only narrows
			// machine-crash durability, it does not block promotion.
			log.Printf("gridschedd: follower journal close at promotion: %v", err)
		}
	}
	svc, err := New(f.svcCfg)
	if err != nil {
		f.mu.Lock()
		f.halted = fmt.Errorf("service: promotion failed: %w", err)
		f.mu.Unlock()
		return nil, errf(http.StatusInternalServerError, "service: promotion failed: %v", err)
	}
	f.promoted.Store(true)
	return svc, nil
}

// Promoted reports whether Promote succeeded.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

func (f *Follower) shutdownStream() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Close stops the stream and closes the local journal. Idempotent; a
// promoted follower's journal belongs to the promoted Service and is not
// touched.
func (f *Follower) Close() {
	f.shutdownStream()
	f.mu.Lock()
	w := f.w
	f.w = nil
	f.mu.Unlock()
	if w != nil {
		_ = w.Close()
	}
}

// lag is LeaderLSN - LastLSN, clamped at 0 (the follower can briefly know
// more than the last heartbeat announced).
func (f *Follower) lag() uint64 {
	local, leader := f.LastLSN(), f.LeaderLSN()
	if leader <= local {
		return 0
	}
	return leader - local
}

// Handler is the follower's HTTP surface: read-only status from the
// catalog, truthful probes, and a 421 + leader-redirect for everything
// mutating. Mount it behind the same ingress chain as a leader.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.snapshotJobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := f.snapshotJob(r.PathValue("id"))
		if !ok {
			writeError(w, errf(http.StatusNotFound, "service: unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.snapshotTenants())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		jobs := len(f.cat.jobs)
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, api.Health{Status: "ok", Jobs: jobs})
	})
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("/", f.redirectToLeader)
	return mux
}

func (f *Follower) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := api.Readiness{
		Status:    "ready",
		Role:      api.RoleFollower,
		LastLSN:   f.LastLSN(),
		LeaderLSN: f.LeaderLSN(),
		LagLSN:    f.lag(),
		Leader:    f.cfg.Leader,
	}
	w.Header().Set(api.LeaderHeader, f.cfg.Leader)
	writeJSON(w, http.StatusOK, rd)
}

func (f *Follower) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = metrics.WriteReplicationText(w, api.RoleFollower, f.repl)
	fmt.Fprintf(w, "# TYPE gridsched_journal_records_total counter\ngridsched_journal_records_total %d\n",
		f.jmet.Records.Load())
	fmt.Fprintf(w, "# TYPE gridsched_journal_bytes_total counter\ngridsched_journal_bytes_total %d\n",
		f.jmet.Bytes.Load())
	fmt.Fprintf(w, "# TYPE gridsched_journal_fsyncs_total counter\ngridsched_journal_fsyncs_total %d\n",
		f.jmet.Fsyncs.Load())
}

// redirectToLeader answers every mutating (or unknown) request with 421
// Misdirected Request plus the leader's base URL — the hint the Go
// client's endpoint failover follows.
func (f *Follower) redirectToLeader(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.LeaderHeader, f.cfg.Leader)
	writeJSON(w, http.StatusMisdirectedRequest, api.ErrorResponse{
		Error: fmt.Sprintf("follower: %s %s must go to the leader at %s", r.Method, r.URL.Path, f.cfg.Leader),
	})
}

func (f *Follower) snapshotJobs() []api.JobStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cat.jobStatuses()
}

func (f *Follower) snapshotJob(id string) (api.JobStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.cat.jobs[id]
	if !ok {
		return api.JobStatus{}, false
	}
	return j.status(), true
}

func (f *Follower) snapshotTenants() []api.TenantStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cat.tenantStatuses()
}

// ReplicationCounters exposes the follower's metrics for embedding.
func (f *Follower) ReplicationCounters() *metrics.ReplicationCounters { return f.repl }

// sortJobStatuses orders by numeric job id — the same submission order
// the leader's Jobs() uses.
func sortJobStatuses(sts []api.JobStatus) {
	sort.Slice(sts, func(i, k int) bool { return idNum(sts[i].ID) < idNum(sts[k].ID) })
}
