// Job-state shards. Every job is owned by exactly one lock stripe,
// selected by the numeric part of its id, and everything mutable about the
// job — scheduler, site stores, replay ledger, per-job counters, and the
// assignment leases granted from it — is guarded by that stripe's mutex.
// Submits, reports, heartbeats, and lease expiries on different jobs
// therefore never contend; only the brief which-job decision (dispatch.go)
// and the WAL total order (commit.go) are shared.
//
// Lock ordering (see the package comment): a shard may acquire the
// coordinator or the registry while held; nothing acquires a shard while
// holding either, and no path holds two shards (lockAll, the
// stop-the-world snapshot path, is the exception and takes them in index
// order).
package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// shard is one lock stripe of job state.
type shard struct {
	mu   sync.Mutex
	jobs map[string]*job
	// assignments holds every live lease granted from this shard's jobs,
	// keyed by assignment id. (An assignment lives on its job's shard, not
	// on a shard derived from its own id.)
	assignments map[string]*assignment
	// Staging scratch reused across dispatches (guarded by mu; consumed
	// synchronously by NoteBatch before the next dispatch can run).
	fetchBuf, evictBuf []workload.FileID
}

func newShard() *shard {
	return &shard{
		jobs:        make(map[string]*job),
		assignments: make(map[string]*assignment),
	}
}

// shardOf routes a job id to its owning stripe. Sequentially minted ids
// round-robin across stripes, so concurrent jobs spread evenly. The
// mapping is a placement detail only: it never influences scheduling or
// the journal, so a data dir recovers correctly under any stripe count.
func (s *Service) shardOf(jobID string) *shard {
	return s.shards[int(idNum(jobID)%int64(len(s.shards)))]
}

// lockAll acquires every shard in index order plus the coordinator — the
// stop-the-world entry for snapshots. With all stripes held no append
// path can run (each holds a shard or the coordinator), so the journal
// position is frozen too.
func (s *Service) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	s.coord.mu.Lock()
}

func (s *Service) unlockAll() {
	s.coord.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// completeJobLocked transitions a job to completed (idempotent) and
// releases its heavy state, cancel-marking every assignment still in
// flight for it first. The marking is what makes releasing the scheduler
// safe against late reports and lease expiries: both route cancelled
// executions to counting paths that never touch the scheduler. The sweep
// is over the shard's own lease table — an assignment always lives on its
// job's shard — so no cross-shard coordination is needed. See
// TestCompletedJobInFlightReport*.
func (s *Service) completeJobLocked(sh *shard, j *job, now time.Time) {
	if j.state == api.JobCompleted {
		return
	}
	j.state = api.JobCompleted
	j.finished = now
	c := s.coord
	c.mu.Lock()
	c.retire(j)
	c.mu.Unlock()
	for _, a := range sh.assignments {
		if a.job == j {
			a.cancelled = true
		}
	}
	j.w, j.sched, j.stores, j.ledger = nil, nil, nil, nil
	s.counters.JobsCompleted.Add(1)
	s.counters.OpenJobs.Add(-1)
	s.hub.broadcast()
}

// cancelExecutionLocked marks the assignment running task id of j at ref
// (if any) as cancelled; the worker learns at its next heartbeat. The
// scan over the shard's lease table (bounded by the worker pool size)
// replaces the old slot-table lookup: it needs no registry lock and
// cannot miss an assignment granted moments ago, because grants insert
// into the table under this same shard lock.
func (s *Service) cancelExecutionLocked(sh *shard, j *job, id workload.TaskID, ref core.WorkerRef) {
	for _, a := range sh.assignments {
		if a.job == j && a.ref == ref && a.task.ID == id {
			a.cancelled = true
			return
		}
	}
}

// expireAssignmentLocked ends a lease without a report: the task is
// requeued through the scheduler's failure path (unless the execution was
// already cancelled — a replica obsoleted by a completion, or any lease
// that outlived its job — in which case there is nothing to requeue).
// The expiry is journaled like every other scheduler-affecting event: a
// later dispatch record of the requeued task only replays if the expiry
// that made it pending replays first. Callers hold sh.mu and must have
// verified the assignment is still live (sh.assignments[a.id] == a).
func (s *Service) expireAssignmentLocked(sh *shard, a *assignment, now time.Time) {
	delete(sh.assignments, a.id)
	j := a.job
	if a.speculative {
		delete(j.specMarked, a.task.ID)
	}
	// Same residency guard as Report: never journal history for a job id
	// that snapshots no longer carry.
	recorded := sh.jobs[j.id] == j
	if s.pst != nil && recorded {
		s.mustAppend(&record{
			Op: opExpire, Ts: now.UnixMilli(), Job: j.id,
			Task: a.task.ID, Site: a.ref.Site, Worker: a.ref.Worker,
		})
		if j.state == api.JobRunning {
			j.ledger = append(j.ledger, ledgerRec{
				Op: ledgerExpire, Task: a.task.ID,
				Site: int32(a.ref.Site), Worker: int32(a.ref.Worker),
				Ts: now.UnixMilli(),
			})
		}
	}
	if recorded {
		// Telemetry treats every recorded expiry as a failure event on the
		// slot that let the lease lapse, cancelled or not — the journal
		// record carries no cancelled bit and replay must fold the same.
		s.tel.observeFailure(a.ref)
	}
	if a.cancelled {
		j.cancelled++
		s.counters.Cancellations.Add(1)
		if a.speculative {
			s.counters.SpeculationLosses.Add(1)
		}
	} else {
		j.expired++
		s.counters.LeasesExpired.Add(1)
		if a.speculative {
			s.counters.SpeculationLosses.Add(1)
		}
		// Sibling rule (see applyReportLocked): while the other half of a
		// primary/twin pair still runs, the scheduler's one known execution
		// of the task is alive and the expiry must not requeue it. This is
		// also what keeps worker deregistration sound mid-speculation:
		// expiring the primary leaves the twin as the task's execution,
		// expiring the twin leaves the primary — only when the LAST of the
		// pair dies does the task go back to the scheduler.
		if j.sched != nil && !liveSiblingLocked(sh, a) {
			j.sched.OnExecutionFailed(a.task.ID, a.schedRef)
		}
	}
	s.finishLease(a)
}

// finishLease is the single point where a lease ends (report, expiry,
// deregistration) after its shard-side removal: the tenant's in-flight
// quota capacity returns, the worker's assignment pointer clears, and the
// lease gauge drops. When the tenant was at its quota — parked pulls may
// have skipped its runnable jobs — the freed capacity makes work
// dispatchable again, so this wakes the hub even on a plain success
// report. May run with the assignment's shard held (shard ≺ coordinator,
// shard ≺ registry); the two leaf locks are taken one after the other,
// never nested.
func (s *Service) finishLease(a *assignment) {
	c := s.coord
	wake := false
	c.mu.Lock()
	t := c.tenant(a.job.tenant)
	if q := c.quotaFor(t, s.cfg.TenantMaxInFlight); q > 0 && t.inFlight+t.reserved >= q && t.running > 0 {
		wake = true
	}
	t.inFlight--
	// A lease can be a tenant's last anchor: its job record may have been
	// deleted while this assignment was still in flight (a cancelled
	// replica outliving its completed, then deleted, job).
	c.prune(a.job.tenant)
	c.mu.Unlock()
	if wake {
		s.hub.broadcast()
	}
	s.reg.mu.Lock()
	if w := s.reg.workers[a.workerID]; w != nil && w.assignments[a.id] == a {
		delete(w.assignments, a.id)
		if w.wake != nil {
			// A streaming worker's pipeline just gained capacity; nudge its
			// stream loop (targeted — no herd broadcast for this).
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
	s.reg.mu.Unlock()
	s.counters.ActiveLeases.Add(-1)
}

// dropJobLocked removes a job record; with journaling the job's totals are
// folded into the snapshot carry so the global counters stay exact.
// Dropping a tenant's last anchor also retires the tenant. Callers hold
// sh.mu.
func (s *Service) dropJobLocked(sh *shard, j *job) {
	delete(sh.jobs, j.id)
	c := s.coord
	c.mu.Lock()
	if j.submissionID != "" {
		delete(c.submissions, j.submissionID)
	}
	if t := c.tenants[j.tenant]; t != nil {
		t.records--
	}
	c.prune(j.tenant)
	if s.pst != nil {
		s.pst.carry.Jobs++
		s.pst.carry.CompletedJobs++
		s.pst.carry.Dispatched += int64(j.dispatched)
		s.pst.carry.Completions += int64(j.completed)
		s.pst.carry.Failures += int64(j.failed)
		s.pst.carry.Cancellations += int64(j.cancelled)
		s.pst.carry.Expired += int64(j.expired)
		s.pst.carry.Speculated += int64(j.speculated)
	}
	c.mu.Unlock()
}

// maybeSweep runs the cross-shard expiry sweep only when the earliest
// known deadline is due — the request-path entry point, so parked pulls
// woken by a broadcast do not all pay the full sweep.
func (s *Service) maybeSweep(now time.Time) {
	if ns := s.nextSweep.Load(); ns != 0 && now.UnixNano() < ns {
		return
	}
	s.sweep(now)
}

// noteDeadline lowers nextSweep to cover a newly created deadline.
func (s *Service) noteDeadline(t time.Time) {
	n := t.UnixNano()
	for {
		cur := s.nextSweep.Load()
		if cur != 0 && cur <= n {
			return
		}
		if s.nextSweep.CompareAndSwap(cur, n) {
			return
		}
	}
}

// specStage is one straggling (job, task) found by a sweep, staged so the
// enqueue order can be sorted before it becomes visible.
type specStage struct {
	j    *job
	task workload.TaskID
}

// sweep expires overdue worker registrations and assignment leases across
// the registry and every shard, then recomputes the next deadline. Locks
// are taken one domain at a time — registry first (collecting the expired
// workers' orphaned assignments), then each shard in turn — so a sweep
// never stalls dispatch on more than the stripe it is currently visiting.
func (s *Service) sweep(now time.Time) {
	changed := false
	var next time.Time
	lower := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}

	var orphans []*assignment
	s.reg.mu.Lock()
	for _, w := range s.reg.workers {
		// A worker mid-pull renewed its registration at pull entry; skip it
		// rather than yank the slot from under its own dispatch.
		if w.pulling || !now.After(w.expires) {
			lower(w.expires)
			continue
		}
		for _, a := range w.assignments {
			orphans = append(orphans, a)
		}
		s.reg.removeLocked(w)
		s.counters.ActiveWorkers.Add(-1)
		s.counters.WorkersExpired.Add(1)
		changed = true
	}
	s.reg.mu.Unlock()
	for _, a := range orphans {
		sh := s.shardOf(a.job.id)
		sh.mu.Lock()
		if sh.assignments[a.id] == a {
			s.expireAssignmentLocked(sh, a, now)
		}
		sh.mu.Unlock()
	}

	deadlines := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		var stragglers []specStage
		for _, a := range sh.assignments {
			if now.After(a.deadline) {
				s.expireAssignmentLocked(sh, a, now)
				changed = true
				continue
			}
			lower(a.deadline)
			// Straggler detection: a live primary lease whose age has
			// outrun the job's observed duration distribution gets queued
			// for a speculative twin. Staged first, queued after, sorted —
			// the assignment-map iteration order must never leak into the
			// queue order (determinism).
			if s.cfg.Speculation && !a.cancelled && !a.speculative && a.granted > 0 {
				j := a.job
				if sh.jobs[j.id] == j && j.state == api.JobRunning && !j.specMarked[a.task.ID] &&
					shouldSpeculate(now.UnixMilli()-a.granted, &j.durs,
						s.cfg.SpeculationPercentile, s.cfg.SpeculationFactor, s.cfg.SpeculationMinSamples) {
					stragglers = append(stragglers, specStage{j: j, task: a.task.ID})
				}
			}
		}
		sort.Slice(stragglers, func(i, k int) bool {
			if stragglers[i].j.seq != stragglers[k].j.seq {
				return stragglers[i].j.seq < stragglers[k].j.seq
			}
			return stragglers[i].task < stragglers[k].task
		})
		for _, st := range stragglers {
			if st.j.specMarked[st.task] {
				continue // two replicas of one task both straggled; queue once
			}
			if st.j.specMarked == nil {
				st.j.specMarked = make(map[workload.TaskID]bool)
			}
			st.j.specMarked[st.task] = true
			st.j.specPending = append(st.j.specPending, st.task)
			changed = true // wake parked pulls: there is twin work to hand out
		}
		// Deadline urgency: project the job's finish as now + mean task
		// duration × remaining waves over the live worker pool, and boost
		// it when the projection misses the deadline. Cold start (no
		// duration samples) boosts only once the deadline itself passed.
		for _, j := range sh.jobs {
			if j.state != api.JobRunning || j.deadlineMs == 0 {
				continue
			}
			deadlines = true
			urgent := now.UnixMilli() >= j.deadlineMs
			if !urgent && j.sched != nil {
				if mean, ok := j.durs.mean(); ok {
					workers := s.counters.ActiveWorkers.Load()
					if workers < 1 {
						workers = 1
					}
					waves := (int64(j.sched.Remaining()) + workers - 1) / workers
					urgent = now.UnixMilli()+mean*waves >= j.deadlineMs
				}
			}
			j.urgent.Store(urgent)
		}
		sh.mu.Unlock()
	}

	if next.IsZero() {
		next = now.Add(s.cfg.SweepInterval)
	}
	if s.cfg.Speculation || deadlines {
		// Straggler detection and urgency are time-driven even when no
		// lease is near expiry; a far-future lease deadline must not defer
		// the next look past one sweep interval.
		if capAt := now.Add(s.cfg.SweepInterval); capAt.Before(next) {
			next = capAt
		}
	}
	s.nextSweep.Store(next.UnixNano())
	if changed {
		s.hub.broadcast()
	}
	s.snapshotIfDue()
}

// panicf exists so shard paths that must not continue (capacity invariants
// validated at submission) fail loudly with context.
func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
