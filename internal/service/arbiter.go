// Fair-share arbitration. The worker pull is the natural control point of
// the paper's worker-centric model, so inter-job arbitration happens
// exactly there: instead of scanning resident jobs in submission order,
// assignLocked asks the arbiter which runnable job has the smallest
// normalized dispatch consumption and offers the worker to that job first.
//
// The discipline is weighted deficit-round-robin in its start-time
// fair-queuing form: every job carries a virtual finish tag ("fair") that
// advances by fairScale/weight per dispatch, and a min-heap keyed on
// (fair, seq) picks the most underserved job in O(log jobs). A global
// virtual time floor — the tag of the most recent dispatch — caps how much
// credit an idle or undispatchable job can bank, so a job that could not
// use its turns for a while resumes at the current share rather than
// monopolizing the pool to "catch up" (the standard SFQ treatment of idle
// flows). Jobs submitted without a tenant or weight join the anonymous
// default tenant at the default weight; because the heap always serves the
// minimum tag and every weight is at least 1, no runnable job can starve.
//
// Tenants additionally carry a concurrency quota (maxInFlight), enforced
// at lease grant: a tenant at its quota is skipped (counted as a
// throttle) until a report or lease expiry returns capacity. Quotas are
// liveness-side only — they never affect recovery replay, which re-applies
// recorded dispatches rather than re-running the arbiter.
//
// Determinism: (fair, seq) is a total order, so the arbiter's choice is a
// pure function of the tags, and the tags are reconstructed exactly on
// recovery (snapshots persist each job's tag and the virtual time; journal
// tail records re-apply charges in log order — see recovery.go). A
// recovered service therefore makes the identical dispatch sequence an
// uninterrupted one would have made.
package service

import "gridsched/internal/metrics"

// fairScale is the virtual-time charge of one dispatch at weight 1; a
// weight-w dispatch charges fairScale/w. Integer arithmetic keeps recovery
// replay bit-exact. maxWeight caps weights so a charge is never rounded
// to zero.
const (
	fairScale = 1 << 20
	maxWeight = fairScale
)

// shareWindowSize is how many recent dispatches the achieved-share gauges
// are computed over.
const shareWindowSize = 1024

// tenantState is the arbiter's record of one tenant, created on first
// reference. Retention follows job retention: a tenant stays resident (in
// memory, in /v1/tenants and /metrics, and — quota and dispatch totals —
// in snapshots) while any of its job records do or a quota override is
// set, and is pruned when the last anchor goes away — DeleteJob dropping
// its last record, or a quota override reverted on a jobless tenant (see
// Service.pruneTenantLocked) — so churning tenant names cannot grow the
// daemon without bound.
type tenantState struct {
	name     string
	weight   int64 // Σ running jobs' weights
	running  int   // running jobs
	inFlight int   // leased assignments
	// quota overrides the server-wide default cap when > 0; 0 defers to
	// Config.TenantMaxInFlight. Set via PUT /v1/tenants/{tenant} and
	// journaled.
	quota      int
	dispatches int64 // task dispatches, exact across restarts (journaled)
	throttles  int64 // quota skips, process-local
}

// arbiter is the fair-share dispatch state. It is part of Service and
// shares its mutex.
type arbiter struct {
	// heap is a min-heap of runnable jobs ordered by (fair, seq): the
	// root is the most underserved job. heapIdx on the job tracks its
	// position; -1 means not in the heap.
	heap []*job
	// vtime is the virtual time floor: the pre-charge tag of the most
	// recent dispatch. New jobs join at vtime, and charges start from
	// max(job tag, vtime).
	vtime uint64
	// tenants indexes tenantState by name ("" = default tenant).
	tenants map[string]*tenantState
	// window is the sliding dispatch window behind the achieved-share
	// gauges. Guarded by the service mutex like everything else here.
	window *metrics.ShareWindow
	// deferred is pop scratch reused across assignLocked calls.
	deferred []*job
}

func newArbiter() *arbiter {
	return &arbiter{
		tenants: make(map[string]*tenantState),
		window:  metrics.NewShareWindow(shareWindowSize),
	}
}

// tenant returns the state for name, creating it on first reference.
func (a *arbiter) tenant(name string) *tenantState {
	t := a.tenants[name]
	if t == nil {
		t = &tenantState{name: name}
		a.tenants[name] = t
	}
	return t
}

// less is the heap order: most underserved first, submission order on ties.
func (a *arbiter) less(i, j int) bool {
	if a.heap[i].fair != a.heap[j].fair {
		return a.heap[i].fair < a.heap[j].fair
	}
	return a.heap[i].seq < a.heap[j].seq
}

func (a *arbiter) swap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].heapIdx = i
	a.heap[j].heapIdx = j
}

func (a *arbiter) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			return
		}
		a.swap(i, parent)
		i = parent
	}
}

func (a *arbiter) down(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.less(l, min) {
			min = l
		}
		if r < n && a.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		a.swap(i, min)
		i = min
	}
}

// push adds a runnable job to the heap. The job's fair tag and seq must be
// set; a job already in the heap is left alone.
func (a *arbiter) push(j *job) {
	if j.heapIdx >= 0 {
		return
	}
	j.heapIdx = len(a.heap)
	a.heap = append(a.heap, j)
	a.up(j.heapIdx)
}

// pop removes and returns the most underserved job.
func (a *arbiter) pop() *job {
	j := a.heap[0]
	last := len(a.heap) - 1
	a.swap(0, last)
	a.heap = a.heap[:last]
	j.heapIdx = -1
	if last > 0 {
		a.down(0)
	}
	return j
}

// remove takes a job out of the heap wherever it sits (job completion).
// No-op when the job is not in the heap.
func (a *arbiter) remove(j *job) {
	i := j.heapIdx
	if i < 0 {
		return
	}
	last := len(a.heap) - 1
	a.swap(i, last)
	a.heap = a.heap[:last]
	j.heapIdx = -1
	if i < last {
		a.down(i)
		a.up(i)
	}
}

// charge advances a job's fair tag for one dispatch and moves the virtual
// time floor. The identical computation runs during recovery when journal
// tail dispatch records are re-applied, which is what makes the tags — and
// therefore the post-recovery dispatch order — exact.
func (a *arbiter) charge(j *job) {
	start := j.fair
	if start < a.vtime {
		start = a.vtime
	}
	j.fair = start + fairScale/uint64(j.weight)
	a.vtime = start
}

// admit registers a newly running job: tag at the current virtual time,
// tenant weight bumped, heap entry created.
func (a *arbiter) admit(j *job) {
	j.fair = a.vtime
	t := a.tenant(j.tenant)
	t.weight += int64(j.weight)
	t.running++
	a.push(j)
}

// retire unregisters a job that stopped running (completion).
func (a *arbiter) retire(j *job) {
	a.remove(j)
	t := a.tenant(j.tenant)
	t.weight -= int64(j.weight)
	t.running--
}

// quotaFor resolves a tenant's effective in-flight cap: per-tenant
// override first, server default otherwise; 0 is unlimited.
func (a *arbiter) quotaFor(t *tenantState, serverDefault int) int {
	if t.quota > 0 {
		return t.quota
	}
	return serverDefault
}

// normalizeWeight resolves a submitted weight against the server default.
// Callers validated 0 <= w <= maxWeight.
func normalizeWeight(w, serverDefault int) int {
	if w <= 0 {
		w = serverDefault
	}
	if w <= 0 {
		w = 1
	}
	if w > maxWeight {
		w = maxWeight
	}
	return w
}
