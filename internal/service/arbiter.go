// Fair-share arbitration. The worker pull is the natural control point of
// the paper's worker-centric model, so inter-job arbitration happens
// exactly there: instead of scanning resident jobs in submission order,
// the dispatch path (dispatch.go) offers the worker to runnable jobs in
// order of normalized dispatch consumption.
//
// The discipline is weighted deficit-round-robin in its start-time
// fair-queuing form: every job carries a virtual finish tag ("fair") that
// advances by fairScale/weight per dispatch, and ordering by (fair, seq)
// picks the most underserved job in O(log jobs). A global virtual time
// floor — the tag of the most recent dispatch — caps how much credit an
// idle or undispatchable job can bank, so a job that could not use its
// turns for a while resumes at the current share rather than monopolizing
// the pool to "catch up" (the standard SFQ treatment of idle flows). Jobs
// submitted without a tenant or weight join the anonymous default tenant
// at the default weight; because dispatch always offers to the minimum
// tag first and every weight is at least 1, no runnable job can starve.
//
// Tenants additionally carry a concurrency quota (maxInFlight), enforced
// at lease grant: a tenant at its quota is skipped (counted as a
// throttle) until a report or lease expiry returns capacity. Under
// concurrent pulls the grant goes through a reservation (see
// tryJobLocked) so racing pulls cannot overshoot the cap. Quotas are
// liveness-side only — they never affect recovery replay, which re-applies
// recorded dispatches rather than re-running the arbiter.
//
// Determinism: (fair, seq) is a total order, so the arbiter's choice is a
// pure function of the tags, and the tags are reconstructed exactly on
// recovery (snapshots persist each job's tag and the virtual time; journal
// tail records re-apply charges in log order — see recovery.go). A
// recovered service therefore makes the identical dispatch sequence an
// uninterrupted one would have made. All arbiter state is guarded by the
// coordinator mutex (dispatch.go).
package service

import "gridsched/internal/metrics"

// fairScale is the virtual-time charge of one dispatch at weight 1; a
// weight-w dispatch charges fairScale/w. Integer arithmetic keeps recovery
// replay bit-exact. maxWeight caps weights so a charge is never rounded
// to zero.
const (
	fairScale = 1 << 20
	maxWeight = fairScale
)

// shareWindowSize is how many recent dispatches the achieved-share gauges
// are computed over.
const shareWindowSize = 1024

// tenantState is the arbiter's record of one tenant, created on first
// reference. Retention follows job retention: a tenant stays resident (in
// memory, in /v1/tenants and /metrics, and — quota and dispatch totals —
// in snapshots) while any of its job records do or a quota override is
// set, and is pruned when the last anchor goes away (see
// coordinator.prune) — so churning tenant names cannot grow the daemon
// without bound.
type tenantState struct {
	name     string
	weight   int64 // Σ running jobs' weights
	running  int   // running jobs
	inFlight int   // leased assignments
	// reserved counts quota slots held by pulls between the pre-NextFor
	// quota check and the grant (or release); inFlight+reserved is the
	// figure the cap is enforced against, so concurrent pulls cannot
	// overshoot it.
	reserved int
	// records counts resident job records (running or completed-but-
	// retained) — the O(1) replacement for scanning every shard's job
	// table when deciding whether the tenant can be pruned.
	records int
	// quota overrides the server-wide default cap when > 0; 0 defers to
	// Config.TenantMaxInFlight. Set via PUT /v1/tenants/{tenant} and
	// journaled.
	quota      int
	dispatches int64 // task dispatches, exact across restarts (journaled)
	throttles  int64 // quota skips, process-local
}

// arbiter is the fair-share bookkeeping embedded in the dispatch
// coordinator; every field is guarded by the coordinator mutex.
type arbiter struct {
	// heap is a min-heap of runnable jobs ordered by (fair, seq): the
	// root is the most underserved job. heapIdx on the job tracks its
	// position; -1 means not in the heap. Jobs stay in the heap for their
	// whole running life — dispatch snapshots and sorts it rather than
	// popping (dispatch.go).
	heap []*job
	// vtime is the virtual time floor: the pre-charge tag of the most
	// recent dispatch. New jobs join at vtime, and charges start from
	// max(job tag, vtime).
	vtime uint64
	// tenants indexes tenantState by name ("" = default tenant).
	tenants map[string]*tenantState
	// window is the sliding dispatch window behind the achieved-share
	// gauges.
	window *metrics.ShareWindow
}

// tenant returns the state for name, creating it on first reference.
func (a *arbiter) tenant(name string) *tenantState {
	t := a.tenants[name]
	if t == nil {
		t = &tenantState{name: name}
		a.tenants[name] = t
	}
	return t
}

// less is the heap order: most underserved first, submission order on ties.
func (a *arbiter) less(i, j int) bool {
	if a.heap[i].fair != a.heap[j].fair {
		return a.heap[i].fair < a.heap[j].fair
	}
	return a.heap[i].seq < a.heap[j].seq
}

func (a *arbiter) swap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].heapIdx = i
	a.heap[j].heapIdx = j
}

func (a *arbiter) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			return
		}
		a.swap(i, parent)
		i = parent
	}
}

func (a *arbiter) down(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.less(l, min) {
			min = l
		}
		if r < n && a.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		a.swap(i, min)
		i = min
	}
}

// push adds a runnable job to the heap. The job's fair tag and seq must be
// set; a job already in the heap is left alone.
func (a *arbiter) push(j *job) {
	if j.heapIdx >= 0 {
		return
	}
	j.heapIdx = len(a.heap)
	a.heap = append(a.heap, j)
	a.up(j.heapIdx)
}

// remove takes a job out of the heap wherever it sits (job completion).
// No-op when the job is not in the heap.
func (a *arbiter) remove(j *job) {
	i := j.heapIdx
	if i < 0 {
		return
	}
	last := len(a.heap) - 1
	a.swap(i, last)
	a.heap = a.heap[:last]
	j.heapIdx = -1
	if i < last {
		a.down(i)
		a.up(i)
	}
}

// charge advances a job's fair tag for one dispatch and moves the virtual
// time floor. The identical computation runs during recovery when journal
// tail dispatch records are re-applied, which is what makes the tags — and
// therefore the post-recovery dispatch order — exact.
func (a *arbiter) charge(j *job) {
	start := j.fair
	if start < a.vtime {
		start = a.vtime
	}
	j.fair = start + fairScale/uint64(j.weight)
	a.vtime = start
}

// admit registers a newly running job: tag at the current virtual time,
// tenant weight bumped, heap entry created.
func (a *arbiter) admit(j *job) {
	j.fair = a.vtime
	t := a.tenant(j.tenant)
	t.weight += int64(j.weight)
	t.running++
	a.push(j)
}

// retire unregisters a job that stopped running (completion).
func (a *arbiter) retire(j *job) {
	a.remove(j)
	t := a.tenant(j.tenant)
	t.weight -= int64(j.weight)
	t.running--
}

// quotaFor resolves a tenant's effective in-flight cap: per-tenant
// override first, server default otherwise; 0 is unlimited.
func (a *arbiter) quotaFor(t *tenantState, serverDefault int) int {
	if t.quota > 0 {
		return t.quota
	}
	return serverDefault
}

// normalizeWeight resolves a submitted weight against the server default.
// Callers validated 0 <= w <= maxWeight.
func normalizeWeight(w, serverDefault int) int {
	if w <= 0 {
		w = serverDefault
	}
	if w <= 0 {
		w = 1
	}
	if w > maxWeight {
		w = maxWeight
	}
	return w
}
