package api_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"gridsched/internal/service/api"
	"gridsched/internal/workload"
)

// site is a helper for RegisterRequest's optional pointer.
func site(v int) *int { return &v }

// messages is one fully-populated exemplar per binary message type; the
// fuzz target and the round-trip test both draw from it so a new message
// added to the codec shows up in every check by editing one table.
func messages() []any {
	return []any{
		&api.SubmitJobRequest{
			Name: "nightly", Algorithm: "combined.2", Seed: -42,
			Workload: &workload.Workload{
				Name: "w", NumFiles: 5,
				Tasks: []workload.Task{
					{ID: 0, Files: []workload.FileID{0, 3, 4}},
					{ID: 1},
				},
			},
			SubmissionID: "abc123", Tenant: "astro", Weight: 7,
		},
		&api.SubmitJobResponse{JobID: "job-1"},
		&api.RegisterRequest{Site: site(3)},
		&api.RegisterRequest{},
		&api.RegisterResponse{WorkerID: "w-1", Site: 2, Worker: 9, LeaseTTLMillis: 15000},
		&api.PullRequest{WaitMillis: 2000},
		&api.PullResponse{
			Status: api.StatusAssigned,
			Assignment: &api.Assignment{
				ID: "a-1", JobID: "job-1",
				Task:   workload.Task{ID: 4, Files: []workload.FileID{1, 2}},
				Staged: 2, LeaseTTLMillis: 15000,
			},
			OpenJobs: 3,
		},
		&api.PullResponse{Status: api.StatusEmpty, OpenJobs: 0},
		&api.HeartbeatRequest{WorkerID: "w-1"},
		&api.HeartbeatResponse{State: api.HeartbeatCancelled},
		&api.ReportRequest{WorkerID: "w-1", Outcome: api.OutcomeFailure},
		&api.ReportResponse{Accepted: true, JobState: api.JobCompleted},
		&api.LeaseBatch{
			Assignments: []api.Assignment{
				{ID: "a-1", JobID: "j", Task: workload.Task{ID: 1, Files: []workload.FileID{7}}, Staged: 1, LeaseTTLMillis: 100},
				{ID: "a-2", JobID: "j", Task: workload.Task{ID: 2}, LeaseTTLMillis: 100},
			},
			Cancelled: []string{"a-0"},
			OpenJobs:  2,
		},
		&api.LeaseBatch{OpenJobs: 0},
		&api.ReportBatchRequest{Reports: []api.ReportItem{
			{AssignmentID: "a-1", Outcome: api.OutcomeSuccess},
			{AssignmentID: "a-2", Outcome: api.OutcomeFailure},
		}},
		&api.ReportBatchResponse{Results: []api.ReportResponse{
			{Accepted: true, JobState: api.JobRunning},
			{Stale: true},
			{Accepted: true, Cancelled: true},
		}},
	}
}

// fresh returns a zero value of the same pointer type as m.
func fresh(m any) any {
	return reflect.New(reflect.TypeOf(m).Elem()).Interface()
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range messages() {
		data, err := api.Binary.Marshal(m)
		if err != nil {
			t.Fatalf("%T: marshal: %v", m, err)
		}
		got := fresh(m)
		if err := api.Binary.Unmarshal(data, got); err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T: round trip\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestBinarySupportsValueAndPointerForms(t *testing.T) {
	if !api.Binary.Supports(api.PullResponse{}) || !api.Binary.Supports(&api.PullResponse{}) {
		t.Fatal("PullResponse not supported")
	}
	if api.Binary.Supports(&api.ErrorResponse{}) {
		t.Fatal("ErrorResponse must stay JSON-only (errors are always human-readable)")
	}
	data, err := api.Binary.Marshal(api.SubmitJobResponse{JobID: "j"})
	if err != nil {
		t.Fatalf("value-form marshal: %v", err)
	}
	var got api.SubmitJobResponse
	if err := api.Binary.Unmarshal(data, &got); err != nil || got.JobID != "j" {
		t.Fatalf("decode of value-form encoding: %+v, %v", got, err)
	}
}

// TestBinaryStrictDecode pins down the codec's no-guess contract: every
// truncation point, trailing garbage, a wrong header, a mismatched message
// type, and out-of-vocabulary enum bytes must all error — never decode to
// a plausible partial message.
func TestBinaryStrictDecode(t *testing.T) {
	for _, m := range messages() {
		data, err := api.Binary.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			if err := api.Binary.Unmarshal(data[:n], fresh(m)); err == nil {
				t.Fatalf("%T: decode of %d/%d-byte prefix succeeded", m, n, len(data))
			}
		}
		if err := api.Binary.Unmarshal(append(append([]byte{}, data...), 0), fresh(m)); err == nil {
			t.Fatalf("%T: decode with a trailing byte succeeded", m)
		}
	}

	ok, err := api.Binary.Marshal(&api.PullRequest{WaitMillis: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, ok...)
	bad[0] = 'X' // magic
	if err := api.Binary.Unmarshal(bad, &api.PullRequest{}); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, ok...)
	bad[1] = 99 // version
	if err := api.Binary.Unmarshal(bad, &api.PullRequest{}); err == nil {
		t.Fatal("bad version accepted")
	}
	// A PullRequest encoding decoded as a HeartbeatRequest must be a
	// type-mismatch error, not a garbled heartbeat.
	if err := api.Binary.Unmarshal(ok, &api.HeartbeatRequest{}); err == nil {
		t.Fatal("cross-type decode accepted")
	}

	hb, err := api.Binary.Marshal(&api.HeartbeatResponse{State: api.HeartbeatActive})
	if err != nil {
		t.Fatal(err)
	}
	hb[len(hb)-1] = 200 // out-of-vocabulary enum byte
	if err := api.Binary.Unmarshal(hb, &api.HeartbeatResponse{}); err == nil {
		t.Fatal("unknown heartbeat-state byte accepted")
	}
}

func TestBinaryRejectsUnknownEnumOnEncode(t *testing.T) {
	if _, err := api.Binary.Marshal(&api.ReportRequest{WorkerID: "w", Outcome: "maybe"}); err == nil {
		t.Fatal("out-of-vocabulary outcome encoded")
	}
	if _, err := api.Binary.Marshal(&api.PullResponse{Status: "weird"}); err == nil {
		t.Fatal("out-of-vocabulary pull status encoded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, p := range payloads {
		buf = api.AppendFrame(buf, p)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := api.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %q, want %q", i, got, want)
		}
	}
	if _, err := api.ReadFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: %v, want io.EOF", err)
	}

	// A frame cut mid-payload is ErrUnexpectedEOF, never a clean EOF: the
	// stream consumer uses the distinction to tell shutdown from a drop.
	cut := api.AppendFrame(nil, []byte("payload"))
	br = bufio.NewReader(bytes.NewReader(cut[:len(cut)-2]))
	if _, err := api.ReadFrame(br); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// A corrupt length prefix must be bounded, not allocated.
	huge := make([]byte, 0, 16)
	huge = appendUvarintForTest(huge, api.MaxFramePayload+1)
	if _, err := api.ReadFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// appendUvarintForTest mirrors binary.AppendUvarint without importing it
// into the test's critical assertions.
func appendUvarintForTest(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestContentTypeNegotiationHelpers(t *testing.T) {
	if !api.IsBinary(api.ContentTypeBinary) || !api.IsBinary(api.ContentTypeStreamBinary) {
		t.Fatal("IsBinary misses a binary content type")
	}
	if api.IsBinary(api.ContentTypeJSON) || api.IsBinary("") {
		t.Fatal("IsBinary accepts a JSON content type")
	}
	for _, tc := range []struct {
		accept string
		want   bool
	}{
		{api.ContentTypeBinary, true},
		{"application/json, " + api.ContentTypeBinary, true},
		{api.ContentTypeBinary + ";q=0.9, application/json", true},
		{"application/json", false},
		{"", false},
		{"application/x-gridsched-binary", false}, // near-miss name
	} {
		if got := api.AcceptsBinary(tc.accept); got != tc.want {
			t.Errorf("AcceptsBinary(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

// FuzzWireCodec throws arbitrary bytes at the strict decoder (every
// message type) and the frame reader: nothing may panic or over-allocate,
// and anything that does decode must survive a re-encode/re-decode loop
// unchanged (the codec cannot "repair" input into a value it would then
// encode differently).
func FuzzWireCodec(f *testing.F) {
	for _, m := range messages() {
		data, err := api.Binary.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(api.AppendFrame(nil, data))
	}
	f.Add([]byte{'G', 1, 200})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range messages() {
			dst := fresh(m)
			if err := api.Binary.Unmarshal(data, dst); err != nil {
				continue
			}
			re, err := api.Binary.Marshal(dst)
			if err != nil {
				t.Fatalf("%T: decoded value failed to re-encode: %v", dst, err)
			}
			dst2 := fresh(m)
			if err := api.Binary.Unmarshal(re, dst2); err != nil {
				t.Fatalf("%T: re-encoded bytes failed to decode: %v", dst, err)
			}
			if !reflect.DeepEqual(dst, dst2) {
				t.Fatalf("%T: decode/encode/decode drift:\n first %+v\nsecond %+v", dst, dst, dst2)
			}
		}
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			if _, err := api.ReadFrame(br); err != nil {
				break
			}
		}
	})
}
