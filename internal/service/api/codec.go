// codec.go is the shared encode/decode layer behind both wire formats.
// JSON stays the debuggable default; the binary codec below is the
// wire-speed format for the dispatch hot path (pull/report/submit and the
// lease stream), negotiated per request via Content-Type/Accept. Both
// codecs marshal exactly the structs in api.go — there is no separate
// schema to drift.
//
// Binary layout: every message is
//
//	'G' 0x01 <msg-type byte> <fields...>
//
// with uvarint for unsigned integers, zigzag varint for signed ones,
// length-prefixed strings, a 0/1 byte for booleans, and one enum byte for
// the small closed string sets (pull status, heartbeat state, outcome,
// job state). Decoding is strict: unknown message types, unknown enum
// bytes, truncated fields, oversized lengths, and trailing garbage are
// all errors — never a guess. Stream frames are uvarint(len) + payload
// (AppendFrame/ReadFrame).
package api

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"gridsched/internal/workload"
)

// Content types for codec negotiation. A client that wants binary replies
// sends Accept: ContentTypeBinary (and may send binary request bodies
// under Content-Type: ContentTypeBinary); the server answers in kind or
// stays with JSON. Stream responses use the +stream variants so a capture
// is self-describing about framing.
const (
	ContentTypeJSON         = "application/json"
	ContentTypeBinary       = "application/x-gridsched-bin"
	ContentTypeStreamJSON   = "application/x-gridsched-stream+json"
	ContentTypeStreamBinary = "application/x-gridsched-stream+bin"
)

// Codec marshals the api structs for one wire format.
type Codec interface {
	// ContentType is the MIME type this codec negotiates under.
	ContentType() string
	// Supports reports whether v's type is encodable by this codec. JSON
	// supports everything; Binary supports exactly the hot-path messages.
	Supports(v any) bool
	Marshal(v any) ([]byte, error)
	Unmarshal(data []byte, v any) error
}

// JSON and Binary are the two codecs every endpoint negotiates between.
var (
	JSON   Codec = jsonCodec{}
	Binary Codec = binaryCodec{}
)

const (
	binMagic = 'G'
	// binVersion 2 appended the context-aware scheduling fields:
	// SubmitJobRequest gained Requires + DeadlineMillis, RegisterRequest
	// gained Tags. The decoder is strict, so version 1 captures are
	// rejected rather than misparsed.
	binVersion = 2
)

// Binary message type bytes. The codec rejects any other value, so adding
// a message is a protocol version event, not a silent skew.
const (
	msgSubmitJobRequest    = 1
	msgSubmitJobResponse   = 2
	msgRegisterRequest     = 3
	msgRegisterResponse    = 4
	msgPullRequest         = 5
	msgPullResponse        = 6
	msgHeartbeatRequest    = 7
	msgHeartbeatResponse   = 8
	msgReportRequest       = 9
	msgReportResponse      = 10
	msgLeaseBatch          = 11
	msgReportBatchRequest  = 12
	msgReportBatchResponse = 13
)

// MaxFramePayload bounds one stream frame (and one binary message read
// through ReadFrame): large enough for any real lease batch, small enough
// that a corrupt length prefix cannot ask for gigabytes.
const MaxFramePayload = 16 << 20

// AppendFrame appends payload to dst as one stream frame
// (uvarint length + bytes) and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one stream frame, returning its payload. It returns
// io.EOF only on a clean boundary (no bytes of the next frame read);
// a frame truncated mid-payload is io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > MaxFramePayload {
		return nil, fmt.Errorf("api: frame length %d exceeds limit %d", n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// IsBinary reports whether a Content-Type names the binary codec.
func IsBinary(contentType string) bool {
	return contentType == ContentTypeBinary || contentType == ContentTypeStreamBinary
}

// AcceptsBinary reports whether an Accept header asks for binary replies.
// The header is a comma-separated preference list; any mention of the
// binary type opts in (the client controls the header, so exact-name
// matching per element is enough — no q-value arithmetic).
func AcceptsBinary(accept string) bool {
	for part := range strings.SplitSeq(accept, ",") {
		if name, _, _ := strings.Cut(part, ";"); strings.TrimSpace(name) == ContentTypeBinary {
			return true
		}
	}
	return false
}

type jsonCodec struct{}

func (jsonCodec) ContentType() string             { return ContentTypeJSON }
func (jsonCodec) Supports(any) bool               { return true }
func (jsonCodec) Marshal(v any) ([]byte, error)   { return json.Marshal(v) }
func (jsonCodec) Unmarshal(d []byte, v any) error { return json.Unmarshal(d, v) }

type binaryCodec struct{}

func (binaryCodec) ContentType() string { return ContentTypeBinary }

func (binaryCodec) Supports(v any) bool {
	switch v.(type) {
	case *SubmitJobRequest, SubmitJobRequest,
		*SubmitJobResponse, SubmitJobResponse,
		*RegisterRequest, RegisterRequest,
		*RegisterResponse, RegisterResponse,
		*PullRequest, PullRequest,
		*PullResponse, PullResponse,
		*HeartbeatRequest, HeartbeatRequest,
		*HeartbeatResponse, HeartbeatResponse,
		*ReportRequest, ReportRequest,
		*ReportResponse, ReportResponse,
		*LeaseBatch, LeaseBatch,
		*ReportBatchRequest, ReportBatchRequest,
		*ReportBatchResponse, ReportBatchResponse:
		return true
	}
	return false
}

func (binaryCodec) Marshal(v any) ([]byte, error) {
	w := binWriter{b: make([]byte, 0, 64)}
	w.b = append(w.b, binMagic, binVersion)
	switch m := v.(type) {
	case *SubmitJobRequest:
		w.submitJobRequest(m)
	case SubmitJobRequest:
		w.submitJobRequest(&m)
	case *SubmitJobResponse:
		w.submitJobResponse(m)
	case SubmitJobResponse:
		w.submitJobResponse(&m)
	case *RegisterRequest:
		w.registerRequest(m)
	case RegisterRequest:
		w.registerRequest(&m)
	case *RegisterResponse:
		w.registerResponse(m)
	case RegisterResponse:
		w.registerResponse(&m)
	case *PullRequest:
		w.pullRequest(m)
	case PullRequest:
		w.pullRequest(&m)
	case *PullResponse:
		w.pullResponse(m)
	case PullResponse:
		w.pullResponse(&m)
	case *HeartbeatRequest:
		w.heartbeatRequest(m)
	case HeartbeatRequest:
		w.heartbeatRequest(&m)
	case *HeartbeatResponse:
		w.heartbeatResponse(m)
	case HeartbeatResponse:
		w.heartbeatResponse(&m)
	case *ReportRequest:
		w.reportRequest(m)
	case ReportRequest:
		w.reportRequest(&m)
	case *ReportResponse:
		w.reportResponse(m)
	case ReportResponse:
		w.reportResponse(&m)
	case *LeaseBatch:
		w.leaseBatch(m)
	case LeaseBatch:
		w.leaseBatch(&m)
	case *ReportBatchRequest:
		w.reportBatchRequest(m)
	case ReportBatchRequest:
		w.reportBatchRequest(&m)
	case *ReportBatchResponse:
		w.reportBatchResponse(m)
	case ReportBatchResponse:
		w.reportBatchResponse(&m)
	default:
		return nil, fmt.Errorf("api: binary codec does not encode %T", v)
	}
	return w.b, w.err
}

func (binaryCodec) Unmarshal(data []byte, v any) error {
	r := binReader{b: data}
	if len(data) < 3 || data[0] != binMagic || data[1] != binVersion {
		return fmt.Errorf("api: not a gridsched binary message (%d bytes)", len(data))
	}
	r.off = 2
	typ := r.byte()
	var want byte
	switch m := v.(type) {
	case *SubmitJobRequest:
		want = msgSubmitJobRequest
		if typ == want {
			r.submitJobRequest(m)
		}
	case *SubmitJobResponse:
		want = msgSubmitJobResponse
		if typ == want {
			m.JobID = r.str()
		}
	case *RegisterRequest:
		want = msgRegisterRequest
		if typ == want {
			r.registerRequest(m)
		}
	case *RegisterResponse:
		want = msgRegisterResponse
		if typ == want {
			m.WorkerID = r.str()
			m.Site = int(r.i64())
			m.Worker = int(r.i64())
			m.LeaseTTLMillis = r.i64()
		}
	case *PullRequest:
		want = msgPullRequest
		if typ == want {
			m.WaitMillis = r.i64()
		}
	case *PullResponse:
		want = msgPullResponse
		if typ == want {
			r.pullResponse(m)
		}
	case *HeartbeatRequest:
		want = msgHeartbeatRequest
		if typ == want {
			m.WorkerID = r.str()
		}
	case *HeartbeatResponse:
		want = msgHeartbeatResponse
		if typ == want {
			m.State = r.heartbeatState()
		}
	case *ReportRequest:
		want = msgReportRequest
		if typ == want {
			m.WorkerID = r.str()
			m.Outcome = r.outcome()
		}
	case *ReportResponse:
		want = msgReportResponse
		if typ == want {
			r.reportResponse(m)
		}
	case *LeaseBatch:
		want = msgLeaseBatch
		if typ == want {
			r.leaseBatch(m)
		}
	case *ReportBatchRequest:
		want = msgReportBatchRequest
		if typ == want {
			r.reportBatchRequest(m)
		}
	case *ReportBatchResponse:
		want = msgReportBatchResponse
		if typ == want {
			r.reportBatchResponse(m)
		}
	default:
		return fmt.Errorf("api: binary codec does not decode %T", v)
	}
	if r.err == nil && typ != want {
		return fmt.Errorf("api: binary message type %d, want %d (%T)", typ, want, v)
	}
	if r.err == nil && r.off != len(r.b) {
		return fmt.Errorf("api: %d trailing bytes after binary message", len(r.b)-r.off)
	}
	return r.err
}

// binWriter appends binary fields. Marshal never fails for the supported
// types, so err stays nil; it exists to mirror binReader's shape.
type binWriter struct {
	b   []byte
	err error
}

func (w *binWriter) u64(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *binWriter) i64(v int64)  { w.b = binary.AppendVarint(w.b, v) }
func (w *binWriter) byte(v byte)  { w.b = append(w.b, v) }

func (w *binWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.b = append(w.b, s...)
}

func (w *binWriter) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.b = append(w.b, b)
}

func (w *binWriter) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *binWriter) submitJobRequest(m *SubmitJobRequest) {
	w.byte(msgSubmitJobRequest)
	w.str(m.Name)
	w.str(m.Algorithm)
	w.i64(m.Seed)
	w.bool(m.Workload != nil)
	if m.Workload != nil {
		w.str(m.Workload.Name)
		w.i64(int64(m.Workload.NumFiles))
		w.u64(uint64(len(m.Workload.Tasks)))
		for _, t := range m.Workload.Tasks {
			w.task(t)
		}
	}
	w.str(m.SubmissionID)
	w.str(m.Tenant)
	w.i64(int64(m.Weight))
	w.strs(m.Requires)
	w.i64(m.DeadlineMillis)
}

func (w *binWriter) task(t workload.Task) {
	w.i64(int64(t.ID))
	w.u64(uint64(len(t.Files)))
	for _, f := range t.Files {
		w.i64(int64(f))
	}
}

func (w *binWriter) submitJobResponse(m *SubmitJobResponse) {
	w.byte(msgSubmitJobResponse)
	w.str(m.JobID)
}

func (w *binWriter) registerRequest(m *RegisterRequest) {
	w.byte(msgRegisterRequest)
	w.bool(m.Site != nil)
	if m.Site != nil {
		w.i64(int64(*m.Site))
	}
	w.strs(m.Tags)
}

func (w *binWriter) registerResponse(m *RegisterResponse) {
	w.byte(msgRegisterResponse)
	w.str(m.WorkerID)
	w.i64(int64(m.Site))
	w.i64(int64(m.Worker))
	w.i64(m.LeaseTTLMillis)
}

func (w *binWriter) pullRequest(m *PullRequest) {
	w.byte(msgPullRequest)
	w.i64(m.WaitMillis)
}

func (w *binWriter) pullResponse(m *PullResponse) {
	w.byte(msgPullResponse)
	w.pullStatus(m.Status)
	w.bool(m.Assignment != nil)
	if m.Assignment != nil {
		w.assignment(m.Assignment)
	}
	w.i64(int64(m.OpenJobs))
}

func (w *binWriter) assignment(a *Assignment) {
	w.str(a.ID)
	w.str(a.JobID)
	w.task(a.Task)
	w.i64(int64(a.Staged))
	w.i64(a.LeaseTTLMillis)
}

func (w *binWriter) heartbeatRequest(m *HeartbeatRequest) {
	w.byte(msgHeartbeatRequest)
	w.str(m.WorkerID)
}

func (w *binWriter) heartbeatResponse(m *HeartbeatResponse) {
	w.byte(msgHeartbeatResponse)
	w.heartbeatState(m.State)
}

func (w *binWriter) reportRequest(m *ReportRequest) {
	w.byte(msgReportRequest)
	w.str(m.WorkerID)
	w.outcome(m.Outcome)
}

func (w *binWriter) reportResponse(m *ReportResponse) {
	w.byte(msgReportResponse)
	w.bool(m.Accepted)
	w.bool(m.Stale)
	w.bool(m.Cancelled)
	w.jobState(m.JobState)
}

func (w *binWriter) leaseBatch(m *LeaseBatch) {
	w.byte(msgLeaseBatch)
	w.u64(uint64(len(m.Assignments)))
	for i := range m.Assignments {
		w.assignment(&m.Assignments[i])
	}
	w.u64(uint64(len(m.Cancelled)))
	for _, id := range m.Cancelled {
		w.str(id)
	}
	w.i64(int64(m.OpenJobs))
}

func (w *binWriter) reportBatchRequest(m *ReportBatchRequest) {
	w.byte(msgReportBatchRequest)
	w.u64(uint64(len(m.Reports)))
	for _, it := range m.Reports {
		w.str(it.AssignmentID)
		w.outcome(it.Outcome)
	}
}

func (w *binWriter) reportBatchResponse(m *ReportBatchResponse) {
	w.byte(msgReportBatchResponse)
	w.u64(uint64(len(m.Results)))
	for i := range m.Results {
		r := &m.Results[i]
		w.bool(r.Accepted)
		w.bool(r.Stale)
		w.bool(r.Cancelled)
		w.jobState(r.JobState)
	}
}

// Enum bytes. setErr on encode keeps an out-of-vocabulary string from
// silently becoming a wrong byte; decode rejects unknown bytes.

func (w *binWriter) setErr(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

func (w *binWriter) pullStatus(s string) {
	switch s {
	case StatusAssigned:
		w.byte(1)
	case StatusEmpty:
		w.byte(2)
	default:
		w.setErr("api: unknown pull status %q", s)
	}
}

func (w *binWriter) heartbeatState(s string) {
	switch s {
	case HeartbeatActive:
		w.byte(1)
	case HeartbeatCancelled:
		w.byte(2)
	case HeartbeatGone:
		w.byte(3)
	default:
		w.setErr("api: unknown heartbeat state %q", s)
	}
}

func (w *binWriter) outcome(s string) {
	switch s {
	case OutcomeSuccess:
		w.byte(1)
	case OutcomeFailure:
		w.byte(2)
	default:
		w.setErr("api: unknown outcome %q", s)
	}
}

func (w *binWriter) jobState(s string) {
	switch s {
	case "":
		w.byte(0)
	case JobRunning:
		w.byte(1)
	case JobCompleted:
		w.byte(2)
	default:
		w.setErr("api: unknown job state %q", s)
	}
}

// binReader consumes binary fields, sticking on the first error; every
// length is validated against the bytes actually remaining, so corrupt
// input cannot force a large allocation.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) setErr(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.setErr("api: truncated binary message")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.setErr("api: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.setErr("api: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bool() bool {
	switch r.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.setErr("api: bad bool byte")
		return false
	}
}

func (r *binReader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.setErr("api: string length %d exceeds %d remaining bytes", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// strs reads a string collection (nil when empty, mirroring omitempty
// JSON so a binary round trip compares equal to a JSON one).
func (r *binReader) strs() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.str()
	}
	return ss
}

// count reads a collection length and bounds it by the remaining bytes
// (every element costs at least one byte on the wire).
func (r *binReader) count() int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()) {
		r.setErr("api: collection length %d exceeds %d remaining bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

func (r *binReader) submitJobRequest(m *SubmitJobRequest) {
	m.Name = r.str()
	m.Algorithm = r.str()
	m.Seed = r.i64()
	if r.bool() {
		wl := &workload.Workload{}
		wl.Name = r.str()
		wl.NumFiles = int(r.i64())
		if n := r.count(); n > 0 {
			wl.Tasks = make([]workload.Task, n)
			for i := range wl.Tasks {
				r.task(&wl.Tasks[i])
			}
		}
		m.Workload = wl
	}
	m.SubmissionID = r.str()
	m.Tenant = r.str()
	m.Weight = int(r.i64())
	m.Requires = r.strs()
	m.DeadlineMillis = r.i64()
}

func (r *binReader) task(t *workload.Task) {
	t.ID = workload.TaskID(r.i64())
	if n := r.count(); n > 0 {
		t.Files = make([]workload.FileID, n)
		for i := range t.Files {
			t.Files[i] = workload.FileID(r.i64())
		}
	}
}

func (r *binReader) registerRequest(m *RegisterRequest) {
	if r.bool() {
		site := int(r.i64())
		m.Site = &site
	}
	m.Tags = r.strs()
}

func (r *binReader) pullResponse(m *PullResponse) {
	m.Status = r.pullStatus()
	if r.bool() {
		m.Assignment = &Assignment{}
		r.assignment(m.Assignment)
	}
	m.OpenJobs = int(r.i64())
}

func (r *binReader) assignment(a *Assignment) {
	a.ID = r.str()
	a.JobID = r.str()
	r.task(&a.Task)
	a.Staged = int(r.i64())
	a.LeaseTTLMillis = r.i64()
}

func (r *binReader) reportResponse(m *ReportResponse) {
	m.Accepted = r.bool()
	m.Stale = r.bool()
	m.Cancelled = r.bool()
	m.JobState = r.jobState()
}

func (r *binReader) leaseBatch(m *LeaseBatch) {
	if n := r.count(); n > 0 {
		m.Assignments = make([]Assignment, n)
		for i := range m.Assignments {
			r.assignment(&m.Assignments[i])
		}
	}
	if n := r.count(); n > 0 {
		m.Cancelled = make([]string, n)
		for i := range m.Cancelled {
			m.Cancelled[i] = r.str()
		}
	}
	m.OpenJobs = int(r.i64())
}

func (r *binReader) reportBatchRequest(m *ReportBatchRequest) {
	if n := r.count(); n > 0 {
		m.Reports = make([]ReportItem, n)
		for i := range m.Reports {
			m.Reports[i].AssignmentID = r.str()
			m.Reports[i].Outcome = r.outcome()
		}
	}
}

func (r *binReader) reportBatchResponse(m *ReportBatchResponse) {
	if n := r.count(); n > 0 {
		m.Results = make([]ReportResponse, n)
		for i := range m.Results {
			r.reportResponse(&m.Results[i])
		}
	}
}

func (r *binReader) pullStatus() string {
	switch r.byte() {
	case 1:
		return StatusAssigned
	case 2:
		return StatusEmpty
	default:
		r.setErr("api: bad pull status byte")
		return ""
	}
}

func (r *binReader) heartbeatState() string {
	switch r.byte() {
	case 1:
		return HeartbeatActive
	case 2:
		return HeartbeatCancelled
	case 3:
		return HeartbeatGone
	default:
		r.setErr("api: bad heartbeat state byte")
		return ""
	}
}

func (r *binReader) outcome() string {
	switch r.byte() {
	case 1:
		return OutcomeSuccess
	case 2:
		return OutcomeFailure
	default:
		r.setErr("api: bad outcome byte")
		return ""
	}
}

func (r *binReader) jobState() string {
	switch r.byte() {
	case 0:
		return ""
	case 1:
		return JobRunning
	case 2:
		return JobCompleted
	default:
		r.setErr("api: bad job state byte")
		return ""
	}
}
