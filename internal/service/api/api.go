// Package api defines the wire types of the gridschedd HTTP/JSON protocol
// (internal/service). Both the server and the Go client
// (internal/service/client) speak exactly these structures, so the protocol
// is documented in one place:
//
//	POST   /v1/jobs                     SubmitJobRequest  -> SubmitJobResponse
//	GET    /v1/jobs                                       -> []JobStatus
//	GET    /v1/jobs/{id}                                  -> JobStatus
//	DELETE /v1/jobs/{id}                                  -> {} (completed jobs only)
//	GET    /v1/tenants                                    -> []TenantStatus
//	PUT    /v1/tenants/{tenant}         TenantQuotaRequest -> TenantStatus
//	POST   /v1/workers                  RegisterRequest   -> RegisterResponse
//	GET    /v1/workers                                    -> []WorkerStatus
//	DELETE /v1/workers/{id}                               -> {}
//	POST   /v1/workers/{id}/pull        PullRequest       -> PullResponse (long poll)
//	GET    /v1/workers/{id}/stream?batch=k                -> chunked LeaseBatch frame stream
//	POST   /v1/workers/{id}/reports     ReportBatchRequest -> ReportBatchResponse
//	POST   /v1/assignments/{id}/heartbeat HeartbeatRequest -> HeartbeatResponse
//	POST   /v1/assignments/{id}/report  ReportRequest     -> ReportResponse
//	GET    /v1/replication/stream?from=N                  -> chunked frame stream (internal/replicate)
//	POST   /v1/replication/promote                        -> PromoteResponse (followers only)
//	GET    /v1/partitions                                 -> PartitionTopology (see docs/PARTITIONING.md)
//	GET    /healthz                                       -> Health
//	GET    /readyz                                        -> Readiness (role + replication lag)
//	GET    /metrics                                       -> text (see internal/metrics)
//
// Request and response bodies default to JSON; the hot-path payloads also
// speak the compact binary codec in codec.go, negotiated per request via
// Content-Type/Accept (ContentTypeBinary). The lease stream frames
// LeaseBatch messages with AppendFrame/ReadFrame.
//
// Errors are returned as an ErrorResponse body with a non-2xx status code.
// A follower answers mutating requests with 421 Misdirected Request, an
// ErrorResponse body, and the leader's base URL in the LeaderHeader — the
// redirect hint the Go client's endpoint failover follows.
// The full schema of every endpoint is documented in docs/PROTOCOL.md.
package api

import (
	"gridsched/internal/workload"
)

// Job states.
const (
	JobRunning   = "running"
	JobCompleted = "completed"
)

// Pull statuses.
const (
	// StatusAssigned: PullResponse.Assignment holds a task to execute.
	StatusAssigned = "assigned"
	// StatusEmpty: the long poll timed out with nothing dispatchable for
	// this worker; pull again.
	StatusEmpty = "empty"
)

// Heartbeat states.
const (
	// HeartbeatActive: keep executing; the lease deadline was renewed.
	HeartbeatActive = "active"
	// HeartbeatCancelled: another replica of the task completed; abandon
	// the execution and report (the report is counted as cancelled).
	HeartbeatCancelled = "cancelled"
	// HeartbeatGone: the lease expired (or the assignment never existed);
	// the task has been requeued, so abandon the execution. A late report
	// will be rejected as stale.
	HeartbeatGone = "gone"
)

// Report outcomes.
const (
	OutcomeSuccess = "success"
	OutcomeFailure = "failure"
)

// SubmitJobRequest submits a whole Bag-of-Tasks workload as one job. The
// algorithm is any name accepted by the server's scheduler factory (for
// gridschedd: the names of gridsched.AlgorithmNames, e.g. "combined.2").
type SubmitJobRequest struct {
	Name      string             `json:"name"`
	Algorithm string             `json:"algorithm"`
	Seed      int64              `json:"seed,omitempty"`
	Workload  *workload.Workload `json:"workload"`
	// SubmissionID is an optional client-chosen idempotency key: a
	// resubmission carrying the same key returns the original job's id
	// instead of creating a duplicate. This is what makes retrying a
	// submission safe when the acknowledgement was lost to a connection
	// failure or a server restart (the Go client generates one per
	// SubmitJob call). On a journaled server the key survives restarts
	// until its job is deleted.
	SubmissionID string `json:"submissionId,omitempty"`
	// Tenant groups jobs for fair-share arbitration and concurrency
	// quotas: up to 128 characters of [A-Za-z0-9._-] (it must survive as
	// a URL path segment and a metrics label). Empty means the anonymous
	// default tenant; such jobs still get a fair share and can never be
	// starved by weighted tenants.
	Tenant string `json:"tenant,omitempty"`
	// Weight is the job's fair-share weight: over a contended worker pool
	// the dispatch rates of runnable jobs converge to the ratio of their
	// weights. Zero (or absent) means the server's default weight; the
	// server rejects negative or absurdly large values.
	Weight int `json:"weight,omitempty"`
	// Requires restricts dispatch to workers that registered with every
	// listed capability tag (same charset as tags; see RegisterRequest).
	// Enforced at lease grant, before the scheduler is consulted, so it
	// never perturbs scheduler state or RNG draws.
	Requires []string `json:"requires,omitempty"`
	// DeadlineMillis is an optional soft deadline (Unix milliseconds).
	// A job predicted to miss it is boosted ahead of fair-share order at
	// dispatch; the deadline never kills the job (docs/SCHEDULING.md).
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// SubmitJobResponse acknowledges a submission.
type SubmitJobResponse struct {
	JobID string `json:"jobId"`
}

// JobStatus is the observable state of one resident job.
type JobStatus struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Algorithm string `json:"algorithm"`
	State     string `json:"state"` // JobRunning | JobCompleted
	// Tenant and Weight are the job's fair-share parameters as resolved by
	// the server (Weight is never zero: absent weights take the default).
	Tenant    string `json:"tenant,omitempty"`
	Weight    int    `json:"weight"`
	Tasks     int    `json:"tasks"`
	Remaining int    `json:"remaining"`
	// Dispatched counts assignments handed to workers (including
	// re-dispatches after lease expiry and storage-affinity replicas).
	Dispatched int `json:"dispatched"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Cancelled  int `json:"cancelled"`
	// Expired counts leases that timed out and requeued their task.
	Expired int `json:"expired"`
	// Transfers counts files fetched into site stores for this job.
	Transfers int64 `json:"transfers"`
	// Speculated counts speculative (straggler-mitigation) re-dispatches,
	// a subset of Dispatched.
	Speculated int `json:"speculated,omitempty"`
	// Requires and DeadlineMillis echo the submit-time constraints.
	Requires        []string `json:"requires,omitempty"`
	DeadlineMillis  int64    `json:"deadlineMillis,omitempty"`
	SubmittedAtUnix int64    `json:"submittedAtUnix"`
	FinishedAtUnix  int64    `json:"finishedAtUnix,omitempty"`
}

// RegisterRequest enrolls a worker. A nil Site lets the service pick the
// least-loaded site; otherwise the worker is pinned to *Site.
type RegisterRequest struct {
	Site *int `json:"site,omitempty"`
	// Tags are the worker's capability tags (up to 16 of [A-Za-z0-9._-],
	// 64 chars each): jobs submitted with Requires only dispatch to
	// workers carrying every required tag.
	Tags []string `json:"tags,omitempty"`
}

// RegisterResponse assigns the worker its identity: a service-unique ID and
// a (site, worker) slot, which is the core.WorkerRef the schedulers see.
type RegisterResponse struct {
	WorkerID string `json:"workerId"`
	Site     int    `json:"site"`
	Worker   int    `json:"worker"`
	// LeaseTTLMillis is the lease duration for both the worker
	// registration and task assignments; heartbeat at a fraction of it.
	LeaseTTLMillis int64 `json:"leaseTtlMillis"`
}

// PullRequest asks for a task, waiting up to WaitMillis for one to become
// dispatchable (long poll). The server may cap the wait.
type PullRequest struct {
	WaitMillis int64 `json:"waitMillis"`
}

// Assignment is one leased task execution.
type Assignment struct {
	ID    string        `json:"id"`
	JobID string        `json:"jobId"`
	Task  workload.Task `json:"task"`
	// Staged is how many of the task's files were newly fetched into the
	// worker's site store when the assignment was made; a client modelling
	// staging cost (live.Config.StageDelay) keys off it.
	Staged int `json:"staged"`
	// LeaseTTLMillis echoes the lease duration; the execution must
	// heartbeat within it or the task is requeued.
	LeaseTTLMillis int64 `json:"leaseTtlMillis"`
}

// PullResponse carries an assignment or an empty-poll notice.
type PullResponse struct {
	Status     string      `json:"status"` // StatusAssigned | StatusEmpty
	Assignment *Assignment `json:"assignment,omitempty"`
	// OpenJobs is the number of jobs still running; a worker configured to
	// exit when the service drains keys off it reaching zero.
	OpenJobs int `json:"openJobs"`
}

// HeartbeatRequest renews an assignment's lease.
type HeartbeatRequest struct {
	WorkerID string `json:"workerId"`
}

// HeartbeatResponse tells the worker whether to keep going.
type HeartbeatResponse struct {
	State string `json:"state"` // HeartbeatActive | HeartbeatCancelled | HeartbeatGone
}

// ReportRequest ends an assignment with an outcome.
type ReportRequest struct {
	WorkerID string `json:"workerId"`
	Outcome  string `json:"outcome"` // OutcomeSuccess | OutcomeFailure
}

// ReportResponse acknowledges a report. Stale means the lease had already
// expired and the task was requeued: the execution's result was discarded
// (this is what guarantees no duplicate completions). Cancelled means the
// execution was a replica obsoleted by another worker's completion.
type ReportResponse struct {
	Accepted  bool   `json:"accepted"`
	Stale     bool   `json:"stale,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`
	JobState  string `json:"jobState,omitempty"`
}

// LeaseBatch is one frame of the streaming lease channel
// (GET /v1/workers/{id}/stream). The server pushes a frame whenever the
// arbiter grants this worker leases (up to the stream's batch size k per
// frame), when held executions are cancelled, or as a periodic keepalive.
// A frame with no assignments and no cancellations is that keepalive; it
// still carries a fresh OpenJobs, which is how a drain-watching worker
// learns the service emptied without polling.
type LeaseBatch struct {
	Assignments []Assignment `json:"assignments,omitempty"`
	// Cancelled names held assignments whose executions the server no
	// longer wants (a replica completed elsewhere, or the job was
	// cancelled). The worker should abandon them and report failure; the
	// server counts such reports as cancellations, exactly like the
	// long-poll heartbeat-cancelled path.
	Cancelled []string `json:"cancelled,omitempty"`
	// OpenJobs mirrors PullResponse.OpenJobs.
	OpenJobs int `json:"openJobs"`
}

// ReportItem is one outcome in a batched report.
type ReportItem struct {
	AssignmentID string `json:"assignmentId"`
	Outcome      string `json:"outcome"` // OutcomeSuccess | OutcomeFailure
}

// ReportBatchRequest (POST /v1/workers/{id}/reports) ends up to k
// assignments in one request; the server journals the whole batch through
// a single WAL append (one fsync amortized across it).
type ReportBatchRequest struct {
	Reports []ReportItem `json:"reports"`
}

// ReportBatchResponse carries one ReportResponse per submitted item, in
// order. Individual stale or cancelled outcomes do not fail the batch.
type ReportBatchResponse struct {
	Results []ReportResponse `json:"results"`
}

// WorkerStatus is one registered worker's observable context, returned by
// GET /v1/workers: its slot, tags, held leases, and the telemetry EWMAs
// the context-aware policies score with (docs/SCHEDULING.md).
type WorkerStatus struct {
	WorkerID string   `json:"workerId"`
	Site     int      `json:"site"`
	Worker   int      `json:"worker"`
	Tags     []string `json:"tags,omitempty"`
	// Assignments is the number of leases the worker currently holds.
	Assignments int `json:"assignments"`
	// MeanTaskMillis is the slot's task-duration EWMA (0 until the first
	// completed task).
	MeanTaskMillis float64 `json:"meanTaskMillis"`
	// FailureRate is the slot's failure-indicator EWMA in [0, 1].
	FailureRate float64 `json:"failureRate"`
	// Samples counts completed-task duration observations for the slot;
	// Events counts all outcome observations (successes + failures).
	Samples int64 `json:"samples"`
	Events  int64 `json:"events"`
	// ExpiresAtUnix is when the worker's registration lease lapses unless
	// renewed.
	ExpiresAtUnix int64 `json:"expiresAtUnix"`
}

// TenantStatus is the fair-share arbiter's view of one tenant, returned by
// GET /v1/tenants and rendered as labeled gauges at /metrics.
type TenantStatus struct {
	// Tenant is the tenant name; "" is the anonymous default tenant that
	// jobs submitted without a tenant belong to.
	Tenant string `json:"tenant"`
	// Weight is the summed weight of the tenant's running jobs.
	Weight int64 `json:"weight"`
	// RunningJobs counts the tenant's resident running jobs.
	RunningJobs int `json:"runningJobs"`
	// InFlight is the tenant's currently leased assignments.
	InFlight int `json:"inFlight"`
	// MaxInFlight is the resolved concurrency quota enforced at lease
	// grant (0: unlimited). Per-tenant overrides set via PUT /v1/tenants
	// take precedence over the server-wide default.
	MaxInFlight int `json:"maxInFlight"`
	// ShareTarget is Weight over the total weight of all running jobs —
	// the dispatch fraction the arbiter steers toward while the tenant
	// has runnable work.
	ShareTarget float64 `json:"shareTarget"`
	// ShareAchieved is the tenant's fraction of the most recent dispatches
	// (a sliding window; see /metrics gridsched_tenant_share_achieved).
	ShareAchieved float64 `json:"shareAchieved"`
	// Dispatches counts the tenant's task dispatches (including
	// re-dispatches), surviving restarts on a journaled server.
	Dispatches int64 `json:"dispatches"`
	// Throttles counts dispatch opportunities skipped because the tenant
	// was at its MaxInFlight quota. Process-local.
	Throttles int64 `json:"throttles"`
}

// TenantQuotaRequest (PUT /v1/tenants/{tenant}) overrides one tenant's
// concurrency quota. MaxInFlight > 0 caps the tenant's concurrently leased
// assignments; 0 reverts the tenant to the server-wide default; negative
// values are rejected. On a journaled server the override survives
// restarts.
type TenantQuotaRequest struct {
	MaxInFlight int `json:"maxInFlight"`
}

// PartitionInfo describes one partition of a horizontally partitioned
// deployment (docs/PARTITIONING.md).
type PartitionInfo struct {
	// Index is the partition's identity: it owns exactly the ids whose
	// numeric part ≡ Index (mod PartitionTopology.Count).
	Index int `json:"index"`
	// URL is the partition's base URL. Set by the router (which knows the
	// deployment); a partition answering directly reports only itself.
	URL string `json:"url,omitempty"`
	// Up is the router's live view of the partition (a fresh probe or the
	// outcome of the request being answered). A partition answering about
	// itself is trivially up.
	Up bool `json:"up"`
	// Status carries the partition's readiness status ("ready",
	// "recovering", a role) when known, or the probe error when Up is
	// false.
	Status string `json:"status,omitempty"`
}

// PartitionTopology is the GET /v1/partitions body. A partition-aware
// client fetches it once (from the router) and routes id-keyed requests
// straight to the owning partition, skipping the router hop.
type PartitionTopology struct {
	// Count is the number of partitions; 1 means unpartitioned.
	Count int `json:"count"`
	// Self is the answering partition's own index; absent (0) on a router,
	// which speaks for all of them.
	Self int `json:"self,omitempty"`
	// Partitions lists every partition with its URL and health, in index
	// order. Only the router fills it; a bare partition leaves it empty.
	Partitions []PartitionInfo `json:"partitions,omitempty"`
}

// PartitionsDownHeader is set by the router on aggregated reads that
// succeeded only partially: a comma-separated list of partition indexes
// that could not be reached. Its presence means totals are a lower bound.
const PartitionsDownHeader = "X-Gridsched-Partitions-Down"

// Health is the /healthz body.
type Health struct {
	Status  string `json:"status"` // "ok"
	Jobs    int    `json:"jobs"`
	Workers int    `json:"workers"`
	// OpenJobs counts jobs still running (Jobs includes completed ones
	// until they are deleted). The partition router reads it to place
	// fresh worker registrations on the partition with work waiting.
	OpenJobs int `json:"openJobs"`
}

// Replication roles, reported by GET /readyz so load balancers can route
// writes to the leader only.
const (
	// RoleLeader serves reads and writes and streams its WAL to followers.
	RoleLeader = "leader"
	// RoleFollower replicates the leader's WAL, serves read-only status,
	// and rejects mutations with 421 + a leader redirect hint.
	RoleFollower = "follower"
	// RoleRecovering is a daemon still replaying snapshot + journal (or a
	// follower mid-promotion); not ready for traffic.
	RoleRecovering = "recovering"
)

// LeaderHeader is the response header carrying the leader's base URL on a
// follower's 421 rejection (and on its /readyz), so clients and load
// balancers learn where writes go.
const LeaderHeader = "X-Gridsched-Leader"

// Readiness is the /readyz body. "ready" (200) once recovery completed
// and the service answers traffic; "recovering" (503) while a daemon that
// bound its listener early is still replaying snapshot + journal. A
// follower reports "ready" with Role "follower": ready for read-only
// traffic, never for writes — route on Role, not just status.
type Readiness struct {
	Status string `json:"status"` // "ready" | "recovering"
	// Role distinguishes leaders from followers (RoleLeader, RoleFollower,
	// RoleRecovering).
	Role string `json:"role,omitempty"`
	// LastLSN is the last journal LSN this node holds (0 without -data-dir).
	LastLSN uint64 `json:"lastLsn,omitempty"`
	// LeaderLSN (followers) is the leader's last announced LSN.
	LeaderLSN uint64 `json:"leaderLsn,omitempty"`
	// LagLSN (followers) is LeaderLSN - LastLSN: how far replication is
	// behind, in journal records.
	LagLSN uint64 `json:"lagLsn,omitempty"`
	// Leader (followers) is the leader's base URL.
	Leader string `json:"leader,omitempty"`
}

// PromoteResponse acknowledges POST /v1/replication/promote: the follower
// finished recovery over its replicated state and now serves as leader.
type PromoteResponse struct {
	Role    string `json:"role"` // RoleLeader
	LastLSN uint64 `json:"lastLsn"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
