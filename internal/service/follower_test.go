package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/replicate"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
)

// startFollower spins up a hot standby replicating the leader at
// leaderURL into its own temp data dir.
func startFollower(t *testing.T, leaderURL string) *service.Follower {
	t.Helper()
	fl, err := service.NewFollower(durableConfig(t.TempDir()), service.FollowerConfig{
		Leader:       leaderURL,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	return fl
}

// waitCaughtUp blocks until the follower's local LSN reaches the
// leader's.
func waitCaughtUp(t *testing.T, fl *service.Follower, s *service.Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for fl.LastLSN() < s.ReplicationLastLSN() {
		if err := fl.Halted(); err != nil {
			t.Fatalf("follower halted while catching up: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, leader at %d", fl.LastLSN(), s.ReplicationLastLSN())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// getJSON fetches one follower endpoint into out.
func getJSON(t *testing.T, h http.Handler, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	resp := rr.Result()
	if out != nil {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp
}

// normalizeForFollower blanks the live-only fields a read-only catalog
// cannot know: in-flight assignment state and the simulated transfer
// counters that live inside the scheduler.
func normalizeForFollower(sts []api.JobStatus) []api.JobStatus {
	out := make([]api.JobStatus, len(sts))
	for i, st := range sts {
		st.Transfers = 0
		out[i] = st
	}
	return out
}

func normalizeTenants(sts []api.TenantStatus) []api.TenantStatus {
	out := make([]api.TenantStatus, len(sts))
	for i, st := range sts {
		st.InFlight = 0
		st.ShareAchieved = 0
		st.Throttles = 0
		out[i] = st
	}
	return out
}

// TestFollowerMirrorsLeader drives a mixed workload on a leader — two
// tenants, a quota override, a completed job, a half-done job — and
// checks the standby's /v1/jobs and /v1/tenants converge to the leader's
// view, field by field.
func TestFollowerMirrorsLeader(t *testing.T) {
	s, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	fl := startFollower(t, srv.URL)

	// Job 1 (tenant A): driven to completion.
	done, err := s.SubmitByName("astro", "rest", syntheticWorkload(12, 3), 7, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := pullSequence(t, s, -1); len(got) != 12 {
		t.Fatalf("drained %d tasks", len(got))
	}
	// Job 2 (tenant B): half-done, still running.
	if _, err := s.SubmitJob(api.SubmitJobRequest{
		Name: "bio", Algorithm: "combined.2", Workload: syntheticWorkload(20, 3), Seed: 11, Tenant: "tb",
	}); err != nil {
		t.Fatal(err)
	}
	pullSequence(t, s, 5)
	if _, err := s.SetTenantQuota("tb", 3); err != nil {
		t.Fatal(err)
	}

	waitCaughtUp(t, fl, s)

	var gotJobs []api.JobStatus
	getJSON(t, fl.Handler(), "/v1/jobs", &gotJobs)
	wantJobs := normalizeForFollower(s.Jobs())
	gotJobs = normalizeForFollower(gotJobs)
	if len(gotJobs) != len(wantJobs) {
		t.Fatalf("follower sees %d jobs, leader %d", len(gotJobs), len(wantJobs))
	}
	for i := range wantJobs {
		if !reflect.DeepEqual(gotJobs[i], wantJobs[i]) {
			t.Errorf("job %d:\nfollower %+v\nleader   %+v", i, gotJobs[i], wantJobs[i])
		}
	}

	var gotTenants []api.TenantStatus
	getJSON(t, fl.Handler(), "/v1/tenants", &gotTenants)
	wantTenants := normalizeTenants(s.Tenants())
	gotTenants = normalizeTenants(gotTenants)
	if len(gotTenants) != len(wantTenants) {
		t.Fatalf("follower sees %d tenants, leader %d: %+v vs %+v",
			len(gotTenants), len(wantTenants), gotTenants, wantTenants)
	}
	for i := range wantTenants {
		if gotTenants[i] != wantTenants[i] {
			t.Errorf("tenant %d:\nfollower %+v\nleader   %+v", i, gotTenants[i], wantTenants[i])
		}
	}

	// Single-job view agrees too.
	var one api.JobStatus
	getJSON(t, fl.Handler(), "/v1/jobs/"+done, &one)
	if one.State != api.JobCompleted || one.Completed != 12 {
		t.Fatalf("completed job on follower: %+v", one)
	}
}

// TestFollowerReadyzAndRedirect pins the follower's HTTP contract: truthful
// readiness with role and lag, and 421 + leader hint for mutations.
func TestFollowerReadyzAndRedirect(t *testing.T) {
	s, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	fl := startFollower(t, srv.URL)

	if _, err := s.SubmitByName("j", "workqueue", syntheticWorkload(4, 2), 1, ""); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, fl, s)

	var rd api.Readiness
	getJSON(t, fl.Handler(), "/readyz", &rd)
	if rd.Role != api.RoleFollower || rd.Status != "ready" {
		t.Fatalf("readiness %+v", rd)
	}
	if rd.Leader != srv.URL {
		t.Fatalf("readiness leader %q, want %q", rd.Leader, srv.URL)
	}
	if rd.LastLSN == 0 || rd.LastLSN != s.ReplicationLastLSN() {
		t.Fatalf("readiness lsn %d, leader %d", rd.LastLSN, s.ReplicationLastLSN())
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	rr := httptest.NewRecorder()
	fl.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("POST /v1/jobs on follower: %d, want 421", rr.Code)
	}
	if got := rr.Header().Get(api.LeaderHeader); got != srv.URL {
		t.Fatalf("leader hint %q, want %q", got, srv.URL)
	}
}

// TestFollowerSnapshotCatchUp connects the standby after the leader has
// already snapshotted and rotated its WAL away: the only complete source
// is the snapshot, which must be shipped and installed.
func TestFollowerSnapshotCatchUp(t *testing.T) {
	s, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.SubmitByName("pre", "rest", syntheticWorkload(10, 3), 3, ""); err != nil {
		t.Fatal(err)
	}
	pullSequence(t, s, 4)
	if err := s.SnapshotForTest(); err != nil {
		t.Fatal(err)
	}
	pullSequence(t, s, 2) // post-rotation tail frames

	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	fl := startFollower(t, srv.URL)
	waitCaughtUp(t, fl, s)

	if got := fl.ReplicationCounters().SnapshotsApplied.Load(); got == 0 {
		t.Fatal("follower caught up without applying the snapshot")
	}
	var gotJobs []api.JobStatus
	getJSON(t, fl.Handler(), "/v1/jobs", &gotJobs)
	wantJobs := normalizeForFollower(s.Jobs())
	gotJobs = normalizeForFollower(gotJobs)
	if len(gotJobs) != 1 || !reflect.DeepEqual(gotJobs[0], wantJobs[0]) {
		t.Fatalf("after snapshot catch-up:\nfollower %+v\nleader   %+v", gotJobs, wantJobs)
	}
}

// TestFollowerHaltsOnDivergence feeds the standby a stream with an LSN
// gap. It must halt — permanently, without applying past the gap — while
// continuing to serve the prefix it holds.
func TestFollowerHaltsOnDivergence(t *testing.T) {
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != replicate.StreamPath {
			http.NotFound(w, r)
			return
		}
		enc := replicate.NewEncoder(w)
		_ = enc.Frame(1, []byte(`{"op":"quota","tenant":"ta","quota":5,"ts":1}`))
		_ = enc.Frame(3, []byte(`{"op":"quota","tenant":"tb","quota":9,"ts":2}`)) // gap: 2 skipped
		_ = enc.Flush()
	}))
	t.Cleanup(leader.Close)

	fl := startFollower(t, leader.URL)
	deadline := time.Now().Add(5 * time.Second)
	for fl.Halted() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never halted on the LSN gap")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fl.LastLSN() != 1 {
		t.Fatalf("follower at lsn %d after halt, want 1 (nothing past the gap)", fl.LastLSN())
	}
	// Still serving the valid prefix, and the halt is scrapeable.
	var rd api.Readiness
	getJSON(t, fl.Handler(), "/readyz", &rd)
	if rd.LastLSN != 1 {
		t.Fatalf("halted follower readiness %+v", rd)
	}
	if fl.ReplicationCounters().Halted.Load() != 1 {
		t.Fatal("halt not reflected in the gridsched_replication_halted gauge")
	}
}

// TestFollowerResumesAcrossRestart closes a caught-up follower and builds
// a new one over the same data dir: it must resume from its local LSN,
// not refetch history, and still match the leader.
func TestFollowerResumesAcrossRestart(t *testing.T) {
	s, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	dir := t.TempDir()
	cfg := durableConfig(dir)
	fl, err := service.NewFollower(cfg, service.FollowerConfig{Leader: srv.URL, ReconnectMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitByName("j", "rest", syntheticWorkload(8, 3), 5, ""); err != nil {
		t.Fatal(err)
	}
	pullSequence(t, s, 3)
	waitCaughtUp(t, fl, s)
	resumeFrom := fl.LastLSN()
	fl.Close()

	pullSequence(t, s, 3) // progress while the standby is down

	fl2, err := service.NewFollower(cfg, service.FollowerConfig{Leader: srv.URL, ReconnectMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if fl2.LastLSN() < resumeFrom {
		t.Fatalf("restarted follower regressed: lsn %d, had %d", fl2.LastLSN(), resumeFrom)
	}
	waitCaughtUp(t, fl2, s)
	if got := fl2.ReplicationCounters().FramesApplied.Load(); got == 0 {
		t.Fatal("restarted follower applied nothing — stream did not resume")
	}
}

// TestPromotedFollowerDispatchMatchesLeaderRecovery is the identity proof
// behind failover: kill the leader, promote the standby, and the promoted
// node must dispatch the remaining tasks in exactly the order the
// uninterrupted leader would have — same schedulers, same RNG draws, same
// fair-share state, reconstructed purely from replicated frames.
func TestPromotedFollowerDispatchMatchesLeaderRecovery(t *testing.T) {
	const tasks, prefix = 80, 30
	w := syntheticWorkload(tasks, 4)

	// Reference: one uninterrupted in-memory service.
	ref := newService(t, service.Config{NewScheduler: gridsched.SchedulerFactory()})
	if _, err := ref.SubmitByName("job", "combined.2", w, 99, ""); err != nil {
		t.Fatal(err)
	}
	refSeq := pullSequence(t, ref, -1)
	if len(refSeq) != tasks {
		t.Fatalf("reference dispatched %d of %d", len(refSeq), tasks)
	}

	// Leader + hot standby.
	leader, err := service.New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leader.Close)
	srv := httptest.NewServer(leader.Handler())
	t.Cleanup(srv.Close)
	fl := startFollower(t, srv.URL)

	if _, err := leader.SubmitByName("job", "combined.2", w, 99, ""); err != nil {
		t.Fatal(err)
	}
	gotSeq := pullSequence(t, leader, prefix)
	waitCaughtUp(t, fl, leader)

	// Leader dies without warning; standby takes over.
	leader.CrashForTest()
	svc, err := fl.Promote()
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}
	defer svc.Close()
	if !fl.Promoted() {
		t.Fatal("Promoted() false after successful Promote")
	}
	gotSeq = append(gotSeq, pullSequence(t, svc, -1)...)

	if len(gotSeq) != len(refSeq) {
		t.Fatalf("dispatched %d tasks across the failover, reference %d", len(gotSeq), len(refSeq))
	}
	for i := range refSeq {
		if gotSeq[i] != refSeq[i] {
			t.Fatalf("dispatch %d: task %d after failover, task %d uninterrupted", i, gotSeq[i], refSeq[i])
		}
	}

	// Second promotion attempt is refused.
	if _, err := fl.Promote(); err == nil {
		t.Fatal("second Promote succeeded")
	} else if se := new(service.Error); !asServiceError(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("second Promote error: %v", err)
	}
}
