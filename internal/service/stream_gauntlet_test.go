package service_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/faultinject"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// TestStreamDropGauntlet is the fault-injection gauntlet for the streaming
// protocol: a journaled service behind a fault-injecting TCP proxy, one
// streaming worker, and a chaos loop severing every connection (stream and
// report batches alike) over and over. The invariants:
//
//   - the job still drains: dropped streams stop lease renewal, the sweep
//     expires and requeues, the worker reconnects and carries on;
//   - completions are exactly-once: retried report batches land Stale,
//     never double-counted, so the Completions counter ends at exactly the
//     task count;
//   - recovery identity: a crash after the chaos recovers, from journal
//     alone, to the same job state the live service reported.
//
// The CI race job runs this under -race, so the stream/report/sweep
// interleavings the chaos produces are also a data-race probe.
func TestStreamDropGauntlet(t *testing.T) {
	const tasks = 120
	dir := t.TempDir()
	cfg := durableConfig(dir)
	// Short TTL so severed streams expire and requeue within test time.
	cfg.LeaseTTL = 400 * time.Millisecond

	a, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	proxy, err := faultinject.NewProxy("127.0.0.1:0", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cl := client.New("http://"+proxy.Addr(), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if _, err := cl.SubmitJob(ctx, "gauntlet", "workqueue", 7, syntheticWorkload(tasks, 3)); err != nil {
		t.Fatal(err)
	}

	// Chaos: sever every proxied connection at a cadence that lets a few
	// tasks through per window, until the worker drains the job.
	chaosDone := make(chan struct{})
	workerDone := make(chan error, 1)
	go func() {
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-chaosDone:
				return
			case <-tick.C:
				proxy.CloseConns()
			}
		}
	}()
	go func() {
		workerDone <- cl.RunWorker(ctx, client.WorkerConfig{
			StreamBatch:   8,
			ReconnectWait: 50 * time.Millisecond,
			Execute: func(execCtx context.Context, _ core.WorkerRef, _ *api.Assignment) error {
				select {
				case <-execCtx.Done():
				case <-time.After(2 * time.Millisecond):
				}
				return nil
			},
			OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
				return resp.OpenJobs == 0, nil
			},
		})
	}()

	select {
	case err := <-workerDone:
		close(chaosDone)
		if err != nil {
			t.Fatalf("worker under chaos: %v", err)
		}
	case <-ctx.Done():
		close(chaosDone)
		t.Fatal("worker did not drain the job under chaos")
	}

	jobs := a.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs after gauntlet: %d", len(jobs))
	}
	pre := jobs[0]
	if pre.State != api.JobCompleted || pre.Completed != tasks || pre.Remaining != 0 {
		t.Fatalf("job after gauntlet: %+v", pre)
	}
	if got := a.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d, want exactly %d (no double-counted batch retries)", got, tasks)
	}

	// Crash and recover: the journal alone must reproduce the job state the
	// live service reported, bit for bit.
	a.CrashForTest()
	b, err := service.New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after gauntlet: %v", err)
	}
	defer b.Close()
	recovered := b.Jobs()
	if len(recovered) != 1 {
		t.Fatalf("jobs after recovery: %d", len(recovered))
	}
	if !reflect.DeepEqual(pre, recovered[0]) {
		t.Fatalf("recovery identity broken:\n live %+v\nrecov %+v", pre, recovered[0])
	}
}
