package service_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridsched/internal/core"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
)

// startHTTP serves s over a real listener and returns a client pointed at
// it. The client honors GRIDSCHED_TEST_CODEC, so these tests run under the
// CI codec-conformance matrix unchanged.
func startHTTP(t *testing.T, s *service.Service) *client.Client {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL, nil)
}

// TestStreamWorkerDrivesJobToCompletion is the tentpole's end-to-end
// check over a real TCP connection: a streaming worker (one lease channel,
// batched reports, no heartbeats) drains a job and every completion is
// counted exactly once.
func TestStreamWorkerDrivesJobToCompletion(t *testing.T) {
	const tasks = 60
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	w := syntheticWorkload(tasks, 3)
	jobID := submitWorkqueue(t, s, w)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	executed := 0
	err := cl.RunWorker(ctx, client.WorkerConfig{
		StreamBatch: 8,
		Execute: func(context.Context, core.WorkerRef, *api.Assignment) error {
			executed++
			return nil
		},
		OnIdle: func(_ context.Context, resp *api.PullResponse) (bool, error) {
			return resp.OpenJobs == 0, nil
		},
	})
	if err != nil {
		t.Fatalf("streaming worker: %v", err)
	}
	if executed != tasks {
		t.Fatalf("executed %d tasks, want %d", executed, tasks)
	}
	st, err := s.JobStatus(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobCompleted || st.Completed != tasks || st.Remaining != 0 {
		t.Fatalf("job after streaming drain: %+v", st)
	}
	if got := s.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions counter = %d, want %d (exactly once)", got, tasks)
	}
	if got := s.Counters().ActiveLeases.Load(); got != 0 {
		t.Fatalf("active leases after drain = %d", got)
	}
}

// TestStreamMutualExclusion pins the one-protocol-per-worker rule: a
// second stream, or a classic pull, while a stream is open is a 409 — the
// two protocols disagree about how many leases a worker may hold.
func TestStreamMutualExclusion(t *testing.T) {
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	ls, err := cl.StreamLeases(ctx, reg.WorkerID, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ae *client.APIError
	if _, err := cl.StreamLeases(ctx, reg.WorkerID, 4); !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("second stream: %v, want 409", err)
	}
	if _, err := cl.Pull(ctx, reg.WorkerID, 0); !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("pull during stream: %v, want 409", err)
	}
	ls.Close()

	// The server releases the stream claim when it notices the disconnect;
	// poll until a classic pull is admitted again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cl.Pull(ctx, reg.WorkerID, 0)
		if err == nil {
			break
		}
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("pull after stream close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReportBatchRetryIsStale is the exactly-once contract for batched
// reports: a client that retries a whole batch after a lost reply (the
// stream-drop case) gets every already-landed item back Stale, and the
// completion counters move only once.
func TestReportBatchRetryIsStale(t *testing.T) {
	const tasks = 4
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	submitWorkqueue(t, s, syntheticWorkload(tasks, 2))
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := cl.StreamLeases(ctx, reg.WorkerID, tasks)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	var items []api.ReportItem
	for len(items) < tasks {
		lb, err := ls.Next()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		for _, a := range lb.Assignments {
			items = append(items, api.ReportItem{AssignmentID: a.ID, Outcome: api.OutcomeSuccess})
		}
	}

	first, err := cl.ReportBatch(ctx, reg.WorkerID, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if !r.Accepted || r.Stale {
			t.Fatalf("first batch item %d: %+v", i, r)
		}
	}
	retry, err := cl.ReportBatch(ctx, reg.WorkerID, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range retry {
		if r.Accepted || !r.Stale {
			t.Fatalf("retried batch item %d: %+v, want stale", i, r)
		}
	}
	if got := s.Counters().Completions.Load(); got != tasks {
		t.Fatalf("completions = %d after retried batch, want %d", got, tasks)
	}
	if got := s.Counters().StaleReports.Load(); got != tasks {
		t.Fatalf("stale reports = %d, want %d", got, tasks)
	}
}

// TestReportBatchValidatesOutcomes: a malformed item rejects the whole
// batch before anything is journaled. Under JSON the server answers 400
// naming the index; under the binary codec the strict encoder refuses the
// out-of-vocabulary outcome client-side and the request never leaves.
func TestReportBatchValidatesOutcomes(t *testing.T) {
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.ReportBatch(ctx, reg.WorkerID, []api.ReportItem{
		{AssignmentID: "a", Outcome: api.OutcomeSuccess},
		{AssignmentID: "b", Outcome: "shrug"},
	})
	var ae *client.APIError
	switch {
	case errors.As(err, &ae):
		if ae.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad outcome in batch: %v, want 400", err)
		}
	case err == nil || !strings.Contains(err.Error(), "unknown outcome"):
		t.Fatalf("bad outcome in batch: %v, want a 400 or an encode refusal", err)
	}
}

// TestReportBatchDuplicateAssignment: the same assignment id twice in one
// batch applies once; the duplicate is stale, exactly as a second single
// report would be. The nastiest instance is a duplicated final task of a
// job — the first apply completes the job and releases its scheduler, so
// a double apply would hit a nil scheduler while holding the shard lock
// and wedge the shard.
func TestReportBatchDuplicateAssignment(t *testing.T) {
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	submitWorkqueue(t, s, syntheticWorkload(1, 2))
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := cl.Pull(ctx, reg.WorkerID, 5*time.Second)
	if err != nil || pr.Assignment == nil {
		t.Fatalf("pull: %v, %+v", err, pr)
	}
	dup := api.ReportItem{AssignmentID: pr.Assignment.ID, Outcome: api.OutcomeSuccess}
	results, err := cl.ReportBatch(ctx, reg.WorkerID, []api.ReportItem{dup, dup})
	if err != nil {
		t.Fatalf("batch with duplicate: %v", err)
	}
	if !results[0].Accepted || results[0].Stale {
		t.Fatalf("first occurrence: %+v, want accepted", results[0])
	}
	if results[1].Accepted || !results[1].Stale {
		t.Fatalf("duplicate occurrence: %+v, want stale", results[1])
	}
	if got := s.Counters().Completions.Load(); got != 1 {
		t.Fatalf("completions = %d, want 1 (exactly once)", got)
	}
	if got := s.Counters().ActiveLeases.Load(); got != 0 {
		t.Fatalf("active leases = %d, want 0 (no double decrement)", got)
	}
	// The shard must still be usable: a fresh job on the same service
	// dispatches and reports normally.
	submitWorkqueue(t, s, syntheticWorkload(1, 2))
	pr, err = cl.Pull(ctx, reg.WorkerID, 5*time.Second)
	if err != nil || pr.Assignment == nil {
		t.Fatalf("pull after duplicate batch: %v, %+v", err, pr)
	}
	if _, err := cl.Report(ctx, pr.Assignment.ID, reg.WorkerID, api.OutcomeSuccess); err != nil {
		t.Fatalf("report after duplicate batch: %v", err)
	}
}

// TestReportBatchCapEnforced: the documented 256-item cap on the batch
// report endpoint is a 400, not an invitation to hold the shard lock
// across an arbitrarily large journal append.
func TestReportBatchCapEnforced(t *testing.T) {
	s := newService(t, service.Config{})
	cl := startHTTP(t, s)
	ctx := context.Background()
	reg, err := cl.Register(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]api.ReportItem, 257)
	for i := range items {
		items[i] = api.ReportItem{AssignmentID: fmt.Sprintf("a%d", i), Outcome: api.OutcomeSuccess}
	}
	var ae *client.APIError
	if _, err := cl.ReportBatch(ctx, reg.WorkerID, items); !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %v, want 400", err)
	}
}
