package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestMemoryTracer(t *testing.T) {
	m := NewMemory()
	m.Record(Event{At: 1, Kind: TaskAssigned, Task: 5})
	m.Record(Event{At: 2, Kind: ComputeStart, Task: 5})
	m.Record(Event{At: 3, Kind: TaskAssigned, Task: 6})
	m.Record(Event{At: 4, Kind: TaskCompleted, Task: 5})

	if m.Len() != 4 {
		t.Fatalf("len = %d", m.Len())
	}
	if got := m.OfKind(TaskAssigned); len(got) != 2 || got[0].Task != 5 || got[1].Task != 6 {
		t.Fatalf("OfKind = %+v", got)
	}
	tl := m.TaskTimeline(5)
	if len(tl) != 3 || tl[0].Kind != TaskAssigned || tl[2].Kind != TaskCompleted {
		t.Fatalf("timeline = %+v", tl)
	}
	// Events() must be a copy.
	ev := m.Events()
	ev[0].Task = 99
	if m.Events()[0].Task != 5 {
		t.Fatal("Events leaked internal slice")
	}
}

func TestJSONWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONWriter(&buf)
	j.Record(Event{At: 1.5, Kind: BatchServed, Site: 2, Worker: -1, Files: 7})
	j.Record(Event{At: 2.5, Kind: TaskCompleted, Site: 2, Worker: 0, Task: 9})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != 2 || got[0].Files != 7 || got[1].Task != 9 {
		t.Fatalf("round trip = %+v", got)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, bytes.ErrTooLarge
}

func TestJSONWriterStickyError(t *testing.T) {
	j := NewJSONWriter(failWriter{})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer to force a write
		j.Record(Event{At: float64(i), Kind: TaskAssigned})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("expected sticky error")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	m := Multi{a, b}
	m.Record(Event{At: 1, Kind: WorkerDown})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan out: %d, %d", a.Len(), b.Len())
	}
}
