package trace

import (
	"testing"
)

func TestAnalyzeBasicTimeline(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskAssigned, Site: 0, Worker: 0, Task: 1},
		{At: 0, Kind: BatchEnqueued, Site: 0, Worker: 0, Task: 1},
		{At: 10, Kind: ComputeStart, Site: 0, Worker: 0, Task: 1},
		{At: 30, Kind: TaskCompleted, Site: 0, Worker: 0, Task: 1},
		{At: 30, Kind: TaskAssigned, Site: 0, Worker: 0, Task: 2},
		{At: 30, Kind: BatchEnqueued, Site: 0, Worker: 0, Task: 2},
		{At: 35, Kind: ComputeStart, Site: 0, Worker: 0, Task: 2},
		{At: 50, Kind: TaskCompleted, Site: 0, Worker: 0, Task: 2},
	}
	a, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon != 50 || a.TasksCompleted != 2 {
		t.Fatalf("analysis = %+v", a)
	}
	if len(a.Workers) != 1 {
		t.Fatalf("workers = %+v", a.Workers)
	}
	w := a.Workers[0]
	if w.Assigned != 2 || w.Completed != 2 {
		t.Fatalf("worker = %+v", w)
	}
	if w.StageSec != 15 { // 10 + 5
		t.Fatalf("stage = %v, want 15", w.StageSec)
	}
	if w.ComputeSec != 35 { // 20 + 15
		t.Fatalf("compute = %v, want 35", w.ComputeSec)
	}
	if got := w.BusyFraction(a.Horizon); got != 1.0 {
		t.Fatalf("busy = %v, want 1.0 (fully busy)", got)
	}
	if got := a.MeanBusyFraction(); got != 1.0 {
		t.Fatalf("mean busy = %v", got)
	}
}

func TestAnalyzeCancelledBeforeCompute(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskAssigned, Site: 1, Worker: 0, Task: 7},
		{At: 0, Kind: BatchEnqueued, Site: 1, Worker: 0, Task: 7},
		{At: 20, Kind: TaskCancelled, Site: 1, Worker: 0, Task: 7},
	}
	a, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Workers[0]
	if w.Cancelled != 1 || w.StageSec != 20 || w.ComputeSec != 0 {
		t.Fatalf("worker = %+v", w)
	}
	if a.TasksCompleted != 0 {
		t.Fatalf("completed = %d", a.TasksCompleted)
	}
}

func TestAnalyzeChurnDowntime(t *testing.T) {
	events := []Event{
		{At: 5, Kind: WorkerDown, Site: 0, Worker: 1},
		{At: 25, Kind: WorkerUp, Site: 0, Worker: 1},
		{At: 40, Kind: WorkerDown, Site: 0, Worker: 1},
		{At: 45, Kind: WorkerUp, Site: 0, Worker: 1},
	}
	a, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if a.Workers[0].DownSec != 25 {
		t.Fatalf("down = %v, want 25", a.Workers[0].DownSec)
	}
}

func TestAnalyzeRejectsOutOfOrder(t *testing.T) {
	events := []Event{
		{At: 10, Kind: TaskAssigned},
		{At: 5, Kind: TaskCompleted},
	}
	if _, err := Analyze(events); err == nil {
		t.Fatal("accepted out-of-order timeline")
	}
}

func TestAnalyzeDistinctCompletions(t *testing.T) {
	// The same task completing at two workers (replica race at the same
	// instant) counts once.
	events := []Event{
		{At: 0, Kind: TaskAssigned, Site: 0, Worker: 0, Task: 3},
		{At: 0, Kind: TaskAssigned, Site: 1, Worker: 0, Task: 3},
		{At: 9, Kind: TaskCompleted, Site: 0, Worker: 0, Task: 3},
		{At: 9, Kind: TaskCompleted, Site: 1, Worker: 0, Task: 3},
	}
	a, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	if a.TasksCompleted != 1 {
		t.Fatalf("completed = %d, want 1", a.TasksCompleted)
	}
}
