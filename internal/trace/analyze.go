package trace

import (
	"fmt"
	"sort"
)

// WorkerStats summarizes one worker's timeline.
type WorkerStats struct {
	Site, Worker int
	// Tasks started (assignments), completed, cancelled, failed here.
	Assigned, Completed, Cancelled, Failed int
	// StageSec is time between each batch-enqueued and the matching
	// compute-start (or terminal event); ComputeSec between compute-start
	// and the execution's terminal event.
	StageSec   float64
	ComputeSec float64
	// DownSec is total recorded outage time (worker-down to worker-up).
	DownSec float64
}

// BusyFraction returns the fraction of the horizon this worker spent
// staging or computing.
func (w *WorkerStats) BusyFraction(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return (w.StageSec + w.ComputeSec) / horizon
}

// Analysis is the digest of a run timeline.
type Analysis struct {
	Horizon float64 // timestamp of the last event
	Workers []WorkerStats
	// TasksCompleted counts distinct completed tasks.
	TasksCompleted int
}

// MeanBusyFraction averages BusyFraction over workers.
func (a *Analysis) MeanBusyFraction() float64 {
	if len(a.Workers) == 0 {
		return 0
	}
	var sum float64
	for i := range a.Workers {
		sum += a.Workers[i].BusyFraction(a.Horizon)
	}
	return sum / float64(len(a.Workers))
}

type workerKey struct{ site, worker int }

// Analyze digests a timeline into per-worker statistics. Events must be in
// chronological order (as tracers record them).
func Analyze(events []Event) (*Analysis, error) {
	a := &Analysis{}
	byWorker := make(map[workerKey]*WorkerStats)
	type open struct {
		enqueuedAt float64
		computeAt  float64 // -1 until compute started
		task       int64
	}
	inflight := make(map[workerKey]*open)
	downAt := make(map[workerKey]float64)
	completedTasks := make(map[int64]struct{})

	get := func(k workerKey) *WorkerStats {
		ws, ok := byWorker[k]
		if !ok {
			ws = &WorkerStats{Site: k.site, Worker: k.worker}
			byWorker[k] = ws
		}
		return ws
	}

	last := 0.0
	for i, e := range events {
		if e.At < last {
			return nil, fmt.Errorf("trace: event %d out of order (%v after %v)", i, e.At, last)
		}
		last = e.At
		k := workerKey{e.Site, e.Worker}
		switch e.Kind {
		case TaskAssigned:
			get(k).Assigned++
		case BatchEnqueued:
			inflight[k] = &open{enqueuedAt: e.At, computeAt: -1, task: e.Task}
		case ComputeStart:
			if o := inflight[k]; o != nil {
				o.computeAt = e.At
				get(k).StageSec += e.At - o.enqueuedAt
			}
		case TaskCompleted, TaskCancelled, TaskFailed:
			ws := get(k)
			switch e.Kind {
			case TaskCompleted:
				ws.Completed++
				completedTasks[e.Task] = struct{}{}
			case TaskCancelled:
				ws.Cancelled++
			case TaskFailed:
				ws.Failed++
			}
			if o := inflight[k]; o != nil {
				if o.computeAt >= 0 {
					ws.ComputeSec += e.At - o.computeAt
				} else {
					// Never reached compute; whole span was staging.
					ws.StageSec += e.At - o.enqueuedAt
				}
				delete(inflight, k)
			}
		case WorkerDown:
			downAt[k] = e.At
		case WorkerUp:
			if at, ok := downAt[k]; ok {
				get(k).DownSec += e.At - at
				delete(downAt, k)
			}
		}
	}
	a.Horizon = last
	a.TasksCompleted = len(completedTasks)
	for _, ws := range byWorker {
		a.Workers = append(a.Workers, *ws)
	}
	sort.Slice(a.Workers, func(i, j int) bool {
		if a.Workers[i].Site != a.Workers[j].Site {
			return a.Workers[i].Site < a.Workers[j].Site
		}
		return a.Workers[i].Worker < a.Workers[j].Worker
	})
	return a, nil
}
