// Package trace records structured simulation timelines: every scheduling,
// staging, computation, and failure event of a run, for debugging
// schedulers and for post-hoc analysis beyond the aggregate metrics.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies timeline events.
type Kind string

// Event kinds emitted by the grid engine.
const (
	TaskAssigned  Kind = "task-assigned"  // scheduler handed the task to a worker
	BatchEnqueued Kind = "batch-enqueued" // worker queued its file request
	BatchServed   Kind = "batch-served"   // data server finished staging the batch
	ComputeStart  Kind = "compute-start"
	TaskCompleted Kind = "task-completed"
	TaskCancelled Kind = "task-cancelled" // replica interrupted after another completed
	TaskFailed    Kind = "task-failed"    // execution lost to worker churn
	WorkerDown    Kind = "worker-down"
	WorkerUp      Kind = "worker-up"
	// FileReplicated marks a proactive replica push arriving at a site.
	FileReplicated Kind = "file-replicated"
)

// Event is one timeline record. Fields not meaningful for a kind are zero.
type Event struct {
	At     float64 `json:"at"` // virtual seconds
	Kind   Kind    `json:"kind"`
	Site   int     `json:"site"`
	Worker int     `json:"worker"`
	Task   int64   `json:"task,omitempty"`
	// Files carries the batch size for staging events (missing files for
	// BatchServed).
	Files int `json:"files,omitempty"`
}

// Tracer consumes events. Implementations used from the simulator may
// assume single-threaded delivery; the live runtime wraps its tracer in a
// lock.
type Tracer interface {
	Record(Event)
}

// Memory accumulates events in order.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*Memory)(nil)

// NewMemory returns an empty in-memory tracer.
func NewMemory() *Memory { return &Memory{} }

// Record implements Tracer.
func (m *Memory) Record(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
}

// Events returns a copy of the recorded timeline.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Len returns the number of recorded events.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// OfKind returns the recorded events of one kind, in order.
func (m *Memory) OfKind(k Kind) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, e := range m.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TaskTimeline returns every event touching the given task, in order.
func (m *Memory) TaskTimeline(task int64) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, e := range m.events {
		if e.Task == task {
			out = append(out, e)
		}
	}
	return out
}

// JSONWriter streams events as JSON lines.
type JSONWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

var _ Tracer = (*JSONWriter)(nil)

// NewJSONWriter wraps w; call Flush when done.
func NewJSONWriter(w io.Writer) *JSONWriter {
	bw := bufio.NewWriter(w)
	return &JSONWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Record implements Tracer. The first encoding error sticks and is
// reported by Flush.
func (j *JSONWriter) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Flush drains the buffer and returns the first error seen.
func (j *JSONWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return fmt.Errorf("trace: %w", j.err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Multi fans events out to several tracers.
type Multi []Tracer

var _ Tracer = Multi(nil)

// Record implements Tracer.
func (m Multi) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}
