package partition

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridsched/internal/service/api"
)

// maxSniffBytes bounds how much of a submit body the router reads to
// extract the idempotency key — the same cap the service puts on bodies.
const maxSniffBytes = 64 << 20

// Config configures a Router.
type Config struct {
	// Partitions are the partitions' base URLs in index order: the i-th
	// entry must be the daemon running with -partition-index i. Length is
	// the partition count.
	Partitions []string
	// Transport is the outbound round-tripper for forwarded requests. Nil
	// uses a pooled transport sized for many concurrent worker streams.
	Transport http.RoundTripper
	// AggregateTimeout bounds each per-partition leg of a fan-out read
	// (GET /v1/jobs, /v1/tenants, /v1/workers, /metrics, probes).
	// Defaults to 10s. Keyed forwards are not bounded by the router; the
	// client's own context governs long polls and streams.
	AggregateTimeout time.Duration
}

// Router is the job-keyed HTTP front for a partitioned deployment. It is
// stateless — every routing decision is arithmetic on the request itself
// — except for a last-known per-partition health mark used to steer
// unkeyed placements (register, keyless submit) away from dead
// partitions and to label aggregate responses.
type Router struct {
	urls    []string
	proxies []*httputil.ReverseProxy
	client  *http.Client // fan-out reads and probes
	aggTO   time.Duration
	rr      atomic.Uint64

	mu   sync.Mutex
	down []string // last forward/probe error per partition; "" = up
}

// New validates cfg and builds the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("partition: no partitions configured")
	}
	transport := cfg.Transport
	if transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 256
		transport = t
	}
	rt := &Router{
		urls:   make([]string, len(cfg.Partitions)),
		client: &http.Client{Transport: transport},
		aggTO:  cfg.AggregateTimeout,
		down:   make([]string, len(cfg.Partitions)),
	}
	if rt.aggTO <= 0 {
		rt.aggTO = 10 * time.Second
	}
	for i, raw := range cfg.Partitions {
		base := strings.TrimRight(raw, "/")
		target, err := url.Parse(base)
		if err != nil || target.Scheme == "" || target.Host == "" {
			return nil, fmt.Errorf("partition: bad partition %d URL %q", i, raw)
		}
		rt.urls[i] = base
		i := i
		rt.proxies = append(rt.proxies, &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.Out.Host = target.Host
				// SetURL joins paths; the targets are bare hosts, so the
				// inbound path passes through unchanged.
			},
			Transport: transport,
			// Immediate flush: lease-stream frames and long-poll responses
			// must not sit in a proxy buffer.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				rt.mark(i, err)
				writeError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("partition %d unreachable: %v", i, err))
			},
			ModifyResponse: func(*http.Response) error {
				rt.mark(i, nil)
				return nil
			},
		})
	}
	return rt, nil
}

// Count returns the number of partitions.
func (rt *Router) Count() int { return len(rt.urls) }

func (rt *Router) mark(i int, err error) {
	rt.mu.Lock()
	if err != nil {
		rt.down[i] = err.Error()
	} else {
		rt.down[i] = ""
	}
	rt.mu.Unlock()
}

func (rt *Router) downErr(i int) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.down[i]
}

// pick chooses a partition for an unkeyed placement: round-robin,
// skipping partitions last seen down (they still get retried once the
// rotation has no live alternative).
func (rt *Router) pick() int {
	n := len(rt.urls)
	start := int(rt.rr.Add(1)-1) % n
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if rt.down[i] == "" {
			return i
		}
	}
	return start
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the router's HTTP surface: the service's own route
// table, with id-keyed routes forwarded to the owning partition, unkeyed
// placements spread round-robin, and cross-partition reads aggregated.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.forwardByID("id"))
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.forwardByID("id"))
	mux.HandleFunc("GET /v1/tenants", rt.handleTenants)
	mux.HandleFunc("PUT /v1/tenants/{tenant}", rt.handleTenantQuota)
	mux.HandleFunc("POST /v1/workers", rt.handleRegister)
	mux.HandleFunc("GET /v1/workers", rt.handleWorkers)
	mux.HandleFunc("DELETE /v1/workers/{id}", rt.forwardByID("id"))
	mux.HandleFunc("POST /v1/workers/{id}/pull", rt.forwardByID("id"))
	mux.HandleFunc("GET /v1/workers/{id}/stream", rt.forwardByID("id"))
	mux.HandleFunc("POST /v1/workers/{id}/reports", rt.forwardByID("id"))
	mux.HandleFunc("POST /v1/assignments/{id}/heartbeat", rt.forwardByID("id"))
	mux.HandleFunc("POST /v1/assignments/{id}/report", rt.forwardByID("id"))
	mux.HandleFunc("GET /v1/partitions", rt.handlePartitions)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	// Everything else (replication internals, promotion) is a
	// per-partition operator action with no routing key.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("partition router: %s %s has no routing key; address a partition directly (GET /v1/partitions lists them)", r.Method, r.URL.Path))
	})
	return mux
}

// forwardByID routes a request whose {pathValue} path segment is a
// minted id to the partition that minted it.
func (rt *Router) forwardByID(pathValue string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue(pathValue)
		owner, ok := Owner(id, len(rt.urls))
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("partition router: id %q has no partition key", id))
			return
		}
		rt.proxies[owner].ServeHTTP(w, r)
	}
}

// handleSubmit places a job submission: on the partition its idempotency
// key hashes to (so a retry dedupes against the original), or round-robin
// when the submission carries no key. The body is read once to extract
// the key and forwarded verbatim, whichever codec it is in.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSniffBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	if len(body) > maxSniffBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	target := -1
	if sid := sniffSubmissionID(r.Header.Get("Content-Type"), body); sid != "" {
		target = SubmitOwner(sid, len(rt.urls))
	} else {
		target = rt.pick()
	}
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	rt.proxies[target].ServeHTTP(w, r2)
}

// sniffSubmissionID extracts the idempotency key from a submit body
// without validating the rest; malformed bodies yield "" and are placed
// anywhere — the owning partition produces the real 400.
func sniffSubmissionID(contentType string, body []byte) string {
	if api.IsBinary(contentType) {
		var req api.SubmitJobRequest
		if api.Binary.Unmarshal(body, &req) == nil {
			return req.SubmissionID
		}
		return ""
	}
	var key struct {
		SubmissionID string `json:"submissionId"`
	}
	_ = json.Unmarshal(body, &key)
	return key.SubmissionID
}

// handleRegister places a new worker on a live partition. The worker's
// minted id carries the partition's residue, so every subsequent
// id-keyed call (pull, stream, reports, heartbeat, report) pins to the
// partition that granted it.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	rt.proxies[rt.placeWorker(r.Context())].ServeHTTP(w, r)
}

// placeWorker chooses the partition for a fresh registration: the live
// partition with the most open jobs, so a fleet re-registering after a
// failover lands where the work is waiting instead of piling onto
// whichever partition round-robin offers next. Without this, a restarted
// partition that recovered open jobs from its journal would never see a
// worker again — the fleet migrated to the survivors during the outage
// and idle workers have no reason to move on their own (they do, via
// WorkerConfig.RebalanceWait, but only back through this placement).
// Ties — including the all-idle steady state, where every partition
// reports zero — fall back to round-robin. Registration is rare, so the
// health probe per call is cheap.
func (rt *Router) placeWorker(ctx context.Context) int {
	parts := fanOut[api.Health](rt, ctx, "/healthz")
	maxOpen := 0
	for _, p := range parts {
		if p != nil && p.OpenJobs > maxOpen {
			maxOpen = p.OpenJobs
		}
	}
	if maxOpen == 0 {
		return rt.pick()
	}
	var busiest []int
	for i, p := range parts {
		if p != nil && p.OpenJobs == maxOpen {
			busiest = append(busiest, i)
		}
	}
	return busiest[int(rt.rr.Add(1)-1)%len(busiest)]
}

// fanOut performs one aggregate leg against every partition and decodes
// each JSON response into a fresh V. Failed partitions (transport error
// or non-2xx) come back as nil entries with health marked.
func fanOut[V any](rt *Router, ctx context.Context, path string) []*V {
	out := make([]*V, len(rt.urls))
	var wg sync.WaitGroup
	for i := range rt.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v V
			if err := rt.getJSON(ctx, i, path, &v); err != nil {
				rt.mark(i, err)
				return
			}
			rt.mark(i, nil)
			out[i] = &v
		}(i)
	}
	wg.Wait()
	return out
}

func (rt *Router) getJSON(ctx context.Context, i int, path string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, rt.aggTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.urls[i]+path, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSniffBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e api.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("partition %d: %s", i, e.Error)
		}
		return fmt.Errorf("partition %d: HTTP %d", i, resp.StatusCode)
	}
	return json.Unmarshal(data, v)
}

// finishAggregate annotates a partially successful fan-out: a 200 with
// the PartitionsDownHeader naming unreachable partitions, or a 503 when
// no partition answered at all.
func finishAggregate[V any](w http.ResponseWriter, parts []*V, body any) {
	var downIdx []string
	alive := 0
	for i, p := range parts {
		if p == nil {
			downIdx = append(downIdx, fmt.Sprint(i))
		} else {
			alive++
		}
	}
	if alive == 0 {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("all %d partitions unreachable", len(parts)))
		return
	}
	if len(downIdx) > 0 {
		w.Header().Set(api.PartitionsDownHeader, strings.Join(downIdx, ","))
	}
	writeJSON(w, http.StatusOK, body)
}
