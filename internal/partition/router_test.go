package partition_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridsched"
	"gridsched/internal/partition"
	"gridsched/internal/service"
	"gridsched/internal/service/api"
	"gridsched/internal/service/client"
	"gridsched/internal/workload"
)

// testDeployment is two real partitions behind a real router, all over
// loopback TCP: the smallest topology where every cross-partition code
// path (keyed forwards, fan-out reads, degraded aggregation) is live.
type testDeployment struct {
	servers []*httptest.Server
	clients []*client.Client // direct per-partition clients
	router  *httptest.Server
	hits    atomic.Int64 // requests that went through the router
	cl      *client.Client
}

func newDeployment(t *testing.T, parts int) *testDeployment {
	t.Helper()
	d := &testDeployment{}
	urls := make([]string, parts)
	for i := 0; i < parts; i++ {
		svc, err := service.New(service.Config{
			Topology:       service.Topology{Sites: 2, WorkersPerSite: 2, CapacityFiles: 1024},
			NewScheduler:   gridsched.SchedulerFactory(),
			PartitionIndex: i,
			PartitionCount: parts,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		d.servers = append(d.servers, ts)
		d.clients = append(d.clients, client.New(ts.URL, nil))
		urls[i] = ts.URL
	}
	rt, err := partition.New(partition.Config{Partitions: urls, AggregateTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	d.router = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.hits.Add(1)
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(d.router.Close)
	d.cl = client.New(d.router.URL, nil)
	return d
}

func testWorkload(tasks int) *workload.Workload {
	w := &workload.Workload{Name: "part-test", NumFiles: 64}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 64)},
		})
	}
	return w
}

// TestRouterSubmitEquivalence: a submission routed through the router
// lands on the partition its idempotency key hashes to, and a direct
// retry of the same submission against that partition dedupes to the
// same job id — the "zero extra hops" contract partition-aware clients
// rely on.
func TestRouterSubmitEquivalence(t *testing.T) {
	d := newDeployment(t, 2)
	ctx := context.Background()
	for k := 0; k < 4; k++ {
		sid := fmt.Sprintf("equiv-%d", k)
		req := api.SubmitJobRequest{
			Name: "equiv", Algorithm: "workqueue", Workload: testWorkload(4),
			SubmissionID: sid,
		}
		viaRouter, err := d.cl.SubmitJobIdempotent(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		wantOwner := partition.SubmitOwner(sid, 2)
		gotOwner, ok := partition.Owner(viaRouter, 2)
		if !ok || gotOwner != wantOwner {
			t.Fatalf("job %q minted by partition %d (ok=%v), submission %q hashes to %d",
				viaRouter, gotOwner, ok, sid, wantOwner)
		}
		direct, err := d.clients[wantOwner].SubmitJobIdempotent(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if direct != viaRouter {
			t.Fatalf("direct retry minted %q, router submit minted %q — dedupe broken", direct, viaRouter)
		}
		// The router can fetch the job by id (keyed forward)...
		st, err := d.cl.Job(ctx, viaRouter)
		if err != nil {
			t.Fatal(err)
		}
		if st.ID != viaRouter {
			t.Fatalf("job fetch through router: got %q", st.ID)
		}
		// ...and the non-owner knows nothing about it.
		if _, err := d.clients[1-wantOwner].Job(ctx, viaRouter); err == nil {
			t.Fatalf("non-owning partition served job %q", viaRouter)
		}
	}
}

// TestRouterAggregation: cross-partition reads merge every partition's
// answer, and a dead partition degrades them to an explicit partial
// (200 + X-Gridsched-Partitions-Down) instead of an error.
func TestRouterAggregation(t *testing.T) {
	d := newDeployment(t, 2)
	ctx := context.Background()

	perPart := make([]int, 2)
	for k := 0; k < 6; k++ {
		sid := fmt.Sprintf("agg-%d", k)
		if _, err := d.cl.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
			Name: "agg", Algorithm: "workqueue", Workload: testWorkload(2),
			Tenant: fmt.Sprintf("tenant-%d", k%2), Weight: 1,
			SubmissionID: sid,
		}); err != nil {
			t.Fatal(err)
		}
		perPart[partition.SubmitOwner(sid, 2)]++
	}
	if perPart[0] == 0 || perPart[1] == 0 {
		t.Fatalf("submissions all hashed to one partition (%v); pick different ids", perPart)
	}

	jobs, err := d.cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("aggregated jobs: got %d, want 6", len(jobs))
	}
	a, _ := d.clients[0].Jobs(ctx)
	b, _ := d.clients[1].Jobs(ctx)
	if len(a)+len(b) != 6 || len(a) != perPart[0] || len(b) != perPart[1] {
		t.Fatalf("per-partition jobs %d+%d, want %v", len(a), len(b), perPart)
	}

	h, err := d.cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Jobs != 6 {
		t.Fatalf("aggregated health jobs: got %d, want 6", h.Jobs)
	}

	tenants, err := d.cl.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, tn := range tenants {
		names[tn.Tenant] = true
	}
	if !names["tenant-0"] || !names["tenant-1"] {
		t.Fatalf("merged tenants missing rows: %v", tenants)
	}

	// Readiness: all partitions up -> ready.
	resp, err := http.Get(d.router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with all partitions up: HTTP %d", resp.StatusCode)
	}

	// Metrics federation: per-partition up gauges plus relabeled samples.
	resp, err = http.Get(d.router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`gridsched_partition_up{partition="0"} 1`,
		`gridsched_partition_up{partition="1"} 1`,
		`partition="1"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("federated metrics missing %q", want)
		}
	}

	// Kill partition 1: aggregate reads stay 200 but say what's missing.
	d.servers[1].Close()
	jobs, err = d.cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != perPart[0] {
		t.Fatalf("degraded jobs: got %d, want partition 0's %d", len(jobs), perPart[0])
	}
	req, _ := http.NewRequest(http.MethodGet, d.router.URL+"/v1/jobs", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded aggregate: HTTP %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(api.PartitionsDownHeader); got != "1" {
		t.Fatalf("%s = %q, want \"1\"", api.PartitionsDownHeader, got)
	}

	// Readiness flips to 503 and the topology names the dead partition.
	resp, err = http.Get(d.router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var topo api.PartitionTopology
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a partition down: HTTP %d, want 503", resp.StatusCode)
	}
	if len(topo.Partitions) != 2 || topo.Partitions[0].Up == false || topo.Partitions[1].Up {
		t.Fatalf("topology after kill: %+v", topo.Partitions)
	}

	// A keyed forward to the dead partition is an explicit 503 (transient
	// for clients), not a hang or a 404.
	var probe string
	for _, j := range append(a, b...) {
		if owner, _ := partition.Owner(j.ID, 2); owner == 1 {
			probe = j.ID
			break
		}
	}
	if probe == "" {
		t.Fatal("no partition-1 job to probe")
	}
	resp, err = http.Get(d.router.URL + "/v1/jobs/" + probe)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("keyed forward to dead partition: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestRouterWorkerFlow: a worker registered through the router gets a
// partition-keyed id, and its whole lease lifecycle (pull, heartbeat,
// report) pins to the granting partition through the router, exactly
// once per task.
func TestRouterWorkerFlow(t *testing.T) {
	d := newDeployment(t, 2)
	ctx := context.Background()

	total := 0
	for k := 0; k < 4; k++ {
		if _, err := d.cl.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
			Name: "flow", Algorithm: "workqueue", Workload: testWorkload(5),
			SubmissionID: fmt.Sprintf("flow-%d", k),
		}); err != nil {
			t.Fatal(err)
		}
		total += 5
	}

	// Register enough workers to land on both partitions (round-robin).
	type wrk struct {
		id    string
		owner int
	}
	var workers []wrk
	owners := map[int]bool{}
	for i := 0; i < 4; i++ {
		reg, err := d.cl.Register(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		owner, ok := partition.Owner(reg.WorkerID, 2)
		if !ok {
			t.Fatalf("worker id %q has no partition key", reg.WorkerID)
		}
		owners[owner] = true
		workers = append(workers, wrk{reg.WorkerID, owner})
	}
	if len(owners) != 2 {
		t.Fatalf("round-robin registration used partitions %v, want both", owners)
	}

	// Drain everything through the router; count completions per task id.
	done := map[string]int{}
	idle := 0
	for completed := 0; completed < total && idle < 200; {
		progressed := false
		for _, w := range workers {
			resp, err := d.cl.Pull(ctx, w.id, 0)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != api.StatusAssigned {
				continue
			}
			if owner, _ := partition.Owner(resp.Assignment.ID, 2); owner != w.owner {
				t.Fatalf("assignment %q minted by partition %d granted to worker of partition %d",
					resp.Assignment.ID, owner, w.owner)
			}
			if _, err := d.cl.Heartbeat(ctx, resp.Assignment.ID, w.id); err != nil {
				t.Fatal(err)
			}
			rep, err := d.cl.Report(ctx, resp.Assignment.ID, w.id, api.OutcomeSuccess)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Accepted {
				done[resp.Assignment.JobID+"/"+fmt.Sprint(resp.Assignment.Task.ID)]++
				completed++
				progressed = true
			}
		}
		if !progressed {
			idle++
		}
	}
	if len(done) != total {
		t.Fatalf("completed %d distinct tasks, want %d", len(done), total)
	}
	for k, n := range done {
		if n != 1 {
			t.Fatalf("task %s completed %d times", k, n)
		}
	}
}

// TestClientPartitionRouting: after RefreshPartitions a client sends
// id-keyed requests straight to the owning partition (zero router hits),
// and falls back through the router when the direct endpoint dies.
func TestClientPartitionRouting(t *testing.T) {
	d := newDeployment(t, 2)
	ctx := context.Background()

	topo, err := d.cl.RefreshPartitions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Count != 2 || len(topo.Partitions) != 2 {
		t.Fatalf("topology: %+v", topo)
	}

	jobID, err := d.cl.SubmitJobIdempotent(ctx, api.SubmitJobRequest{
		Name: "direct", Algorithm: "workqueue", Workload: testWorkload(2),
		SubmissionID: "direct-1",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Keyed reads must bypass the router entirely.
	before := d.hits.Load()
	for i := 0; i < 3; i++ {
		if _, err := d.cl.Job(ctx, jobID); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.hits.Load() - before; got != 0 {
		t.Fatalf("%d keyed reads hit the router despite topology routing", got)
	}

	// Kill the owning partition: the next keyed call drops the topology
	// and falls back through the router (which answers 503 for the dead
	// owner — an explicit error, not a transport failure).
	owner, _ := partition.Owner(jobID, 2)
	d.servers[owner].Close()
	before = d.hits.Load()
	_, err = d.cl.Job(ctx, jobID)
	if err == nil {
		t.Fatal("job fetch succeeded with its partition dead")
	}
	if d.hits.Load() == before {
		// First call burns the dead direct endpoint; the retry (or any
		// subsequent call) must route through the router again.
		if _, err := d.cl.Job(ctx, jobID); err == nil {
			t.Fatal("job fetch succeeded with its partition dead")
		}
		if d.hits.Load() == before {
			t.Fatal("client never fell back to the router after the direct endpoint died")
		}
	}
}
