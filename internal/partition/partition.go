// Package partition implements horizontal scale-out for gridschedd: N
// independent service processes ("partitions") behind a thin, stateless
// HTTP router (cmd/gridrouter) that forwards each request to the
// partition owning its key. See docs/PARTITIONING.md.
//
// The keying is the same arithmetic that picks a lock stripe inside one
// process: partition i of n mints every job, assignment, and worker
// sequence number ≡ i (mod n) (service.Config.PartitionIndex), so the
// owner of any minted id is `numeric part mod n` — no lookup table, no
// shared state, and any component holding an id (the router, a
// partition-aware client) can route it locally. Submissions, which have
// no id yet, are placed by hashing their idempotency key, which keeps a
// retried submission on the partition that already dedupes it.
package partition

import "hash/fnv"

// Owner names the partition owning a minted id ("j17", "a42",
// "w9-1a2b3c4d") among count partitions: the id's leading digit run
// (after the one-rune kind prefix) modulo count. ok is false when the id
// carries no digits — such an id was never minted by a partition and
// cannot be routed.
func Owner(id string, count int) (int, bool) {
	if count < 1 {
		return 0, false
	}
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	if i != 1 || i >= len(id) {
		// Minted ids are exactly one kind rune followed by digits.
		return 0, false
	}
	n := 0
	j := i
	for ; j < len(id) && id[j] >= '0' && id[j] <= '9'; j++ {
		n = n*10%count + int(id[j]-'0') // mod as we go: immune to overflow
	}
	if j == i {
		return 0, false
	}
	return n % count, true
}

// SubmitOwner places a submission idempotency key on a partition
// (FNV-1a). Deterministic, so a retried submission lands on the
// partition holding the original and dedupes instead of duplicating.
func SubmitOwner(submissionID string, count int) int {
	if count < 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(submissionID))
	return int(h.Sum32() % uint32(count))
}
