package partition

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"gridsched/internal/service/api"
)

// handleJobs merges every partition's job list, ordered by the minted
// sequence number (globally unique across partitions by construction).
func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	parts := fanOut[[]api.JobStatus](rt, r.Context(), "/v1/jobs")
	merged := []api.JobStatus{}
	for _, p := range parts {
		if p != nil {
			merged = append(merged, *p...)
		}
	}
	sort.Slice(merged, func(i, k int) bool { return idSeq(merged[i].ID) < idSeq(merged[k].ID) })
	finishAggregate(w, parts, merged)
}

// idSeq is the numeric part of a minted id, for ordering only (routing
// uses Owner, which never overflows; list ordering tolerates the
// approximation for absurd ids).
func idSeq(id string) int64 {
	var n int64
	for i := 1; i < len(id) && id[i] >= '0' && id[i] <= '9'; i++ {
		n = n*10 + int64(id[i]-'0')
	}
	return n
}

// handleWorkers concatenates every partition's worker list. Slot
// coordinates (site, worker) repeat across partitions — each partition
// runs the full configured topology — so ordering is by site, slot, then
// id, which groups the per-partition replicas of a slot together.
func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	parts := fanOut[[]api.WorkerStatus](rt, r.Context(), "/v1/workers")
	merged := []api.WorkerStatus{}
	for _, p := range parts {
		if p != nil {
			merged = append(merged, *p...)
		}
	}
	sort.Slice(merged, func(i, k int) bool {
		a, b := merged[i], merged[k]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.WorkerID < b.WorkerID
	})
	finishAggregate(w, parts, merged)
}

// handleTenants merges per-partition tenant rows by name: monotone
// counts sum; ShareTarget is recomputed from the merged weights;
// ShareAchieved is the dispatch-weighted mean of the partitions' sliding
// windows. Quotas (MaxInFlight) are enforced per partition, so the
// aggregated row reports the per-partition cap, not a global one.
func (rt *Router) handleTenants(w http.ResponseWriter, r *http.Request) {
	parts := fanOut[[]api.TenantStatus](rt, r.Context(), "/v1/tenants")
	finishAggregate(w, parts, mergeTenants(parts))
}

func mergeTenants(parts []*[]api.TenantStatus) []api.TenantStatus {
	byName := map[string]*api.TenantStatus{}
	achievedW := map[string]float64{} // dispatch-weighted ShareAchieved numerator
	var totalWeight int64
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, t := range *p {
			m := byName[t.Tenant]
			if m == nil {
				m = &api.TenantStatus{Tenant: t.Tenant}
				byName[t.Tenant] = m
			}
			m.Weight += t.Weight
			m.RunningJobs += t.RunningJobs
			m.InFlight += t.InFlight
			m.Dispatches += t.Dispatches
			m.Throttles += t.Throttles
			if t.MaxInFlight > m.MaxInFlight {
				m.MaxInFlight = t.MaxInFlight
			}
			achievedW[t.Tenant] += t.ShareAchieved * float64(t.Dispatches)
			totalWeight += t.Weight
		}
	}
	merged := make([]api.TenantStatus, 0, len(byName))
	for _, m := range byName {
		if totalWeight > 0 {
			m.ShareTarget = float64(m.Weight) / float64(totalWeight)
		}
		if m.Dispatches > 0 {
			m.ShareAchieved = achievedW[m.Tenant] / float64(m.Dispatches)
		}
		merged = append(merged, *m)
	}
	sort.Slice(merged, func(i, k int) bool { return merged[i].Tenant < merged[k].Tenant })
	return merged
}

// handleTenantQuota fans a quota override out to every partition: quotas
// are enforced at lease grant inside each partition, so a deployment-wide
// override must land everywhere. The call is idempotent; if any
// partition could not be reached the router reports 503 and the caller
// retries until all partitions converge.
func (rt *Router) handleTenantQuota(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSniffBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	type outcome struct {
		status api.TenantStatus
		err    error
		code   int
	}
	results := make([]outcome, len(rt.urls))
	path := "/v1/tenants/" + r.PathValue("tenant")
	done := make(chan int, len(rt.urls))
	for i := range rt.urls {
		go func(i int) {
			defer func() { done <- i }()
			ctx, cancel := context.WithTimeout(r.Context(), rt.aggTO)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPut, rt.urls[i]+path, bytes.NewReader(body))
			if err != nil {
				results[i].err = err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.mark(i, err)
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			rt.mark(i, nil)
			data, _ := io.ReadAll(io.LimitReader(resp.Body, maxSniffBytes))
			results[i].code = resp.StatusCode
			if resp.StatusCode/100 != 2 {
				results[i].err = fmt.Errorf("partition %d: %s", i, strings.TrimSpace(string(data)))
				return
			}
			results[i].err = json.Unmarshal(data, &results[i].status)
		}(i)
	}
	for range rt.urls {
		<-done
	}
	// A client-side rejection (4xx) is the same on every partition; relay
	// the first one as-is. Reachability failures mean partial application:
	// 503 so the caller retries the idempotent PUT to convergence.
	statuses := make([]*[]api.TenantStatus, len(results))
	for i, res := range results {
		if res.err != nil {
			if res.code >= 400 && res.code < 500 {
				writeError(w, res.code, res.err.Error())
				return
			}
			continue
		}
		statuses[i] = &[]api.TenantStatus{res.status}
	}
	for _, res := range results {
		if res.err != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("quota applied partially: %v (retry to converge)", res.err))
			return
		}
	}
	finishAggregate(w, statuses, mergeTenants(statuses)[0])
}

// topology probes every partition's /readyz and assembles the deployment
// view served at /v1/partitions and /readyz.
func (rt *Router) topology(ctx context.Context) api.PartitionTopology {
	topo := api.PartitionTopology{
		Count:      len(rt.urls),
		Partitions: make([]api.PartitionInfo, len(rt.urls)),
	}
	parts := fanOut[api.Readiness](rt, ctx, "/readyz")
	for i := range rt.urls {
		info := api.PartitionInfo{Index: i, URL: rt.urls[i]}
		if parts[i] != nil {
			info.Up = parts[i].Status == "ready"
			info.Status = parts[i].Status
			if parts[i].Role != "" {
				info.Status = parts[i].Status + "/" + parts[i].Role
			}
		} else {
			info.Status = rt.downErr(i)
		}
		topo.Partitions[i] = info
	}
	return topo
}

// handlePartitions serves the deployment topology with live per-partition
// health. Partition-aware clients fetch this once and route id-keyed
// traffic directly.
func (rt *Router) handlePartitions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.topology(r.Context()))
}

// handleReadyz aggregates readiness: 200 only when every partition is
// ready, 503 with the same per-partition body otherwise. Degraded
// operation (some partitions up) still serves traffic — readyz speaks to
// "is the whole deployment healthy", not "can anything be dispatched".
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	topo := rt.topology(r.Context())
	code := http.StatusOK
	for _, p := range topo.Partitions {
		if !p.Up {
			code = http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, code, topo)
}

// handleHealthz sums live-partition job/worker gauges; unreachable
// partitions are excluded and named in the PartitionsDownHeader.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	parts := fanOut[api.Health](rt, r.Context(), "/healthz")
	sum := api.Health{Status: "ok"}
	for _, p := range parts {
		if p != nil {
			sum.Jobs += p.Jobs
			sum.Workers += p.Workers
			sum.OpenJobs += p.OpenJobs
		}
	}
	finishAggregate(w, parts, sum)
}

// handleMetrics federates /metrics: each partition's exposition text is
// re-emitted with a partition="<i>" label injected into every sample (so
// series from different partitions never collide), prefixed by the
// router's own per-partition up gauges.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	texts := make([][]byte, len(rt.urls))
	parts := make([]*struct{}, len(rt.urls))
	var wg int
	done := make(chan struct{})
	for i := range rt.urls {
		wg++
		go func(i int) {
			defer func() { done <- struct{}{} }()
			ctx, cancel := context.WithTimeout(r.Context(), rt.aggTO)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.urls[i]+"/metrics", nil)
			if err != nil {
				rt.mark(i, err)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.mark(i, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxSniffBytes))
			if err != nil || resp.StatusCode != http.StatusOK {
				rt.mark(i, fmt.Errorf("metrics: HTTP %d, %v", resp.StatusCode, err))
				return
			}
			rt.mark(i, nil)
			texts[i] = data
			parts[i] = &struct{}{}
		}(i)
	}
	for ; wg > 0; wg-- {
		<-done
	}
	var downIdx []string
	alive := 0
	for i, p := range parts {
		if p == nil {
			downIdx = append(downIdx, fmt.Sprint(i))
		} else {
			alive++
		}
	}
	if len(downIdx) > 0 {
		w.Header().Set(api.PartitionsDownHeader, strings.Join(downIdx, ","))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if alive == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "# TYPE gridsched_partition_up gauge\n")
	for i := range rt.urls {
		up := 0
		if parts[i] != nil {
			up = 1
		}
		fmt.Fprintf(w, "gridsched_partition_up{partition=\"%d\"} %d\n", i, up)
	}
	for i, text := range texts {
		if text != nil {
			_, _ = w.Write(injectLabel(text, fmt.Sprintf("partition=\"%d\"", i)))
		}
	}
}

// injectLabel adds one label to every sample line of a Prometheus text
// exposition. Comment lines (# TYPE, # HELP) pass through untouched.
func injectLabel(text []byte, label string) []byte {
	var out bytes.Buffer
	out.Grow(len(text) + len(text)/8)
	for _, line := range bytes.Split(text, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			out.Write(line)
			out.WriteByte('\n')
			continue
		}
		// name{labels} value  |  name value
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			out.Write(line)
			out.WriteByte('\n')
			continue
		}
		name, rest := line[:sp], line[sp:]
		if brace := bytes.IndexByte(name, '{'); brace >= 0 {
			out.Write(name[:brace+1])
			out.WriteString(label)
			out.WriteByte(',')
			out.Write(name[brace+1:])
		} else {
			out.Write(name)
			out.WriteByte('{')
			out.WriteString(label)
			out.WriteByte('}')
		}
		out.Write(rest)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
