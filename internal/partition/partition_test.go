package partition

import "testing"

func TestOwner(t *testing.T) {
	cases := []struct {
		id    string
		count int
		want  int
		ok    bool
	}{
		{"j17", 4, 1, true},
		{"a42", 4, 2, true},
		{"w9-1a2b3c4d", 4, 1, true}, // instance suffix after the digit run is ignored
		{"j0", 4, 0, true},
		{"j1", 1, 0, true},
		{"j123456789012345678901234567890", 7, 0, true}, // mod-as-you-go: no overflow
		{"", 4, 0, false},
		{"j", 4, 0, false},     // kind rune, no digits
		{"17", 4, 0, false},    // no kind rune
		{"job17", 4, 0, false}, // multi-rune prefix was never minted
		{"j17", 0, 0, false},
	}
	for _, c := range cases {
		got, ok := Owner(c.id, c.count)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Owner(%q, %d) = %d, %v; want %d, %v", c.id, c.count, got, ok, c.want, c.ok)
		}
	}
	// Overflow immunity: the mod-as-you-go digits really match the
	// big-integer answer (123456789012345678901234567890 mod 4 = 2).
	if got, _ := Owner("j123456789012345678901234567890", 4); got != 2 {
		t.Errorf("overflow case: got %d, want 2", got)
	}
}

func TestSubmitOwner(t *testing.T) {
	for _, count := range []int{1, 2, 3, 8} {
		seen := map[int]bool{}
		for _, sid := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "0011aabb"} {
			p := SubmitOwner(sid, count)
			if p < 0 || p >= count {
				t.Fatalf("SubmitOwner(%q, %d) = %d out of range", sid, count, p)
			}
			if p != SubmitOwner(sid, count) {
				t.Fatalf("SubmitOwner(%q, %d) not deterministic", sid, count)
			}
			seen[p] = true
		}
		if count > 1 && len(seen) < 2 {
			t.Errorf("SubmitOwner spread over %d partitions hit only %d", count, len(seen))
		}
	}
	if SubmitOwner("anything", 0) != 0 {
		t.Error("count<1 must pin to 0")
	}
}
