// Package plot renders multi-series line charts as plain text, so the
// experiment harness can show the paper's figures directly in a terminal
// (the CSV output feeds real plotting tools).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on the chart. X and Y must have equal length.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Config sizes and labels the chart.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 16)
}

// markers are assigned to series in order.
const markers = "ox+*#@%&"

// Render draws the series onto a character grid with axes, tick labels,
// and a legend. Points are plotted at their nearest cell; consecutive
// points of a series are connected with linear interpolation.
func Render(cfg Config, series []Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("plot: %d series exceeds %d supported", len(series), len(markers))
	}
	if cfg.Width == 0 {
		cfg.Width = 60
	}
	if cfg.Height == 0 {
		cfg.Height = 16
	}
	if cfg.Width < 8 || cfg.Height < 4 {
		return "", fmt.Errorf("plot: area %dx%d too small", cfg.Width, cfg.Height)
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return "", fmt.Errorf("plot: all series empty")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom so extremes don't sit on the frame.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(cfg.Width-1)))
		return clamp(c, 0, cfg.Width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(cfg.Height-1)))
		return clamp(r, 0, cfg.Height-1)
	}
	for si, s := range series {
		mark := markers[si]
		for i := range s.X {
			if i > 0 {
				// Interpolated connector drawn with '.', not overwriting
				// existing markers.
				drawLine(grid, toCol(s.X[i-1]), toRow(s.Y[i-1]), toCol(s.X[i]), toRow(s.Y[i]))
			}
		}
		for i := range s.X {
			grid[toRow(s.Y[i])][toCol(s.X[i])] = mark
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yLo, yHi := formatTick(ymin+pad), formatTick(ymax-pad)
	yMid := formatTick((ymin + ymax) / 2)
	labelWidth := len(yLo)
	for _, l := range []string{yHi, yMid} {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yHi)
		case cfg.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yLo)
		case cfg.Height / 2:
			label = fmt.Sprintf("%*s", labelWidth, yMid)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", cfg.Width))
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := cfg.Width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelWidth), xLo, strings.Repeat(" ", gap), xHi)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelWidth), cfg.XLabel, cfg.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", labelWidth), markers[si], s.Name)
	}
	return b.String(), nil
}

// drawLine rasterizes a connector with '.' cells, skipping cells already
// holding a marker.
func drawLine(grid [][]byte, c0, r0, c1, r1 int) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 0; s <= steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.2gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
