package plot

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasics(t *testing.T) {
	out, err := Render(Config{
		Title:  "demo",
		XLabel: "capacity",
		YLabel: "makespan",
	}, []Series{
		{Name: "rest", X: []float64{0, 1, 2, 3}, Y: []float64{10, 8, 7, 7}},
		{Name: "overlap", X: []float64{0, 1, 2, 3}, Y: []float64{12, 11, 10, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "o = rest", "x = overlap", "x: capacity, y: makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Config{}, nil); err == nil {
		t.Error("accepted no series")
	}
	if _, err := Render(Config{}, []Series{{Name: "bad", X: []float64{1}, Y: nil}}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := Render(Config{Width: 2, Height: 2}, []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}); err == nil {
		t.Error("accepted tiny area")
	}
	if _, err := Render(Config{}, []Series{{Name: "empty"}}); err == nil {
		t.Error("accepted all-empty series")
	}
	many := make([]Series, 9)
	for i := range many {
		many[i] = Series{Name: "s", X: []float64{0}, Y: []float64{0}}
	}
	if _, err := Render(Config{}, many); err == nil {
		t.Error("accepted more series than markers")
	}
}

func TestRenderSinglePointAndFlatLine(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Render(Config{}, []Series{{Name: "pt", X: []float64{5}, Y: []float64{3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
	out, err = Render(Config{}, []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{4, 4, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "o") < 3 {
		t.Fatalf("flat line lost points:\n%s", out)
	}
}

// Property: rendering never panics and every line of the plot area has the
// same width, for arbitrary finite inputs.
func TestRenderProperty(t *testing.T) {
	f := func(xs, ys []int16) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		s := Series{Name: "s"}
		for i := 0; i < n; i++ {
			s.X = append(s.X, float64(xs[i]))
			s.Y = append(s.Y, float64(ys[i]))
		}
		out, err := Render(Config{Width: 40, Height: 10}, []Series{s})
		if err != nil {
			return false
		}
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		width := -1
		body := 0
		for _, l := range lines {
			if i := strings.IndexByte(l, '|'); i >= 0 {
				body++
				if width < 0 {
					width = len(l)
				}
				if len(l) != width {
					return false
				}
			}
		}
		return body == 10
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
