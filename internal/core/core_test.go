package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// wl builds a workload from explicit file lists.
func wl(t *testing.T, numFiles int, fileLists ...[]int) *workload.Workload {
	t.Helper()
	w := &workload.Workload{Name: "test", NumFiles: numFiles}
	for i, fl := range fileLists {
		task := workload.Task{ID: workload.TaskID(i)}
		for _, f := range fl {
			task.Files = append(task.Files, workload.FileID(f))
		}
		w.Tasks = append(w.Tasks, task)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func fids(vals ...int) []workload.FileID {
	out := make([]workload.FileID, len(vals))
	for i, v := range vals {
		out[i] = workload.FileID(v)
	}
	return out
}

func newWC(t *testing.T, w *workload.Workload, m Metric, n int) *WorkerCentric {
	t.Helper()
	s, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: m, ChooseN: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorkerCentricConfigValidation(t *testing.T) {
	w := wl(t, 2, []int{0}, []int{1})
	if _, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: Metric(0), ChooseN: 1}); err == nil {
		t.Error("accepted unknown metric")
	}
	if _, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: MetricRest, ChooseN: 0}); err == nil {
		t.Error("accepted ChooseN = 0")
	}
}

func TestWorkerCentricNames(t *testing.T) {
	w := wl(t, 2, []int{0}, []int{1})
	cases := []struct {
		m    Metric
		n    int
		want string
	}{
		{MetricOverlap, 1, "overlap"},
		{MetricRest, 1, "rest"},
		{MetricCombined, 1, "combined"},
		{MetricRest, 2, "rest.2"},
		{MetricCombined, 2, "combined.2"},
	}
	for _, c := range cases {
		s := newWC(t, w, c.m, c.n)
		if got := s.Name(); got != c.want {
			t.Errorf("name = %q, want %q", got, c.want)
		}
	}
}

func TestOverlapMetricPrefersResidentFiles(t *testing.T) {
	// Task 0 shares nothing with site storage; task 1 shares 2 files;
	// task 2 shares 1 file.
	w := wl(t, 10, []int{7, 8, 9}, []int{0, 1, 5}, []int{1, 6, 4})
	s := newWC(t, w, MetricOverlap, 1)
	s.AttachSite(0)
	// Site 0 received files 0, 1 from some earlier batch.
	s.NoteBatch(0, fids(0, 1), fids(0, 1), nil)

	task, st := s.NextFor(WorkerRef{Site: 0})
	if st != Assigned || task.ID != 1 {
		t.Fatalf("assigned task %d (status %v), want task 1", task.ID, st)
	}
	task, st = s.NextFor(WorkerRef{Site: 0})
	if st != Assigned || task.ID != 2 {
		t.Fatalf("assigned task %d (status %v), want task 2", task.ID, st)
	}
	task, st = s.NextFor(WorkerRef{Site: 0})
	if st != Assigned || task.ID != 0 {
		t.Fatalf("assigned task %d (status %v), want task 0", task.ID, st)
	}
	if _, st = s.NextFor(WorkerRef{Site: 0}); st != Done {
		t.Fatalf("status = %v, want Done when pending empty", st)
	}
}

func TestRestMetricMinimizesTransfers(t *testing.T) {
	// Task 0: needs 2, has 1 resident -> missing 1 -> rest 1.
	// Task 1: needs 4, has 2 resident -> missing 2 -> rest 0.5.
	// Overlap would prefer task 1 (|Ft|=2); rest must prefer task 0.
	w := wl(t, 10, []int{0, 5}, []int{1, 2, 6, 7})
	s := newWC(t, w, MetricRest, 1)
	s.AttachSite(0)
	s.NoteBatch(0, fids(0, 1, 2), fids(0, 1, 2), nil)

	task, st := s.NextFor(WorkerRef{Site: 0})
	if st != Assigned || task.ID != 0 {
		t.Fatalf("assigned task %d, want task 0 (fewest transfers)", task.ID)
	}
}

func TestOverlapVsRestDisagreement(t *testing.T) {
	// Same workload as above: overlap must pick the other task.
	w := wl(t, 10, []int{0, 5}, []int{1, 2, 6, 7})
	s := newWC(t, w, MetricOverlap, 1)
	s.AttachSite(0)
	s.NoteBatch(0, fids(0, 1, 2), fids(0, 1, 2), nil)
	task, _ := s.NextFor(WorkerRef{Site: 0})
	if task.ID != 1 {
		t.Fatalf("overlap assigned task %d, want task 1 (max |Ft|)", task.ID)
	}
}

func TestFullOverlapAlwaysWinsUnderRest(t *testing.T) {
	// Task 0 fully resident (rest = 1/0); it must be chosen over a task
	// with large overlap but missing files.
	w := wl(t, 10, []int{0, 1}, []int{2, 3, 4, 5, 9})
	s := newWC(t, w, MetricRest, 1)
	s.AttachSite(0)
	s.NoteBatch(0, fids(0, 1, 2, 3, 4, 5), fids(0, 1, 2, 3, 4, 5), nil)
	task, _ := s.NextFor(WorkerRef{Site: 0})
	if task.ID != 0 {
		t.Fatalf("assigned task %d, want full-overlap task 0", task.ID)
	}
}

func TestCombinedPrefersPastReferences(t *testing.T) {
	// Two tasks, both missing 1 file, same overlap count, but task 1's
	// overlapping file has a deep reference history at the site.
	w := wl(t, 10, []int{0, 5}, []int{1, 6})
	s := newWC(t, w, MetricCombined, 1)
	s.AttachSite(0)
	s.NoteBatch(0, fids(0, 1), fids(0, 1), nil)
	// Reference file 1 many more times (batches that only touch file 1).
	for i := 0; i < 5; i++ {
		s.NoteBatch(0, fids(1), nil, nil)
	}
	task, _ := s.NextFor(WorkerRef{Site: 0})
	if task.ID != 1 {
		t.Fatalf("assigned task %d, want task 1 (hot history)", task.ID)
	}
}

func TestCombinedLiteralInvertsRestTerm(t *testing.T) {
	// Task 0 missing 1 file (rest 1), task 1 missing 3 files (rest 1/3).
	// No reference history, so only the rest term differs. The literal
	// formula totalRest/rest_t prefers MORE missing files.
	w := wl(t, 10, []int{0, 5}, []int{1, 6, 7, 8})
	mk := func(m Metric) workload.TaskID {
		s := newWC(t, w, m, 1)
		s.AttachSite(0)
		s.NoteBatch(0, fids(0, 1), fids(0, 1), nil)
		task, _ := s.NextFor(WorkerRef{Site: 0})
		return task.ID
	}
	if got := mk(MetricCombined); got != 0 {
		t.Fatalf("combined assigned %d, want 0", got)
	}
	if got := mk(MetricCombinedLiteral); got != 1 {
		t.Fatalf("combined-literal assigned %d, want 1", got)
	}
}

func TestEvictionLowersOverlap(t *testing.T) {
	w := wl(t, 10, []int{0, 1, 5}, []int{2, 6, 7})
	s := newWC(t, w, MetricOverlap, 1)
	s.AttachSite(0)
	s.NoteBatch(0, fids(0, 1), fids(0, 1), nil)
	// Files 0 and 1 leave; file 2 arrives.
	s.NoteBatch(0, fids(2), fids(2), fids(0, 1))
	task, _ := s.NextFor(WorkerRef{Site: 0})
	if task.ID != 1 {
		t.Fatalf("assigned task %d, want task 1 after eviction shifted overlap", task.ID)
	}
}

func TestChooseTask2SamplesBothTopTasks(t *testing.T) {
	// Two tasks with nonzero weights 2 and 1: over many trials, n=2 must
	// choose each at least once, roughly 2:1.
	counts := map[workload.TaskID]int{}
	for trial := 0; trial < 400; trial++ {
		w := wl(t, 10, []int{0, 1, 5}, []int{2, 6})
		s, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: MetricOverlap, ChooseN: 2, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachSite(0)
		s.NoteBatch(0, fids(0, 1, 2), fids(0, 1, 2), nil)
		task, _ := s.NextFor(WorkerRef{Site: 0})
		counts[task.ID]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("randomized choice degenerate: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.3 || ratio > 3.2 {
		t.Fatalf("ratio = %v (%v), want ~2", ratio, counts)
	}
}

func TestChooseTask1IsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := wl(t, 10, []int{0, 1, 5}, []int{2, 6})
		s, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: MetricOverlap, ChooseN: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachSite(0)
		s.NoteBatch(0, fids(0, 1, 2), fids(0, 1, 2), nil)
		task, _ := s.NextFor(WorkerRef{Site: 0})
		if task.ID != 0 {
			t.Fatalf("seed %d: task %d, want 0 regardless of seed", seed, task.ID)
		}
	}
}

func TestZeroWeightFallbackDispersesUniformly(t *testing.T) {
	// Empty storage under Overlap: all weights zero carries no
	// information, so the pick must be uniform over pending tasks rather
	// than always the head of the list (which would herd all sites onto
	// one region of a spatial workload).
	counts := map[workload.TaskID]int{}
	for seed := int64(0); seed < 60; seed++ {
		w := wl(t, 10, []int{0}, []int{1}, []int{2})
		s, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: MetricOverlap, ChooseN: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachSite(0)
		task, _ := s.NextFor(WorkerRef{Site: 0})
		counts[task.ID]++
	}
	for id := workload.TaskID(0); id < 3; id++ {
		if counts[id] == 0 {
			t.Fatalf("task %d never chosen under zero weights: %v", id, counts)
		}
	}
}

func TestRemainingAndCompletion(t *testing.T) {
	w := wl(t, 10, []int{0}, []int{1})
	s := newWC(t, w, MetricRest, 1)
	s.AttachSite(0)
	if s.Remaining() != 2 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	task, _ := s.NextFor(WorkerRef{Site: 0})
	if cancel := s.OnTaskComplete(task.ID, WorkerRef{Site: 0}); cancel != nil {
		t.Fatalf("worker-centric returned cancellations: %v", cancel)
	}
	if s.Remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", s.Remaining())
	}
	// Duplicate completion is idempotent.
	s.OnTaskComplete(task.ID, WorkerRef{Site: 0})
	if s.Remaining() != 1 {
		t.Fatalf("remaining = %d after dup complete, want 1", s.Remaining())
	}
}

// Property: every task is assigned exactly once across any request pattern,
// for every metric.
func TestWorkerCentricAssignsEachTaskOnce(t *testing.T) {
	f := func(seed int64, metricRaw, sites uint8) bool {
		metric := []Metric{MetricOverlap, MetricRest, MetricCombined, MetricCombinedLiteral}[int(metricRaw)%4]
		nSites := 1 + int(sites)%4
		cfg := workload.CoaddSmallConfig(seed)
		cfg.Tasks = 60
		w, err := workload.GenerateCoadd(cfg)
		if err != nil {
			return false
		}
		s, err := NewWorkerCentric(w, WorkerCentricConfig{Metric: metric, ChooseN: 2, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < nSites; i++ {
			s.AttachSite(i)
		}
		rng := rand.New(rand.NewSource(seed))
		got := make(map[workload.TaskID]int)
		for {
			site := rng.Intn(nSites)
			task, st := s.NextFor(WorkerRef{Site: site})
			if st == Done {
				break
			}
			got[task.ID]++
			// Simulate the batch commit at the site: everything fetched.
			s.NoteBatch(site, task.Files, task.Files, nil)
			s.OnTaskComplete(task.ID, WorkerRef{Site: site})
		}
		if len(got) != len(w.Tasks) {
			return false
		}
		for _, n := range got {
			if n != 1 {
				return false
			}
		}
		return s.Remaining() == 0
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWorkqueueFIFO(t *testing.T) {
	w := wl(t, 5, []int{0}, []int{1}, []int{2})
	s := NewWorkqueue(w)
	if s.Name() != "workqueue" {
		t.Fatalf("name = %q", s.Name())
	}
	for i := 0; i < 3; i++ {
		task, st := s.NextFor(WorkerRef{Site: i % 2})
		if st != Assigned || task.ID != workload.TaskID(i) {
			t.Fatalf("dispatch %d: task %d status %v", i, task.ID, st)
		}
	}
	// Everything dispatched but still in flight: idle workers wait in
	// case a straggler fails and needs a retry.
	if _, st := s.NextFor(WorkerRef{}); st != Wait {
		t.Fatalf("status = %v, want Wait while tasks in flight", st)
	}
	s.OnTaskComplete(0, WorkerRef{})
	if s.Remaining() != 2 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	s.OnTaskComplete(1, WorkerRef{})
	s.OnTaskComplete(2, WorkerRef{})
	if _, st := s.NextFor(WorkerRef{}); st != Done {
		t.Fatalf("status = %v, want Done after all complete", st)
	}
}

func TestWorkqueueRetriesFailedTask(t *testing.T) {
	w := wl(t, 5, []int{0}, []int{1})
	s := NewWorkqueue(w)
	t0, _ := s.NextFor(WorkerRef{})
	t1, _ := s.NextFor(WorkerRef{})
	s.OnExecutionFailed(t0.ID, WorkerRef{})
	retry, st := s.NextFor(WorkerRef{})
	if st != Assigned || retry.ID != t0.ID {
		t.Fatalf("retry = %v (%v), want task %d", retry.ID, st, t0.ID)
	}
	s.OnTaskComplete(t0.ID, WorkerRef{})
	s.OnTaskComplete(t1.ID, WorkerRef{})
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	// A failure reported after completion must not resurrect the task.
	s.OnExecutionFailed(t1.ID, WorkerRef{})
	if _, st := s.NextFor(WorkerRef{}); st != Done {
		t.Fatalf("status = %v, want Done", st)
	}
}

func TestWorkerCentricRequeuesFailedTask(t *testing.T) {
	w := wl(t, 6, []int{0}, []int{1}, []int{2})
	s := newWC(t, w, MetricRest, 1)
	s.AttachSite(0)
	var got []workload.TaskID
	for i := 0; i < 3; i++ {
		task, st := s.NextFor(WorkerRef{Site: 0})
		if st != Assigned {
			t.Fatalf("status %v", st)
		}
		got = append(got, task.ID)
	}
	if _, st := s.NextFor(WorkerRef{Site: 0}); st != Done {
		t.Fatalf("want Done with empty pending, got %v", st)
	}
	// Fail the middle task: it must become pending again, exactly once.
	s.OnExecutionFailed(got[1], WorkerRef{Site: 0})
	s.OnExecutionFailed(got[1], WorkerRef{Site: 0}) // duplicate report
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	task, st := s.NextFor(WorkerRef{Site: 0})
	if st != Assigned || task.ID != got[1] {
		t.Fatalf("redispatch = %v (%v), want %d", task.ID, st, got[1])
	}
	// Failure after completion is ignored.
	s.OnTaskComplete(got[1], WorkerRef{Site: 0})
	s.OnExecutionFailed(got[1], WorkerRef{Site: 0})
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after post-completion failure", s.Pending())
	}
}

func TestStorageAffinityRequeuesFailedTask(t *testing.T) {
	w := wl(t, 4, []int{0, 1}, []int{2, 3})
	s, err := NewStorageAffinity(w, StorageAffinityConfig{
		Sites:          2,
		WorkersPerSite: 1,
		CapacityFiles:  10,
		Policy:         storagePolicyLRU(),
		MaxReplicas:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachSite(0)
	s.AttachSite(1)
	t0, _ := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	t1, _ := s.NextFor(WorkerRef{Site: 1, Worker: 0})
	// Site 0's worker dies mid-execution.
	s.OnExecutionFailed(t0.ID, WorkerRef{Site: 0, Worker: 0})
	// The task must be dispatchable again (requeued at its home site).
	re, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned || re.ID != t0.ID {
		t.Fatalf("requeue = %v (%v), want %d", re.ID, st, t0.ID)
	}
	s.OnTaskComplete(t0.ID, WorkerRef{Site: 0, Worker: 0})
	s.OnTaskComplete(t1.ID, WorkerRef{Site: 1, Worker: 0})
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
}

// storagePolicyLRU avoids importing storage in multiple test spots.
func storagePolicyLRU() storage.Policy { return storage.LRU }
