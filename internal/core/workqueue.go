package core

import (
	"gridsched/internal/workload"
)

// Workqueue is the classic worker-centric baseline (Cirne et al. [6]):
// dispatch tasks in FIFO order to whichever worker asks, with no data
// awareness at all.
type Workqueue struct {
	w         *workload.Workload
	next      int
	retry     []workload.TaskID
	completed []bool
	remaining int
}

var _ Scheduler = (*Workqueue)(nil)

// NewWorkqueue builds the FIFO scheduler over the workload's task set.
func NewWorkqueue(w *workload.Workload) *Workqueue {
	return &Workqueue{
		w:         w,
		completed: make([]bool, len(w.Tasks)),
		remaining: len(w.Tasks),
	}
}

// Name implements Scheduler.
func (s *Workqueue) Name() string { return "workqueue" }

// AttachSite implements Scheduler; workqueue tracks no site state.
func (s *Workqueue) AttachSite(site int) {}

// NoteBatch implements Scheduler; workqueue ignores storage contents.
func (s *Workqueue) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {}

// NextFor implements Scheduler: strict FIFO dispatch; failed tasks are
// retried before fresh ones.
func (s *Workqueue) NextFor(at WorkerRef) (workload.Task, Status) {
	for len(s.retry) > 0 {
		id := s.retry[0]
		s.retry = s.retry[1:]
		if !s.completed[id] {
			return s.w.Tasks[id], Assigned
		}
	}
	if s.next >= len(s.w.Tasks) {
		if s.remaining > 0 {
			// Stragglers may still fail and need a retry slot.
			return workload.Task{}, Wait
		}
		return workload.Task{}, Done
	}
	t := s.w.Tasks[s.next]
	s.next++
	return t, Assigned
}

// OnExecutionFailed implements Scheduler: the task rejoins the queue.
func (s *Workqueue) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	if !s.completed[id] {
		s.retry = append(s.retry, id)
	}
}

// OnTaskComplete implements Scheduler.
func (s *Workqueue) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	if !s.completed[id] {
		s.completed[id] = true
		s.remaining--
	}
	return nil
}

// Remaining implements Scheduler.
func (s *Workqueue) Remaining() int { return s.remaining }
