package core

import (
	"testing"

	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

func newSA(t *testing.T, w *workload.Workload, sites, workers, capacity, maxReplicas int) *StorageAffinity {
	t.Helper()
	s, err := NewStorageAffinity(w, StorageAffinityConfig{
		Sites:          sites,
		WorkersPerSite: workers,
		CapacityFiles:  capacity,
		Policy:         storage.LRU,
		MaxReplicas:    maxReplicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sites; i++ {
		s.AttachSite(i)
	}
	return s
}

func TestStorageAffinityConfigValidation(t *testing.T) {
	w := wl(t, 2, []int{0}, []int{1})
	bad := []StorageAffinityConfig{
		{Sites: 0, WorkersPerSite: 1, CapacityFiles: 10, Policy: storage.LRU, MaxReplicas: 1},
		{Sites: 1, WorkersPerSite: 0, CapacityFiles: 10, Policy: storage.LRU, MaxReplicas: 1},
		{Sites: 1, WorkersPerSite: 1, CapacityFiles: 0, Policy: storage.LRU, MaxReplicas: 1},
		{Sites: 1, WorkersPerSite: 1, CapacityFiles: 10, Policy: storage.LRU, MaxReplicas: 0},
	}
	for i, cfg := range bad {
		if _, err := NewStorageAffinity(w, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStorageAffinityDraftBalancesCounts(t *testing.T) {
	cfg := workload.CoaddSmallConfig(1)
	cfg.Tasks = 100
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sites, workers = 4, 2
	s := newSA(t, w, sites, workers, 1000, 3)
	// Trigger the initial assignment via a first request.
	task, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned {
		t.Fatalf("status = %v", st)
	}
	_ = task
	// Count queue lengths: draft must give each site 25 tasks.
	for site := 0; site < sites; site++ {
		total := 0
		for wi := 0; wi < workers; wi++ {
			total += len(s.queues[site][wi])
		}
		if total != 25 {
			t.Fatalf("site %d drafted %d tasks, want 25", site, total)
		}
	}
}

func TestStorageAffinityDraftExploitsLocality(t *testing.T) {
	// Spatial workload: tasks drafted by the same site should be more
	// similar (share more files) than a random split would give. Check
	// that each site's drafted tasks reference far fewer distinct files
	// than (tasks * files/task).
	cfg := workload.CoaddSmallConfig(1)
	cfg.Tasks = 200
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const sites = 4
	s := newSA(t, w, sites, 1, 4000, 3)
	s.NextFor(WorkerRef{Site: 0, Worker: 0}) // trigger assignment
	for site := 0; site < sites; site++ {
		distinct := make(map[workload.FileID]struct{})
		var refs int
		for _, id := range s.queues[site][0] {
			for _, f := range w.Tasks[id].Files {
				distinct[f] = struct{}{}
				refs++
			}
		}
		if refs == 0 {
			continue
		}
		reuse := float64(refs) / float64(len(distinct))
		if reuse < 2 {
			t.Fatalf("site %d reuse factor %.2f; draft ignored locality", site, reuse)
		}
	}
}

func TestStorageAffinityDrainsOwnQueueInOrder(t *testing.T) {
	w := wl(t, 6, []int{0}, []int{1}, []int{2}, []int{3})
	s := newSA(t, w, 1, 1, 10, 3)
	var got []workload.TaskID
	for i := 0; i < 4; i++ {
		task, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
		if st != Assigned {
			t.Fatalf("status = %v at %d", st, i)
		}
		got = append(got, task.ID)
		s.OnTaskComplete(task.ID, WorkerRef{Site: 0, Worker: 0})
	}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	if _, st := s.NextFor(WorkerRef{Site: 0, Worker: 0}); st != Done {
		t.Fatalf("want Done after all tasks complete, got %v", st)
	}
}

func TestStorageAffinityReplicatesWhenQueueEmpty(t *testing.T) {
	// 2 sites, 1 worker each, 2 tasks. Draft gives one task per site.
	// Site 0's worker finishes its task; site 1's task is still running,
	// so site 0's worker must receive a replica of it.
	w := wl(t, 4, []int{0, 1}, []int{2, 3})
	s := newSA(t, w, 2, 1, 10, 3)

	t0, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned {
		t.Fatal("site 0 got nothing")
	}
	t1, st := s.NextFor(WorkerRef{Site: 1, Worker: 0})
	if st != Assigned {
		t.Fatal("site 1 got nothing")
	}
	if t0.ID == t1.ID {
		t.Fatalf("draft duplicated task %d", t0.ID)
	}
	// Site 0 finishes; asks again -> replica of site 1's task.
	s.OnTaskComplete(t0.ID, WorkerRef{Site: 0, Worker: 0})
	rep, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned || rep.ID != t1.ID {
		t.Fatalf("replica = %v (%v), want task %d", rep.ID, st, t1.ID)
	}
	// Replica completes first: the original execution must be cancelled.
	cancel := s.OnTaskComplete(t1.ID, WorkerRef{Site: 0, Worker: 0})
	if len(cancel) != 1 || cancel[0] != (WorkerRef{Site: 1, Worker: 0}) {
		t.Fatalf("cancel = %v, want the site-1 execution", cancel)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
}

func TestStorageAffinityReplicaCap(t *testing.T) {
	// One incomplete task, replica cap 2: first two executions granted,
	// third worker must Wait.
	w := wl(t, 2, []int{0, 1})
	s := newSA(t, w, 3, 1, 10, 2)
	got := 0
	for site := 0; site < 3; site++ {
		_, st := s.NextFor(WorkerRef{Site: site, Worker: 0})
		if st == Assigned {
			got++
		} else if st != Wait {
			t.Fatalf("site %d: status %v", site, st)
		}
	}
	if got != 2 {
		t.Fatalf("granted %d executions, want 2 (cap)", got)
	}
}

func TestStorageAffinityNoReplicaOnSameWorker(t *testing.T) {
	// One task, one worker: after starting it, the same worker asking
	// again must not receive a replica of its own running task.
	w := wl(t, 2, []int{0, 1})
	s := newSA(t, w, 1, 2, 10, 5)
	_, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned {
		t.Fatal("no initial assignment")
	}
	_, st = s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Wait {
		t.Fatalf("same worker got status %v, want Wait", st)
	}
	// The other worker may replicate it.
	_, st = s.NextFor(WorkerRef{Site: 0, Worker: 1})
	if st != Assigned {
		t.Fatalf("other worker got %v, want Assigned", st)
	}
}

func TestStorageAffinitySkipsCompletedQueueEntries(t *testing.T) {
	// Worker 1 replicates worker 0's queued task; when worker 0 reaches
	// it, the entry must be skipped.
	w := wl(t, 6, []int{0}, []int{1}, []int{2})
	s := newSA(t, w, 1, 2, 10, 3)
	// Draft across 2 workers at 1 site: round-robin w0, w1, w0.
	t0, _ := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	t1, _ := s.NextFor(WorkerRef{Site: 0, Worker: 1})
	_ = t1
	// Worker 1 finishes t1, then replicates worker 0's queued task 2
	// (steered there by affinity: the site now holds file 2).
	s.OnTaskComplete(t1.ID, WorkerRef{Site: 0, Worker: 1})
	s.NoteBatch(0, fids(2), fids(2), nil)
	rep, st := s.NextFor(WorkerRef{Site: 0, Worker: 1})
	if st != Assigned || rep.ID != 2 {
		t.Fatalf("replica = %d (%v), want task 2", rep.ID, st)
	}
	s.OnTaskComplete(rep.ID, WorkerRef{Site: 0, Worker: 1})
	s.OnTaskComplete(t0.ID, WorkerRef{Site: 0, Worker: 0})
	// Worker 0 asks again: its remaining queue entry (rep.ID) is done, so
	// it must not be handed out again.
	task, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st == Assigned && task.ID == rep.ID {
		t.Fatalf("completed task %d dispatched again", rep.ID)
	}
	if st != Done {
		t.Fatalf("status = %v, want Done (all complete)", st)
	}
}

func TestStorageAffinityReplicationPrefersAffinity(t *testing.T) {
	// Two incomplete tasks running elsewhere; the idle worker's site has
	// task 1's files resident, so the replica must be task 1.
	w := wl(t, 8, []int{0, 1}, []int{2, 3}, []int{4, 5})
	s := newSA(t, w, 3, 1, 10, 3)
	a, _ := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	b, _ := s.NextFor(WorkerRef{Site: 1, Worker: 0})
	c, _ := s.NextFor(WorkerRef{Site: 2, Worker: 0})
	// Site 0 finishes its task; its storage now holds the files of task
	// c (simulated via NoteBatch).
	s.OnTaskComplete(a.ID, WorkerRef{Site: 0, Worker: 0})
	s.NoteBatch(0, w.Tasks[c.ID].Files, w.Tasks[c.ID].Files, nil)
	rep, st := s.NextFor(WorkerRef{Site: 0, Worker: 0})
	if st != Assigned || rep.ID != c.ID {
		t.Fatalf("replica = %d (%v), want %d (affinity)", rep.ID, st, c.ID)
	}
	_ = b
}
