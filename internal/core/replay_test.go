package core

import (
	"math/rand"
	"testing"

	"gridsched/internal/workload"
)

// sharedWorkload builds tasks tasks of filesPer files each with wrapping
// file ids, so neighbors share inputs and the affinity draft has structure.
func sharedWorkload(tasks, filesPer int) *workload.Workload {
	numFiles := tasks*filesPer/2 + filesPer
	w := &workload.Workload{Name: "replay", NumFiles: numFiles}
	for i := 0; i < tasks; i++ {
		task := workload.Task{ID: workload.TaskID(i)}
		for f := 0; f < filesPer; f++ {
			task.Files = append(task.Files, workload.FileID((i*filesPer/2+f)%numFiles))
		}
		w.Tasks = append(w.Tasks, task)
	}
	return w
}

// replayEvent is one scheduler-affecting step of a recorded run, the shape
// a service journal replays: assignments plus completion/failure reports.
type replayEvent struct {
	op   int // 0 assign, 1 complete, 2 fail
	task workload.TaskID
	at   WorkerRef
}

// driveStorageAffinity runs a randomized service-like loop against s:
// workers pull (one assignment per worker at a time), executions complete
// or fail, replicas get cancelled. NextFor calls that end without an
// assignment are deliberately NOT recorded — the service does not journal
// them either — so the recorded log has exactly the information recovery
// has. Returns the event log after stopAfter events or job drain.
func driveStorageAffinity(s *StorageAffinity, rng *rand.Rand, sites, workersPer, stopAfter int) []replayEvent {
	type exec struct {
		task workload.TaskID
		at   WorkerRef
	}
	var log []replayEvent
	var running []exec
	idle := func(at WorkerRef) bool {
		for _, e := range running {
			if e.at == at {
				return false
			}
		}
		return true
	}
	for guard := 0; len(log) < stopAfter && s.Remaining() > 0 && guard < 100000; guard++ {
		if rng.Intn(2) == 0 || len(running) == 0 {
			at := WorkerRef{Site: rng.Intn(sites), Worker: rng.Intn(workersPer)}
			if !idle(at) {
				continue
			}
			task, status := s.NextFor(at)
			if status != Assigned {
				continue
			}
			log = append(log, replayEvent{op: 0, task: task.ID, at: at})
			running = append(running, exec{task: task.ID, at: at})
			continue
		}
		i := rng.Intn(len(running))
		e := running[i]
		running = append(running[:i], running[i+1:]...)
		if s.completed[e.task] {
			continue // replica obsoleted by an earlier completion
		}
		if rng.Intn(4) == 0 {
			log = append(log, replayEvent{op: 2, task: e.task, at: e.at})
			s.OnExecutionFailed(e.task, e.at)
			continue
		}
		log = append(log, replayEvent{op: 1, task: e.task, at: e.at})
		cancel := s.OnTaskComplete(e.task, e.at)
		for _, ref := range cancel {
			for j, r := range running {
				if r.at == ref && r.task == e.task {
					running = append(running[:j], running[j+1:]...)
					break
				}
			}
		}
	}
	return log
}

// TestStorageAffinityReplayAssignReproducesRun rebuilds a scheduler from a
// recorded event log via ReplayAssign and asserts (a) every dispatch-state
// component except the queue cursors matches the original instance exactly,
// and (b) the rebuilt instance drains the remainder of the job to
// completion with every task completed exactly once — the correctness
// property recovery must preserve even where cursor drift (see the
// ReplayAssign comment) lets it pick differently than the original would.
func TestStorageAffinityReplayAssignReproducesRun(t *testing.T) {
	const sites, workersPer, tasks = 3, 2, 60
	w := sharedWorkload(tasks, 6)
	cfg := StorageAffinityConfig{
		Sites: sites, WorkersPerSite: workersPer,
		CapacityFiles: 40, Policy: 1, MaxReplicas: 2,
	}
	for seed := int64(1); seed <= 6; seed++ {
		original, err := NewStorageAffinity(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for site := 0; site < sites; site++ {
			original.AttachSite(site)
		}
		rng := rand.New(rand.NewSource(seed))
		log := driveStorageAffinity(original, rng, sites, workersPer, 90)

		rebuilt, err := NewStorageAffinity(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for site := 0; site < sites; site++ {
			rebuilt.AttachSite(site)
		}
		for i, e := range log {
			switch e.op {
			case 0:
				if err := rebuilt.ReplayAssign(e.task, e.at); err != nil {
					t.Fatalf("seed %d event %d: %v", seed, i, err)
				}
			case 1:
				rebuilt.OnTaskComplete(e.task, e.at)
			case 2:
				rebuilt.OnExecutionFailed(e.task, e.at)
			}
		}

		if got, want := rebuilt.Remaining(), original.Remaining(); got != want {
			t.Fatalf("seed %d: remaining %d after replay, want %d", seed, got, want)
		}
		for id := range w.Tasks {
			tid := workload.TaskID(id)
			if rebuilt.completed[id] != original.completed[id] {
				t.Fatalf("seed %d: task %d completed=%v, want %v", seed, id, rebuilt.completed[id], original.completed[id])
			}
			if rebuilt.started[id] != original.started[id] {
				t.Fatalf("seed %d: task %d started=%v, want %v", seed, id, rebuilt.started[id], original.started[id])
			}
			a, b := rebuilt.running[tid], original.running[tid]
			if len(a) != len(b) {
				t.Fatalf("seed %d: task %d running %v, want %v", seed, id, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: task %d running %v, want %v", seed, id, a, b)
				}
			}
		}
		for site := 0; site < sites; site++ {
			if rebuilt.unstarted[site] != original.unstarted[site] {
				t.Fatalf("seed %d: site %d unstarted %d, want %d", seed, site, rebuilt.unstarted[site], original.unstarted[site])
			}
		}

		// Drain the rebuilt instance: every incomplete task must complete
		// exactly once; nothing may be lost or completed twice.
		completions := make([]int, tasks)
		for id, done := range rebuilt.completed {
			if done {
				completions[id] = 1
			}
		}
		crng := rand.New(rand.NewSource(seed + 100))
		for step := 0; rebuilt.Remaining() > 0; step++ {
			if step > 100000 {
				t.Fatalf("seed %d: drain did not converge (remaining %d)", seed, rebuilt.Remaining())
			}
			at := WorkerRef{Site: crng.Intn(sites), Worker: crng.Intn(workersPer)}
			task, status := rebuilt.NextFor(at)
			if status != Assigned {
				continue
			}
			if !rebuilt.completed[task.ID] {
				completions[task.ID]++
			}
			rebuilt.OnTaskComplete(task.ID, at)
		}
		for id, n := range completions {
			if n != 1 {
				t.Fatalf("seed %d: task %d completed %d times", seed, id, n)
			}
		}
	}
}
