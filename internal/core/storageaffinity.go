package core

import (
	"fmt"

	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// StorageAffinityConfig parameterizes the task-centric baseline.
type StorageAffinityConfig struct {
	Sites          int `json:"sites"`
	WorkersPerSite int `json:"workersPerSite"`
	// CapacityFiles bounds the virtual storage image used during initial
	// assignment; it should equal the simulated data servers' capacity so
	// the scheduler predicts eviction the way the real storage behaves.
	CapacityFiles int            `json:"capacityFiles"`
	Policy        storage.Policy `json:"policy"`
	// MaxReplicas caps concurrent executions of one task (initial run +
	// replicas). The paper replicates one task per idle worker without
	// stating a cap; 3 keeps tail replication useful without letting the
	// last task flood every idle worker.
	MaxReplicas int `json:"maxReplicas"`
}

// Validate checks the configuration.
func (c StorageAffinityConfig) Validate() error {
	switch {
	case c.Sites < 1:
		return fmt.Errorf("core: Sites = %d", c.Sites)
	case c.WorkersPerSite < 1:
		return fmt.Errorf("core: WorkersPerSite = %d", c.WorkersPerSite)
	case c.CapacityFiles < 1:
		return fmt.Errorf("core: CapacityFiles = %d", c.CapacityFiles)
	case c.MaxReplicas < 1:
		return fmt.Errorf("core: MaxReplicas = %d", c.MaxReplicas)
	}
	return nil
}

// StorageAffinity is the task-centric scheduler with data reuse and task
// replication (Santos-Neto et al. [14], as described in the paper's §3.1).
//
// At job start it walks the task list once, assigning each task to the site
// with maximum affinity — the overlap between the task's input set and a
// *virtual* storage image that accumulates the files of previously assigned
// tasks (bounded by the real capacity, so the prediction evicts like the
// real storage will). Within the chosen site, tasks go to the shortest
// worker queue. This up-front commitment is exactly what exposes the two
// task-centric problems the paper analyzes: queues can be unbalanced across
// sites, and the storage state at execution time may no longer match the
// state the decision was based on.
//
// When a worker runs dry it replicates: the scheduler picks the incomplete
// task with the highest affinity to the worker's site's *current* storage
// (below the replica cap) and hands out another execution; the first
// completion cancels the rest.
type StorageAffinity struct {
	cfg StorageAffinityConfig
	w   *workload.Workload
	idx *fileIndex

	assigned  bool
	queues    [][][]workload.TaskID // [site][worker] -> FIFO of task ids
	qHead     [][]int               // pop cursor per queue
	mirrors   map[int]*siteMirror
	running   map[workload.TaskID][]WorkerRef
	started   []bool // per task: some execution has begun
	home      []int  // per task: site of the initial assignment
	unstarted []int  // per site: assigned tasks not yet started anywhere
	completed []bool
	remaining int
}

var (
	_ Scheduler = (*StorageAffinity)(nil)
	_ Replayer  = (*StorageAffinity)(nil)
)

// NewStorageAffinity builds the baseline scheduler.
func NewStorageAffinity(w *workload.Workload, cfg StorageAffinityConfig) (*StorageAffinity, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StorageAffinity{
		cfg:       cfg,
		w:         w,
		idx:       indexFor(w),
		queues:    make([][][]workload.TaskID, cfg.Sites),
		qHead:     make([][]int, cfg.Sites),
		mirrors:   make(map[int]*siteMirror),
		running:   make(map[workload.TaskID][]WorkerRef),
		started:   make([]bool, len(w.Tasks)),
		home:      make([]int, len(w.Tasks)),
		unstarted: make([]int, cfg.Sites),
		completed: make([]bool, len(w.Tasks)),
		remaining: len(w.Tasks),
	}
	for site := range s.queues {
		s.queues[site] = make([][]workload.TaskID, cfg.WorkersPerSite)
		s.qHead[site] = make([]int, cfg.WorkersPerSite)
	}
	return s, nil
}

// Name implements Scheduler.
func (s *StorageAffinity) Name() string { return "storage-affinity" }

// AttachSite implements Scheduler.
func (s *StorageAffinity) AttachSite(site int) {
	if site < 0 || site >= s.cfg.Sites {
		panic(fmt.Sprintf("core: AttachSite(%d) outside configured %d sites", site, s.cfg.Sites))
	}
	if _, ok := s.mirrors[site]; !ok {
		m := newSiteMirror(s.idx, len(s.w.Tasks))
		m.trackRefs = false // affinity weighs overlap only, never refSum
		s.mirrors[site] = m
	}
}

// NoteBatch implements Scheduler.
func (s *StorageAffinity) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	m, ok := s.mirrors[site]
	if !ok {
		panic(fmt.Sprintf("core: NoteBatch for unattached site %d", site))
	}
	m.noteBatch(batch, fetched, evicted, nil)
}

// Remaining implements Scheduler.
func (s *StorageAffinity) Remaining() int { return s.remaining }

// initialAssign performs the one-shot task-centric assignment pass.
//
// The paper says storage affinity "first distributes its tasks according to
// the overlap cardinality" (§3.1) without fixing the distribution order. A
// naive single pass over tasks on cold storage degenerates: once site 0
// holds task 0's files, every subsequent spatial neighbor prefers site 0
// and the whole job lands on one site — which contradicts the competitive
// makespans the paper reports for the baseline. We therefore use a draft:
// sites take turns picking their highest-affinity unassigned task, each
// against a *virtual* storage image (bounded by the real capacity, so the
// prediction evicts like the real storage will). The assignment is still
// committed entirely up front on predicted content — which is exactly what
// exposes the premature-decision problem at small capacities — while task
// counts stay balanced. See DESIGN.md ("Storage affinity details").
func (s *StorageAffinity) initialAssign() error {
	images := make([]*storage.Store, s.cfg.Sites)
	mirrors := make([]*siteMirror, s.cfg.Sites)
	for i := range images {
		img, err := storage.New(s.cfg.CapacityFiles, s.cfg.Policy)
		if err != nil {
			return err
		}
		images[i] = img
		mirrors[i] = newSiteMirror(s.idx, len(s.w.Tasks))
		mirrors[i].trackRefs = false // virtual image: overlap only
	}
	unassigned := len(s.w.Tasks)
	taken := make([]bool, len(s.w.Tasks))
	nextWorker := make([]int, s.cfg.Sites)
	stripe := (len(s.w.Tasks) + s.cfg.Sites - 1) / s.cfg.Sites
	for site := 0; unassigned > 0; site = (site + 1) % s.cfg.Sites {
		// Draft the highest-affinity unassigned task for this site; ties
		// go to the lowest task id.
		best := -1
		bestAff := int32(-1)
		for id := range taken {
			if !taken[id] {
				if aff := mirrors[site].overlap[id]; aff > bestAff {
					best, bestAff = id, aff
				}
			}
		}
		if bestAff == 0 {
			// Nothing this site holds is useful (cold storage or its
			// region is exhausted). Seeding every such pick at the head
			// of the task list would herd all sites onto one region of a
			// spatially ordered workload; start each site in its own
			// stripe of the task list instead.
			best = -1
			for off := 0; off < len(taken); off++ {
				id := (site*stripe + off) % len(taken)
				if !taken[id] {
					best = id
					break
				}
			}
		}
		t := s.w.Tasks[best]
		taken[best] = true
		unassigned--
		fetched, evicted, err := images[site].CommitBatch(t.Files)
		if err != nil {
			return fmt.Errorf("core: virtual storage: %w", err)
		}
		mirrors[site].noteBatch(t.Files, fetched, evicted, nil)
		// Round-robin across the site's workers (queues stay balanced in
		// count; runtime imbalance is what replication later absorbs).
		wq := nextWorker[site]
		nextWorker[site] = (wq + 1) % s.cfg.WorkersPerSite
		s.queues[site][wq] = append(s.queues[site][wq], t.ID)
		s.home[t.ID] = site
		s.unstarted[site]++
	}
	return nil
}

// markStarted records the first execution of a task.
func (s *StorageAffinity) markStarted(id workload.TaskID) {
	if !s.started[id] {
		s.started[id] = true
		s.unstarted[s.home[id]]--
	}
}

// NextFor implements Scheduler: drain the worker's own queue; when dry,
// replicate the highest-affinity incomplete task.
func (s *StorageAffinity) NextFor(at WorkerRef) (workload.Task, Status) {
	if !s.assigned {
		if err := s.initialAssign(); err != nil {
			panic(err) // configuration bug (capacity < max task size) surfaced at first request
		}
		s.assigned = true
	}
	if at.Site < 0 || at.Site >= s.cfg.Sites || at.Worker < 0 || at.Worker >= s.cfg.WorkersPerSite {
		panic(fmt.Sprintf("core: NextFor(%+v) outside configured pool", at))
	}
	q := s.queues[at.Site][at.Worker]
	for s.qHead[at.Site][at.Worker] < len(q) {
		id := q[s.qHead[at.Site][at.Worker]]
		s.qHead[at.Site][at.Worker]++
		if s.completed[id] {
			continue
		}
		if s.started[id] && len(s.running[id]) >= s.cfg.MaxReplicas {
			// Stolen by other sites up to the replica cap; leave it to
			// them rather than pile on another execution.
			continue
		}
		s.markStarted(id)
		s.running[id] = append(s.running[id], at)
		return s.w.Tasks[id], Assigned
	}
	return s.replicate(at)
}

// replicate serves an idle worker whose own queue is drained, in two steps
// ("the scheduler picks a task already assigned to a worker and replicates
// it to the idle worker", §3.1):
//
//  1. Steal an *unstarted* queued task — preferring maximum affinity to
//     the idle worker's storage, and when nothing overlaps, the deepest
//     queued task of the most backlogged site. Stealing duplicates no
//     work: when the home worker later reaches the entry it skips it.
//  2. Only when every incomplete task is already running, replicate a
//     running execution (capped by MaxReplicas); the first completion
//     cancels the rest.
func (s *StorageAffinity) replicate(at WorkerRef) (workload.Task, Status) {
	if s.remaining == 0 {
		return workload.Task{}, Done
	}
	m := s.mirrors[at.Site]
	if m == nil {
		panic(fmt.Sprintf("core: replicate for unattached site %d", at.Site))
	}

	// Step 1: steal an unstarted task.
	bestID := workload.TaskID(-1)
	bestAff := int32(0) // require positive affinity to steal by locality
	for id := range s.completed {
		if s.completed[id] || s.started[id] {
			continue
		}
		if m.overlap[id] > bestAff {
			bestAff = m.overlap[id]
			bestID = workload.TaskID(id)
		}
	}
	if bestID < 0 {
		bestID = s.stealFromBacklog()
	}
	if bestID >= 0 {
		s.markStarted(bestID)
		s.running[bestID] = append(s.running[bestID], at)
		return s.w.Tasks[bestID], Assigned
	}

	// Step 2: replicate a running task.
	bestID, bestAff = -1, -1
	for id := range s.completed {
		tid := workload.TaskID(id)
		if s.completed[id] {
			continue
		}
		if len(s.running[tid]) >= s.cfg.MaxReplicas {
			continue
		}
		if s.alreadyRunningAt(tid, at) {
			continue
		}
		if m.overlap[id] > bestAff {
			bestAff = m.overlap[id]
			bestID = tid
		}
	}
	if bestID < 0 {
		// Every incomplete task is saturated with replicas; stay around in
		// case a replica slot frees up.
		return workload.Task{}, Wait
	}
	s.running[bestID] = append(s.running[bestID], at)
	return s.w.Tasks[bestID], Assigned
}

// stealFromBacklog picks the deepest unstarted queue entry at the site
// with the most unstarted tasks (classic work stealing: take from the
// tail, far from where the victim is working).
func (s *StorageAffinity) stealFromBacklog() workload.TaskID {
	victim := -1
	for site := range s.unstarted {
		if s.unstarted[site] > 0 && (victim < 0 || s.unstarted[site] > s.unstarted[victim]) {
			victim = site
		}
	}
	if victim < 0 {
		return -1
	}
	best := workload.TaskID(-1)
	bestDepth := -1
	for wi := 0; wi < s.cfg.WorkersPerSite; wi++ {
		q := s.queues[victim][wi]
		for pos := len(q) - 1; pos >= s.qHead[victim][wi]; pos-- {
			id := q[pos]
			if s.completed[id] || s.started[id] {
				continue
			}
			if depth := pos - s.qHead[victim][wi]; depth > bestDepth {
				bestDepth = depth
				best = id
			}
			break // only the deepest unstarted entry per queue
		}
	}
	return best
}

func (s *StorageAffinity) alreadyRunningAt(id workload.TaskID, at WorkerRef) bool {
	for _, ref := range s.running[id] {
		if ref == at {
			return true
		}
	}
	return false
}

// ReplayAssign implements Replayer: force the assignment of task id to the
// worker at ref, reproducing what NextFor did when the assignment was first
// made (journal recovery, internal/service).
//
// The own-queue scan mirrors NextFor: entries ahead of id that NextFor
// would have skipped (completed, or started and replica-capped) are
// consumed so the cursor converges to the original run's position. The
// cursor may still lag it — NextFor also consumes skippable entries on
// calls that end in Wait, and those probes are not journaled — so when id
// is not reachable over currently-skippable entries the assignment is
// applied as a steal/replica instead, leaving the queue untouched. The
// divergence is bounded to the cursor: a left-behind entry is either
// consumed later by the same skips the original run made, or re-dispatched
// as a legal extra replica; completed entries are always skipped. Pending
// membership, the running set, and the completion set — everything the
// dispatch weights read — replay exactly.
func (s *StorageAffinity) ReplayAssign(id workload.TaskID, at WorkerRef) error {
	if !s.assigned {
		if err := s.initialAssign(); err != nil {
			return err
		}
		s.assigned = true
	}
	if at.Site < 0 || at.Site >= s.cfg.Sites || at.Worker < 0 || at.Worker >= s.cfg.WorkersPerSite {
		return fmt.Errorf("core: replay assign %d at %+v outside configured pool", id, at)
	}
	if int(id) < 0 || int(id) >= len(s.w.Tasks) {
		return fmt.Errorf("core: replay assign unknown task %d", id)
	}
	if s.completed[id] {
		return fmt.Errorf("core: replay assign of completed task %d", id)
	}
	q := s.queues[at.Site][at.Worker]
	head := &s.qHead[at.Site][at.Worker]
	for *head < len(q) {
		qid := q[*head]
		if qid == id {
			*head++
			break
		}
		if s.completed[qid] || (s.started[qid] && len(s.running[qid]) >= s.cfg.MaxReplicas) {
			*head++
			continue
		}
		break // blocked by a live entry: the dispatch was a steal/replica
	}
	s.markStarted(id)
	s.running[id] = append(s.running[id], at)
	return nil
}

// OnExecutionFailed implements Scheduler: the failed execution leaves the
// running set; if it was the last one, the task is requeued at its home
// site and becomes stealable again.
func (s *StorageAffinity) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	if s.completed[id] {
		return
	}
	execs := s.running[id]
	kept := execs[:0]
	for _, ref := range execs {
		if ref != at {
			kept = append(kept, ref)
		}
	}
	if len(kept) > 0 {
		s.running[id] = kept
		return
	}
	delete(s.running, id)
	if s.started[id] {
		s.started[id] = false
		s.unstarted[s.home[id]]++
	}
	// Fresh queue entry at the home site's shortest queue (the original
	// entry was already consumed or may be double-skipped harmlessly).
	home := s.home[id]
	wq := 0
	for wi := 1; wi < s.cfg.WorkersPerSite; wi++ {
		if len(s.queues[home][wi])-s.qHead[home][wi] < len(s.queues[home][wq])-s.qHead[home][wq] {
			wq = wi
		}
	}
	s.queues[home][wq] = append(s.queues[home][wq], id)
}

// OnTaskComplete implements Scheduler: the first finisher completes the
// task and every other outstanding execution is returned for cancellation.
func (s *StorageAffinity) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	execs := s.running[id]
	// Drop the completer from the running set.
	var cancel []WorkerRef
	for _, ref := range execs {
		if ref != at {
			cancel = append(cancel, ref)
		}
	}
	delete(s.running, id)
	if !s.completed[id] {
		s.completed[id] = true
		s.remaining--
	}
	return cancel
}
