package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// This file keeps the pre-index WorkerCentric implementation — a full
// CalculateWeight scan over a sorted pending list on every request — as a
// test-only golden reference, and asserts the optimized scheduler makes
// *identical* decisions: same assignment sequence, same statuses, same
// random draws, same derived makespan, across every metric, ChooseN ∈
// {1, 2}, and several seeds, under storage churn, failures and requeues.
//
// The single deliberate deviation from the seed code is the combined
// metrics' totalRest accumulation, which both implementations compute in
// the canonical class-order form (see the siteIndex doc comment); all
// other arithmetic is carried over verbatim, so weight floats are
// bit-identical and the equivalence check is exact rather than
// probabilistic.

// naiveWorkerCentric is the reference implementation.
type naiveWorkerCentric struct {
	cfg WorkerCentricConfig
	w   *workload.Workload
	idx *fileIndex
	rng *rand.Rand

	pending   []workload.TaskID // ascending task id
	alive     []bool
	completed []bool
	remaining int
	mirrors   map[int]*siteMirror

	cand []candidate
	cnt  []int32 // per-request missing-class counts (canonical totals)
}

func newNaiveWorkerCentric(w *workload.Workload, cfg WorkerCentricConfig) (*naiveWorkerCentric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &naiveWorkerCentric{
		cfg:       cfg,
		w:         w,
		idx:       newFileIndex(w),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pending:   make([]workload.TaskID, len(w.Tasks)),
		alive:     make([]bool, len(w.Tasks)),
		completed: make([]bool, len(w.Tasks)),
		remaining: len(w.Tasks),
		mirrors:   make(map[int]*siteMirror),
	}
	s.cnt = make([]int32, s.idx.maxFiles+1)
	for i := range w.Tasks {
		s.pending[i] = workload.TaskID(i)
		s.alive[i] = true
	}
	return s, nil
}

func (s *naiveWorkerCentric) Name() string { return "naive-" + s.cfg.Metric.String() }

func (s *naiveWorkerCentric) AttachSite(site int) {
	if _, ok := s.mirrors[site]; !ok {
		s.mirrors[site] = newSiteMirror(s.idx, len(s.w.Tasks))
	}
}

func (s *naiveWorkerCentric) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	s.mirrors[site].noteBatch(batch, fetched, evicted, nil)
}

func (s *naiveWorkerCentric) Remaining() int { return s.remaining }

func (s *naiveWorkerCentric) NextFor(at WorkerRef) (workload.Task, Status) {
	if len(s.pending) == 0 {
		return workload.Task{}, Done
	}
	m, ok := s.mirrors[at.Site]
	if !ok {
		panic(fmt.Sprintf("core: NextFor for unattached site %d", at.Site))
	}
	id := s.chooseTask(m)
	s.removePending(id)
	return s.w.Tasks[id], Assigned
}

// chooseTask is the seed's scan: full-overlap pass, totals pass, candidate
// pass, then ChooseTask(n).
func (s *naiveWorkerCentric) chooseTask(m *siteMirror) workload.TaskID {
	if s.cfg.Metric != MetricOverlap {
		s.cand = s.cand[:0]
		for _, id := range s.pending {
			if m.overlap[id] == int32(len(s.w.Tasks[id].Files)) {
				s.cand = append(s.cand, candidate{id: id, weight: float64(m.overlap[id])})
			}
		}
		if len(s.cand) > 0 {
			return s.pickTopN(s.cand)
		}
	}

	// Pre-compute totals for the combined metrics (canonical class-order
	// totalRest; totalRef is an exact integer sum under any order).
	var totalRef, totalRest float64
	if s.cfg.Metric == MetricCombined || s.cfg.Metric == MetricCombinedLiteral {
		for i := range s.cnt {
			s.cnt[i] = 0
		}
		for _, id := range s.pending {
			totalRef += float64(m.refSum[id])
			s.cnt[len(s.w.Tasks[id].Files)-int(m.overlap[id])]++ // missing >= 1 here
		}
		for c := 1; c < len(s.cnt); c++ {
			if cnt := s.cnt[c]; cnt > 0 {
				totalRest += float64(cnt) / float64(c)
			}
		}
	}

	s.cand = s.cand[:0]
	for _, id := range s.pending {
		ov := float64(m.overlap[id])
		missing := float64(len(s.w.Tasks[id].Files)) - ov
		var weight float64
		switch s.cfg.Metric {
		case MetricOverlap:
			weight = ov
		case MetricRest:
			weight = 1 / missing
		case MetricCombined:
			rest := 1 / missing
			weight = norm(float64(m.refSum[id]), totalRef) + norm(rest, totalRest)
		case MetricCombinedLiteral:
			rest := 1 / missing
			weight = norm(float64(m.refSum[id]), totalRef) + totalRest/rest
		}
		s.cand = append(s.cand, candidate{id: id, weight: weight})
	}
	return s.pickTopN(s.cand)
}

// pickTopN is the seed's ChooseTask(n), verbatim.
func (s *naiveWorkerCentric) pickTopN(cand []candidate) workload.TaskID {
	informative := false
	for _, c := range cand {
		if c.weight > 0 {
			informative = true
			break
		}
	}
	if !informative {
		return cand[s.rng.Intn(len(cand))].id
	}
	n := s.cfg.ChooseN
	if n > len(cand) {
		n = len(cand)
	}
	top := make([]candidate, 0, n)
	for _, c := range cand {
		if len(top) < n {
			top = append(top, c)
			for i := len(top) - 1; i > 0 && top[i].weight > top[i-1].weight; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if c.weight > top[n-1].weight {
			top[n-1] = c
			for i := n - 1; i > 0 && top[i].weight > top[i-1].weight; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	if len(top) == 1 {
		return top[0].id
	}
	var sum float64
	for _, c := range top {
		if math.IsInf(c.weight, 1) {
			return c.id
		}
		sum += c.weight
	}
	if sum <= 0 {
		return top[s.rng.Intn(len(top))].id
	}
	r := s.rng.Float64() * sum
	for _, c := range top {
		r -= c.weight
		if r < 0 {
			return c.id
		}
	}
	return top[len(top)-1].id
}

func (s *naiveWorkerCentric) removePending(id workload.TaskID) {
	if !s.alive[id] {
		panic(fmt.Sprintf("core: task %d assigned twice", id))
	}
	s.alive[id] = false
	lo, hi := 0, len(s.pending)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.pending[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pending = append(s.pending[:lo], s.pending[lo+1:]...)
}

func (s *naiveWorkerCentric) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	if !s.completed[id] {
		s.completed[id] = true
		s.remaining--
	}
	return nil
}

func (s *naiveWorkerCentric) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	if s.completed[id] || s.alive[id] {
		return
	}
	s.alive[id] = true
	lo, hi := 0, len(s.pending)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.pending[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pending = append(s.pending, 0)
	copy(s.pending[lo+1:], s.pending[lo:])
	s.pending[lo] = id
}

// goldenDriver runs both schedulers in lockstep against shared LRU stores
// under a deterministic request/failure/completion pattern and returns each
// scheduler's independently derived assignment sequence and makespan.
func goldenDriver(t *testing.T, w *workload.Workload, cfg WorkerCentricConfig, sites int) (seq []workload.TaskID, makespan float64) {
	t.Helper()
	opt, err := NewWorkerCentric(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newNaiveWorkerCentric(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	maxFiles := 0
	for _, task := range w.Tasks {
		if len(task.Files) > maxFiles {
			maxFiles = len(task.Files)
		}
	}
	stores := make([]*storage.Store, sites)
	optClock := make([]float64, sites) // per-site virtual time, optimized view
	refClock := make([]float64, sites) // same rule applied to the reference's tasks
	for i := range stores {
		st, err := storage.New(maxFiles*2, storage.LRU) // tight: heavy eviction churn
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		opt.AttachSite(i)
		ref.AttachSite(i)
	}

	type exec struct {
		id   workload.TaskID
		site int
	}
	var inflight []exec
	drv := rand.New(rand.NewSource(cfg.Seed*7919 + 17))
	optMakespan, refMakespan := 0.0, 0.0
	var refSeq []workload.TaskID

	finishOne := func() {
		k := drv.Intn(len(inflight))
		e := inflight[k]
		inflight = append(inflight[:k], inflight[k+1:]...)
		if drv.Intn(4) == 0 {
			// Lost execution: the task must be requeued and rescheduled
			// with whatever the site storage looks like by then.
			opt.OnExecutionFailed(e.id, WorkerRef{Site: e.site})
			ref.OnExecutionFailed(e.id, WorkerRef{Site: e.site})
			return
		}
		opt.OnTaskComplete(e.id, WorkerRef{Site: e.site})
		ref.OnTaskComplete(e.id, WorkerRef{Site: e.site})
	}

	for opt.Remaining() > 0 || ref.Remaining() > 0 {
		site := drv.Intn(sites)
		at := WorkerRef{Site: site, Worker: 0}
		to, so := opt.NextFor(at)
		tr, sr := ref.NextFor(at)
		if so != sr {
			t.Fatalf("status diverged at site %d: optimized %v, reference %v", site, so, sr)
		}
		if so == Assigned {
			if to.ID != tr.ID {
				t.Fatalf("assignment diverged: optimized task %d, reference task %d (after %d assignments)",
					to.ID, tr.ID, len(seq))
			}
			seq = append(seq, to.ID)
			refSeq = append(refSeq, tr.ID)
			// Each scheduler's makespan derives from its own returned
			// task — staging cost + compute cost on the site's clock —
			// so equal makespans are a consequence, not an assumption.
			optMissing := stores[site].Missing(to.Files)
			refMissing := stores[site].Missing(tr.Files)
			fetched, evicted, err := stores[site].CommitBatch(to.Files)
			if err != nil {
				t.Fatal(err)
			}
			opt.NoteBatch(site, to.Files, fetched, evicted)
			ref.NoteBatch(site, tr.Files, fetched, evicted)
			optClock[site] += float64(len(optMissing)) + float64(len(to.Files))*0.25
			refClock[site] += float64(len(refMissing)) + float64(len(tr.Files))*0.25
			optMakespan = math.Max(optMakespan, optClock[site])
			refMakespan = math.Max(refMakespan, refClock[site])
			inflight = append(inflight, exec{id: to.ID, site: site})
		}
		// Drain some in-flight executions; always drain when nothing is
		// dispatchable so failures can requeue the stragglers.
		for len(inflight) > 0 && (so != Assigned || drv.Intn(3) == 0) {
			finishOne()
			if so == Assigned {
				break
			}
		}
	}
	for i, id := range refSeq {
		if seq[i] != id {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, seq[i], id)
		}
	}
	if optMakespan != refMakespan {
		t.Fatalf("makespans diverged: %v vs %v", optMakespan, refMakespan)
	}
	if opt.Pending() != 0 || len(ref.pending) != 0 {
		t.Fatalf("pending left over: optimized %d, reference %d", opt.Pending(), len(ref.pending))
	}
	return seq, optMakespan
}

// TestGoldenEquivalenceWithNaiveScan is the equivalence matrix: all four
// metrics, ChooseN 1 and 2, three seeds.
func TestGoldenEquivalenceWithNaiveScan(t *testing.T) {
	metrics := []Metric{MetricOverlap, MetricRest, MetricCombined, MetricCombinedLiteral}
	for _, metric := range metrics {
		for _, chooseN := range []int{1, 2} {
			for _, seed := range []int64{1, 2, 3} {
				name := fmt.Sprintf("%s.n%d.seed%d", metric, chooseN, seed)
				t.Run(name, func(t *testing.T) {
					gen := workload.CoaddSmallConfig(seed)
					gen.Tasks = 150
					w, err := workload.GenerateCoadd(gen)
					if err != nil {
						t.Fatal(err)
					}
					cfg := WorkerCentricConfig{Metric: metric, ChooseN: chooseN, Seed: seed}
					seq, makespan := goldenDriver(t, w, cfg, 3)
					if len(seq) < len(w.Tasks) {
						t.Fatalf("only %d assignments for %d tasks", len(seq), len(w.Tasks))
					}
					if makespan <= 0 {
						t.Fatalf("degenerate makespan %v", makespan)
					}
				})
			}
		}
	}
}

// TestFenwickOrderStatistics pins the order-statistics tree the uniform
// zero-information draw depends on.
func TestFenwickOrderStatistics(t *testing.T) {
	var f fenwick
	f.initOnes(10)
	for k := 0; k < 10; k++ {
		if got := f.kth(k); got != workload.TaskID(k) {
			t.Fatalf("kth(%d) = %d, want %d", k, got, k)
		}
	}
	f.add(3, -1)
	f.add(0, -1)
	f.add(9, -1)
	want := []workload.TaskID{1, 2, 4, 5, 6, 7, 8}
	for k, id := range want {
		if got := f.kth(k); got != id {
			t.Fatalf("after removals: kth(%d) = %d, want %d", k, got, id)
		}
	}
	f.add(0, 1)
	if got := f.kth(0); got != 0 {
		t.Fatalf("after re-add: kth(0) = %d, want 0", got)
	}
}
