package core

import (
	"sync"

	"gridsched/internal/workload"
)

// Synchronized wraps a Scheduler with a mutex, making every method safe for
// concurrent callers.
//
// The concurrency contract: Scheduler implementations themselves are NOT
// safe for concurrent use — the simulator is single-threaded by
// construction, internal/service serializes all scheduler and store access
// under its own service lock, and internal/live drives the service rather
// than a scheduler. An embedder that drives a scheduler directly from
// multiple goroutines must wrap it in NewSynchronized (or serialize calls
// itself). Note that the lock covers one call at a time: sequences that
// must be atomic (e.g. NextFor followed by bookkeeping that a concurrent
// OnExecutionFailed could interleave with) still need external
// coordination.
type Synchronized struct {
	mu    sync.Mutex
	inner Scheduler
}

var _ Scheduler = (*Synchronized)(nil)

// NewSynchronized wraps s. The wrapper takes ownership: bypassing it while
// it is in use re-introduces the data race it exists to prevent.
func NewSynchronized(s Scheduler) *Synchronized {
	return &Synchronized{inner: s}
}

// Name implements Scheduler.
func (s *Synchronized) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Name()
}

// AttachSite implements Scheduler.
func (s *Synchronized) AttachSite(site int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.AttachSite(site)
}

// NoteBatch implements Scheduler.
func (s *Synchronized) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.NoteBatch(site, batch, fetched, evicted)
}

// NextFor implements Scheduler.
func (s *Synchronized) NextFor(at WorkerRef) (workload.Task, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.NextFor(at)
}

// OnTaskComplete implements Scheduler.
func (s *Synchronized) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OnTaskComplete(id, at)
}

// OnExecutionFailed implements Scheduler.
func (s *Synchronized) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.OnExecutionFailed(id, at)
}

// Remaining implements Scheduler.
func (s *Synchronized) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Remaining()
}
