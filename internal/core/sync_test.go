package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"gridsched/internal/core"
	"gridsched/internal/workload"
)

// TestSynchronizedConcurrentDrain hammers a wrapped scheduler from many
// goroutines; under -race this is the concurrency-contract check.
func TestSynchronizedConcurrentDrain(t *testing.T) {
	const tasks = 500
	w := &workload.Workload{Name: "sync", NumFiles: 64}
	for i := 0; i < tasks; i++ {
		w.Tasks = append(w.Tasks, workload.Task{
			ID:    workload.TaskID(i),
			Files: []workload.FileID{workload.FileID(i % 64)},
		})
	}
	s := core.NewSynchronized(core.NewWorkqueue(w))
	if s.Name() != "workqueue" {
		t.Fatalf("name %q", s.Name())
	}
	for site := 0; site < 4; site++ {
		s.AttachSite(site)
	}

	var assigned atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		ref := core.WorkerRef{Site: g % 4, Worker: g / 4}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, status := s.NextFor(ref)
				switch status {
				case core.Assigned:
					assigned.Add(1)
					s.NoteBatch(ref.Site, task.Files, task.Files, nil)
					s.OnTaskComplete(task.ID, ref)
				case core.Wait:
					// Another goroutine holds the straggler; retry.
				case core.Done:
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := assigned.Load(); got != tasks {
		t.Fatalf("assigned %d, want %d", got, tasks)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining %d", s.Remaining())
	}
}
