package core

import (
	"fmt"
	"math"
	"math/rand"

	"gridsched/internal/workload"
)

// WorkerCentricConfig parameterizes the paper's basic algorithm (Fig. 2).
type WorkerCentricConfig struct {
	Metric Metric `json:"metric"`
	// ChooseN is the n of ChooseTask(n): the scheduler picks among the n
	// best-weighted tasks with probability proportional to weight. n = 1
	// is the deterministic variant; the paper evaluates n = 1 and n = 2.
	ChooseN int   `json:"chooseN"`
	Seed    int64 `json:"seed"`
}

// Validate checks the configuration.
func (c WorkerCentricConfig) Validate() error {
	switch c.Metric {
	case MetricOverlap, MetricRest, MetricCombined, MetricCombinedLiteral:
	default:
		return fmt.Errorf("core: unknown metric %v", c.Metric)
	}
	if c.ChooseN < 1 {
		return fmt.Errorf("core: ChooseN = %d, need >= 1", c.ChooseN)
	}
	return nil
}

// WorkerCentric is the paper's worker-centric scheduler: one global task
// queue; each request from an idle worker weighs every pending task against
// that worker's site storage and assigns one.
type WorkerCentric struct {
	cfg WorkerCentricConfig
	w   *workload.Workload
	idx *fileIndex
	rng *rand.Rand

	pending   []workload.TaskID // ascending task id
	alive     []bool            // pending membership by task id
	completed []bool
	remaining int
	mirrors   map[int]*siteMirror

	// scratch reused across requests
	cand []candidate
}

type candidate struct {
	id     workload.TaskID
	weight float64
}

var _ Scheduler = (*WorkerCentric)(nil)

// NewWorkerCentric builds the scheduler over the workload's full task set.
func NewWorkerCentric(w *workload.Workload, cfg WorkerCentricConfig) (*WorkerCentric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &WorkerCentric{
		cfg:       cfg,
		w:         w,
		idx:       newFileIndex(w),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		pending:   make([]workload.TaskID, len(w.Tasks)),
		alive:     make([]bool, len(w.Tasks)),
		completed: make([]bool, len(w.Tasks)),
		remaining: len(w.Tasks),
		mirrors:   make(map[int]*siteMirror),
	}
	for i := range w.Tasks {
		s.pending[i] = workload.TaskID(i)
		s.alive[i] = true
	}
	return s, nil
}

// Name implements Scheduler. It matches the paper's algorithm labels:
// "overlap", "rest", "combined", and with n >= 2 "rest.2" etc.
func (s *WorkerCentric) Name() string {
	if s.cfg.ChooseN == 1 {
		return s.cfg.Metric.String()
	}
	return fmt.Sprintf("%s.%d", s.cfg.Metric, s.cfg.ChooseN)
}

// AttachSite implements Scheduler.
func (s *WorkerCentric) AttachSite(site int) {
	if _, ok := s.mirrors[site]; !ok {
		s.mirrors[site] = newSiteMirror(s.idx, len(s.w.Tasks))
	}
}

// NoteBatch implements Scheduler.
func (s *WorkerCentric) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	m, ok := s.mirrors[site]
	if !ok {
		panic(fmt.Sprintf("core: NoteBatch for unattached site %d", site))
	}
	m.noteBatch(batch, fetched, evicted)
}

// Remaining implements Scheduler.
func (s *WorkerCentric) Remaining() int { return s.remaining }

// Pending returns the number of unassigned tasks.
func (s *WorkerCentric) Pending() int { return len(s.pending) }

// NextFor implements Scheduler: CalculateWeight over every pending task for
// the requesting worker's site, then ChooseTask(n).
func (s *WorkerCentric) NextFor(at WorkerRef) (workload.Task, Status) {
	if len(s.pending) == 0 {
		// Worker-centric scheduling never replicates (§3.2), so a worker
		// with no pending tasks is finished for good.
		return workload.Task{}, Done
	}
	m, ok := s.mirrors[at.Site]
	if !ok {
		panic(fmt.Sprintf("core: NextFor for unattached site %d", at.Site))
	}
	id := s.chooseTask(m)
	s.removePending(id)
	return s.w.Tasks[id], Assigned
}

// chooseTask runs CalculateWeight + ChooseTask(n) for one request.
func (s *WorkerCentric) chooseTask(m *siteMirror) workload.TaskID {
	// Tasks that fully overlap the site's storage need zero transfers;
	// rest_t = 1/0 diverges there, which we resolve (documented in
	// DESIGN.md) by always preferring full-overlap tasks, ranked by
	// overlap cardinality. The Overlap metric needs no special class —
	// |Ft| is already finite and maximal for those tasks.
	if s.cfg.Metric != MetricOverlap {
		s.cand = s.cand[:0]
		for _, id := range s.pending {
			if m.overlap[id] == int32(len(s.w.Tasks[id].Files)) {
				s.cand = append(s.cand, candidate{id: id, weight: float64(m.overlap[id])})
			}
		}
		if len(s.cand) > 0 {
			return s.pickTopN(s.cand)
		}
	}

	// Pre-compute totals for the combined metrics.
	var totalRef, totalRest float64
	if s.cfg.Metric == MetricCombined || s.cfg.Metric == MetricCombinedLiteral {
		for _, id := range s.pending {
			totalRef += float64(m.refSum[id])
			missing := len(s.w.Tasks[id].Files) - int(m.overlap[id])
			totalRest += 1 / float64(missing) // missing >= 1 here
		}
	}

	s.cand = s.cand[:0]
	for _, id := range s.pending {
		ov := float64(m.overlap[id])
		missing := float64(len(s.w.Tasks[id].Files)) - ov
		var weight float64
		switch s.cfg.Metric {
		case MetricOverlap:
			weight = ov
		case MetricRest:
			weight = 1 / missing
		case MetricCombined:
			rest := 1 / missing
			weight = norm(float64(m.refSum[id]), totalRef) + norm(rest, totalRest)
		case MetricCombinedLiteral:
			// As typeset: ref_t/totalRef + totalRest/rest_t. Larger rest_t
			// (fewer transfers) lowers the second term; kept verbatim for
			// the ablation.
			rest := 1 / missing
			weight = norm(float64(m.refSum[id]), totalRef) + totalRest/rest
		}
		s.cand = append(s.cand, candidate{id: id, weight: weight})
	}
	return s.pickTopN(s.cand)
}

// norm returns v/total, or 0 when the total is degenerate.
func norm(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return v / total
}

// pickTopN implements ChooseTask(n): keep the n largest weights (ties break
// to the lower task id, because candidates arrive in ascending id order and
// replacement requires strictly greater weight), then sample among them
// with probability proportional to weight.
//
// When every candidate weighs zero — a cold storage and the Overlap metric,
// typically — the weights carry no information, and always defaulting to
// the lowest task id would herd every site onto the same end of the task
// list, where spatially adjacent tasks make the sites fetch each other's
// files over and over. We instead pick uniformly over all candidates, which
// disperses sites across the workload and matches the spirit of
// probability-proportional choice (see DESIGN.md).
func (s *WorkerCentric) pickTopN(cand []candidate) workload.TaskID {
	informative := false
	for _, c := range cand {
		if c.weight > 0 {
			informative = true
			break
		}
	}
	if !informative {
		return cand[s.rng.Intn(len(cand))].id
	}
	n := s.cfg.ChooseN
	if n > len(cand) {
		n = len(cand)
	}
	// Partial selection: top n of len(cand), n is tiny (1 or 2 in the
	// paper), so insertion into a sorted window is O(len(cand) * n).
	top := make([]candidate, 0, n)
	for _, c := range cand {
		if len(top) < n {
			top = append(top, c)
			for i := len(top) - 1; i > 0 && top[i].weight > top[i-1].weight; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if c.weight > top[n-1].weight {
			top[n-1] = c
			for i := n - 1; i > 0 && top[i].weight > top[i-1].weight; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	if len(top) == 1 {
		return top[0].id
	}
	var sum float64
	for _, c := range top {
		if math.IsInf(c.weight, 1) {
			return c.id
		}
		sum += c.weight
	}
	if sum <= 0 {
		return top[s.rng.Intn(len(top))].id
	}
	r := s.rng.Float64() * sum
	for _, c := range top {
		r -= c.weight
		if r < 0 {
			return c.id
		}
	}
	return top[len(top)-1].id
}

// removePending drops id from the pending list (which stays sorted).
func (s *WorkerCentric) removePending(id workload.TaskID) {
	if !s.alive[id] {
		panic(fmt.Sprintf("core: task %d assigned twice", id))
	}
	s.alive[id] = false
	// Binary search for the slot.
	lo, hi := 0, len(s.pending)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.pending[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pending = append(s.pending[:lo], s.pending[lo+1:]...)
}

// OnTaskComplete implements Scheduler. Worker-centric scheduling has no
// replicas to cancel.
func (s *WorkerCentric) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	if !s.completed[id] {
		s.completed[id] = true
		s.remaining--
	}
	return nil
}

// OnExecutionFailed implements Scheduler: the task goes back into the
// pending queue to be weighed again by future requests.
func (s *WorkerCentric) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	if s.completed[id] || s.alive[id] {
		return
	}
	s.alive[id] = true
	// Sorted re-insert keeps the deterministic ascending iteration order.
	lo, hi := 0, len(s.pending)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.pending[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pending = append(s.pending, 0)
	copy(s.pending[lo+1:], s.pending[lo:])
	s.pending[lo] = id
}
