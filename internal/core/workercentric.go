package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"gridsched/internal/workload"
)

// WorkerCentricConfig parameterizes the paper's basic algorithm (Fig. 2).
type WorkerCentricConfig struct {
	Metric Metric `json:"metric"`
	// ChooseN is the n of ChooseTask(n): the scheduler picks among the n
	// best-weighted tasks with probability proportional to weight. n = 1
	// is the deterministic variant; the paper evaluates n = 1 and n = 2.
	ChooseN int   `json:"chooseN"`
	Seed    int64 `json:"seed"`
}

// Validate checks the configuration.
func (c WorkerCentricConfig) Validate() error {
	switch c.Metric {
	case MetricOverlap, MetricRest, MetricCombined, MetricCombinedLiteral:
	default:
		return fmt.Errorf("core: unknown metric %v", c.Metric)
	}
	if c.ChooseN < 1 {
		return fmt.Errorf("core: ChooseN = %d, need >= 1", c.ChooseN)
	}
	return nil
}

// WorkerCentric is the paper's worker-centric scheduler: one global task
// queue; each request from an idle worker weighs every pending task against
// that worker's site storage and assigns one.
//
// Unlike the paper's formulation (and the naive reference implementation
// kept in golden_reference_test.go), NextFor does not rescan the pending
// queue: each site maintains incrementally-updated weight-class indexes
// (siteIndex) from which the top-weighted candidates are read directly, so
// a request costs O(classes · ChooseN · log pending) instead of
// O(pending). The decisions are identical to the naive scan — including
// the random ChooseTask(n) draws — which the golden-equivalence test
// asserts across all metrics, ChooseN values, and seeds.
type WorkerCentric struct {
	cfg WorkerCentricConfig
	w   *workload.Workload
	idx *fileIndex
	rng *rand.Rand

	alive     []bool // pending membership by task id
	completed []bool
	remaining int
	pendingN  int     // number of pending tasks
	order     fenwick // order statistics over pending task ids

	mirrors map[int]*siteMirror
	indexes map[int]*siteIndex
	// indexList mirrors indexes for allocation-free iteration. Iteration
	// order does not matter: per-site index updates touch no shared
	// floating-point state (class counts and reference totals are exact
	// integers), so removals/insertions commute.
	indexList []*siteIndex

	// scratch reused across requests
	cand     []candidate
	top      []candidate
	frontier []int32
	picked   []workload.TaskID
}

type candidate struct {
	id     workload.TaskID
	weight float64
}

var _ Scheduler = (*WorkerCentric)(nil)

// NewWorkerCentric builds the scheduler over the workload's full task set.
func NewWorkerCentric(w *workload.Workload, cfg WorkerCentricConfig) (*WorkerCentric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &WorkerCentric{
		cfg:       cfg,
		w:         w,
		idx:       indexFor(w),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		alive:     make([]bool, len(w.Tasks)),
		completed: make([]bool, len(w.Tasks)),
		remaining: len(w.Tasks),
		pendingN:  len(w.Tasks),
		mirrors:   make(map[int]*siteMirror),
		indexes:   make(map[int]*siteIndex),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	s.order.initOnes(len(w.Tasks))
	return s, nil
}

// Name implements Scheduler. It matches the paper's algorithm labels:
// "overlap", "rest", "combined", and with n >= 2 "rest.2" etc.
func (s *WorkerCentric) Name() string {
	if s.cfg.ChooseN == 1 {
		return s.cfg.Metric.String()
	}
	return fmt.Sprintf("%s.%d", s.cfg.Metric, s.cfg.ChooseN)
}

// AttachSite implements Scheduler.
func (s *WorkerCentric) AttachSite(site int) {
	if _, ok := s.mirrors[site]; !ok {
		m := newSiteMirror(s.idx, len(s.w.Tasks))
		x := newSiteIndex(s, m)
		m.trackRefs = x.rankByRef // refSum is read by the combined metrics only
		s.mirrors[site] = m
		s.indexes[site] = x
		s.indexList = append(s.indexList, x)
	}
}

// NoteBatch implements Scheduler.
func (s *WorkerCentric) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	x, ok := s.indexes[site]
	if !ok {
		panic(fmt.Sprintf("core: NoteBatch for unattached site %d", site))
	}
	x.m.noteBatch(batch, fetched, evicted, x)
}

// Remaining implements Scheduler.
func (s *WorkerCentric) Remaining() int { return s.remaining }

// Pending returns the number of unassigned tasks.
func (s *WorkerCentric) Pending() int { return s.pendingN }

// NextFor implements Scheduler: the per-site weight-class indexes yield the
// same task CalculateWeight + ChooseTask(n) would pick from a full scan.
func (s *WorkerCentric) NextFor(at WorkerRef) (workload.Task, Status) {
	if s.pendingN == 0 {
		// Worker-centric scheduling never replicates (§3.2), so a worker
		// with no pending tasks is finished for good.
		return workload.Task{}, Done
	}
	x, ok := s.indexes[at.Site]
	if !ok {
		panic(fmt.Sprintf("core: NextFor for unattached site %d", at.Site))
	}
	id := s.chooseTask(x)
	s.removePending(id)
	return s.w.Tasks[id], Assigned
}

// chooseTask picks one task for a request served by the site behind x.
//
// The candidate set handed to pickSorted is a weight-ordered *subset* of
// what the naive scan would build: for each weight class it contains the
// class-best ChooseN tasks (ties to the lower id), which necessarily
// include the globally best ChooseN, so ChooseTask(n) selects — and
// randomly draws — exactly as the naive scan would.
func (s *WorkerCentric) chooseTask(x *siteIndex) workload.TaskID {
	n := s.cfg.ChooseN
	m := x.m
	s.cand = s.cand[:0]

	if s.cfg.Metric == MetricOverlap {
		// Classes are keyed by overlap; weight == class key. When the top
		// class is 0 every weight is zero — no information — and the naive
		// scan falls back to a uniform draw over all pending tasks, which
		// we reproduce with an order-statistics query instead of a scan.
		top := x.maxClass()
		if top == 0 {
			return s.order.kth(s.rng.Intn(s.pendingN))
		}
		// Descending classes: weights strictly decrease, so the first n
		// gathered are the global top n. Zero-weight tasks from class 0
		// pad the tail exactly like the naive scan's candidate list does:
		// they never win the proportional draw, but their presence keeps
		// len(top) — and therefore the number of RNG draws — identical.
		for c := top; c >= 0 && len(s.cand) < n; c = x.nextClassBelow(c) {
			s.picked = x.topK(c, n-len(s.cand), s.picked[:0])
			for _, id := range s.picked {
				s.cand = append(s.cand, candidate{id: id, weight: float64(c)})
			}
		}
		return s.pickSorted()
	}

	// Tasks that fully overlap the site's storage need zero transfers;
	// rest_t = 1/0 diverges there, which we resolve (documented in
	// DESIGN.md) by always preferring full-overlap tasks, ranked by
	// overlap cardinality. They live in class 0 (missing == 0), ordered by
	// (|files| desc, id asc) — exactly the weight order of the naive
	// scan's full-overlap pass.
	if x.classLen(0) > 0 {
		s.picked = x.topK(0, n, s.picked[:0])
		for _, id := range s.picked {
			s.cand = append(s.cand, candidate{id: id, weight: float64(m.overlap[id])})
		}
		return s.pickSorted()
	}

	switch s.cfg.Metric {
	case MetricRest:
		// weight = 1/missing: ascending missing classes have strictly
		// decreasing weight, all positive, so the first n gathered win.
		for c := x.nextClassAbove(0); c > 0 && len(s.cand) < n; c = x.nextClassAbove(c) {
			s.picked = x.topK(c, n-len(s.cand), s.picked[:0])
			for _, id := range s.picked {
				s.cand = append(s.cand, candidate{id: id, weight: 1 / float64(c)})
			}
		}
	case MetricCombined, MetricCombinedLiteral:
		// The combined weight trades past references against missing
		// files, so no single class dominates; but within a missing class
		// the weight is monotone in refSum, so the global top n is among
		// the per-class (refSum desc, id asc) top n. Totals are O(classes)
		// from incrementally-maintained exact integer counts — see the
		// canonical-totals note on siteIndex.
		totalRef := float64(x.totalRef)
		var totalRest float64
		for c := 1; c <= s.idx.maxFiles; c++ {
			// Under the combined metrics every class is a heap keyed by
			// missing, so the class population is the missing-class count.
			if cnt := len(x.heaps[c]); cnt > 0 {
				totalRest += float64(cnt) / float64(c)
			}
		}
		for c := x.nextClassAbove(0); c > 0; c = x.nextClassAbove(c) {
			s.picked = x.topK(c, n, s.picked[:0])
			for _, id := range s.picked {
				ov := float64(m.overlap[id])
				missing := float64(s.idx.filesLen[id]) - ov
				rest := 1 / missing
				var weight float64
				if s.cfg.Metric == MetricCombined {
					weight = norm(float64(m.refSum[id]), totalRef) + norm(rest, totalRest)
				} else {
					// As typeset: ref_t/totalRef + totalRest/rest_t.
					// Larger rest_t (fewer transfers) lowers the second
					// term; kept verbatim for the ablation.
					weight = norm(float64(m.refSum[id]), totalRef) + totalRest/rest
				}
				s.cand = append(s.cand, candidate{id: id, weight: weight})
			}
		}
	}
	return s.pickSorted()
}

// pickSorted runs ChooseTask(n) over the gathered candidates with an
// explicit (weight desc, id asc) total order. The naive scan achieves the
// same order implicitly — it visits candidates in ascending id and only
// replaces on strictly greater weight — so selecting under the explicit
// comparator is order-insensitive and the gathered candidates need no
// re-sorting. The proportional draw then walks the identical top array the
// naive pickTopN would build. Candidate weights are all >= 0 and at least
// one is positive on every path that reaches here (the zero-information
// Overlap case is served from the order-statistics tree instead), matching
// the naive scan's "informative" branch.
func (s *WorkerCentric) pickSorted() workload.TaskID {
	cand := s.cand
	n := s.cfg.ChooseN
	if n > len(cand) {
		n = len(cand)
	}
	better := func(a, b candidate) bool {
		if a.weight != b.weight {
			return a.weight > b.weight
		}
		return a.id < b.id
	}
	top := s.top[:0]
	for _, c := range cand {
		if len(top) < n {
			top = append(top, c)
		} else if better(c, top[n-1]) {
			top[n-1] = c
		} else {
			continue
		}
		for i := len(top) - 1; i > 0 && better(top[i], top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	s.top = top[:0]
	if len(top) == 1 {
		return top[0].id
	}
	var sum float64
	for _, c := range top {
		if math.IsInf(c.weight, 1) {
			return c.id
		}
		sum += c.weight
	}
	if sum <= 0 {
		return top[s.rng.Intn(len(top))].id
	}
	r := s.rng.Float64() * sum
	for _, c := range top {
		r -= c.weight
		if r < 0 {
			return c.id
		}
	}
	return top[len(top)-1].id
}

// norm returns v/total, or 0 when the total is degenerate.
func norm(v, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return v / total
}

// removePending drops id from the pending set: O(log tasks) for the
// order-statistics tree plus one heap removal per attached site.
func (s *WorkerCentric) removePending(id workload.TaskID) {
	if !s.alive[id] {
		panic(fmt.Sprintf("core: task %d assigned twice", id))
	}
	s.alive[id] = false
	s.pendingN--
	s.order.add(int(id), -1)
	for _, x := range s.indexList {
		x.remove(id)
	}
}

// OnTaskComplete implements Scheduler. Worker-centric scheduling has no
// replicas to cancel.
func (s *WorkerCentric) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	if !s.completed[id] {
		s.completed[id] = true
		s.remaining--
	}
	return nil
}

// OnExecutionFailed implements Scheduler: the task goes back into the
// pending queue to be weighed again by future requests.
func (s *WorkerCentric) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	if s.completed[id] || s.alive[id] {
		return
	}
	s.alive[id] = true
	s.pendingN++
	s.order.add(int(id), 1)
	for _, x := range s.indexList {
		x.add(id)
	}
}

// siteIndex is one site's incrementally-maintained dispatch index over the
// pending set. It is what makes NextFor sublinear.
//
// Pending tasks are partitioned into weight classes:
//
//   - MetricOverlap: class key = overlap[t]. All tasks in a class weigh
//     the same (the overlap), so classes are totally weight-ordered and
//     within a class ties break to the lower id.
//   - Other metrics: class key = missing(t) = |files(t)| - overlap[t].
//     Class 0 is the full-overlap class (weight = |files(t)|, the
//     always-preferred zero-transfer tasks); classes >= 1 hold the tasks
//     the rest/combined formulas weigh.
//
// Each class keeps its members in the within-class weight order of the
// naive scan:
//
//	class 0 (non-overlap metrics): (|files| desc, id asc) — a binary heap
//	combined metrics, class >= 1:  (refSum desc, id asc)  — a binary heap
//	otherwise:                     (id asc)               — a task-id bitset
//
// The id-ordered classes use bitsets because their order never changes:
// membership moves are O(1) bit flips and the k lowest ids read straight
// off the words, where a heap would pay O(log) sifts on every noteBatch
// move. Within a missing class the combined weight is strictly monotone
// in refSum (the rest term is constant and distinct integer refSums map
// to distinct normalized floats at these magnitudes), so (refSum desc, id
// asc) is exactly the (weight desc, id asc) order.
//
// Invariants, restored after every mutation:
//
//  1. A task is in exactly one class structure iff it is pending: heap
//     classes track the slot in pos[t] (-1 otherwise), bitset classes the
//     task's bit and counts[c].
//  2. bits has bit c set iff class c is non-empty.
//  3. totalRef sums refSum over all pending tasks (combined metrics
//     only) — an exact integer, so the request-time totals are
//     reproducible regardless of update order; the per-class counts the
//     totals also need are just the class populations.
//
// Canonical totals: the naive scan accumulated totalRest = Σ 1/missing_t
// in ascending task-id order; the index knows only per-class counts, so
// the canonical definition is the class-order sum Σ_m count(m)/m
// (ascending m). The two differ by floating-point rounding only; the
// test-only reference implementation uses the canonical form so that
// equivalence is exact, not probabilistic. totalRef needs no such care:
// it is an integer sum far below 2^53, exact under any order.
type siteIndex struct {
	s *WorkerCentric
	m *siteMirror

	heaps  [][]workload.TaskID // per weight-ordered class key (usesHeap)
	sets   [][]uint64          // per id-ordered class: task-id bitset, lazily allocated
	counts []int32             // per id-ordered class: population
	pos    []int32             // per task: index in its class heap, -1 if none
	bits   []uint64            // nonempty-class bitset

	keyIsOverlap bool // MetricOverlap: class key is overlap, not missing
	rankByRef    bool // combined metrics: classes >= 1 ordered by refSum

	// Combined-metric totals over the pending set (invariant 3).
	needTotals bool
	totalRef   int64
}

func newSiteIndex(s *WorkerCentric, m *siteMirror) *siteIndex {
	classes := s.idx.maxFiles + 1
	x := &siteIndex{
		s:            s,
		m:            m,
		heaps:        make([][]workload.TaskID, classes),
		sets:         make([][]uint64, classes),
		counts:       make([]int32, classes),
		pos:          make([]int32, len(s.w.Tasks)),
		bits:         make([]uint64, (classes+63)/64),
		keyIsOverlap: s.cfg.Metric == MetricOverlap,
		rankByRef:    s.cfg.Metric == MetricCombined || s.cfg.Metric == MetricCombinedLiteral,
	}
	x.needTotals = x.rankByRef
	for i := range x.pos {
		x.pos[i] = -1
	}
	// Fresh mirrors have overlap 0 everywhere, so tasks land in class 0
	// (overlap key) or class |files| (missing key); ascending-id append is
	// already a valid heap for every comparator when refSums are all zero.
	for t := range s.alive {
		if s.alive[t] {
			x.add(workload.TaskID(t))
		}
	}
	return x
}

// classKey returns the class of task t under the configured metric.
func (x *siteIndex) classKey(t workload.TaskID) int {
	if x.keyIsOverlap {
		return int(x.m.overlap[t])
	}
	return int(x.s.idx.filesLen[t] - x.m.overlap[t])
}

// usesHeap reports whether class c needs a weight-ordered heap. Classes
// whose within-class order is plain ascending id (every class under the
// overlap metric, the missing >= 1 classes under rest) are bitsets
// instead: O(1) membership moves where a heap pays O(log) sifts, and
// noteBatch moves tasks between classes constantly.
func (x *siteIndex) usesHeap(c int) bool {
	return x.rankByRef || (!x.keyIsOverlap && c == 0)
}

// less is the within-class weight order (see the type comment).
func (x *siteIndex) less(class int, a, b workload.TaskID) bool {
	if !x.keyIsOverlap && class == 0 {
		la, lb := x.s.idx.filesLen[a], x.s.idx.filesLen[b]
		if la != lb {
			return la > lb
		}
		return a < b
	}
	if x.rankByRef && class != 0 {
		ra, rb := x.m.refSum[a], x.m.refSum[b]
		if ra != rb {
			return ra > rb
		}
	}
	return a < b
}

// classLen returns the number of pending tasks in class c.
func (x *siteIndex) classLen(c int) int {
	if x.usesHeap(c) {
		return len(x.heaps[c])
	}
	return int(x.counts[c])
}

// maxClass returns the highest nonempty class, or -1 if all are empty.
func (x *siteIndex) maxClass() int {
	for w := len(x.bits) - 1; w >= 0; w-- {
		if x.bits[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(x.bits[w])
		}
	}
	return -1
}

// nextClassBelow returns the highest nonempty class strictly below c, or
// -1 when there is none.
func (x *siteIndex) nextClassBelow(c int) int {
	if c == 0 {
		return -1
	}
	c--
	w := c / 64
	if masked := x.bits[w] & (^uint64(0) >> (63 - uint(c%64))); masked != 0 {
		return w*64 + 63 - bits.LeadingZeros64(masked)
	}
	for w--; w >= 0; w-- {
		if x.bits[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(x.bits[w])
		}
	}
	return -1
}

// nextClassAbove returns the lowest nonempty class strictly above c, or -1.
func (x *siteIndex) nextClassAbove(c int) int {
	c++
	if c >= len(x.heaps) {
		return -1
	}
	w := c / 64
	if masked := x.bits[w] &^ ((uint64(1) << uint(c%64)) - 1); masked != 0 {
		return w*64 + bits.TrailingZeros64(masked)
	}
	for w++; w < len(x.bits); w++ {
		if x.bits[w] != 0 {
			return w*64 + bits.TrailingZeros64(x.bits[w])
		}
	}
	return -1
}

// add inserts pending task t into its class structure (invariants 1-3).
func (x *siteIndex) add(t workload.TaskID) {
	c := x.classKey(t)
	if x.usesHeap(c) {
		h := x.heaps[c]
		x.pos[t] = int32(len(h))
		x.heaps[c] = append(h, t)
		x.siftUp(c, len(h))
		if len(h) == 0 {
			x.bits[c/64] |= uint64(1) << uint(c%64)
		}
	} else {
		w := x.sets[c]
		if w == nil {
			w = make([]uint64, (len(x.pos)+63)/64)
			x.sets[c] = w
		}
		w[int(t)/64] |= uint64(1) << uint(int(t)%64)
		if x.counts[c] == 0 {
			x.bits[c/64] |= uint64(1) << uint(c%64)
		}
		x.counts[c]++
	}
	if x.needTotals {
		x.totalRef += x.m.refSum[t]
	}
}

// remove deletes pending task t from its class structure (invariants 1-3).
func (x *siteIndex) remove(t workload.TaskID) {
	c := x.classKey(t)
	if x.usesHeap(c) {
		h := x.heaps[c]
		i := int(x.pos[t])
		last := len(h) - 1
		if i != last {
			moved := h[last]
			h[i] = moved
			x.pos[moved] = int32(i)
			x.heaps[c] = h[:last]
			if !x.siftUp(c, i) {
				x.siftDown(c, i)
			}
		} else {
			x.heaps[c] = h[:last]
		}
		x.pos[t] = -1
		if last == 0 {
			x.bits[c/64] &^= uint64(1) << uint(c%64)
		}
	} else {
		x.sets[c][int(t)/64] &^= uint64(1) << uint(int(t)%64)
		x.counts[c]--
		if x.counts[c] == 0 {
			x.bits[c/64] &^= uint64(1) << uint(c%64)
		}
	}
	if x.needTotals {
		x.totalRef -= x.m.refSum[t]
	}
}

// overlapDelta applies a storage-content change to task t: overlap moves
// by dOv and refSum by dRef. The class key always changes with overlap, so
// a pending task is re-filed into its new class heap.
func (x *siteIndex) overlapDelta(t workload.TaskID, dOv int32, dRef int64) {
	pending := x.s.alive[t]
	if pending {
		x.remove(t)
	}
	x.m.overlap[t] += dOv
	x.m.refSum[t] += dRef
	if pending {
		x.add(t)
	}
}

// refDelta applies a reference-count bump (+1) to task t's refSum. The
// class key is unchanged; only combined-metric heaps rank by refSum, and a
// larger refSum can only move the task up.
func (x *siteIndex) refDelta(t workload.TaskID) {
	x.m.refSum[t]++
	if !x.s.alive[t] {
		return
	}
	if x.needTotals {
		x.totalRef++
	}
	if x.rankByRef {
		if c := x.classKey(t); c != 0 {
			x.siftUp(c, int(x.pos[t]))
		}
	}
}

// siftUp restores the heap property upward from slot i of class c,
// reporting whether anything moved.
func (x *siteIndex) siftUp(c, i int) bool {
	h := x.heaps[c]
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !x.less(c, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		x.pos[h[i]] = int32(i)
		x.pos[h[parent]] = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

// siftDown restores the heap property downward from slot i of class c.
func (x *siteIndex) siftDown(c, i int) {
	h := x.heaps[c]
	for {
		best := i
		if l := 2*i + 1; l < len(h) && x.less(c, h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < len(h) && x.less(c, h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		x.pos[h[i]] = int32(i)
		x.pos[h[best]] = int32(best)
		i = best
	}
}

// topK appends the k best tasks of class c (in the class's weight order)
// to out. For an id-ordered bitset class that is the k lowest set bits;
// for a heap class, a bounded frontier walk that never mutates the heap:
// the next best element is always among the children of those already
// taken.
func (x *siteIndex) topK(c, k int, out []workload.TaskID) []workload.TaskID {
	if !x.usesHeap(c) {
		left := k
		for wi, w := range x.sets[c] {
			for w != 0 && left > 0 {
				b := bits.TrailingZeros64(w)
				out = append(out, workload.TaskID(wi*64+b))
				w &^= uint64(1) << uint(b)
				left--
			}
			if left == 0 {
				break
			}
		}
		return out
	}
	h := x.heaps[c]
	if len(h) == 0 || k <= 0 {
		return out
	}
	fr := x.s.frontier[:0]
	fr = append(fr, 0)
	for len(fr) > 0 && k > 0 {
		bi := 0
		for i := 1; i < len(fr); i++ {
			if x.less(c, h[fr[i]], h[fr[bi]]) {
				bi = i
			}
		}
		p := int(fr[bi])
		fr[bi] = fr[len(fr)-1]
		fr = fr[:len(fr)-1]
		out = append(out, h[p])
		k--
		if l := 2*p + 1; l < len(h) {
			fr = append(fr, int32(l))
		}
		if r := 2*p + 2; r < len(h) {
			fr = append(fr, int32(r))
		}
	}
	x.s.frontier = fr[:0]
	return out
}

// fenwick is a binary indexed tree over task ids holding 0/1 pending
// flags; it answers "k-th smallest pending id" in O(log n), which is how
// the zero-information uniform draw avoids materializing the pending list.
type fenwick struct {
	tree []int32 // 1-based
	mask int     // highest power of two <= len(tree)-1
}

func (f *fenwick) initOnes(n int) {
	f.tree = make([]int32, n+1)
	for i := 1; i <= n; i++ {
		f.tree[i]++
		if j := i + (i & -i); j <= n {
			f.tree[j] += f.tree[i]
		}
	}
	f.mask = 1
	for f.mask*2 <= n {
		f.mask *= 2
	}
}

// add adjusts the count at 0-based index i by d.
func (f *fenwick) add(i int, d int32) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += d
	}
}

// kth returns the 0-based index of the (k+1)-th smallest present id.
func (f *fenwick) kth(k int) workload.TaskID {
	rem := int32(k) + 1
	pos := 0
	for b := f.mask; b > 0; b >>= 1 {
		if next := pos + b; next < len(f.tree) && f.tree[next] < rem {
			pos = next
			rem -= f.tree[next]
		}
	}
	return workload.TaskID(pos) // 0-based: internal pos+1 - 1
}
