// Package core implements the paper's scheduling strategies.
//
// Worker-centric scheduling (the contribution, §4): an idle worker asks the
// global scheduler for a task; the scheduler weighs every pending task for
// that worker's site with one of three data-reuse metrics — Overlap, Rest,
// Combined — and picks among the best n with probability proportional to
// weight (ChooseTask(n), §4.3).
//
// Task-centric storage affinity (the baseline, Santos-Neto et al. [14],
// described in §3.1): tasks are assigned up front to the site with maximum
// data affinity, workers drain their queues, and idle workers replicate
// incomplete tasks; completion cancels outstanding replicas.
//
// Plain FIFO workqueue (Cirne et al. [6]) is included as the classic
// worker-centric strategy without data awareness.
//
// Schedulers are engine-agnostic: the simulation engine (internal/grid) and
// the live runtime (internal/live) drive them through the Scheduler
// interface, feeding storage-content changes via NoteBatch.
package core

import (
	"fmt"

	"gridsched/internal/workload"
)

// Metric selects the weight function of CalculateWeight (§4.2).
type Metric int

// Weight metrics.
const (
	// MetricOverlap is the overlap cardinality |Ft|: the number of files
	// the task needs that are already at the requesting worker's site.
	MetricOverlap Metric = iota + 1
	// MetricRest is 1/(|t|-|Ft|): the inverse of the number of files that
	// would still have to be transferred.
	MetricRest
	// MetricCombined is ref_t/totalRef + rest_t/totalRest: normalized past
	// references plus normalized rest (the paper's stated intent; see
	// DESIGN.md on the formula's typo).
	MetricCombined
	// MetricCombinedLiteral is ref_t/totalRef + totalRest/rest_t, the
	// formula exactly as typeset in the paper. Kept for the ablation.
	MetricCombinedLiteral
)

func (m Metric) String() string {
	switch m {
	case MetricOverlap:
		return "overlap"
	case MetricRest:
		return "rest"
	case MetricCombined:
		return "combined"
	case MetricCombinedLiteral:
		return "combined-literal"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Status is the outcome of a NextFor call.
type Status int

// NextFor outcomes.
const (
	// Assigned: the returned task is assigned to the worker.
	Assigned Status = iota + 1
	// Wait: nothing to run now, but work may appear (e.g. a replication
	// candidate after another worker progresses); ask again later.
	Wait
	// Done: the worker can exit; it will never receive another task.
	Done
)

// WorkerRef identifies a worker as (site index, worker index within site).
type WorkerRef struct {
	Site   int `json:"site"`
	Worker int `json:"worker"`
}

// Scheduler is the engine-facing contract shared by all strategies.
//
// The engine must call AttachSite for every site before the first NextFor,
// call NoteBatch after each data-server batch commit, and call
// OnTaskComplete when an execution finishes; the returned refs are
// outstanding replicas of the same task that should be interrupted.
//
// Concurrency contract: implementations are not safe for concurrent use.
// The simulator is single-threaded; the gridschedd service
// (internal/service) serializes all scheduler access under its own lock.
// Embedders driving a scheduler from multiple goroutines directly must
// wrap it in NewSynchronized or serialize calls themselves.
type Scheduler interface {
	Name() string
	AttachSite(site int)
	NoteBatch(site int, batch, fetched, evicted []workload.FileID)
	NextFor(at WorkerRef) (workload.Task, Status)
	OnTaskComplete(id workload.TaskID, at WorkerRef) (cancel []WorkerRef)
	// OnExecutionFailed reports that the worker lost its execution of the
	// task (crash, overload eviction) without completing it. The
	// scheduler must make the task dispatchable again unless it has
	// already completed elsewhere.
	OnExecutionFailed(id workload.TaskID, at WorkerRef)
	// Remaining returns the number of tasks not yet completed.
	Remaining() int
}

// fileIndex maps every file to the tasks referencing it. It is immutable
// after construction and shared by all site mirrors.
type fileIndex struct {
	byFile [][]workload.TaskID
}

func newFileIndex(w *workload.Workload) *fileIndex {
	idx := &fileIndex{byFile: make([][]workload.TaskID, w.NumFiles)}
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			idx.byFile[f] = append(idx.byFile[f], t.ID)
		}
	}
	return idx
}

// siteMirror is the scheduler's view of one site's storage: which files are
// resident, how often each file has been referenced there, and — maintained
// incrementally — each task's overlap cardinality and overlap-reference sum
// against that storage. Incremental maintenance turns each scheduling
// request from O(tasks × files/task) into O(tasks).
type siteMirror struct {
	idx      *fileIndex
	resident map[workload.FileID]struct{}
	refs     map[workload.FileID]int
	overlap  []int32 // per task: |Ft|
	refSum   []int64 // per task: sum of refs over overlapping files
}

func newSiteMirror(idx *fileIndex, tasks int) *siteMirror {
	return &siteMirror{
		idx:      idx,
		resident: make(map[workload.FileID]struct{}),
		refs:     make(map[workload.FileID]int),
		overlap:  make([]int32, tasks),
		refSum:   make([]int64, tasks),
	}
}

// noteBatch applies one committed batch: evictions leave, fetched files
// arrive, and every batch file gains one reference.
func (m *siteMirror) noteBatch(batch, fetched, evicted []workload.FileID) {
	for _, f := range evicted {
		delete(m.resident, f)
		r := int64(m.refs[f])
		for _, t := range m.idx.byFile[f] {
			m.overlap[t]--
			m.refSum[t] -= r
		}
	}
	for _, f := range fetched {
		m.resident[f] = struct{}{}
		r := int64(m.refs[f])
		for _, t := range m.idx.byFile[f] {
			m.overlap[t]++
			m.refSum[t] += r
		}
	}
	for _, f := range batch {
		m.refs[f]++
		if _, ok := m.resident[f]; ok {
			for _, t := range m.idx.byFile[f] {
				m.refSum[t]++
			}
		}
	}
}
