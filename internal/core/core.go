// Package core implements the paper's scheduling strategies.
//
// Worker-centric scheduling (the contribution, §4): an idle worker asks the
// global scheduler for a task; the scheduler weighs every pending task for
// that worker's site with one of three data-reuse metrics — Overlap, Rest,
// Combined — and picks among the best n with probability proportional to
// weight (ChooseTask(n), §4.3).
//
// Task-centric storage affinity (the baseline, Santos-Neto et al. [14],
// described in §3.1): tasks are assigned up front to the site with maximum
// data affinity, workers drain their queues, and idle workers replicate
// incomplete tasks; completion cancels outstanding replicas.
//
// Plain FIFO workqueue (Cirne et al. [6]) is included as the classic
// worker-centric strategy without data awareness.
//
// Schedulers are engine-agnostic: the simulation engine (internal/grid) and
// the live runtime (internal/live) drive them through the Scheduler
// interface, feeding storage-content changes via NoteBatch.
//
// # Dispatch cost
//
// WorkerCentric answers each NextFor in time sublinear in the pending-task
// count: pending tasks are bucketed per site into weight classes that are
// maintained incrementally as NoteBatch reports storage changes, so a
// request inspects only the top of a few class heaps instead of rescanning
// the queue (see the invariants documented on siteIndex in
// workercentric.go). PERFORMANCE.md records the measured effect.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"weak"

	"gridsched/internal/workload"
)

// Metric selects the weight function of CalculateWeight (§4.2).
type Metric int

// Weight metrics.
const (
	// MetricOverlap is the overlap cardinality |Ft|: the number of files
	// the task needs that are already at the requesting worker's site.
	MetricOverlap Metric = iota + 1
	// MetricRest is 1/(|t|-|Ft|): the inverse of the number of files that
	// would still have to be transferred.
	MetricRest
	// MetricCombined is ref_t/totalRef + rest_t/totalRest: normalized past
	// references plus normalized rest (the paper's stated intent; see
	// DESIGN.md on the formula's typo).
	MetricCombined
	// MetricCombinedLiteral is ref_t/totalRef + totalRest/rest_t, the
	// formula exactly as typeset in the paper. Kept for the ablation.
	MetricCombinedLiteral
)

func (m Metric) String() string {
	switch m {
	case MetricOverlap:
		return "overlap"
	case MetricRest:
		return "rest"
	case MetricCombined:
		return "combined"
	case MetricCombinedLiteral:
		return "combined-literal"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Status is the outcome of a NextFor call.
type Status int

// NextFor outcomes.
const (
	// Assigned: the returned task is assigned to the worker.
	Assigned Status = iota + 1
	// Wait: nothing to run now, but work may appear (e.g. a replication
	// candidate after another worker progresses); ask again later.
	Wait
	// Done: the worker can exit; it will never receive another task.
	Done
)

// WorkerRef identifies a worker as (site index, worker index within site).
type WorkerRef struct {
	Site   int `json:"site"`
	Worker int `json:"worker"`
}

// Scheduler is the engine-facing contract shared by all strategies.
//
// The engine must call AttachSite for every site before the first NextFor,
// call NoteBatch after each data-server batch commit, and call
// OnTaskComplete when an execution finishes; the returned refs are
// outstanding replicas of the same task that should be interrupted.
// NoteBatch's slice arguments are only valid for the duration of the call
// — engines reuse the backing buffers across batches, so an
// implementation that needs the file lists later must copy them.
//
// Concurrency contract: implementations are not safe for concurrent use.
// The simulator is single-threaded; the gridschedd service
// (internal/service) serializes all scheduler access under its own lock.
// Embedders driving a scheduler from multiple goroutines directly must
// wrap it in NewSynchronized or serialize calls themselves.
type Scheduler interface {
	Name() string
	AttachSite(site int)
	NoteBatch(site int, batch, fetched, evicted []workload.FileID)
	NextFor(at WorkerRef) (workload.Task, Status)
	OnTaskComplete(id workload.TaskID, at WorkerRef) (cancel []WorkerRef)
	// OnExecutionFailed reports that the worker lost its execution of the
	// task (crash, overload eviction) without completing it. The
	// scheduler must make the task dispatchable again unless it has
	// already completed elsewhere.
	OnExecutionFailed(id workload.TaskID, at WorkerRef)
	// Remaining returns the number of tasks not yet completed.
	Remaining() int
}

// Replayer is optionally implemented by schedulers whose NextFor takes
// decisions that a journal replay (internal/service recovery) cannot
// reproduce by re-asking: ReplayAssign forces the state transition NextFor
// performed when it assigned task id to the worker at ref.
//
// Schedulers that do not implement it are replayed by calling NextFor and
// verifying the returned task — exact for WorkerCentric (whose NextFor
// mutates state, including its RNG, only when it assigns, so replaying the
// assignment sequence reproduces every random draw) and for Workqueue
// (whose only off-assignment mutation, popping completed retry entries, is
// order-insensitive). StorageAffinity implements Replayer because its
// NextFor also advances per-worker queue cursors on calls that end in
// Wait; those probe calls are not journaled, so a re-asked NextFor could
// legally pick a different task than the recorded run did.
type Replayer interface {
	ReplayAssign(id workload.TaskID, at WorkerRef) error
}

// fileIndex maps every file to the tasks referencing it, plus per-task file
// counts. It is immutable after construction, shared by all site mirrors,
// and cached per workload (the experiment harness constructs many
// schedulers over one workload; rebuilding the index dominated scheduler
// construction).
type fileIndex struct {
	byFile   [][]workload.TaskID // CSR views into one backing slice
	filesLen []int32             // per task: |files(t)|
	maxFiles int                 // max over tasks of |files(t)|
}

func newFileIndex(w *workload.Workload) *fileIndex {
	idx := &fileIndex{
		byFile:   make([][]workload.TaskID, w.NumFiles),
		filesLen: make([]int32, len(w.Tasks)),
	}
	counts := make([]int32, w.NumFiles)
	total := 0
	for _, t := range w.Tasks {
		idx.filesLen[t.ID] = int32(len(t.Files))
		if len(t.Files) > idx.maxFiles {
			idx.maxFiles = len(t.Files)
		}
		total += len(t.Files)
		for _, f := range t.Files {
			counts[f]++
		}
	}
	// One backing allocation (CSR layout): byFile[f] aliases flat.
	flat := make([]workload.TaskID, total)
	off := 0
	for f := range idx.byFile {
		idx.byFile[f] = flat[off : off : off+int(counts[f])]
		off += int(counts[f])
	}
	for _, t := range w.Tasks {
		for _, f := range t.Files {
			idx.byFile[f] = append(idx.byFile[f], t.ID)
		}
	}
	return idx
}

// fileIndexCache memoizes newFileIndex per workload (by pointer identity;
// workloads are documented immutable). A sweep constructs one scheduler per
// (algorithm, config, seed) cell over the same workload, so the cache turns
// dozens of index builds into one. Bounded, most-recently-used first. The
// workload key is held weakly and a GC cleanup prunes the entry (index
// included) once the workload is collected: a long-lived gridschedd
// submits a distinct workload per job, and strong retention would pin
// completed jobs' task lists and indexes in memory indefinitely.
var fileIndexCache struct {
	sync.Mutex
	entries []fileIndexCacheEntry
}

type fileIndexCacheEntry struct {
	w   weak.Pointer[workload.Workload]
	idx *fileIndex
}

const fileIndexCacheCap = 4

func indexFor(w *workload.Workload) *fileIndex {
	fileIndexCache.Lock()
	defer fileIndexCache.Unlock()
	entries := fileIndexCache.entries[:0]
	var hit *fileIndex
	for _, e := range fileIndexCache.entries {
		switch e.w.Value() {
		case nil: // workload collected; drop the entry and its index
		case w:
			hit = e.idx
		default:
			entries = append(entries, e)
		}
	}
	key := weak.Make(w)
	if hit == nil {
		hit = newFileIndex(w)
		// One cleanup per cache entry generation: a cache hit refreshes an
		// entry whose creation already registered one.
		runtime.AddCleanup(w, dropDeadIndexEntry, key)
	}
	// Insert (or re-insert) at the front, bounded.
	if len(entries) >= fileIndexCacheCap {
		entries = entries[:fileIndexCacheCap-1]
	}
	entries = append(entries, fileIndexCacheEntry{})
	copy(entries[1:], entries)
	entries[0] = fileIndexCacheEntry{w: key, idx: hit}
	fileIndexCache.entries = entries
	return hit
}

// dropDeadIndexEntry runs after a cached workload is collected and evicts
// its (now unreachable) entry so the index does not linger until the next
// indexFor call.
func dropDeadIndexEntry(key weak.Pointer[workload.Workload]) {
	fileIndexCache.Lock()
	defer fileIndexCache.Unlock()
	entries := fileIndexCache.entries
	for i, e := range entries {
		if e.w == key {
			fileIndexCache.entries = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// siteMirror is the scheduler's view of one site's storage: which files are
// resident, how often each file has been referenced there, and — maintained
// incrementally — each task's overlap cardinality and overlap-reference sum
// against that storage. All state is dense (indexed by file or task id);
// the maps of earlier revisions dominated NoteBatch cost.
//
// Invariants after every noteBatch, for every task t (pending or not):
//
//	overlap[t] = |files(t) ∩ resident|
//	refSum[t]  = Σ_{f ∈ files(t) ∩ resident} refs[f]   (while trackRefs)
//
// trackRefs gates the refSum invariant: only the combined metrics ever
// read refSum, and maintaining it costs a full per-task fan-out on every
// batch file, so owners whose weight function ignores it (StorageAffinity,
// WorkerCentric under overlap/rest) switch it off.
type siteMirror struct {
	idx       *fileIndex
	trackRefs bool
	resident  []bool  // per file
	refs      []int32 // per file: past references at this site
	overlap   []int32 // per task: |Ft|
	refSum    []int64 // per task: sum of refs over overlapping files
}

func newSiteMirror(idx *fileIndex, tasks int) *siteMirror {
	return &siteMirror{
		idx:       idx,
		trackRefs: true,
		resident:  make([]bool, len(idx.byFile)),
		refs:      make([]int32, len(idx.byFile)),
		overlap:   make([]int32, tasks),
		refSum:    make([]int64, tasks),
	}
}

// noteBatch applies one committed batch: evictions leave, fetched files
// arrive, and every batch file gains one reference.
//
// When ix is non-nil (the mirror backs a WorkerCentric site index), every
// per-task delta is routed through the index so its weight-class structures
// stay in lock-step with overlap/refSum; with a nil ix the arrays are
// updated directly (StorageAffinity and the test-only naive reference).
//
// Redundant events — a fetch of an already-resident file, an eviction of an
// absent one — are ignored, which keeps the invariant 0 <= overlap[t] <=
// |files(t)| even for callers that do not track residency themselves. (The
// engines never send them: fetched/evicted come from storage.Store, which
// reports only actual insertions and evictions.)
func (m *siteMirror) noteBatch(batch, fetched, evicted []workload.FileID, ix *siteIndex) {
	for _, f := range evicted {
		if !m.resident[f] {
			continue
		}
		m.resident[f] = false
		r := int64(m.refs[f])
		tasks := m.idx.byFile[f]
		switch {
		case ix != nil:
			for _, t := range tasks {
				ix.overlapDelta(t, -1, -r)
			}
		case m.trackRefs:
			for _, t := range tasks {
				m.overlap[t]--
				m.refSum[t] -= r
			}
		default:
			for _, t := range tasks {
				m.overlap[t]--
			}
		}
	}
	for _, f := range fetched {
		if m.resident[f] {
			continue
		}
		m.resident[f] = true
		r := int64(m.refs[f])
		tasks := m.idx.byFile[f]
		switch {
		case ix != nil:
			for _, t := range tasks {
				ix.overlapDelta(t, 1, r)
			}
		case m.trackRefs:
			for _, t := range tasks {
				m.overlap[t]++
				m.refSum[t] += r
			}
		default:
			for _, t := range tasks {
				m.overlap[t]++
			}
		}
	}
	if !m.trackRefs {
		for _, f := range batch {
			m.refs[f]++
		}
		return
	}
	for _, f := range batch {
		m.refs[f]++
		if !m.resident[f] {
			continue
		}
		tasks := m.idx.byFile[f]
		if ix != nil {
			for _, t := range tasks {
				ix.refDelta(t)
			}
		} else {
			for _, t := range tasks {
				m.refSum[t]++
			}
		}
	}
}
