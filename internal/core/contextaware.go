// Context-aware scheduling: a Scheduler wrapper that consults observed
// worker context — capability tags and EWMAs of task duration and failure
// rate — before letting the wrapped strategy assign work. The wrapper sits
// strictly ABOVE the inner scheduler: when the context gate rejects a
// worker it returns Wait without touching the inner scheduler at all, so
// the inner strategy's state (including its RNG stream) advances exactly
// as if the worker had never asked. That property is what keeps recovery
// replay exact: the journal records only the assignments that happened,
// and ReplayAssign bypasses the gate entirely, so a recovered scheduler
// cannot diverge from the live one however the gate decided.
package core

import (
	"fmt"

	"gridsched/internal/workload"
)

// WorkerContext is the observed runtime context of one worker slot, as
// accumulated by the embedding engine (the gridschedd service folds it
// from report traffic; see internal/service).
type WorkerContext struct {
	// Tags are the capability tags the worker registered with.
	Tags []string
	// MeanTaskMillis is an EWMA of observed task durations in
	// milliseconds; 0 until the first completed task.
	MeanTaskMillis float64
	// FailureRate is an EWMA of the failure indicator in [0, 1].
	FailureRate float64
	// Samples counts completed-task duration observations.
	Samples int64
	// Events counts all outcome observations (successes and failures).
	Events int64
}

// ContextSource resolves a worker slot to its observed context. The second
// result is false when nothing has been observed for the slot yet — the
// gate must treat such workers as eligible (cold start never blocks).
type ContextSource interface {
	WorkerContext(at WorkerRef) (WorkerContext, bool)
}

// ContextPolicy parameterizes the gate of a ContextAware scheduler.
type ContextPolicy struct {
	// RequiredTags must all be present on a worker for it to receive
	// assignments. Empty means any worker qualifies.
	RequiredTags []string
	// MaxFailureRate rejects workers whose observed failure-rate EWMA
	// meets or exceeds it, once MinEvents outcomes have been observed.
	// 0 applies the default of 0.5.
	MaxFailureRate float64
	// MinEvents is the observation floor below which the failure gate
	// stays open (cold start). 0 applies the default of 4.
	MinEvents int64
}

const (
	defaultMaxFailureRate = 0.5
	defaultMinEvents      = 4
)

// ContextAware is the wrapper; construct with NewContextAware.
type ContextAware struct {
	inner  Scheduler
	src    ContextSource
	policy ContextPolicy
}

// NewContextAware wraps inner with a context gate fed by src. A nil src
// disables the gate (the wrapper becomes a transparent proxy).
func NewContextAware(inner Scheduler, src ContextSource, policy ContextPolicy) *ContextAware {
	if policy.MaxFailureRate <= 0 {
		policy.MaxFailureRate = defaultMaxFailureRate
	}
	if policy.MinEvents <= 0 {
		policy.MinEvents = defaultMinEvents
	}
	return &ContextAware{inner: inner, src: src, policy: policy}
}

func (c *ContextAware) Name() string { return "context:" + c.inner.Name() }

func (c *ContextAware) AttachSite(site int) { c.inner.AttachSite(site) }

func (c *ContextAware) NoteBatch(site int, batch, fetched, evicted []workload.FileID) {
	c.inner.NoteBatch(site, batch, fetched, evicted)
}

// admits is the context gate. It must be a pure function of the source's
// current observation for the slot: no scheduler state may change on a
// rejection.
func (c *ContextAware) admits(at WorkerRef) bool {
	if c.src == nil {
		return false // no source: gate disabled
	}
	ctx, ok := c.src.WorkerContext(at)
	if !ok {
		return true // never observed: cold start admits
	}
	for _, want := range c.policy.RequiredTags {
		found := false
		for _, have := range ctx.Tags {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if ctx.Events >= c.policy.MinEvents && ctx.FailureRate >= c.policy.MaxFailureRate {
		return false
	}
	return true
}

func (c *ContextAware) NextFor(at WorkerRef) (workload.Task, Status) {
	if c.src != nil && !c.admits(at) {
		// Rejected by context: the inner scheduler never sees the ask, so
		// its state (and RNG) is exactly as if the worker stayed silent.
		return workload.Task{}, Wait
	}
	return c.inner.NextFor(at)
}

func (c *ContextAware) OnTaskComplete(id workload.TaskID, at WorkerRef) []WorkerRef {
	return c.inner.OnTaskComplete(id, at)
}

func (c *ContextAware) OnExecutionFailed(id workload.TaskID, at WorkerRef) {
	c.inner.OnExecutionFailed(id, at)
}

func (c *ContextAware) Remaining() int { return c.inner.Remaining() }

// ReplayAssign bypasses the context gate: recovery re-applies recorded
// assignments, and the gate's verdict at record time is already baked into
// which records exist. Inner schedulers that implement Replayer are
// forwarded to; the rest are replayed by re-asking and verifying, exactly
// as the service does for unwrapped schedulers.
func (c *ContextAware) ReplayAssign(id workload.TaskID, at WorkerRef) error {
	if r, ok := c.inner.(Replayer); ok {
		return r.ReplayAssign(id, at)
	}
	task, status := c.inner.NextFor(at)
	if status != Assigned {
		return fmt.Errorf("core: context replay: scheduler returned status %d for task %d at %+v", status, id, at)
	}
	if task.ID != id {
		return fmt.Errorf("core: context replay: scheduler assigned task %d, journal says %d", task.ID, id)
	}
	return nil
}
