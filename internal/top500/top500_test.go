package top500

import (
	"math"
	"testing"
)

func TestRmaxEndpoints(t *testing.T) {
	r1, err := Rmax(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-280.6e6) > 1 {
		t.Fatalf("Rmax(1) = %v, want 280.6e6", r1)
	}
	r500, err := Rmax(500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r500-4.005e6)/4.005e6 > 1e-9 {
		t.Fatalf("Rmax(500) = %v, want 4.005e6", r500)
	}
}

func TestRmaxMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for rank := 1; rank <= 500; rank++ {
		r, err := Rmax(rank)
		if err != nil {
			t.Fatal(err)
		}
		if r >= prev {
			t.Fatalf("Rmax not decreasing at rank %d: %v >= %v", rank, r, prev)
		}
		prev = r
	}
}

func TestRmaxRejectsBadRanks(t *testing.T) {
	for _, rank := range []int{0, -1, 501} {
		if _, err := Rmax(rank); err == nil {
			t.Errorf("Rmax(%d) accepted", rank)
		}
	}
}

func TestSamplerBoundsAndDivisor(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 10000; i++ {
		v := s.Sample()
		if v < MinSpeed() || v > MaxSpeed() {
			t.Fatalf("sample %v outside [%v, %v]", v, MinSpeed(), MaxSpeed())
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(42).SampleN(100)
	b := NewSampler(42).SampleN(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverge at %d", i)
		}
	}
	c := NewSampler(43).SampleN(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSamplerHeavyTail(t *testing.T) {
	// The power law means the mean should sit well above the median.
	s := NewSampler(7)
	v := s.SampleN(20000)
	var sum float64
	above := 0
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	for _, x := range v {
		if x > mean {
			above++
		}
	}
	frac := float64(above) / float64(len(v))
	if frac > 0.45 {
		t.Fatalf("fraction above mean = %v; distribution not right-skewed", frac)
	}
}
