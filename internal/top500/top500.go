// Package top500 samples worker compute capacities the way the paper does
// (§5.2): "each worker's computation capacity (in MFLOPS) is chosen
// randomly from [the] top500 list and is divided by 100".
//
// The June-2007 list itself is not redistributable, so we model its Rmax
// column with the power law R(rank) = R1 * rank^(-alpha) fit to the
// published endpoints (#1 BlueGene/L ~ 280.6 TFLOPS, #500 ~ 4.0 TFLOPS,
// giving alpha ~ 0.684). Sampling a uniform rank from this curve
// reproduces the heavy-tailed speed heterogeneity the original setup had.
package top500

import (
	"fmt"
	"math"
	"math/rand"
)

// Rmax endpoints of the June 2007 list, in MFLOPS.
const (
	rank1Mflops   = 280.6e6 // ~280.6 TFLOPS
	rank500Mflops = 4.005e6 // ~4.0 TFLOPS
	ranks         = 500
)

// alpha solves R(500)/R(1) = 500^-alpha.
var alpha = math.Log(rank1Mflops/rank500Mflops) / math.Log(ranks)

// Rmax returns the modeled Rmax (MFLOPS) of the given 1-based rank.
func Rmax(rank int) (float64, error) {
	if rank < 1 || rank > ranks {
		return 0, fmt.Errorf("top500: rank %d outside [1, %d]", rank, ranks)
	}
	return rank1Mflops * math.Pow(float64(rank), -alpha), nil
}

// Sampler draws worker speeds. It is deterministic given its seed.
type Sampler struct {
	rng     *rand.Rand
	divisor float64
}

// NewSampler returns a sampler dividing drawn Rmax values by the paper's
// divisor of 100.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), divisor: 100}
}

// Sample returns one worker speed in MFLOPS: Rmax(uniform rank)/divisor.
func (s *Sampler) Sample() float64 {
	rank := 1 + s.rng.Intn(ranks)
	r, err := Rmax(rank)
	if err != nil {
		// Unreachable: rank is always in range.
		panic(err)
	}
	return r / s.divisor
}

// SampleN returns n worker speeds in MFLOPS.
func (s *Sampler) SampleN(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}

// MinSpeed and MaxSpeed bound what Sample can return (MFLOPS).
func MinSpeed() float64 { return rank500Mflops / 100 }

// MaxSpeed returns the largest speed Sample can return (MFLOPS).
func MaxSpeed() float64 { return rank1Mflops / 100 }
