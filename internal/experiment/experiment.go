// Package experiment regenerates every table and figure of the paper's
// evaluation (§5): the workload characterizations (Table 2, Figures 1 and
// 3), the four makespan sweeps (Figures 4, 6, 7, 8), the transfer counts
// (Figure 5), the per-site data-server breakdown (Table 3), and five
// ablations on design choices the paper leaves open or motivates without
// evaluating (combined-formula reading, ChooseTask window, eviction
// policy, worker churn, proactive data replication).
//
// Each experiment is a parameter sweep over (x-value, algorithm, topology
// seed); per the paper, every point is averaged over the topology seeds.
// Runs execute in parallel across a bounded worker pool and results are
// deterministic for a fixed Options regardless of execution interleaving.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"gridsched/internal/core"
	"gridsched/internal/grid"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// Options scales an experiment. The zero value is filled to paper scale by
// Normalize; benchmarks shrink Tasks and Seeds to stay fast.
type Options struct {
	// Tasks is the coadd workload slice to simulate (paper: 6000).
	Tasks int `json:"tasks"`
	// CoaddSeed selects the synthetic trace (workload.DefaultCoaddSeed
	// reproduces Table 2).
	CoaddSeed int64 `json:"coaddSeed"`
	// Seeds are the topology/speed seeds averaged over (paper: 5).
	Seeds []int64 `json:"seeds"`
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int `json:"parallelism"`
}

// Normalize fills defaults.
func (o *Options) Normalize() {
	if o.Tasks == 0 {
		o.Tasks = 6000
	}
	if o.CoaddSeed == 0 {
		o.CoaddSeed = workload.DefaultCoaddSeed
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Algorithm names a scheduler constructor. Fresh scheduler state per run.
type Algorithm struct {
	Name  string
	Build func(w *workload.Workload, cfg grid.Config, seed int64) (core.Scheduler, error)
}

// workerCentricAlg builds a worker-centric algorithm entry.
func workerCentricAlg(metric core.Metric, n int) Algorithm {
	name := metric.String()
	if n > 1 {
		name = fmt.Sprintf("%s.%d", metric, n)
	}
	return Algorithm{
		Name: name,
		Build: func(w *workload.Workload, cfg grid.Config, seed int64) (core.Scheduler, error) {
			return core.NewWorkerCentric(w, core.WorkerCentricConfig{Metric: metric, ChooseN: n, Seed: seed})
		},
	}
}

// storageAffinityAlg builds the task-centric baseline entry.
func storageAffinityAlg() Algorithm {
	return Algorithm{
		Name: "task-centric storage affinity",
		Build: func(w *workload.Workload, cfg grid.Config, seed int64) (core.Scheduler, error) {
			return core.NewStorageAffinity(w, core.StorageAffinityConfig{
				Sites:          cfg.Sites,
				WorkersPerSite: cfg.WorkersPerSite,
				CapacityFiles:  cfg.CapacityFiles,
				Policy:         cfg.Policy,
				MaxReplicas:    3,
			})
		},
	}
}

// workqueueAlg builds the FIFO control entry.
func workqueueAlg() Algorithm {
	return Algorithm{
		Name: "workqueue",
		Build: func(w *workload.Workload, cfg grid.Config, seed int64) (core.Scheduler, error) {
			return core.NewWorkqueue(w), nil
		},
	}
}

// PaperAlgorithms returns the six algorithms of §5.3 in the paper's order.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{
		storageAffinityAlg(),
		workerCentricAlg(core.MetricOverlap, 1),
		workerCentricAlg(core.MetricRest, 1),
		workerCentricAlg(core.MetricCombined, 1),
		workerCentricAlg(core.MetricRest, 2),
		workerCentricAlg(core.MetricCombined, 2),
	}
}

// run identifies one simulation in a sweep.
type run struct {
	pointIdx int
	algIdx   int
	seedIdx  int
	cfg      grid.Config
	alg      Algorithm
	seed     int64
}

// CellResults holds the per-seed results for one (point, algorithm) cell.
type CellResults struct {
	Runs []*grid.Result
}

// Makespans returns per-seed makespans in minutes.
func (c *CellResults) Makespans() []float64 {
	out := make([]float64, 0, len(c.Runs))
	for _, r := range c.Runs {
		out = append(out, r.MakespanMinutes())
	}
	return out
}

// Transfers returns per-seed total file-transfer counts.
func (c *CellResults) Transfers() []float64 {
	out := make([]float64, 0, len(c.Runs))
	for _, r := range c.Runs {
		out = append(out, float64(r.Metrics.TotalFileTransfers()))
	}
	return out
}

// RedundantTransfers returns per-seed redundant transfer counts.
func (c *CellResults) RedundantTransfers() []float64 {
	out := make([]float64, 0, len(c.Runs))
	for _, r := range c.Runs {
		out = append(out, float64(r.Metrics.RedundantTransfers()))
	}
	return out
}

// Sweep is the raw grid of results: Cells[pointIdx][algIdx].
type Sweep struct {
	PointLabels []string
	Algorithms  []string
	Cells       [][]*CellResults
}

// runSweep executes every (point, algorithm, seed) combination in parallel.
// configs[i] is the per-point base config; the workload, topology seed, and
// speed seed are filled per run.
func runSweep(opts Options, w *workload.Workload, pointLabels []string, configs []grid.Config, algs []Algorithm) (*Sweep, error) {
	if len(pointLabels) != len(configs) {
		return nil, fmt.Errorf("experiment: %d labels for %d configs", len(pointLabels), len(configs))
	}
	sweep := &Sweep{PointLabels: pointLabels}
	for _, a := range algs {
		sweep.Algorithms = append(sweep.Algorithms, a.Name)
	}
	sweep.Cells = make([][]*CellResults, len(configs))
	var runs []run
	for pi, cfg := range configs {
		sweep.Cells[pi] = make([]*CellResults, len(algs))
		for ai := range algs {
			sweep.Cells[pi][ai] = &CellResults{Runs: make([]*grid.Result, len(opts.Seeds))}
			for si, seed := range opts.Seeds {
				c := cfg
				c.Workload = w
				c.Topology.Seed = seed
				c.SpeedSeed = seed
				runs = append(runs, run{pointIdx: pi, algIdx: ai, seedIdx: si, cfg: c, alg: algs[ai], seed: seed})
			}
		}
	}

	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, r := range runs {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			sched, err := r.alg.Build(w, r.cfg, r.seed)
			if err == nil {
				var res *grid.Result
				res, err = grid.Run(r.cfg, sched)
				if err == nil {
					mu.Lock()
					sweep.Cells[r.pointIdx][r.algIdx].Runs[r.seedIdx] = res
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment: point %q algorithm %q seed %d: %w",
					pointLabels[r.pointIdx], r.alg.Name, r.seed, err)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sweep, nil
}

// coaddWorkload builds the experiment workload from options.
func coaddWorkload(opts Options) (*workload.Workload, error) {
	cfg := workload.CoaddSmallConfig(opts.CoaddSeed)
	cfg.Tasks = opts.Tasks
	return workload.GenerateCoadd(cfg)
}

// baseConfig returns the Table 1 default run configuration.
func baseConfig() grid.Config {
	return grid.Config{
		Sites:          grid.DefaultSites,
		WorkersPerSite: grid.DefaultWorkersPerSite,
		CapacityFiles:  grid.DefaultCapacityFiles,
		Policy:         storage.LRU,
		FileSizeBytes:  grid.DefaultFileSizeBytes,
	}
}
