package experiment

import (
	"fmt"

	"gridsched/internal/core"
	"gridsched/internal/grid"
	"gridsched/internal/storage"
	"gridsched/internal/workload"
)

// Table2 characterizes the evaluation workload (paper Table 2).
func Table2(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	s := workload.ComputeStats(w)
	rep := &Report{
		ID:      "table2",
		Title:   fmt.Sprintf("Characteristics of Coadd with %d tasks", s.Tasks),
		Columns: []string{"characteristic", "value", "paper"},
		Rows: [][]string{
			{"Total number of files", fmt.Sprintf("%d", s.TotalFiles), "53390"},
			{"Max number of files needed by a task", fmt.Sprintf("%d", s.MaxFilesPerTask), "101"},
			{"Min number of files needed by a task", fmt.Sprintf("%d", s.MinFilesPerTask), "36"},
			{"Average number of files needed by a task", fmt.Sprintf("%.4f", s.AvgFilesPerTask), "78.4327"},
		},
		Notes: []string{"paper column applies at Tasks=6000 with the canonical trace seed"},
	}
	return rep, nil
}

// refCDFReport renders a Figure 1/3 style reference CDF.
func refCDFReport(id, title string, w *workload.Workload, paperPct6 string) *Report {
	cdf := workload.ReferenceCDF(w)
	rep := &Report{
		ID:      id,
		Title:   title,
		XLabel:  "# of references",
		YLabel:  "% of files (cumulative)",
		Columns: []string{"min refs", "% of files with >= that many refs"},
		Notes: []string{
			fmt.Sprintf("%% of files accessed by >= 6 tasks: %.1f (paper: %s)", workload.PercentWithAtLeast(w, 6), paperPct6),
		},
	}
	for _, pt := range cdf {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", pt.MinRefs), fmt.Sprintf("%.2f", pt.Percent),
		})
	}
	return rep
}

// Figure1 is the file-access CDF of the full 44,000-task Coadd.
func Figure1(opts Options) (*Report, error) {
	opts.Normalize()
	cfg := workload.CoaddFullConfig(1)
	if opts.Tasks != 6000 {
		// Scaled-down invocations (benchmarks) shrink the full trace
		// proportionally: the paper ratio is 44000 full / 6000 eval.
		cfg.Tasks = opts.Tasks * 44000 / 6000
	}
	w, err := workload.GenerateCoadd(cfg)
	if err != nil {
		return nil, err
	}
	return refCDFReport("figure1", fmt.Sprintf("Coadd file access distribution (%d tasks)", cfg.Tasks), w, "~90"), nil
}

// Figure3 is the file-access CDF of the evaluation slice.
func Figure3(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	return refCDFReport("figure3", fmt.Sprintf("File access distribution of Coadd with %d tasks", len(w.Tasks)), w, "~85"), nil
}

// PaperCapacities are Figure 4/5's x values.
var PaperCapacities = []int{3000, 6000, 15000, 30000}

// CapacitySweep runs Figure 4/5's sweep over data-server capacities.
func CapacitySweep(opts Options, capacities []int) (*Sweep, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	var labels []string
	var configs []grid.Config
	for _, c := range capacities {
		cfg := baseConfig()
		cfg.CapacityFiles = c
		labels = append(labels, fmt.Sprintf("%d", c))
		configs = append(configs, cfg)
	}
	return runSweep(opts, w, labels, configs, PaperAlgorithms())
}

// Figure4Style renders any capacity sweep the way Figure 4 is plotted.
func Figure4Style(sw *Sweep) *Report {
	return sweepReport("figure4", "Makespan vs. data server capacity", "capacity (# of files)", "makespan (minutes)",
		sw, (*CellResults).Makespans)
}

// Figure5Style renders any capacity sweep the way Figure 5 is plotted.
func Figure5Style(sw *Sweep) *Report {
	return sweepReport("figure5", "File transfers vs. data server capacity", "capacity (# of files)", "# of file transfers (redundant)",
		sw, (*CellResults).RedundantTransfers)
}

// Figure4And5 runs the capacity sweep once and renders both figures.
func Figure4And5(opts Options) (fig4, fig5 *Report, err error) {
	sw, err := CapacitySweep(opts, PaperCapacities)
	if err != nil {
		return nil, nil, err
	}
	fig4 = Figure4Style(sw)
	fig5 = Figure5Style(sw)
	fig5.Notes = append(fig5.Notes,
		"redundant transfers = fetches beyond the first fetch of each distinct file; see EXPERIMENTS.md for why this matches the paper's y-axis",
		"total fetches = redundant + distinct files referenced")
	return fig4, fig5, nil
}

// Figure4 renders only the makespan view of the capacity sweep.
func Figure4(opts Options) (*Report, error) {
	rep, _, err := Figure4And5(opts)
	return rep, err
}

// Figure5 renders only the transfer view of the capacity sweep.
func Figure5(opts Options) (*Report, error) {
	_, rep, err := Figure4And5(opts)
	return rep, err
}

// PaperWorkerCounts are Figure 6's x values.
var PaperWorkerCounts = []int{2, 4, 6, 8, 10}

// WorkersSweep runs Figure 6 / Table 3's sweep over workers per site.
func WorkersSweep(opts Options, workers []int) (*Sweep, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	var labels []string
	var configs []grid.Config
	for _, n := range workers {
		cfg := baseConfig()
		cfg.WorkersPerSite = n
		labels = append(labels, fmt.Sprintf("%d", n))
		configs = append(configs, cfg)
	}
	return runSweep(opts, w, labels, configs, PaperAlgorithms())
}

// Figure6AndTable3 runs the workers sweep once and renders both artifacts.
func Figure6AndTable3(opts Options) (fig6, table3 *Report, err error) {
	sw, err := WorkersSweep(opts, PaperWorkerCounts)
	if err != nil {
		return nil, nil, err
	}
	fig6 = sweepReport("figure6", "Makespan vs. workers per site", "# of workers", "makespan (minutes)",
		sw, (*CellResults).Makespans)

	// Table 3: the rest metric's per-site data-server breakdown.
	restIdx := -1
	for i, name := range sw.Algorithms {
		if name == "rest" {
			restIdx = i
		}
	}
	if restIdx < 0 {
		return nil, nil, fmt.Errorf("experiment: rest algorithm missing from workers sweep")
	}
	table3 = &Report{
		ID:      "table3",
		Title:   "Result of the rest metric per site (averages over sites and seeds)",
		Columns: []string{"# workers", "waiting time (hrs)", "transfer time (hrs)", "# of file transfers"},
		Notes: []string{
			"waiting time: mean time a batch request spends queued at a data server",
			"transfer time: total time a data server spends fetching from the file server",
			"file transfers: files fetched per site",
		},
	}
	for pi, label := range sw.PointLabels {
		if label == "10" {
			continue // paper's Table 3 stops at 8 workers
		}
		cell := sw.Cells[pi][restIdx]
		var wait, xfer, transfers, nsites float64
		for _, res := range cell.Runs {
			for i := range res.Metrics.Sites {
				sm := &res.Metrics.Sites[i]
				wait += sm.MeanWaitSec() / 3600
				xfer += sm.TransferTimeSum / 3600
				transfers += float64(sm.FileTransfers)
				nsites++
			}
		}
		if nsites > 0 {
			wait /= nsites
			xfer /= nsites
			transfers /= nsites
		}
		table3.Rows = append(table3.Rows, []string{
			label,
			fmt.Sprintf("%.2f", wait),
			fmt.Sprintf("%.2f", xfer),
			fmt.Sprintf("%.2f", transfers),
		})
	}
	return fig6, table3, nil
}

// Figure6 renders only the makespan view of the workers sweep.
func Figure6(opts Options) (*Report, error) {
	rep, _, err := Figure6AndTable3(opts)
	return rep, err
}

// Table3 renders only the data-server breakdown of the workers sweep.
func Table3(opts Options) (*Report, error) {
	_, rep, err := Figure6AndTable3(opts)
	return rep, err
}

// PaperSiteCounts are Figure 7's x values.
var PaperSiteCounts = []int{10, 14, 18, 22, 26}

// Figure7 sweeps the number of participating sites.
func Figure7(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	var labels []string
	var configs []grid.Config
	for _, n := range PaperSiteCounts {
		cfg := baseConfig()
		cfg.Sites = n
		labels = append(labels, fmt.Sprintf("%d", n))
		configs = append(configs, cfg)
	}
	sw, err := runSweep(opts, w, labels, configs, PaperAlgorithms())
	if err != nil {
		return nil, err
	}
	return sweepReport("figure7", "Makespan vs. number of sites", "# of sites", "makespan (minutes)",
		sw, (*CellResults).Makespans), nil
}

// PaperFileSizesMB are Figure 8's x values.
var PaperFileSizesMB = []int{5, 25, 50}

// Figure8 sweeps the file size.
func Figure8(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	var labels []string
	var configs []grid.Config
	for _, mb := range PaperFileSizesMB {
		cfg := baseConfig()
		cfg.FileSizeBytes = float64(mb) * 1e6
		labels = append(labels, fmt.Sprintf("%d", mb))
		configs = append(configs, cfg)
	}
	sw, err := runSweep(opts, w, labels, configs, PaperAlgorithms())
	if err != nil {
		return nil, err
	}
	return sweepReport("figure8", "Makespan vs. file size", "communication cost (file size MB)", "makespan (minutes)",
		sw, (*CellResults).Makespans), nil
}

// ablationReport renders a one-point multi-algorithm comparison with one
// row per algorithm.
func ablationReport(id, title string, sw *Sweep) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"algorithm", "makespan (minutes)", "file transfers", "redundant transfers"},
	}
	for ai, name := range sw.Algorithms {
		cell := sw.Cells[0][ai]
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%.0f", meanOf(cell.Makespans())),
			fmt.Sprintf("%.0f", meanOf(cell.Transfers())),
			fmt.Sprintf("%.0f", meanOf(cell.RedundantTransfers())),
		})
	}
	return rep
}

// AblationCombined compares the paper's Combined formula as intended vs. as
// typeset (see DESIGN.md on the typo).
func AblationCombined(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		workerCentricAlg(core.MetricCombined, 1),
		workerCentricAlg(core.MetricCombinedLiteral, 1),
		workerCentricAlg(core.MetricCombined, 2),
		workerCentricAlg(core.MetricCombinedLiteral, 2),
	}
	sw, err := runSweep(opts, w, []string{"default"}, []grid.Config{baseConfig()}, algs)
	if err != nil {
		return nil, err
	}
	return ablationReport("ablation-combined", "Combined metric: intended vs. literal formula", sw), nil
}

// ChooseTaskNs are the n values the ChooseTask ablation explores (§4.3
// says the authors "tried different values of n, but only 1 and 2 give
// good results").
var ChooseTaskNs = []int{1, 2, 3, 5, 10}

// AblationChooseTask sweeps n for the rest and combined metrics.
func AblationChooseTask(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	var algs []Algorithm
	for _, n := range ChooseTaskNs {
		algs = append(algs, workerCentricAlg(core.MetricRest, n))
		algs = append(algs, workerCentricAlg(core.MetricCombined, n))
	}
	sw, err := runSweep(opts, w, []string{"default"}, []grid.Config{baseConfig()}, algs)
	if err != nil {
		return nil, err
	}
	return ablationReport("ablation-choosetask", "ChooseTask(n): effect of the randomization window", sw), nil
}

// ChurnAvailabilities are the worker-availability levels the churn
// ablation sweeps (fraction of time a worker is up).
var ChurnAvailabilities = []float64{1.0, 0.9, 0.7, 0.5}

// AblationChurn sweeps worker availability (the overloaded resource
// suppliers that motivate worker-centric scheduling in §1): each worker
// alternates exponential up/down periods with a 2-hour mean downtime, and
// an execution in flight when the worker goes down is lost and requeued.
func AblationChurn(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	const meanDown = 7200.0 // seconds
	var labels []string
	var configs []grid.Config
	for _, avail := range ChurnAvailabilities {
		cfg := baseConfig()
		if avail < 1 {
			cfg.ChurnMeanDownSec = meanDown
			cfg.ChurnMeanUpSec = meanDown * avail / (1 - avail)
		}
		labels = append(labels, fmt.Sprintf("%.0f%%", avail*100))
		configs = append(configs, cfg)
	}
	algs := []Algorithm{
		storageAffinityAlg(),
		workqueueAlg(),
		workerCentricAlg(core.MetricRest, 1),
		workerCentricAlg(core.MetricRest, 2),
		workerCentricAlg(core.MetricCombined, 2),
	}
	sw, err := runSweep(opts, w, labels, configs, algs)
	if err != nil {
		return nil, err
	}
	rep := sweepReport("ablation-churn", "Makespan vs. worker availability", "availability", "makespan (minutes)",
		sw, (*CellResults).Makespans)
	rep.Notes = append(rep.Notes, "mean downtime 2h; mean uptime = availability/(1-availability) * 2h; lost executions are requeued")
	return rep, nil
}

// AblationReplication tests the paper's §3.1/§3.2 claim that proactive
// data replication is *necessary* for task-centric scheduling but merely
// *orthogonal* for worker-centric scheduling: it runs the tight-capacity
// scenario with the Ranganathan-Foster replication mechanism off and on.
func AblationReplication(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		storageAffinityAlg(),
		workerCentricAlg(core.MetricRest, 1),
		workerCentricAlg(core.MetricCombined, 2),
	}
	off := baseConfig()
	off.CapacityFiles = 3000
	on := off
	on.Replication = grid.ReplicationConfig{
		Threshold:      4,
		IntervalSec:    3600,
		MaxPerInterval: 64,
		Strategy:       grid.ReplicateRandom,
	}
	sw, err := runSweep(opts, w, []string{"off", "on"}, []grid.Config{off, on}, algs)
	if err != nil {
		return nil, err
	}
	rep := sweepReport("ablation-replication", "Proactive data replication at capacity 3000", "replication", "makespan (minutes)",
		sw, (*CellResults).Makespans)
	rep.Notes = append(rep.Notes, "replication: popularity threshold 4 fetches, random target site, hourly scans")
	return rep, nil
}

// AblationEviction compares LRU vs FIFO replacement under the tightest
// paper capacity, where premature decisions hurt the most.
func AblationEviction(opts Options) (*Report, error) {
	opts.Normalize()
	w, err := coaddWorkload(opts)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		storageAffinityAlg(),
		workerCentricAlg(core.MetricRest, 1),
		workerCentricAlg(core.MetricCombined, 2),
	}
	lru := baseConfig()
	lru.CapacityFiles = 3000
	lru.Policy = storage.LRU
	fifo := lru
	fifo.Policy = storage.FIFO
	sw, err := runSweep(opts, w, []string{"lru", "fifo"}, []grid.Config{lru, fifo}, algs)
	if err != nil {
		return nil, err
	}
	rep := sweepReport("ablation-eviction", "Eviction policy at capacity 3000", "policy", "makespan (minutes)",
		sw, (*CellResults).Makespans)
	return rep, nil
}
