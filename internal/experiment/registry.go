package experiment

import (
	"fmt"
	"sort"
)

// Definition is a registry entry: one reproducible paper artifact.
type Definition struct {
	ID          string
	Description string
	Run         func(Options) ([]*Report, error)
}

// Registry returns every experiment, keyed by id. Entries that share a
// sweep (figure4/figure5, figure6/table3) run it once and emit both
// reports when invoked through their combined ids.
func Registry() map[string]Definition {
	single := func(f func(Options) (*Report, error)) func(Options) ([]*Report, error) {
		return func(o Options) ([]*Report, error) {
			rep, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*Report{rep}, nil
		}
	}
	return map[string]Definition{
		"table2":  {ID: "table2", Description: "Coadd-6000 workload characteristics", Run: single(Table2)},
		"figure1": {ID: "figure1", Description: "file-access CDF, full Coadd", Run: single(Figure1)},
		"figure3": {ID: "figure3", Description: "file-access CDF, Coadd-6000", Run: single(Figure3)},
		"figure4": {ID: "figure4", Description: "makespan vs. data-server capacity (also emits figure5)", Run: func(o Options) ([]*Report, error) {
			f4, f5, err := Figure4And5(o)
			if err != nil {
				return nil, err
			}
			return []*Report{f4, f5}, nil
		}},
		"figure5": {ID: "figure5", Description: "file transfers vs. capacity (also emits figure4)", Run: func(o Options) ([]*Report, error) {
			f4, f5, err := Figure4And5(o)
			if err != nil {
				return nil, err
			}
			return []*Report{f5, f4}, nil
		}},
		"figure6": {ID: "figure6", Description: "makespan vs. workers per site (also emits table3)", Run: func(o Options) ([]*Report, error) {
			f6, t3, err := Figure6AndTable3(o)
			if err != nil {
				return nil, err
			}
			return []*Report{f6, t3}, nil
		}},
		"table3": {ID: "table3", Description: "per-site data-server breakdown for rest (also emits figure6)", Run: func(o Options) ([]*Report, error) {
			f6, t3, err := Figure6AndTable3(o)
			if err != nil {
				return nil, err
			}
			return []*Report{t3, f6}, nil
		}},
		"figure7":              {ID: "figure7", Description: "makespan vs. number of sites", Run: single(Figure7)},
		"figure8":              {ID: "figure8", Description: "makespan vs. file size", Run: single(Figure8)},
		"ablation-churn":       {ID: "ablation-churn", Description: "makespan vs. worker availability (failure injection)", Run: single(AblationChurn)},
		"ablation-combined":    {ID: "ablation-combined", Description: "Combined formula: intended vs. literal", Run: single(AblationCombined)},
		"ablation-choosetask":  {ID: "ablation-choosetask", Description: "ChooseTask(n) window sweep", Run: single(AblationChooseTask)},
		"ablation-eviction":    {ID: "ablation-eviction", Description: "LRU vs FIFO at capacity 3000", Run: single(AblationEviction)},
		"ablation-replication": {ID: "ablation-replication", Description: "proactive data replication on/off at capacity 3000", Run: single(AblationReplication)},
	}
}

// IDs returns all registry ids, sorted.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup fetches a definition by id.
func Lookup(id string) (Definition, error) {
	def, ok := Registry()[id]
	if !ok {
		return Definition{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return def, nil
}
