package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gridsched/internal/plot"
)

// Report is a rendered experiment result: a titled table plus the
// underlying numeric series for plotting.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	XLabel  string     `json:"xLabel"`
	YLabel  string     `json:"yLabel"`
	Columns []string   `json:"columns"` // first column is the x label
	Rows    [][]string `json:"rows"`
	// Series mirrors Rows numerically: Series[algIdx][pointIdx], indexed
	// by Columns[1:]. Nil for purely tabular reports (Table 2).
	Series [][]float64 `json:"series,omitempty"`
	// Notes records interpretation decisions relevant to reading the
	// report (e.g. what "file transfers" counts).
	Notes []string `json:"notes,omitempty"`
}

// Render writes the report as an aligned text table.
func (r *Report) Render(out io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.ID, r.Title)
	if r.XLabel != "" || r.YLabel != "" {
		fmt.Fprintf(&b, "# x: %s, y: %s\n", r.XLabel, r.YLabel)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	_, err := io.WriteString(out, b.String())
	return err
}

// WriteCSV emits the table as CSV (header row first).
func (r *Report) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write(r.Columns); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	return nil
}

// RenderPlot draws the report's numeric series as a terminal line chart.
// It returns ok=false for purely tabular reports (no Series data).
func (r *Report) RenderPlot(out io.Writer) (ok bool, err error) {
	if len(r.Series) == 0 {
		return false, nil
	}
	xs := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		label := strings.TrimSuffix(row[0], "%")
		v, perr := strconv.ParseFloat(label, 64)
		if perr != nil {
			v = float64(i) // categorical x axis: fall back to the index
		}
		xs[i] = v
	}
	series := make([]plot.Series, 0, len(r.Series))
	for ai, ys := range r.Series {
		series = append(series, plot.Series{Name: r.Columns[ai+1], X: xs, Y: ys})
	}
	text, err := plot.Render(plot.Config{
		Title:  fmt.Sprintf("%s — %s", r.ID, r.Title),
		XLabel: r.XLabel,
		YLabel: r.YLabel,
	}, series)
	if err != nil {
		return false, err
	}
	_, err = io.WriteString(out, text)
	return true, err
}

// sweepReport renders one metric of a sweep as a Report with one column per
// algorithm, averaging each cell over seeds.
func sweepReport(id, title, xLabel, yLabel string, sw *Sweep, metric func(*CellResults) []float64) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		XLabel:  xLabel,
		YLabel:  yLabel,
		Columns: append([]string{xLabel}, sw.Algorithms...),
	}
	rep.Series = make([][]float64, len(sw.Algorithms))
	for pi, label := range sw.PointLabels {
		row := []string{label}
		for ai := range sw.Algorithms {
			mean := meanOf(metric(sw.Cells[pi][ai]))
			rep.Series[ai] = append(rep.Series[ai], mean)
			row = append(row, fmt.Sprintf("%.0f", mean))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
