package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// fastOpts shrinks an experiment to integration-test scale.
func fastOpts() Options {
	return Options{Tasks: 250, Seeds: []int64{1}, Parallelism: 4}
}

func TestTable2Report(t *testing.T) {
	rep, err := Table2(Options{Tasks: 6000, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table2" || len(rep.Rows) != 4 {
		t.Fatalf("report = %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Total number of files") {
		t.Fatalf("render missing row: %s", buf.String())
	}
}

func TestFigure3CDF(t *testing.T) {
	rep, err := Figure3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty CDF")
	}
	if rep.Rows[0][1] != "100.00" {
		t.Fatalf("CDF not anchored at 100%%: %v", rep.Rows[0])
	}
}

func TestFigure1ScalesDown(t *testing.T) {
	rep, err := Figure1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty CDF")
	}
}

func TestCapacitySweepShape(t *testing.T) {
	opts := fastOpts()
	sw, err := CapacitySweep(opts, []int{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.PointLabels) != 2 || len(sw.Algorithms) != 6 {
		t.Fatalf("sweep shape: %v x %v", sw.PointLabels, sw.Algorithms)
	}
	for pi := range sw.Cells {
		for ai := range sw.Cells[pi] {
			cell := sw.Cells[pi][ai]
			if len(cell.Runs) != 1 || cell.Runs[0] == nil {
				t.Fatalf("cell (%d,%d) incomplete", pi, ai)
			}
			if cell.Runs[0].MakespanMinutes() <= 0 {
				t.Fatalf("cell (%d,%d) zero makespan", pi, ai)
			}
		}
	}
}

func TestFigure4And5ShareSweep(t *testing.T) {
	opts := fastOpts()
	f4, f5, err := Figure4And5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if f4.ID != "figure4" || f5.ID != "figure5" {
		t.Fatalf("ids: %s, %s", f4.ID, f5.ID)
	}
	if len(f4.Rows) != len(PaperCapacities) || len(f5.Rows) != len(PaperCapacities) {
		t.Fatalf("row counts: %d, %d", len(f4.Rows), len(f5.Rows))
	}
	// 6 algorithms + x column.
	if len(f4.Columns) != 7 {
		t.Fatalf("columns: %v", f4.Columns)
	}
}

func TestFigure6AndTable3(t *testing.T) {
	opts := fastOpts()
	f6, t3, err := Figure6AndTable3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != len(PaperWorkerCounts) {
		t.Fatalf("figure6 rows: %d", len(f6.Rows))
	}
	// Table 3 stops at 8 workers (4 rows).
	if len(t3.Rows) != 4 {
		t.Fatalf("table3 rows: %v", t3.Rows)
	}
	for _, row := range t3.Rows {
		if len(row) != 4 {
			t.Fatalf("table3 row: %v", row)
		}
	}
}

func TestAblationChooseTask(t *testing.T) {
	opts := fastOpts()
	rep, err := AblationChooseTask(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*len(ChooseTaskNs) {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
}

func TestAblationEviction(t *testing.T) {
	opts := fastOpts()
	rep, err := AblationEviction(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %v", rep.Rows)
	}
}

func TestRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{
		"table2", "figure1", "figure3", "figure4", "figure5", "figure6",
		"table3", "figure7", "figure8",
		"ablation-combined", "ablation-choosetask", "ablation-eviction",
		"ablation-churn", "ablation-replication",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted unknown id")
	}
	def, err := Lookup("table2")
	if err != nil || def.ID != "table2" {
		t.Errorf("Lookup(table2) = %+v, %v", def, err)
	}
}

func TestReportCSV(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		opts := fastOpts()
		opts.Parallelism = par
		rep, _, err := Figure4And5(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(1), run(8); a != b {
		t.Fatalf("results depend on parallelism:\n%s\nvs\n%s", a, b)
	}
}
