package grid

import (
	"fmt"
	"math/rand"

	"gridsched/internal/sim"
	"gridsched/internal/trace"
	"gridsched/internal/workload"
)

// ReplicationStrategy selects the target site for a proactive replica.
type ReplicationStrategy int

// Strategies from Ranganathan & Foster [13]: replicate popular data to a
// random site or to the least-loaded site (here: the site with the fewest
// queued batch requests).
const (
	ReplicateRandom ReplicationStrategy = iota + 1
	ReplicateLeastLoaded
)

func (s ReplicationStrategy) String() string {
	switch s {
	case ReplicateRandom:
		return "random"
	case ReplicateLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ReplicationConfig enables the paper's §3.1 "data replication" mechanism:
// the external file server tracks per-file fetch popularity and pushes
// files whose popularity crosses Threshold to other sites, in the
// background. Threshold = 0 disables the mechanism.
type ReplicationConfig struct {
	// Threshold is the fetch count at which a file becomes replication-
	// worthy (each file is proactively replicated at most once).
	Threshold int `json:"threshold"`
	// IntervalSec is the popularity-scan period.
	IntervalSec float64 `json:"intervalSec"`
	// MaxPerInterval bounds pushes per scan so replication cannot flood
	// the network.
	MaxPerInterval int                 `json:"maxPerInterval"`
	Strategy       ReplicationStrategy `json:"strategy"`
	Seed           int64               `json:"seed"`
}

// normalize fills defaults; the zero config stays disabled.
func (c *ReplicationConfig) normalize() error {
	if c.Threshold == 0 {
		return nil
	}
	if c.Threshold < 0 {
		return fmt.Errorf("grid: replication threshold %d", c.Threshold)
	}
	if c.IntervalSec == 0 {
		c.IntervalSec = 3600
	}
	if c.IntervalSec < 0 {
		return fmt.Errorf("grid: replication interval %v", c.IntervalSec)
	}
	if c.MaxPerInterval == 0 {
		c.MaxPerInterval = 64
	}
	if c.MaxPerInterval < 0 {
		return fmt.Errorf("grid: replication MaxPerInterval %d", c.MaxPerInterval)
	}
	if c.Strategy == 0 {
		c.Strategy = ReplicateRandom
	}
	if c.Strategy != ReplicateRandom && c.Strategy != ReplicateLeastLoaded {
		return fmt.Errorf("grid: unknown replication strategy %v", c.Strategy)
	}
	return nil
}

// replicator is the background popularity-driven push process.
func (e *engine) replicator(p *sim.Proc) {
	cfg := e.cfg.Replication
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	pushed := make([]bool, e.cfg.Workload.NumFiles)
	for e.remaining > 0 {
		p.Sleep(cfg.IntervalSec)
		budget := cfg.MaxPerInterval
		for f := workload.FileID(0); int(f) < len(e.fetchCount) && budget > 0; f++ {
			if pushed[f] || int(e.fetchCount[f]) < cfg.Threshold {
				continue
			}
			pushed[f] = true
			target, ok := e.pickReplicaTarget(rng, f)
			if !ok {
				continue // every site already has it
			}
			budget--
			if err := e.net.Transfer(p, e.topo.FileServer, e.sites[target], e.cfg.FileSizeBytes); err != nil {
				panic(fmt.Sprintf("grid: replication push: %v", err))
			}
			added, evicted := e.stores[target].Preload(f)
			if !added {
				continue // raced with a batch fetch during the push
			}
			e.col.Sites[target].ProactiveReplicas++
			e.sched.NoteBatch(target, nil, []workload.FileID{f}, evicted)
			e.emit(p.Now(), trace.FileReplicated, coreRefForSite(target), -1, 1)
		}
	}
}

// pickReplicaTarget chooses a site that does not already hold f.
func (e *engine) pickReplicaTarget(rng *rand.Rand, f workload.FileID) (int, bool) {
	var candidates []int
	for site := 0; site < e.cfg.Sites; site++ {
		if !e.stores[site].Contains(f) {
			candidates = append(candidates, site)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	switch e.cfg.Replication.Strategy {
	case ReplicateLeastLoaded:
		best := candidates[0]
		for _, site := range candidates[1:] {
			if e.queues[site].Len() < e.queues[best].Len() {
				best = site
			}
		}
		return best, true
	default:
		return candidates[rng.Intn(len(candidates))], true
	}
}
