// Package grid wires the paper's system model (§2.2) into the simulation
// kernel: sites with workers and a single data server each, one external
// file server holding every file, and a global scheduler consulted by idle
// workers.
//
// Each actor is a sim process. Workers loop pull-request → batch file
// request → compute; the data server serves batch requests strictly one at
// a time (assumption 3), fetching only missing files from the external file
// server over the shared wide-area network (internal/netsim); a task starts
// computing only once every input file is resident (assumption 5).
package grid

import (
	"fmt"
	"math"
	"math/rand"

	"gridsched/internal/core"
	"gridsched/internal/metrics"
	"gridsched/internal/netsim"
	"gridsched/internal/sim"
	"gridsched/internal/storage"
	"gridsched/internal/top500"
	"gridsched/internal/topology"
	"gridsched/internal/trace"
	"gridsched/internal/workload"
)

// Config describes one simulation run. Zero values are filled from the
// paper's Table 1 defaults by Normalize.
type Config struct {
	Workload *workload.Workload   `json:"-"`
	Topology topology.TiersConfig `json:"topology"`
	// Sites is how many of the topology's generated sites participate.
	Sites          int `json:"sites"`
	WorkersPerSite int `json:"workersPerSite"`
	// CapacityFiles is each data server's storage capacity, in files.
	CapacityFiles int            `json:"capacityFiles"`
	Policy        storage.Policy `json:"policy"`
	// FileSizeBytes is the uniform file size (assumption 8).
	FileSizeBytes float64 `json:"fileSizeBytes"`
	// PerFileMflop calibrates task compute cost: cost(t) = PerFileMflop *
	// |files(t)| MFLOP, divided by the worker's sampled speed (MFLOPS).
	PerFileMflop float64 `json:"perFileMflop"`
	// SpeedSeed seeds the Top500 worker-speed sampler (§5.2).
	SpeedSeed int64 `json:"speedSeed"`
	// PollIntervalSec is how long a worker in Wait status (replica cap
	// reached) sleeps before asking the scheduler again.
	PollIntervalSec float64 `json:"pollIntervalSec"`

	// Replication enables proactive popularity-driven data replication
	// (Ranganathan & Foster [13], discussed in the paper's §3.1). The
	// zero value disables it.
	Replication ReplicationConfig `json:"replication"`

	// Tracer, when non-nil, receives the run's full event timeline
	// (internal/trace). Tracing does not perturb the simulation.
	Tracer trace.Tracer `json:"-"`

	// ChurnMeanUpSec and ChurnMeanDownSec model worker unavailability
	// (the overloaded resource suppliers of §1): each worker alternates
	// exponentially distributed available/unavailable periods. A failure
	// mid-execution loses the execution; the scheduler requeues the task.
	// Zero ChurnMeanUpSec disables churn.
	ChurnMeanUpSec   float64 `json:"churnMeanUpSec"`
	ChurnMeanDownSec float64 `json:"churnMeanDownSec"`
}

// Paper defaults (Table 1 plus calibration constants documented in
// DESIGN.md / EXPERIMENTS.md).
const (
	DefaultCapacityFiles   = 6000
	DefaultWorkersPerSite  = 1
	DefaultSites           = 10
	DefaultFileSizeBytes   = 25e6
	DefaultPerFileMflop    = 1.2e6
	DefaultPollIntervalSec = 60
)

// Normalize fills unset fields with the paper's defaults and validates the
// result against the workload.
func (c *Config) Normalize() error {
	if c.Workload == nil {
		return fmt.Errorf("grid: nil workload")
	}
	if c.Sites == 0 {
		c.Sites = DefaultSites
	}
	if c.WorkersPerSite == 0 {
		c.WorkersPerSite = DefaultWorkersPerSite
	}
	if c.CapacityFiles == 0 {
		c.CapacityFiles = DefaultCapacityFiles
	}
	if c.Policy == 0 {
		c.Policy = storage.LRU
	}
	if c.FileSizeBytes == 0 {
		c.FileSizeBytes = DefaultFileSizeBytes
	}
	if c.PerFileMflop == 0 {
		c.PerFileMflop = DefaultPerFileMflop
	}
	if c.PollIntervalSec == 0 {
		c.PollIntervalSec = DefaultPollIntervalSec
	}
	if c.Topology.WANNodes == 0 {
		c.Topology = topology.DefaultTiersConfig(1)
	}
	if c.Sites < 1 || c.Sites > c.Topology.SiteCount() {
		return fmt.Errorf("grid: Sites = %d with topology of %d sites", c.Sites, c.Topology.SiteCount())
	}
	if c.WorkersPerSite < 1 {
		return fmt.Errorf("grid: WorkersPerSite = %d", c.WorkersPerSite)
	}
	if c.FileSizeBytes <= 0 || c.PerFileMflop <= 0 || c.PollIntervalSec <= 0 {
		return fmt.Errorf("grid: non-positive calibration constant")
	}
	if err := c.Replication.normalize(); err != nil {
		return err
	}
	if c.ChurnMeanUpSec < 0 || c.ChurnMeanDownSec < 0 {
		return fmt.Errorf("grid: negative churn period")
	}
	if c.ChurnMeanUpSec > 0 && c.ChurnMeanDownSec == 0 {
		c.ChurnMeanDownSec = c.ChurnMeanUpSec / 10
	}
	maxFiles := 0
	for _, t := range c.Workload.Tasks {
		if len(t.Files) > maxFiles {
			maxFiles = len(t.Files)
		}
	}
	if c.CapacityFiles < maxFiles {
		return fmt.Errorf("grid: capacity %d files below largest task (%d files); assumption 5 unsatisfiable", c.CapacityFiles, maxFiles)
	}
	return nil
}

// Result is the outcome of one simulated run.
type Result struct {
	Scheduler string             `json:"scheduler"`
	Metrics   *metrics.Collector `json:"metrics"`
	// WallEvents is the number of kernel events executed (simulator load,
	// not simulated time).
	WallEvents uint64 `json:"wallEvents"`
}

// MakespanMinutes returns the makespan in the paper's unit.
func (r *Result) MakespanMinutes() float64 { return r.Metrics.MakespanSec / 60 }

// batchRequest is what a worker sends its site's data server.
type batchRequest struct {
	files    []workload.FileID
	reply    *sim.Signal
	enqueued sim.Time
}

// coreRefForSite is the site-scoped pseudo worker reference used by
// actors that are not a specific worker (data server, replicator).
func coreRefForSite(site int) core.WorkerRef {
	return core.WorkerRef{Site: site, Worker: -1}
}

// emit records a trace event if tracing is enabled.
func (e *engine) emit(at sim.Time, kind trace.Kind, ref core.WorkerRef, task workload.TaskID, files int) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer.Record(trace.Event{
		At: at, Kind: kind, Site: ref.Site, Worker: ref.Worker, Task: int64(task), Files: files,
	})
}

// spreadSites picks n sites striding across the generation order, which
// walks the WAN/MAN/LAN tree depth-first — so the chosen subset spreads
// over the hierarchy the way the paper's experiments use "a subset of 90
// sites", instead of clustering the whole grid behind one LAN corner.
func spreadSites(all []topology.NodeID, n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i*len(all)/n]
	}
	return out
}

// engine holds one run's wiring.
type engine struct {
	cfg   Config
	k     *sim.Kernel
	net   *netsim.Network
	topo  *topology.Topology
	sites []topology.NodeID // participating sites (spread across the topology)
	sched core.Scheduler
	col   *metrics.Collector

	stores []*storage.Store
	queues []*sim.Queue[*batchRequest]

	done        []bool
	remaining   int
	makespan    sim.Time
	everFetched []bool  // per file: fetched anywhere at least once
	fetchCount  []int32 // per file: fetches seen by the external file server

	workers map[core.WorkerRef]*workerState
}

type workerState struct {
	cur       workload.TaskID // -1 when idle
	cancelled bool
	cancelSig *sim.Signal
}

// Run executes one simulation of the workload under the given scheduler.
// The scheduler must be freshly constructed for the run.
func Run(cfg Config, sched core.Scheduler) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	topo, err := topology.GenerateTiers(cfg.Topology)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	e := &engine{
		cfg:         cfg,
		k:           k,
		net:         netsim.New(k, topo.Graph),
		topo:        topo,
		sites:       spreadSites(topo.Sites, cfg.Sites),
		sched:       sched,
		col:         metrics.NewCollector(cfg.Sites),
		stores:      make([]*storage.Store, cfg.Sites),
		queues:      make([]*sim.Queue[*batchRequest], cfg.Sites),
		done:        make([]bool, len(cfg.Workload.Tasks)),
		remaining:   len(cfg.Workload.Tasks),
		everFetched: make([]bool, cfg.Workload.NumFiles),
		fetchCount:  make([]int32, cfg.Workload.NumFiles),
		workers:     make(map[core.WorkerRef]*workerState),
	}
	for i := 0; i < cfg.Sites; i++ {
		st, err := storage.New(cfg.CapacityFiles, cfg.Policy)
		if err != nil {
			return nil, err
		}
		st.Reserve(cfg.Workload.NumFiles)
		e.stores[i] = st
		e.queues[i] = sim.NewQueue[*batchRequest](k)
		sched.AttachSite(i)
	}

	sampler := top500.NewSampler(cfg.SpeedSeed)
	for site := 0; site < cfg.Sites; site++ {
		site := site
		k.Go(fmt.Sprintf("dataserver-%d", site), func(p *sim.Proc) { e.dataServer(p, site) })
		for wi := 0; wi < cfg.WorkersPerSite; wi++ {
			ref := core.WorkerRef{Site: site, Worker: wi}
			speed := sampler.Sample()
			var churn *rand.Rand
			if cfg.ChurnMeanUpSec > 0 {
				churn = rand.New(rand.NewSource(cfg.SpeedSeed*1_000_003 + int64(site)*1_009 + int64(wi)))
			}
			e.workers[ref] = &workerState{cur: -1}
			k.Go(fmt.Sprintf("worker-%d.%d", site, wi), func(p *sim.Proc) { e.worker(p, ref, speed, churn) })
		}
	}

	if cfg.Replication.Threshold > 0 {
		k.Go("replicator", func(p *sim.Proc) { e.replicator(p) })
	}

	k.Run()
	k.Shutdown() // reap data servers parked on their request queues

	if e.remaining != 0 {
		return nil, fmt.Errorf("grid: simulation ended with %d tasks incomplete", e.remaining)
	}
	e.col.MakespanSec = e.makespan
	return &Result{Scheduler: sched.Name(), Metrics: e.col, WallEvents: k.EventsFired()}, nil
}

// dataServer serves batch requests one at a time (assumption 3): determine
// missing files, fetch them in one bulk flow from the external file server,
// commit the batch to storage, notify the scheduler, release the worker.
func (e *engine) dataServer(p *sim.Proc, site int) {
	sm := &e.col.Sites[site]
	store := e.stores[site]
	// Per-server buffers reused across batches (a data server may block on
	// the network mid-request, so the buffers must not be engine-shared).
	var missBuf, fetchBuf, evictBuf []workload.FileID
	for {
		req := e.queues[site].Recv(p)
		sm.Requests++
		sm.WaitTimeSum += p.Now() - req.enqueued

		missBuf = store.AppendMissing(missBuf[:0], req.files)
		missing := missBuf
		if len(missing) > 0 {
			start := p.Now()
			bytes := float64(len(missing)) * e.cfg.FileSizeBytes
			if err := e.net.Transfer(p, e.topo.FileServer, e.sites[site], bytes); err != nil {
				panic(fmt.Sprintf("grid: transfer to site %d: %v", site, err))
			}
			sm.TransferTimeSum += p.Now() - start
			sm.FileTransfers += int64(len(missing))
			sm.BytesFetched += bytes
			for _, f := range missing {
				e.fetchCount[f]++
				if !e.everFetched[f] {
					e.everFetched[f] = true
					e.col.DistinctFilesFetched++
				}
			}
		}
		var fetched, evicted []workload.FileID
		var err error
		fetched, evicted, err = store.CommitBatchInto(req.files, fetchBuf[:0], evictBuf[:0])
		if err != nil {
			panic(fmt.Sprintf("grid: commit at site %d: %v", site, err))
		}
		fetchBuf, evictBuf = fetched[:0], evicted[:0]
		// A proactive replica push can land one of the missing files while
		// our fetch is in flight, so fetched may be a strict subset of
		// missing; more fetches than misses would be a real bug.
		if len(fetched) > len(missing) {
			panic("grid: more files inserted than were missing at service start")
		}
		sm.Evictions += int64(len(evicted))
		e.sched.NoteBatch(site, req.files, fetched, evicted)
		e.emit(p.Now(), trace.BatchServed, core.WorkerRef{Site: site, Worker: -1}, -1, len(missing))
		req.reply.Fire(nil)
	}
}

// worker runs the pull loop of §4.1: ask the scheduler when idle, stage the
// task's files through the site data server, compute, repeat. Storage
// affinity replicas can be cancelled mid-flight; a cancel during the batch
// wait abandons the task after staging, a cancel during compute interrupts
// the computation. Under churn the worker alternates exponentially
// distributed up/down periods; a failure mid-execution loses the execution
// and the scheduler requeues the task.
func (e *engine) worker(p *sim.Proc, ref core.WorkerRef, speedMflops float64, churn *rand.Rand) {
	ws := e.workers[ref]
	sm := &e.col.Sites[ref.Site]
	nextFail := math.Inf(1)
	if churn != nil {
		nextFail = p.Now() + churn.ExpFloat64()*e.cfg.ChurnMeanUpSec
	}
	// One request/reply pair reused for every batch: the worker blocks
	// until the data server fires the reply, so the previous use is always
	// fully drained before the next.
	reply := sim.NewSignal(e.k)
	req := &batchRequest{reply: reply}
	for {
		if p.Now() >= nextFail {
			e.emit(p.Now(), trace.WorkerDown, ref, -1, 0)
			p.Sleep(churn.ExpFloat64() * e.cfg.ChurnMeanDownSec)
			nextFail = p.Now() + churn.ExpFloat64()*e.cfg.ChurnMeanUpSec
			e.emit(p.Now(), trace.WorkerUp, ref, -1, 0)
			continue
		}
		task, status := e.sched.NextFor(ref)
		switch status {
		case core.Done:
			return
		case core.Wait:
			p.Sleep(e.cfg.PollIntervalSec)
			continue
		case core.Assigned:
		default:
			panic(fmt.Sprintf("grid: unknown scheduler status %v", status))
		}

		ws.cur = task.ID
		ws.cancelled = false
		ws.cancelSig = sim.NewSignal(e.k)
		sm.TasksExecuted++
		e.emit(p.Now(), trace.TaskAssigned, ref, task.ID, len(task.Files))

		reply.Reset()
		req.files, req.enqueued = task.Files, p.Now()
		e.queues[ref.Site].Push(req)
		e.emit(p.Now(), trace.BatchEnqueued, ref, task.ID, len(task.Files))
		reply.Wait(p)

		if ws.cancelled {
			// Another replica completed while our files were staging.
			e.col.CancelledExecutions++
			e.emit(p.Now(), trace.TaskCancelled, ref, task.ID, 0)
			ws.cur = -1
			continue
		}
		if p.Now() >= nextFail {
			// The worker went down while its files were staging.
			e.failExecution(p.Now(), ref, task.ID)
			continue
		}

		computeSec := float64(len(task.Files)) * e.cfg.PerFileMflop / speedMflops
		e.emit(p.Now(), trace.ComputeStart, ref, task.ID, 0)
		if p.Now()+computeSec >= nextFail {
			// The worker will fail mid-compute (unless cancelled first).
			_, interrupted := ws.cancelSig.WaitTimeout(p, nextFail-p.Now())
			if interrupted {
				e.col.CancelledExecutions++
				e.emit(p.Now(), trace.TaskCancelled, ref, task.ID, 0)
				ws.cur = -1
				continue
			}
			e.failExecution(p.Now(), ref, task.ID)
			continue
		}
		_, interrupted := ws.cancelSig.WaitTimeout(p, computeSec)
		if interrupted {
			e.col.CancelledExecutions++
			e.emit(p.Now(), trace.TaskCancelled, ref, task.ID, 0)
			ws.cur = -1
			continue
		}

		ws.cur = -1
		e.emit(p.Now(), trace.TaskCompleted, ref, task.ID, 0)
		sm.TasksCompleted++
		if !e.done[task.ID] {
			e.done[task.ID] = true
			e.remaining--
			e.col.TasksCompleted++
			if e.remaining == 0 {
				e.makespan = p.Now()
			}
		}
		for _, victim := range e.sched.OnTaskComplete(task.ID, ref) {
			e.cancel(victim, task.ID)
		}
	}
}

// failExecution records a churn-induced execution loss and requeues the
// task with the scheduler (unless a replica already completed it).
func (e *engine) failExecution(at sim.Time, ref core.WorkerRef, id workload.TaskID) {
	e.workers[ref].cur = -1
	e.col.FailedExecutions++
	e.emit(at, trace.TaskFailed, ref, id, 0)
	e.sched.OnExecutionFailed(id, ref)
}

// cancel interrupts the named worker's current execution of task id.
func (e *engine) cancel(ref core.WorkerRef, id workload.TaskID) {
	ws, ok := e.workers[ref]
	if !ok {
		panic(fmt.Sprintf("grid: cancel for unknown worker %+v", ref))
	}
	if ws.cur != id || ws.cancelled {
		return
	}
	ws.cancelled = true
	if ws.cancelSig != nil && !ws.cancelSig.Fired() {
		ws.cancelSig.Fire(nil)
	}
}
